"""Figure regeneration bench: render every paper figure as a PNG.

Writes the full figure set (Figs. 1/2, 4, 6/7, 8, 9, 11, 13, appendix
15/16) to ``benchmarks/results/figures/`` using the in-repo rasterizer —
the image counterpart to the text tables the other benches save.
"""

from pathlib import Path

from repro.eval.figures import render_all_figures
from repro.eval.mediator import ExperimentMediator

RESULTS_DIR = Path(__file__).parent / "results" / "figures"


def test_render_all_figures(run_once, data):
    paths = run_once(render_all_figures, data, RESULTS_DIR)
    # The rendered set must cover at least one PNG per registered
    # figure-kind experiment (some experiments render several panels),
    # with no duplicate output paths.
    registry_figures = [
        spec for spec in ExperimentMediator.available() if spec.kind == "figure"
    ]
    assert len(paths) == len(set(paths))
    assert len(paths) >= len(registry_figures)
    for path in paths:
        assert path.exists()
        assert path.stat().st_size > 500  # non-trivial PNG payload
    print("\nfigures written to", RESULTS_DIR)
    for path in paths:
        print("  ", path.name)
