"""Async front-end benchmark: event loop vs thread-per-connection.

Runs the checked-in ``serving-async-highconc`` scenario (closed-loop
keep-alive concurrency doubling 64 -> 512 against a subprocess server)
twice — once with ``server.frontend="threaded"``, once with the
``eventloop`` front end — and compares sustained throughput level by
level. Everything else (workload, admission knobs, worker shards, shm
transport, seed) is held identical, so the delta prices exactly one
thing: what connection handling costs at high concurrency.

The acceptance gate follows the repo convention set by
``bench_scoring_plans.py``: on hosts with >= 4 cores — where the
generator's client threads, the threaded front end's per-connection
threads, and the worker shards are not all fighting for one core — the
event loop must sustain >= 2x the threaded throughput at the 256-client
level. Smaller hosts run the same duel and record honest numbers, but
check only a sanity floor (>= 0.5x): with every thread multiplexed onto
one core, both front ends degenerate to the same scoring-bound ceiling
and the comparison measures the scheduler, not the server.

One gate is unconditional on every host: the event-loop run must be
drop-free at every level. The threaded front end sheds connections
(status 0: resets/timeouts) once concurrency climbs past its accept
backlog — the table records those drops as the measured cost of
thread-per-connection rather than failing the bench on them.

Run standalone (full durations, rewrites the checked-in table)::

    PYTHONPATH=src python benchmarks/bench_serving_async.py

or through pytest (shorter levels, same code path, gate only)::

    PYTHONPATH=src pytest benchmarks/bench_serving_async.py --benchmark-only
"""

from __future__ import annotations

import dataclasses
import os
from pathlib import Path

from repro.loadlab import load_scenario, run_scenario

SCENARIO_PATH = Path(__file__).parent / "scenarios" / "serving-async-highconc.json"
RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "bench_serving_async.txt"

#: The concurrency level the hard gate reads (the ISSUE's acceptance
#: point; high enough that thread-per-connection overhead is visible,
#: low enough that the closed loop still saturates the server).
GATE_CLIENTS = 256
FRONTENDS = ("threaded", "eventloop")


def _with_frontend(scenario, frontend: str):
    return dataclasses.replace(
        scenario, server=dataclasses.replace(scenario.server, frontend=frontend)
    )


def run_frontend_duel(duration_scale: float = 1.0) -> dict[str, dict]:
    """Run the highconc scenario once per front end; frontend -> result."""
    scenario = load_scenario(SCENARIO_PATH)
    return {
        frontend: run_scenario(
            _with_frontend(scenario, frontend),
            out_dir=RESULTS_DIR,
            duration_scale=duration_scale,
        )
        for frontend in FRONTENDS
    }


def _throughputs(result: dict) -> dict[int, float]:
    """clients -> sustained throughput (req/s) for every level."""
    return {
        int(level["clients"]): level["throughput_rps"]["value"]
        for level in result["levels"]
    }


def _drops(result: dict) -> dict[int, int]:
    """clients -> requests that missed their expected status (0 = reset)."""
    return {int(level["clients"]): level["misbehaved"] for level in result["levels"]}


def speedup_at(results: dict[str, dict], clients: int) -> float:
    threaded = _throughputs(results["threaded"])[clients]
    eventloop = _throughputs(results["eventloop"])[clients]
    return eventloop / threaded if threaded > 0 else float("inf")


def render_duel(results: dict[str, dict], *, save: bool = False) -> str:
    threaded = _throughputs(results["threaded"])
    eventloop = _throughputs(results["eventloop"])
    threaded_drops = _drops(results["threaded"])
    eventloop_drops = _drops(results["eventloop"])
    lines = [
        "Async front-end duel — serving-async-highconc, closed-loop "
        "keep-alive clients,",
        f"2 worker shards over shm rings, host cpu_count={os.cpu_count()}",
        "(drops = requests that missed their expected status; status 0 is a "
        "connection reset/timeout)",
        "",
        f"{'clients':>8} {'threaded rps':>13} {'drops':>6} "
        f"{'eventloop rps':>14} {'drops':>6} {'ratio':>7}",
    ]
    for clients in sorted(threaded):
        ratio = eventloop[clients] / threaded[clients] if threaded[clients] else 0.0
        lines.append(
            f"{clients:>8} {threaded[clients]:>13.1f} {threaded_drops[clients]:>6} "
            f"{eventloop[clients]:>14.1f} {eventloop_drops[clients]:>6} "
            f"{ratio:>6.2f}x"
        )
    lines += [
        "",
        f"gate: eventloop >= 2x threaded at {GATE_CLIENTS} clients "
        "(hard on cpu_count >= 4 hosts; single-core hosts are "
        "scoring-bound and check a >= 0.5x sanity floor); the eventloop "
        "run must always be drop-free — threaded drops are the measured "
        "cost of thread-per-connection under this load, not a bench error",
    ]
    text = "\n".join(lines) + "\n"
    if save:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text, encoding="utf-8")
    return text


def test_async_frontend_speedup(run_once):
    """Acceptance: the event loop beats thread-per-connection at 256
    keep-alive clients on hosts with the cores to show it."""
    results = run_once(run_frontend_duel, duration_scale=0.2)
    text = render_duel(results)
    print("\n" + text)

    # The event loop must come through drop-free at every level; the
    # threaded front end is allowed its measured drops under this load —
    # that cost is exactly what the table prices.
    eventloop_misbehaved = sum(
        level["misbehaved"] for level in results["eventloop"]["levels"]
    )
    assert eventloop_misbehaved == 0, f"{eventloop_misbehaved} dropped\n{text}"

    ratio = speedup_at(results, GATE_CLIENTS)
    if (os.cpu_count() or 1) >= 4:
        assert ratio >= 2.0, text
    else:
        assert ratio >= 0.5, text


if __name__ == "__main__":
    print(render_duel(run_frontend_duel(), save=True))
