"""F9/F10 — paper Figs. 9–10: scaling-detector score distributions.

Reproduced claim: benign and attack populations separate by orders of
magnitude in MSE and by a wide SSIM gap (white-box view), and the benign
population is well-behaved enough for percentile thresholds (black-box
view).
"""


def test_fig9_fig10_scaling_distributions(run_exp, save_result):
    result = run_exp("F9/F10")
    save_result(result)
    rows = {row["population"]: row for row in result.rows}
    mse_benign = float(rows["mse benign (calibration)"]["mean"])
    mse_attack = float(rows["mse attack (calibration)"]["mean"])
    assert mse_attack > 10 * mse_benign  # orders-of-magnitude separation
    ssim_benign = float(rows["ssim benign (calibration)"]["mean"])
    ssim_attack = float(rows["ssim attack (calibration)"]["mean"])
    assert ssim_attack < ssim_benign - 0.2
