"""AB5 — ablation: attack surface vs downscale ratio and algorithm.

Ties the paper's background analysis to measured outcomes: sparser scaling
(higher ratio, narrower kernel) makes the attack stealthier, yet the
scaling detector's separation stays perfect; area averaging reads every
pixel and closes the surface.
"""


def test_ablation_surface_sweep(run_exp, save_result):
    result = run_exp("AB5")
    save_result(result)
    rows = {(r["ratio"], r["algorithm"]): r for r in result.rows}

    # Stealth grows with ratio for the vulnerable algorithms.
    p4 = float(rows[("4x", "bilinear")]["perturbation MSE"])
    p8 = float(rows[("8x", "bilinear")]["perturbation MSE"])
    assert p8 < p4

    # Nearest is the sparsest surface; area reads everything.
    assert float(rows[("8x", "nearest")]["influential pixels"].rstrip("%")) < 5.0
    assert float(rows[("8x", "area")]["influential pixels"].rstrip("%")) == 100.0

    # Detector separation stays essentially perfect wherever a *stealthy*
    # attack exists (ratio >= 4 on a vulnerable kernel); at ratio 2 the
    # round trip retains part of the perturbation so the AUC dips slightly.
    for (ratio, algorithm), row in rows.items():
        if row["detector AUC"] == "-" or algorithm == "area":
            continue
        floor = 0.95 if ratio != "2x" else 0.85
        assert float(row["detector AUC"]) >= floor, (ratio, algorithm)
