"""Worker-shard scaling benchmark: in-process vs sharded serving.

Reuses the closed-loop generator from :mod:`bench_serving_load` but
sweeps the *server's* parallelism instead of the client's: the same
request stream is driven (at fixed client concurrency 4) against an
in-process server (``workers=0``, the PR 3 baseline path), a single
shard, and four shards. The table records throughput and tail latency
per configuration plus the host context — scaling headroom is physics:
on an N-core host, more than min(N, workers) shards cannot help, so the
pass/fail gate for "4 workers ≥ 2x the in-process baseline" only applies
where the hardware can express it (``os.cpu_count() >= 4``). The numbers
are recorded honestly either way in
``benchmarks/results/bench_serving_workers.txt``.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_serving_workers.py

or through pytest (small request budget, same code path)::

    PYTHONPATH=src pytest benchmarks/bench_serving_workers.py --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import generate_image
from repro.imaging.image import as_uint8
from repro.serving import DetectionClient, DetectionServer, ProtectedPipeline, ServerConfig
from repro.serving.wire import encode_image_payload

from bench_serving_load import _drive

RESULTS_PATH = Path(__file__).parent / "results" / "bench_serving_workers.txt"

SOURCE_SHAPE = (128, 128)
MODEL_INPUT = (16, 16)
#: Server-side shard counts to sweep; 0 is the in-process baseline.
WORKER_LEVELS = (0, 1, 4)
#: Client-side concurrency, fixed so the only variable is the server.
CLIENT_CONCURRENCY = 4


def _build_server(workers: int) -> tuple[DetectionServer, list[bytes]]:
    benign = [
        generate_image(SOURCE_SHAPE, np.random.default_rng((7, key)), family="neurips")
        for key in range(8)
    ]
    pipeline = ProtectedPipeline(MODEL_INPUT)
    pipeline.calibrate(benign, percentile=5.0)
    server = DetectionServer(
        pipeline,
        ServerConfig(
            port=0,
            max_active=max(CLIENT_CONCURRENCY, workers or 1),
            queue_depth=256,
            deadline_ms=60_000.0,
            workers=workers,
        ),
    )
    server.start()
    payloads = [encode_image_payload(as_uint8(image)) for image in benign]
    return server, payloads


def _measure(workers: int, total_requests: int) -> dict[str, float]:
    server, payloads = _build_server(workers)
    host, port = server.address
    try:
        with DetectionClient(host, port) as probe:
            # Worker mode spawns shard processes (cold numpy imports).
            probe.wait_ready(timeout_s=120.0)
            probe.detect(payload=payloads[0])  # warm caches before timing
        row = _drive(host, port, payloads, CLIENT_CONCURRENCY, total_requests)
    finally:
        server.shutdown()
    row["workers"] = workers
    return row


def run_worker_sweep(total_requests: int = 200) -> str:
    """The full sweep; returns (and saves) the rendered table."""
    rows = [_measure(workers, total_requests) for workers in WORKER_LEVELS]
    header = (
        f"Worker-shard scaling — {SOURCE_SHAPE[0]}x{SOURCE_SHAPE[1]} PNG uploads, "
        f"model input {MODEL_INPUT[0]}x{MODEL_INPUT[1]}, loopback HTTP,\n"
        f"client concurrency {CLIENT_CONCURRENCY}, {total_requests} requests per level, "
        f"host cpu_count={os.cpu_count()}\n"
        f"(workers=0 is the in-process baseline path; shards cannot beat the\n"
        f" baseline by more than the host's spare cores)\n"
    )
    lines = [
        header,
        f"{'workers':>7} {'reqs':>6} {'throughput':>12} {'p50':>9} {'p95':>9} "
        f"{'p99':>9} {'max':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['workers']:>7d} {row['requests']:>6d} "
            f"{row['throughput_rps']:>8.1f} req/s "
            f"{row['p50_ms']:>6.1f} ms {row['p95_ms']:>6.1f} ms "
            f"{row['p99_ms']:>6.1f} ms {row['max_ms']:>6.1f} ms"
        )
    baseline = rows[0]["throughput_rps"]
    best = max(row["throughput_rps"] for row in rows)
    lines.append(
        f"\nbest/baseline speedup: {best / baseline:.2f}x "
        f"(target >= 2x requires cpu_count >= 4; this host has {os.cpu_count()})"
    )
    text = "\n".join(lines) + "\n"
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(text)
    return text


def test_worker_scaling_sweep(run_once):
    """Benchmark-suite entry: a reduced sweep through the same code path.

    Acceptance: on hosts with >= 4 cores, 4 shards must at least double
    the in-process baseline throughput. On smaller hosts the shards can
    only add IPC overhead, so the gate relaxes to a bounded-overhead
    check (sharded throughput stays within 4x of baseline latency cost) —
    the honest numbers and host context are always recorded.
    """
    text = run_once(run_worker_sweep, total_requests=48)
    print("\n" + text)

    def throughput(line: str) -> float:
        return float(line.split("req/s")[0].split()[-1])

    data_lines = [
        line for line in text.splitlines()
        if "req/s" in line and "throughput" not in line
    ]
    assert len(data_lines) == len(WORKER_LEVELS)
    baseline = throughput(data_lines[0])
    sharded_best = max(throughput(line) for line in data_lines[1:])
    if (os.cpu_count() or 1) >= 4:
        assert sharded_best >= 2.0 * baseline, text
    else:
        # Scaling is physically impossible here; the pool must still be
        # within a constant factor of the baseline (no pathological IPC).
        assert sharded_best >= baseline / 4.0, text


if __name__ == "__main__":
    print(run_worker_sweep())
