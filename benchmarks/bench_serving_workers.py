"""Worker-shard scaling benchmark: thin wrapper over the scaling scenarios.

The in-process vs sharded comparison that used to live here as a bespoke
generator is now three checked-in load-lab scenarios —
``benchmarks/scenarios/worker-scaling-{0,1,4}.json`` — identical closed
loops (4 clients, benign uploads) differing only in the server's shard
count. This wrapper runs all three through
:func:`repro.loadlab.runner.run_scenario`, records each schema-versioned
result JSON under ``benchmarks/results/``, and keeps the combined table
at ``benchmarks/results/bench_serving_workers.txt``.

Scaling headroom is physics: on an N-core host, more than min(N, workers)
shards cannot help, so the pass/fail gate for "4 workers >= 2x the
in-process baseline" only applies where the hardware can express it
(``os.cpu_count() >= 4``). The numbers are recorded honestly either way.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_serving_workers.py

or through pytest (shorter levels, same code path)::

    PYTHONPATH=src pytest benchmarks/bench_serving_workers.py --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.loadlab import load_scenario, render_table, run_scenario

SCENARIOS_DIR = Path(__file__).parent / "scenarios"
RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "bench_serving_workers.txt"

#: Server-side shard counts to sweep; 0 is the in-process baseline.
WORKER_LEVELS = (0, 1, 4)


def run_worker_sweep(duration_scale: float = 1.0) -> list[dict]:
    """The full sweep; returns one result dict per shard count and saves
    the combined table plus each run's JSON."""
    results = []
    for workers in WORKER_LEVELS:
        scenario = load_scenario(SCENARIOS_DIR / f"worker-scaling-{workers}.json")
        results.append(
            run_scenario(scenario, out_dir=RESULTS_DIR, duration_scale=duration_scale)
        )
    header = (
        f"Worker-shard scaling via loadlab scenarios, host "
        f"cpu_count={os.cpu_count()}\n(workers=0 is the in-process baseline "
        f"path; shards cannot beat the\n baseline by more than the host's "
        f"spare cores)\n\n"
    )
    tables = "\n".join(render_table(result) for result in results)
    baseline = results[0]["levels"][0]["throughput_rps"]["value"]
    best = max(r["levels"][0]["throughput_rps"]["value"] for r in results)
    footer = (
        f"\nbest/baseline speedup: {best / baseline:.2f}x "
        f"(target >= 2x requires cpu_count >= 4; this host has {os.cpu_count()})\n"
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(header + tables + footer, encoding="utf-8")
    return results


def test_worker_scaling_sweep(run_once):
    """Benchmark-suite entry: a reduced sweep through the same code path.

    Acceptance: on hosts with >= 4 cores, 4 shards must at least double
    the in-process baseline throughput. On smaller hosts the shards can
    only add IPC overhead, so the gate relaxes to a bounded-overhead
    check — the honest numbers and host context are always recorded.
    """
    results = run_once(run_worker_sweep, duration_scale=0.5)
    for result in results:
        print("\n" + render_table(result))

    assert len(results) == len(WORKER_LEVELS)
    baseline = results[0]["levels"][0]["throughput_rps"]["value"]
    sharded_best = max(
        r["levels"][0]["throughput_rps"]["value"] for r in results[1:]
    )
    if (os.cpu_count() or 1) >= 4:
        assert sharded_best >= 2.0 * baseline, RESULTS_PATH.read_text()
    else:
        # Scaling is physically impossible here; the pool must still be
        # within a constant factor of the baseline (no pathological IPC).
        assert sharded_best >= baseline / 4.0, RESULTS_PATH.read_text()


if __name__ == "__main__":
    run_worker_sweep()
    print(RESULTS_PATH.read_text())
