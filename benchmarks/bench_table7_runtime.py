"""T7 — paper Table 7: per-method run-time overhead.

Paper (i5-7500): scaling 11/137 ms (MSE/SSIM), filtering 11/174 ms,
steganalysis 3 ms. Absolute numbers are machine-dependent; the reproduced
claims are the ordering (CSP fastest, SSIM slowest) and millisecond scale.

Unlike the other benches, this one uses pytest-benchmark's statistics for
real: each detector's single-image decision is measured over many rounds.
"""

import time

import pytest

from repro.core.filtering_detector import FilteringDetector
from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.eval.runtime import table7_batch_throughput, table7_runtime
from repro.imaging.scaling import clear_operator_cache, resize
from repro.serving.pipeline import ProtectedPipeline

_GREATER = ThresholdRule(0.0, Direction.GREATER)
_LESS = ThresholdRule(0.0, Direction.LESS)


def _detector(name, data):
    shape = data.model_input_shape
    return {
        "scaling-mse": ScalingDetector(shape, metric="mse", threshold=_GREATER),
        "scaling-ssim": ScalingDetector(shape, metric="ssim", threshold=_LESS),
        "filtering-mse": FilteringDetector(metric="mse", threshold=_GREATER),
        "filtering-ssim": FilteringDetector(metric="ssim", threshold=_LESS),
        "steganalysis-csp": SteganalysisDetector(),
    }[name]


@pytest.mark.parametrize(
    "name",
    ["scaling-mse", "scaling-ssim", "filtering-mse", "filtering-ssim", "steganalysis-csp"],
)
def test_per_image_decision_latency(benchmark, data, name):
    detector = _detector(name, data)
    image = data.evaluation.benign[0]
    benchmark(detector.detect, image)


def _batch_pool(data, side=128, count=64, grayscale=False):
    """A mixed benign/attack pool of float64 images at ``side``²."""
    half = count // 2
    sources = data.evaluation.benign[:half] + data.evaluation.attacks[:half]
    pool = [resize(image, (side, side), data.algorithm) for image in sources]
    if grayscale:
        pool = [image.mean(axis=2) for image in pool]
    return pool


def test_batch_vs_serial_throughput(run_once, data, save_result):
    """Acceptance: the batch paths never regress against per-image scoring
    (full batch-vs-serial table saved for the record).

    Since the shared-analysis refactor the per-image path already reuses
    the cached operators and one context per image, so scaling/steganalysis
    batches land near 1x; the filtering detector keeps a genuinely fused
    (stacked sliding-window) batch kernel. The acceptance bound is
    no-regression with measurement headroom, not a fixed speedup.
    """
    pool = _batch_pool(data, side=32, grayscale=True)
    model_input = (16, 16)
    # Warm the process-wide operator cache so the measurement reflects the
    # steady state of a long-running service, not first-call matrix builds.
    clear_operator_cache()
    warm = ScalingDetector(model_input, algorithm=data.algorithm, metric="mse", threshold=_GREATER)
    warm.detect_batch(pool)

    result = run_once(
        table7_batch_throughput,
        pool,
        model_input_shape=model_input,
        algorithm=data.algorithm,
        repeats=5,
    )
    save_result(result)
    speedups = {(r["Method"], r["Metric"]): float(r["Speedup"]) for r in result.rows}
    assert all(speedup >= 0.7 for speedup in speedups.values()), speedups


def test_ensemble_shared_context_vs_legacy(data, save_result, capsys):
    """Shared-context ensemble decisions vs the legacy per-member path.

    ``ensemble.detect`` builds ONE :class:`ImageAnalysis` per image and
    hands it to all three members. The legacy path — reconstructed here by
    calling each member's ``score(image)``, which validates and
    float-converts privately exactly as detectors did before the shared
    layer existed — repeats that work per member. Scores are asserted
    identical; the timing difference is pure redundancy removal.
    """
    from repro.core.analysis import ImageAnalysis
    from repro.core.ensemble import build_default_ensemble
    from repro.eval.experiments import ExperimentResult

    pool = _batch_pool(data, side=64)
    ensemble = build_default_ensemble((16, 16), algorithm=data.algorithm)
    ensemble.calibrate(pool[: len(pool) // 2], percentile=1.0)
    clear_operator_cache()
    ensemble.detect(pool[0])  # warm operators + code paths for both runs

    def legacy_scores(image):
        return [member.score(image) for member in ensemble.detectors]

    def shared_scores(image):
        analysis = ImageAnalysis(image)
        return [member.score_from(analysis) for member in ensemble.detectors]

    start = time.perf_counter()
    legacy = [legacy_scores(image) for image in pool]
    legacy_s = time.perf_counter() - start

    start = time.perf_counter()
    shared = [shared_scores(image) for image in pool]
    shared_s = time.perf_counter() - start

    assert shared == legacy  # bit-identical scores, member by member
    speedup = legacy_s / shared_s
    rows = [
        {
            "Path": name,
            "Total (ms)": f"{seconds * 1000:.1f}",
            "Per image (ms)": f"{seconds * 1000 / len(pool):.3f}",
            "Speedup": f"{legacy_s / seconds:.2f}",
        }
        for name, seconds in (("Legacy per-member", legacy_s), ("Shared context", shared_s))
    ]
    result = ExperimentResult(
        experiment_id="bench/ensemble_shared_context",
        title="Ensemble decision: shared analysis context vs legacy per-member path",
        rows=rows,
        notes=(
            f"{len(pool)} color images at 64x64, 16x16 model input, warm operator "
            f"cache; identical scores asserted. Speedup x{speedup:.2f}."
        ),
    )
    save_result(result)
    with capsys.disabled():
        print(f"\nensemble shared-context speedup: x{speedup:.2f}")
    # No-regression bound with headroom for timer noise; the shared path
    # removes work (validation, float copies) and adds none.
    assert speedup >= 0.8


def test_pipeline_batch_throughput(data, capsys):
    """submit_batch vs per-image submit on the full pipeline (report only:
    the loop-fallback ensemble members dilute the scaling speedup)."""
    pool = _batch_pool(data)
    holdout = pool[: len(pool) // 2]

    def _pipeline():
        pipeline = ProtectedPipeline((32, 32), algorithm=data.algorithm)
        pipeline.calibrate(holdout, percentile=1.0)
        return pipeline

    serial = _pipeline()
    start = time.perf_counter()
    for image in pool:
        serial.submit(image)
    serial_s = time.perf_counter() - start

    batched = _pipeline()
    start = time.perf_counter()
    batched.submit_batch(pool)
    batch_s = time.perf_counter() - start

    assert serial.stats.as_dict()["accepted"] == batched.stats.as_dict()["accepted"]
    with capsys.disabled():
        print(
            f"\npipeline throughput over {len(pool)} images: "
            f"serial {len(pool) / serial_s:.1f} img/s, "
            f"batch {len(pool) / batch_s:.1f} img/s "
            f"(x{serial_s / batch_s:.2f})"
        )


def test_table7_summary(run_once, data, save_result):
    result = run_once(
        table7_runtime,
        data.evaluation.benign[: min(20, len(data.evaluation.benign))],
        model_input_shape=data.model_input_shape,
        algorithm=data.algorithm,
    )
    save_result(result)
    times = {(r["Method"], r["Metric"]): float(r["Run-time (ms)"]) for r in result.rows}
    assert times[("Steganalysis", "CSP")] < times[("Scaling", "SSIM")]
    assert times[("Scaling", "MSE")] < times[("Scaling", "SSIM")]
    assert times[("Filtering", "MSE")] < times[("Filtering", "SSIM")]
