"""T7 — paper Table 7: per-method run-time overhead.

Paper (i5-7500): scaling 11/137 ms (MSE/SSIM), filtering 11/174 ms,
steganalysis 3 ms. Absolute numbers are machine-dependent; the reproduced
claims are the ordering (CSP fastest, SSIM slowest) and millisecond scale.

Unlike the other benches, this one uses pytest-benchmark's statistics for
real: each detector's single-image decision is measured over many rounds.
"""

import time

import pytest

from repro.core.filtering_detector import FilteringDetector
from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.eval.runtime import table7_batch_throughput, table7_runtime
from repro.imaging.scaling import clear_operator_cache, resize
from repro.serving.pipeline import ProtectedPipeline

_GREATER = ThresholdRule(0.0, Direction.GREATER)
_LESS = ThresholdRule(0.0, Direction.LESS)


def _detector(name, data):
    shape = data.model_input_shape
    return {
        "scaling-mse": ScalingDetector(shape, metric="mse", threshold=_GREATER),
        "scaling-ssim": ScalingDetector(shape, metric="ssim", threshold=_LESS),
        "filtering-mse": FilteringDetector(metric="mse", threshold=_GREATER),
        "filtering-ssim": FilteringDetector(metric="ssim", threshold=_LESS),
        "steganalysis-csp": SteganalysisDetector(),
    }[name]


@pytest.mark.parametrize(
    "name",
    ["scaling-mse", "scaling-ssim", "filtering-mse", "filtering-ssim", "steganalysis-csp"],
)
def test_per_image_decision_latency(benchmark, data, name):
    detector = _detector(name, data)
    image = data.evaluation.benign[0]
    benchmark(detector.detect, image)


def _batch_pool(data, side=128, count=64, grayscale=False):
    """A mixed benign/attack pool of float64 images at ``side``²."""
    half = count // 2
    sources = data.evaluation.benign[:half] + data.evaluation.attacks[:half]
    pool = [resize(image, (side, side), data.algorithm) for image in sources]
    if grayscale:
        pool = [image.mean(axis=2) for image in pool]
    return pool


def test_batch_vs_serial_throughput(run_once, data, save_result):
    """Acceptance: >=2x scaling-MSE throughput on a 64-image batch with a
    warm operator cache, and a full batch-vs-serial table for the record.

    The pool is small grayscale thumbnails (32², LeNet-style 16² model
    input): batching pays where per-image overhead — validation, dtype
    copies, temporaries, reduction calls — rivals the matmul work, which
    is exactly the small-input regime. On large color images the
    round-trip GEMMs dominate both paths and the ratio tends to 1
    (visible in the pipeline bench below, which keeps 128² color inputs).
    """
    pool = _batch_pool(data, side=32, grayscale=True)
    model_input = (16, 16)
    # Warm the process-wide operator cache so the measurement reflects the
    # steady state of a long-running service, not first-call matrix builds.
    clear_operator_cache()
    warm = ScalingDetector(model_input, algorithm=data.algorithm, metric="mse", threshold=_GREATER)
    warm.detect_batch(pool)

    result = run_once(
        table7_batch_throughput,
        pool,
        model_input_shape=model_input,
        algorithm=data.algorithm,
        repeats=5,
    )
    save_result(result)
    speedups = {(r["Method"], r["Metric"]): float(r["Speedup"]) for r in result.rows}
    assert speedups[("Scaling", "MSE")] >= 2.0


def test_pipeline_batch_throughput(data, capsys):
    """submit_batch vs per-image submit on the full pipeline (report only:
    the loop-fallback ensemble members dilute the scaling speedup)."""
    pool = _batch_pool(data)
    holdout = pool[: len(pool) // 2]

    def _pipeline():
        pipeline = ProtectedPipeline((32, 32), algorithm=data.algorithm)
        pipeline.calibrate(holdout, percentile=1.0)
        return pipeline

    serial = _pipeline()
    start = time.perf_counter()
    for image in pool:
        serial.submit(image)
    serial_s = time.perf_counter() - start

    batched = _pipeline()
    start = time.perf_counter()
    batched.submit_batch(pool)
    batch_s = time.perf_counter() - start

    assert serial.stats.as_dict()["accepted"] == batched.stats.as_dict()["accepted"]
    with capsys.disabled():
        print(
            f"\npipeline throughput over {len(pool)} images: "
            f"serial {len(pool) / serial_s:.1f} img/s, "
            f"batch {len(pool) / batch_s:.1f} img/s "
            f"(x{serial_s / batch_s:.2f})"
        )


def test_table7_summary(run_once, data, save_result):
    result = run_once(
        table7_runtime,
        data.evaluation.benign[: min(20, len(data.evaluation.benign))],
        model_input_shape=data.model_input_shape,
        algorithm=data.algorithm,
    )
    save_result(result)
    times = {(r["Method"], r["Metric"]): float(r["Run-time (ms)"]) for r in result.rows}
    assert times[("Steganalysis", "CSP")] < times[("Scaling", "SSIM")]
    assert times[("Scaling", "MSE")] < times[("Scaling", "SSIM")]
    assert times[("Filtering", "MSE")] < times[("Filtering", "SSIM")]
