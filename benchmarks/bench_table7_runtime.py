"""T7 — paper Table 7: per-method run-time overhead.

Paper (i5-7500): scaling 11/137 ms (MSE/SSIM), filtering 11/174 ms,
steganalysis 3 ms. Absolute numbers are machine-dependent; the reproduced
claims are the ordering (CSP fastest, SSIM slowest) and millisecond scale.

Unlike the other benches, this one uses pytest-benchmark's statistics for
real: each detector's single-image decision is measured over many rounds.
"""

import pytest

from repro.core.filtering_detector import FilteringDetector
from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.eval.runtime import table7_runtime

_GREATER = ThresholdRule(0.0, Direction.GREATER)
_LESS = ThresholdRule(0.0, Direction.LESS)


def _detector(name, data):
    shape = data.model_input_shape
    return {
        "scaling-mse": ScalingDetector(shape, metric="mse", threshold=_GREATER),
        "scaling-ssim": ScalingDetector(shape, metric="ssim", threshold=_LESS),
        "filtering-mse": FilteringDetector(metric="mse", threshold=_GREATER),
        "filtering-ssim": FilteringDetector(metric="ssim", threshold=_LESS),
        "steganalysis-csp": SteganalysisDetector(),
    }[name]


@pytest.mark.parametrize(
    "name",
    ["scaling-mse", "scaling-ssim", "filtering-mse", "filtering-ssim", "steganalysis-csp"],
)
def test_per_image_decision_latency(benchmark, data, name):
    detector = _detector(name, data)
    image = data.evaluation.benign[0]
    benchmark(detector.detect, image)


def test_table7_summary(run_once, data, save_result):
    result = run_once(
        table7_runtime,
        data.evaluation.benign[: min(20, len(data.evaluation.benign))],
        model_input_shape=data.model_input_shape,
        algorithm=data.algorithm,
    )
    save_result(result)
    times = {(r["Method"], r["Metric"]): float(r["Run-time (ms)"]) for r in result.rows}
    assert times[("Steganalysis", "CSP")] < times[("Scaling", "SSIM")]
    assert times[("Scaling", "MSE")] < times[("Scaling", "SSIM")]
    assert times[("Filtering", "MSE")] < times[("Filtering", "SSIM")]
