"""Serving load benchmark: a thin wrapper over the ``serving-load`` scenario.

The closed-loop concurrency sweep that used to live here as a bespoke
generator is now the checked-in load-lab scenario
``benchmarks/scenarios/serving-load.json`` (a 1 -> 8 client ramp against
an in-process server). This wrapper runs it through
:func:`repro.loadlab.runner.run_scenario`, records the schema-versioned
result JSON under ``benchmarks/results/``, and keeps the old rendered
table at ``benchmarks/results/bench_serving_load.txt``.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_serving_load.py

or through pytest (shorter levels, same code path)::

    PYTHONPATH=src pytest benchmarks/bench_serving_load.py --benchmark-only
"""

from __future__ import annotations

from pathlib import Path

from repro.loadlab import load_scenario, render_table, run_scenario

SCENARIO_PATH = Path(__file__).parent / "scenarios" / "serving-load.json"
RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_PATH = RESULTS_DIR / "bench_serving_load.txt"


def run_load_sweep(duration_scale: float = 1.0) -> dict:
    """The full sweep; returns the result dict and saves table + JSON."""
    scenario = load_scenario(SCENARIO_PATH)
    result = run_scenario(
        scenario, out_dir=RESULTS_DIR, duration_scale=duration_scale
    )
    RESULTS_PATH.write_text(render_table(result), encoding="utf-8")
    return result


def test_serving_load_sweep(run_once):
    """Benchmark-suite entry: a reduced sweep through the same code path.

    Acceptance: scaling out clients never drops throughput below 90% of
    the single-client baseline (loopback HTTP should scale to max_active).
    """
    result = run_once(run_load_sweep, duration_scale=0.5)
    print("\n" + render_table(result))

    throughputs = [row["throughput_rps"]["value"] for row in result["levels"]]
    assert len(throughputs) == 4
    baseline = throughputs[0]
    assert max(throughputs) >= baseline * 0.9, render_table(result)


if __name__ == "__main__":
    print(render_table(run_load_sweep()))
