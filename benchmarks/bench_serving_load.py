"""Serving load benchmark: throughput and tail latency over HTTP.

Starts a :class:`DetectionServer` on an ephemeral port (loopback, real
sockets, real codec work) and drives it with a multi-threaded closed-loop
load generator — each worker holds its own keep-alive
:class:`DetectionClient` and fires requests back-to-back. For every
concurrency level the run records throughput and exact p50/p95/p99
client-observed latency, and the table is written to
``benchmarks/results/bench_serving_load.txt``.

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_serving_load.py

or through pytest (small request budget, same code path)::

    PYTHONPATH=src pytest benchmarks/bench_serving_load.py --benchmark-only
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

import numpy as np

from repro.datasets.synthetic import generate_image
from repro.imaging.image import as_uint8
from repro.serving import DetectionClient, DetectionServer, ProtectedPipeline, ServerConfig
from repro.serving.wire import encode_image_payload

RESULTS_PATH = Path(__file__).parent / "results" / "bench_serving_load.txt"

SOURCE_SHAPE = (128, 128)
MODEL_INPUT = (16, 16)
CONCURRENCY_LEVELS = (1, 2, 4, 8)


def _build_server(max_active: int) -> tuple[DetectionServer, list[bytes]]:
    rng_keys = range(8)
    benign = [
        generate_image(SOURCE_SHAPE, np.random.default_rng((7, key)), family="neurips")
        for key in rng_keys
    ]
    pipeline = ProtectedPipeline(MODEL_INPUT)
    pipeline.calibrate(benign, percentile=5.0)
    server = DetectionServer(
        pipeline,
        ServerConfig(
            port=0,
            max_active=max_active,
            queue_depth=256,
            deadline_ms=60_000.0,
        ),
    )
    server.start()
    # Pre-encoded payloads so the generator measures the service, not the
    # client's PNG encoder.
    payloads = [encode_image_payload(as_uint8(image)) for image in benign]
    return server, payloads


def _drive(
    host: str, port: int, payloads: list[bytes], concurrency: int, total_requests: int
) -> dict[str, float]:
    """Closed-loop load at one concurrency level; returns the stats row."""
    per_worker = total_requests // concurrency
    latencies_ms: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[Exception] = []

    def worker(worker_id: int) -> None:
        try:
            with DetectionClient(host, port, max_retries=2) as client:
                for index in range(per_worker):
                    payload = payloads[(worker_id + index) % len(payloads)]
                    start = time.perf_counter()
                    client.detect(payload=payload)
                    latencies_ms[worker_id].append(
                        (time.perf_counter() - start) * 1000.0
                    )
        except Exception as exc:  # noqa: BLE001 - recorded for the report
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(concurrency)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - wall_start
    if errors:
        raise errors[0]
    flat = np.sort(np.concatenate([np.asarray(chunk) for chunk in latencies_ms]))
    return {
        "concurrency": concurrency,
        "requests": len(flat),
        "wall_s": wall_s,
        "throughput_rps": len(flat) / wall_s,
        "p50_ms": float(np.percentile(flat, 50)),
        "p95_ms": float(np.percentile(flat, 95)),
        "p99_ms": float(np.percentile(flat, 99)),
        "max_ms": float(flat[-1]),
    }


def run_load_sweep(total_requests: int = 200) -> str:
    """The full sweep; returns (and saves) the rendered table."""
    server, payloads = _build_server(max_active=max(CONCURRENCY_LEVELS))
    host, port = server.address
    rows = []
    try:
        with DetectionClient(host, port) as probe:
            probe.wait_ready(timeout_s=30.0)
            probe.detect(payload=payloads[0])  # warm caches before timing
        for concurrency in CONCURRENCY_LEVELS:
            rows.append(_drive(host, port, payloads, concurrency, total_requests))
    finally:
        server.shutdown()

    header = (
        f"Serving load sweep — {SOURCE_SHAPE[0]}x{SOURCE_SHAPE[1]} PNG uploads, "
        f"model input {MODEL_INPUT[0]}x{MODEL_INPUT[1]}, loopback HTTP, "
        f"{total_requests} requests per level\n"
    )
    lines = [
        header,
        f"{'conc':>4} {'reqs':>6} {'throughput':>12} {'p50':>9} {'p95':>9} "
        f"{'p99':>9} {'max':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row['concurrency']:>4d} {row['requests']:>6d} "
            f"{row['throughput_rps']:>8.1f} req/s "
            f"{row['p50_ms']:>6.1f} ms {row['p95_ms']:>6.1f} ms "
            f"{row['p99_ms']:>6.1f} ms {row['max_ms']:>6.1f} ms"
        )
    text = "\n".join(lines) + "\n"
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(text)
    return text


def test_serving_load_sweep(run_once):
    """Benchmark-suite entry: a reduced sweep through the same code path.

    Acceptance: scaling out workers never drops throughput below 90% of
    the single-client baseline (loopback HTTP should scale to max_active).
    """
    text = run_once(run_load_sweep, total_requests=64)
    print("\n" + text)

    def throughput(line: str) -> float:
        return float(line.split("req/s")[0].split()[-1])

    data_lines = [
        line for line in text.splitlines()
        if "req/s" in line and "throughput" not in line
    ]
    assert len(data_lines) == len(CONCURRENCY_LEVELS)
    baseline = throughput(data_lines[0])
    best = max(throughput(line) for line in data_lines)
    assert best >= baseline * 0.9, text


if __name__ == "__main__":
    print(run_load_sweep())
