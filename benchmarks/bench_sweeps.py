"""SW1/SW2 — parameter-sensitivity sweeps.

SW1 quantifies the paper's Fig. 4 filter choice (minimum beats median and
maximum for separating attack images). SW2 maps the steganalysis
extractor's sensitivity to its two knobs, defending the reproduction's
defaults.
"""


def test_sweep_filter_choice(run_exp, save_result):
    result = run_exp("SW1")
    save_result(result)
    full = {(r["filter"].split()[0], r["metric"]): float(r["AUC (full attack)"]) for r in result.rows}
    weak = {(r["filter"].split()[0], r["metric"]): float(r["AUC (weakened 0.4)"]) for r in result.rows}
    # Full-strength attacks: every order-statistic filter separates
    # (near-)perfectly — the paper's minimum filter works, and so would
    # its alternatives (see the result's notes for the honest framing).
    assert all(v >= 0.95 for v in full.values())
    # Weakened attacks strictly reduce every filter's separation (sanity
    # that the weakened regime actually stresses the method).
    for key, value in weak.items():
        assert value <= full[key] + 1e-9, key
    # The paper's chosen configuration remains a strong performer.
    assert weak[("minimum", "SSIM")] >= 0.8


def test_sweep_csp_parameters(run_exp, save_result):
    result = run_exp("SW2")
    save_result(result)
    default = next(r for r in result.rows if r["default"])
    assert float(default["benign FRR"].rstrip("%")) <= 10.0
    assert float(default["attack recall"].rstrip("%")) >= 80.0
    # Monotonicity: raising prominence cannot raise FRR.
    for brightness in (150, 160, 170):
        frrs = [
            float(r["benign FRR"].rstrip("%"))
            for r in result.rows
            if r["brightness"] == brightness
        ]
        assert frrs == sorted(frrs, reverse=True)
