"""F11/F12 — paper Figs. 11–12: filtering-detector score distributions.

Reproduced claims: populations separate; MSE shows partial overlap (the
paper notes the same), which is why SSIM is the recommended filtering
metric.
"""


def test_fig11_fig12_filtering_distributions(run_exp, save_result):
    result = run_exp("F11/F12")
    save_result(result)
    rows = {row["population"]: row for row in result.rows}
    assert float(rows["mse attack (calibration)"]["mean"]) > 2 * float(
        rows["mse benign (calibration)"]["mean"]
    )
    assert float(rows["ssim attack (calibration)"]["mean"]) < float(
        rows["ssim benign (calibration)"]["mean"]
    )
