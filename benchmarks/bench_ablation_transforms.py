"""AB4 — ablation: robustness to benign post-processing.

Deployment-hardening claim: ordinary pipeline steps (brightness, contrast,
mild noise, re-quantization, flips) neither cause benign false alarms in
bulk nor hide attack images from the calibrated ensemble.
"""


def test_ablation_benign_transforms(run_exp, save_result):
    result = run_exp("AB4")
    save_result(result)
    for row in result.rows:
        flagged, total = row["attacks still flagged"].split("/")
        assert int(flagged) >= 0.8 * int(total), row["transform"]
        alarms, total_b = row["benign false alarms"].split("/")
        assert int(alarms) <= 0.3 * int(total_b), row["transform"]
