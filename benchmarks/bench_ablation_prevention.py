"""AB3 — ablation: prevention baselines vs detection (paper Section 1).

Reproduced claims: robust scaling destroys the payload but changes what
*every* benign input looks like to the model (drift); reconstruction
sanitizes inputs at a quality cost; detection leaves benign pixels alone.
"""


def test_ablation_prevention(run_exp, save_result):
    result = run_exp("AB3")
    save_result(result)
    robust = next(r for r in result.rows if "robust scaling" in r["defense"])
    detection = next(r for r in result.rows if "Decamouflage" in r["defense"])
    # Robust scaling destroys the payload (large MSE vs the hidden target).
    assert float(robust["payload destruction MSE"]) > 500.0
    # ... but has a real benign cost, unlike detection.
    assert "drift MSE" in robust["benign cost"]
    assert detection["benign cost"] == "none (no pixel modified)"
