"""T1 — paper Table 1 (CNN input sizes, background)."""

from repro.eval.experiments import table1_input_sizes




def test_table1_input_sizes(run_once, save_result):
    result = run_once(table1_input_sizes)
    save_result(result)
    assert len(result.rows) == 5
