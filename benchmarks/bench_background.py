"""T1 — paper Table 1 (CNN input sizes, background)."""


def test_table1_input_sizes(run_exp, save_result):
    result = run_exp("T1")
    save_result(result)
    assert len(result.rows) == 5
