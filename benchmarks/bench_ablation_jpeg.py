"""AB6 — ablation: JPEG re-encoding is not a substitute for detection.

Reproduced claims: at archival quality the hidden payload survives
re-encoding essentially intact; even at aggressive quality the ensemble
keeps flagging recompressed attack images, while benign inputs start
paying a real quality cost.
"""


def test_ablation_jpeg_reencoding(run_exp, save_result):
    result = run_exp("AB6")
    save_result(result)
    by_quality = {row["quality"]: row for row in result.rows}

    pristine = by_quality["q95 4:4:4"]
    survival = float(pristine["payload survival (MSE vs target, lower=intact)"])
    baseline = float(pristine["unrelated-image baseline"])
    assert survival < 0.1 * baseline  # payload intact at archival quality

    for row in result.rows:
        flagged, total = row["still flagged"].split("/")
        assert int(flagged) >= 0.8 * int(total), row["quality"]
