"""F8 — paper Fig. 8: white-box threshold search for the scaling detector.

Reproduced claim: the accuracy-vs-threshold curve has a wide flat optimum
near 100%, so the automated midpoint search lands on a reliable threshold.
"""


def test_fig8_threshold_search(run_exp, save_result):
    result = run_exp("F8")
    save_result(result)
    calibrated = [row for row in result.rows if row.get("selected") == "calibrated"]
    assert len(calibrated) == 2  # one optimum per metric (MSE + SSIM)
    for row in calibrated:
        assert float(row["accuracy"].rstrip("%")) >= 95.0
