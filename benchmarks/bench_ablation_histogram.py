"""AB1 — ablation: the color-histogram defense fails adaptively.

Xiao et al. proposed histogram comparison; the paper (and Quiring et al.)
note it is not a valid metric. Reproduced claim: a palette-matched attack
collapses the histogram metric's AUC while MSE remains ~1.0.
"""


def test_ablation_histogram(run_exp, save_result):
    result = run_exp("AB1")
    save_result(result)
    matched = next(r for r in result.rows if "palette-matched" in r["attack"])
    assert float(matched["MSE AUC"]) >= 0.95
    # Palette matching must knock the histogram metric well off perfect
    # separation while leaving MSE untouched.
    assert float(matched["histogram AUC"]) <= 0.9
    assert float(matched["histogram AUC"]) < float(matched["MSE AUC"])
