"""T8 — paper Table 8: the Decamouflage ensemble (headline result).

Paper: white-box 99.9% accuracy (FAR 0.2%, FRR 0.0%); black-box 99.8%
(FAR 0.2%, FRR 0.1%). Reproduced claims: both settings stay near-perfect
on the unseen corpus and the ensemble's recall is ~100%.
"""


def test_table8_ensemble(run_exp, save_result):
    result = run_exp("T8")
    save_result(result)
    by_setting = {row["Setting"]: row for row in result.rows}
    whitebox = by_setting["White-box ensemble"]
    blackbox = by_setting["Black-box ensemble"]
    assert float(whitebox["Acc."].rstrip("%")) >= 95.0
    assert float(whitebox["FAR"].rstrip("%")) <= 5.0
    assert float(blackbox["Acc."].rstrip("%")) >= 90.0
    assert float(blackbox["Rec."].rstrip("%")) >= 95.0
