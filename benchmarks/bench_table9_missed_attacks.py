"""T9 — paper Table 9 / Appendix B: missed attacks lose their purpose.

Paper: attack images that slip past Decamouflage are no longer classified
as the hidden target by Azure/Baidu/Tencent. Stand-in: our numpy CNN (see
DESIGN.md §3). Reproduced claim: among evading attack variants, only a
small fraction still classify as the attacker's intended class.
"""


def test_table9_missed_attacks(run_exp, save_result):
    result = run_exp("T9")
    save_result(result)
    row = result.rows[0]
    assert float(row["clean model acc"].rstrip("%")) >= 60.0
    # The crucial claim: evading the detector costs the attack its payload.
    assert float(row["target-hit rate among missed"].rstrip("%")) <= 50.0
