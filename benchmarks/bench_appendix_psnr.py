"""AF15/AF16 — paper appendix Figs. 15–16: PSNR is not a usable metric.

Paper: PSNR histograms of benign and attack populations highly overlap for
both the scaling and the filtering method. Reproduced claim: the dB gap is
far too narrow for a robust fixed threshold (while raw MSE separates by
orders of magnitude).
"""


def test_appendix_psnr(run_exp, save_result):
    result = run_exp("AF15/AF16")
    save_result(result)
    for row in result.rows:
        benign_db = float(row["benign mean dB"])
        attack_db = float(row["attack mean dB"])
        # The whole separation lives inside ~20 dB on a ~30 dB scale —
        # compare with the >10x gap of raw MSE.
        assert abs(benign_db - attack_db) < 20.0
