"""Scoring-plan speedup benchmark: precompiled hot path vs the pre-plan path.

Measures single-image scoring latency for (a) the steganalysis detector
and (b) the full default ensemble (scaling/mse + filtering/ssim +
steganalysis), comparing the plan-compiled hot path against a local
reconstruction of the pre-plan implementation:

* per-channel Python-loop round trips (one GEMM pair per channel),
* the full complex ``fft2`` log-spectrum with per-call mask/radial
  rebuilds, BFS component labeling, and per-label membership rescans,
* sliding-window materialization for the minimum filter, and
* the sliding-window-matmul SSIM.

The reconstruction lives here (not in ``src/``) so the comparison stays
honest after the legacy implementations are gone: this file *is* the
reference for what the code used to do per image. Scores are
cross-checked during the run — each pair must agree to the documented
plan tolerance (CSP counts exactly) or the timing is comparing different
work and the benchmark fails.

Timing is min-of-``REPEATS`` per image (robust to scheduler noise on
small hosts); the reported figure is the median ("p50") across images.
The speedups are algorithmic, not parallelism, but the acceptance gate
(steganalysis >= 5x, ensemble >= 2x) still only *hard-fails* on hosts
with >= 4 cores where BLAS and FFT threading are representative of
deployment; smaller hosts record the honest numbers and check a relaxed
floor. Results: ``benchmarks/results/bench_scoring_plans.txt``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_scoring_plans.py

or through pytest (same code path, fewer repeats)::

    PYTHONPATH=src pytest benchmarks/bench_scoring_plans.py --benchmark-only
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.core.analysis import ImageAnalysis
from repro.core.ensemble import build_default_ensemble
from repro.datasets.synthetic import generate_image
from repro.imaging.color import to_grayscale
from repro.imaging.image import as_float, ensure_image
from repro.imaging.metrics import mse, ssim
from repro.imaging.plans import csp_count_fast, get_scoring_plan, get_spectrum_geometry
from repro.imaging.scaling import get_scaling_operators

RESULTS_PATH = Path(__file__).parent / "results" / "bench_scoring_plans.txt"

SOURCE_SHAPE = (128, 128)
MODEL_INPUT = (16, 16)
N_IMAGES = 6
# min-of-N timing: scheduler noise is additive, so too few repeats inflate
# the sub-millisecond plan path proportionally more than the legacy path
# and *understate* the speedup; 25 repeats lets the min converge.
REPEATS = 25

#: The documented plan-mode score tolerance (CSP counts must match exactly).
REL_TOL = 1e-9


# -- the pre-plan implementation, reconstructed ------------------------------


def _legacy_resize(image: np.ndarray, out_shape, algorithm: str) -> np.ndarray:
    """Pre-plan ``resize``: one GEMM pair per channel in a Python loop."""
    ensure_image(image)
    img = as_float(image)
    left, right = get_scaling_operators(img.shape[:2], out_shape, algorithm)
    if img.ndim == 2:
        return left @ img @ right
    planes = [left @ img[:, :, c] @ right for c in range(img.shape[2])]
    return np.stack(planes, axis=2)


def _legacy_round_trip(image: np.ndarray, small_shape, algorithm: str) -> np.ndarray:
    down = _legacy_resize(image, small_shape, algorithm)
    return _legacy_resize(down, image.shape[:2], algorithm)


def _legacy_minimum_filter(image: np.ndarray, size: int) -> np.ndarray:
    """Pre-plan minimum filter: materialized sliding windows, full reduce."""
    img = as_float(image)
    pad_before = (size - 1) // 2
    pad_after = size - 1 - pad_before
    pad = [(pad_before, pad_after), (pad_before, pad_after)]
    if img.ndim == 3:
        pad.append((0, 0))
    padded = np.pad(img, pad, mode="reflect")
    windows = sliding_window_view(padded, (size, size), axis=(0, 1))
    return windows.min(axis=(-2, -1))


_NEIGHBORS_8 = (
    (-1, 0), (1, 0), (0, -1), (0, 1), (-1, -1), (-1, 1), (1, -1), (1, 1),
)


def _legacy_find_regions(mask: np.ndarray, min_area: int):
    """Pre-plan region extraction: BFS flood fill + per-label rescans."""
    h, w = mask.shape
    labels = np.zeros((h, w), dtype=np.int64)
    count = 0
    for r0, c0 in zip(*np.nonzero(mask)):
        if labels[r0, c0]:
            continue
        count += 1
        stack = [(int(r0), int(c0))]
        labels[r0, c0] = count
        while stack:
            r, c = stack.pop()
            for dr, dc in _NEIGHBORS_8:
                nr, nc = r + dr, c + dc
                if 0 <= nr < h and 0 <= nc < w and mask[nr, nc] and not labels[nr, nc]:
                    labels[nr, nc] = count
                    stack.append((nr, nc))
    rows_all, cols_all = np.nonzero(labels)
    values = labels[rows_all, cols_all]
    regions = []
    for label in range(1, count + 1):
        member = values == label
        rows, cols = rows_all[member], cols_all[member]
        if rows.size < min_area:
            continue
        regions.append(
            (
                (float(rows.mean()), float(cols.mean())),
                (int(rows.min()), int(cols.min()), int(rows.max()), int(cols.max())),
            )
        )
    return regions


def _legacy_csp_count(image: np.ndarray) -> int:
    """Pre-plan steganalysis score: complex fft2, per-call geometry, BFS."""
    gray = to_grayscale(image)
    magnitude = np.abs(np.fft.fftshift(np.fft.fft2(gray)))
    log_mag = np.log1p(magnitude)
    low, high = float(log_mag.min()), float(log_mag.max())
    if high - low <= 0:
        return 1
    spectrum = (log_mag - low) / (high - low) * 255.0

    h, w = spectrum.shape
    radius = 0.5 * (min(h, w) / 2.0)
    rows = np.arange(h) - h // 2
    cols = np.arange(w) - w // 2
    dist_sq = rows[:, None] ** 2 + cols[None, :] ** 2
    binary = (spectrum >= 160.0) & (dist_sq <= radius * radius)

    center = np.array([h // 2, w // 2], dtype=np.float64)
    inner_radius = 0.09 * min(h, w)
    regions = [
        region
        for region in _legacy_find_regions(binary, min_area=2)
        if float(np.hypot(*(np.array(region[0]) - center))) > inner_radius
    ]
    if not regions:
        return 1
    radial = np.hypot(rows[:, None], cols[None, :])
    outer = 0
    for centroid, bbox in regions:
        distance = float(np.hypot(*(np.array(centroid) - center)))
        r0, c0, r1, c1 = bbox
        peak = float(spectrum[r0 : r1 + 1, c0 : c1 + 1].max())
        annulus = spectrum[(radial > distance - 3.0) & (radial < distance + 3.0)]
        background = float(np.median(annulus)) if annulus.size else 0.0
        if peak - background >= 35.0:
            outer += 1
    return 1 + outer


def _legacy_ensemble_scores(image: np.ndarray) -> tuple[float, float, float]:
    reconstructed = _legacy_round_trip(image, MODEL_INPUT, "bilinear")
    filtered = _legacy_minimum_filter(image, 2)
    return (
        mse(image, reconstructed),
        ssim(image, filtered),
        float(_legacy_csp_count(image)),
    )


# -- the plan-compiled hot path ----------------------------------------------


def _plan_ensemble_scores(detectors, image: np.ndarray) -> tuple[float, ...]:
    analysis = ImageAnalysis(image)
    return tuple(detector.score_from(analysis) for detector in detectors)


# -- measurement -------------------------------------------------------------


def _best_of(func, *args, repeats: int) -> float:
    """Min-of-*repeats* over contiguous runs: steady-state warm-cache cost.

    Each path is timed as its own block on purpose — serving scores
    stream through one path back to back, so warm-cache repeats are the
    steady state being measured, not an artifact.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func(*args)
        best = min(best, time.perf_counter() - start)
    return best


def run_plan_speedup(
    n_images: int = N_IMAGES, repeats: int = REPEATS, save: bool = False
) -> str:
    """Time both paths per image and render the result table.

    ``save=True`` (the ``__main__`` entry) also rewrites the checked-in
    reference table; the pytest gate leaves it untouched.
    """
    images = [
        generate_image(SOURCE_SHAPE, np.random.default_rng((7, key)), family="neurips")
        for key in range(n_images)
    ]
    detectors = build_default_ensemble(MODEL_INPUT, algorithm="bilinear").detectors

    # Warm every cache both paths use: the legacy path's operator cache
    # and the plan path's compiled plan + spectrum geometry, so the
    # comparison is steady-state scoring, not first-call compilation.
    get_scaling_operators(SOURCE_SHAPE, MODEL_INPUT, "bilinear")
    get_scaling_operators(MODEL_INPUT, SOURCE_SHAPE, "bilinear")
    get_scoring_plan(SOURCE_SHAPE, MODEL_INPUT, "bilinear")
    get_spectrum_geometry(SOURCE_SHAPE)
    _plan_ensemble_scores(detectors, images[0])
    _legacy_ensemble_scores(images[0])

    rows = []
    for image in images:
        legacy_scores = _legacy_ensemble_scores(image)
        plan_scores = _plan_ensemble_scores(detectors, image)
        for got, want in zip(plan_scores, legacy_scores):
            if abs(got - want) > REL_TOL * max(abs(want), 1.0):
                raise AssertionError(
                    f"plan/legacy score divergence beyond tolerance: "
                    f"{plan_scores} vs {legacy_scores}"
                )
        rows.append(
            {
                "stegan_legacy": _best_of(_legacy_csp_count, image, repeats=repeats),
                "stegan_plan": _best_of(
                    lambda img: csp_count_fast(to_grayscale(img)), image, repeats=repeats
                ),
                "ensemble_legacy": _best_of(
                    _legacy_ensemble_scores, image, repeats=repeats
                ),
                "ensemble_plan": _best_of(
                    _plan_ensemble_scores, detectors, image, repeats=repeats
                ),
            }
        )

    def p50(key: str) -> float:
        return float(np.median([row[key] for row in rows]) * 1000.0)

    stegan_speedup = p50("stegan_legacy") / p50("stegan_plan")
    ensemble_speedup = p50("ensemble_legacy") / p50("ensemble_plan")
    lines = [
        f"Scoring-plan speedup — {SOURCE_SHAPE[0]}x{SOURCE_SHAPE[1]} color images, "
        f"model input {MODEL_INPUT[0]}x{MODEL_INPUT[1]}, bilinear,",
        f"{n_images} images, min-of-{repeats} per image, p50 across images, "
        f"host cpu_count={os.cpu_count()}",
        "(legacy = pre-plan path reconstructed above: per-channel loop round trip,",
        " full fft2 + per-call geometry + BFS labeling, windowed min filter,",
        " sliding-window SSIM; scores cross-checked to the plan tolerance)",
        "",
        f"{'path':<28} {'legacy p50':>12} {'plan p50':>12} {'speedup':>9}",
        f"{'steganalysis single-image':<28} {p50('stegan_legacy'):>9.3f} ms "
        f"{p50('stegan_plan'):>9.3f} ms {stegan_speedup:>8.1f}x",
        f"{'ensemble single-image':<28} {p50('ensemble_legacy'):>9.3f} ms "
        f"{p50('ensemble_plan'):>9.3f} ms {ensemble_speedup:>8.1f}x",
        "",
        f"gates: steganalysis >= 5x, ensemble >= 2x (hard on cpu_count >= 4 hosts)",
    ]
    text = "\n".join(lines) + "\n"
    if save:
        RESULTS_PATH.parent.mkdir(exist_ok=True)
        RESULTS_PATH.write_text(text)
    return text


def _speedups(text: str) -> tuple[float, float]:
    values = [
        float(line.rsplit(None, 1)[-1].rstrip("x"))
        for line in text.splitlines()
        if line.startswith(("steganalysis single-image", "ensemble single-image"))
    ]
    assert len(values) == 2, text
    return values[0], values[1]


def test_plan_speedup(run_once):
    """Acceptance: the compiled hot path beats the pre-plan path.

    On >= 4-core hosts (representative of deployment) the full gates
    apply: steganalysis >= 5x and ensemble >= 2x at the single-image p50.
    Smaller hosts still run the same sweep and record honest numbers, but
    check a relaxed floor — the wins are algorithmic, yet tiny hosts
    share one core between the timer and every BLAS/FFT worker, so the
    margins (not the direction) get noisy.
    """
    text = run_once(run_plan_speedup, n_images=4, repeats=15)
    print("\n" + text)
    stegan, ensemble = _speedups(text)
    if (os.cpu_count() or 1) >= 4:
        assert stegan >= 5.0, text
        assert ensemble >= 2.0, text
    else:
        assert stegan >= 2.0, text
        assert ensemble >= 1.2, text


if __name__ == "__main__":
    print(run_plan_speedup(save=True))
