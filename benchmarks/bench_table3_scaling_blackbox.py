"""T3 — paper Table 3: scaling detector, black-box percentile thresholds.

Paper: accuracy 99.5% at the 1% percentile, FAR 0.0% everywhere, FRR
tracking the percentile. Reproduced claims: FAR stays ~0 and accuracy
degrades monotonically as the percentile (and with it FRR) grows.
"""


def test_table3_scaling_blackbox(run_exp, save_result):
    result = run_exp("T3")
    save_result(result)
    for row in result.rows:
        assert float(row["FAR"].rstrip("%")) <= 5.0
    mse_rows = [r for r in result.rows if r["Metric"] == "MSE"]
    frrs = [float(r["FRR"].rstrip("%")) for r in mse_rows]
    assert frrs == sorted(frrs)  # FRR grows with the percentile
