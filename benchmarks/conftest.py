"""Shared benchmark fixtures.

Every benchmark regenerates one paper artifact (table or figure) through
the :class:`~repro.eval.mediator.ExperimentMediator` (the same machinery
behind ``repro exp run``) and

* times the end-to-end experiment via pytest-benchmark (single round —
  the expensive part, attack crafting, is shared and cached), and
* writes the rendered measured-vs-paper table to ``benchmarks/results/``
  and prints it (visible with ``pytest -s`` or in the saved files).

Scale: the paper uses 1000 calibration + 1000 evaluation images. The
default here is 40+40 (CPU-minutes on a laptop); set the environment
variable ``REPRO_BENCH_IMAGES`` to run larger, e.g.::

    REPRO_BENCH_IMAGES=1000 pytest benchmarks/ --benchmark-only

Set ``REPRO_BENCH_CACHE=/some/dir`` to reuse attack sets and calibration
artifacts across benchmark sessions via the content-addressed cache.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.data import ExperimentData
from repro.eval.experiments import ExperimentResult
from repro.eval.mediator import ExperimentMediator

RESULTS_DIR = Path(__file__).parent / "results"

#: Number of images per corpus role (paper: 1000).
BENCH_IMAGES = int(os.environ.get("REPRO_BENCH_IMAGES", "40"))

#: Optional on-disk cache directory shared across sessions.
BENCH_CACHE = os.environ.get("REPRO_BENCH_CACHE") or None


@pytest.fixture(scope="session")
def mediator() -> ExperimentMediator:
    """One mediator per session: registry access + shared experiment data."""
    return ExperimentMediator.setup(
        n_calibration=BENCH_IMAGES,
        n_evaluation=BENCH_IMAGES,
        cache_dir=BENCH_CACHE,
    )


@pytest.fixture(scope="session")
def data(mediator) -> ExperimentData:
    """Calibration + evaluation attack sets, built once per session."""
    return mediator.data()


@pytest.fixture(scope="session")
def save_result():
    """Persist an experiment's rendered output for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result: ExperimentResult) -> ExperimentResult:
        text = result.to_text()
        safe_id = result.experiment_id.replace("/", "_")
        (RESULTS_DIR / f"{safe_id}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return _save


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are seconds-scale; statistical repetition would multiply
    the suite's runtime for no insight, so every bench uses one round.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run


@pytest.fixture
def run_exp(mediator, run_once):
    """Run one registered experiment (by id/alias) through the mediator."""

    def _run(experiment_id: str) -> ExperimentResult:
        return run_once(mediator.run_one, experiment_id)

    return _run
