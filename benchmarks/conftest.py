"""Shared benchmark fixtures.

Every benchmark regenerates one paper artifact (table or figure) and

* times the end-to-end experiment via pytest-benchmark (single round —
  the expensive part, attack crafting, is shared and cached), and
* writes the rendered measured-vs-paper table to ``benchmarks/results/``
  and prints it (visible with ``pytest -s`` or in the saved files).

Scale: the paper uses 1000 calibration + 1000 evaluation images. The
default here is 40+40 (CPU-minutes on a laptop); set the environment
variable ``REPRO_BENCH_IMAGES`` to run larger, e.g.::

    REPRO_BENCH_IMAGES=1000 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.eval.data import ExperimentData, prepare_data
from repro.eval.experiments import ExperimentResult

RESULTS_DIR = Path(__file__).parent / "results"

#: Number of images per corpus role (paper: 1000).
BENCH_IMAGES = int(os.environ.get("REPRO_BENCH_IMAGES", "40"))


@pytest.fixture(scope="session")
def data() -> ExperimentData:
    """Calibration + evaluation attack sets, built once per session."""
    return prepare_data(BENCH_IMAGES, BENCH_IMAGES)


@pytest.fixture(scope="session")
def save_result():
    """Persist an experiment's rendered output for EXPERIMENTS.md."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result: ExperimentResult) -> ExperimentResult:
        text = result.to_text()
        safe_id = result.experiment_id.replace("/", "_")
        (RESULTS_DIR / f"{safe_id}.txt").write_text(text + "\n")
        print("\n" + text)
        return result

    return _save


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing.

    Experiments are seconds-scale; statistical repetition would multiply
    the suite's runtime for no insight, so every bench uses one round.
    """

    def _run(func, *args, **kwargs):
        return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
