"""F13 — paper Fig. 13: distribution of centered-spectrum-point counts.

Paper: 99.3% of benign images have exactly 1 CSP; 98.2% of attack images
have more. Reproduced claim: the two populations split at CSP = 2.
"""


def test_fig13_csp_distribution(run_exp, save_result):
    result = run_exp("F13")
    save_result(result)
    rows = {row["population"]: row for row in result.rows}
    assert float(rows["benign"]["CSP == 1"].rstrip("%")) >= 85.0
    assert float(rows["attack"]["CSP > 1"].rstrip("%")) >= 75.0
