"""T2 — paper Table 2: scaling detector, white-box setting.

Paper: MSE 99.9% accuracy (FAR 0.0%, FRR 0.1%); SSIM 99.0%.
Reproduced claim: near-perfect accuracy on the *unseen* evaluation corpus
with thresholds calibrated on the other corpus, MSE >= SSIM.
"""


def test_table2_scaling_whitebox(run_exp, save_result):
    result = run_exp("T2")
    save_result(result)
    by_metric = {row["Metric"]: row for row in result.rows}
    assert float(by_metric["MSE"]["Acc."].rstrip("%")) >= 95.0
    assert float(by_metric["SSIM"]["Acc."].rstrip("%")) >= 90.0
    assert float(by_metric["MSE"]["FAR"].rstrip("%")) <= 5.0
