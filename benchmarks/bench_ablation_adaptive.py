"""AB2 — ablation: adaptive attacks against the ensemble (Discussion §6).

Reproduced claims: (a) the baseline strong attack is caught by all three
methods; (b) adaptive variants that weaken one detector pay for it with
payload fidelity (higher MSE between the downscaled attack and the target),
so evading the ensemble and keeping a working attack don't combine.
"""


def test_ablation_adaptive(run_exp, save_result):
    result = run_exp("AB2")
    save_result(result)
    by_variant = {row["variant"]: row for row in result.rows}
    baseline = by_variant["strong (baseline)"]
    evaded, total = baseline["ensemble evasion"].split("/")
    assert int(evaded) == 0  # the plain attack never evades

    baseline_payload = float(baseline["payload MSE (lower=working attack)"])
    for name, row in by_variant.items():
        if name == "strong (baseline)":
            continue
        evaded, total = row["ensemble evasion"].split("/")
        payload = float(row["payload MSE (lower=working attack)"])
        # Any variant that starts evading must have degraded its payload.
        if int(evaded) > 0:
            assert payload > 2 * baseline_payload
