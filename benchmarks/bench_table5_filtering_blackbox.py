"""T5 — paper Table 5: filtering detector, black-box percentile thresholds.

Paper: SSIM at the 1% percentile reaches 99.2% accuracy with FAR 0.6%.
Reproduced claims: high accuracy and near-zero FAR at small percentiles.
"""


def test_table5_filtering_blackbox(run_exp, save_result):
    result = run_exp("T5")
    save_result(result)
    ssim_1 = next(
        row for row in result.rows if row["Metric"] == "SSIM" and row["Percentile"] == "1%"
    )
    assert float(ssim_1["Acc."].rstrip("%")) >= 85.0
    assert float(ssim_1["FAR"].rstrip("%")) <= 10.0
