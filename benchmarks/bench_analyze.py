"""Analyzer wall-clock benchmark: serial vs. multiprocessing, cold vs. warm.

Times ``tools/analyze`` over the full repo (``src tools benchmarks``) in
three configurations — cold serial, cold fan-out (one worker per CPU), and
warm cache — and writes the table to
``benchmarks/results/bench_analyze.txt``. The numbers back the
``--max-seconds 60`` budget the CI static-analysis job enforces: the
analyzer must never quietly become the slow part of the pipeline.

Run standalone::

    python benchmarks/bench_analyze.py

or through pytest::

    PYTHONPATH=src pytest benchmarks/bench_analyze.py --benchmark-only
"""

from __future__ import annotations

import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from analyze.engine import run_analysis  # noqa: E402

RESULTS_PATH = Path(__file__).parent / "results" / "bench_analyze.txt"

ROOTS = [REPO_ROOT / "src", REPO_ROOT / "tools", REPO_ROOT / "benchmarks"]

#: The budget the CI job enforces via ``--max-seconds``; the cold serial
#: run must clear it with a wide margin even on a slow runner.
CI_BUDGET_SECONDS = 60.0


def _timed(label: str, **kwargs) -> tuple[str, float, int, int]:
    start = time.perf_counter()
    result = run_analysis(ROOTS, **kwargs)
    elapsed = time.perf_counter() - start
    return label, elapsed, result.files_analyzed, result.cache_hits


def run_analyze_bench(cache_path: Path) -> str:
    jobs = os.cpu_count() or 1
    rows = [
        _timed("cold, serial (--jobs 1)", jobs=1, cache_path=None),
        _timed(f"cold, fan-out (--jobs {jobs})", jobs=jobs, cache_path=None),
    ]
    # Prime the cache, then measure the warm no-change run CI skips
    # (CI uses --no-cache) but every local iteration enjoys.
    _timed("cache prime", jobs=jobs, cache_path=cache_path)
    rows.append(_timed("warm cache (--jobs 1)", jobs=1, cache_path=cache_path))

    lines = [
        "Static-analysis wall-clock over src + tools + benchmarks "
        f"(all four passes, {rows[0][2]} files, {jobs} CPUs)",
        "",
        f"{'configuration':<28} {'elapsed':>9} {'files':>6} {'cached':>7}",
    ]
    for label, elapsed, files, cached in rows:
        lines.append(f"{label:<28} {elapsed:>8.2f}s {files:>6} {cached:>7}")
    lines.append("")
    lines.append(
        f"CI budget (--max-seconds): {CI_BUDGET_SECONDS:.0f}s; "
        f"cold serial uses {100 * rows[0][1] / CI_BUDGET_SECONDS:.1f}% of it"
    )
    return "\n".join(lines)


def test_analyze_wall_clock(run_once, tmp_path):
    table = run_once(run_analyze_bench, tmp_path / "cache.json")
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(table + "\n")
    print("\n" + table)

    # The budget assertion CI relies on, with margin: the cold serial run
    # must finish in a small fraction of the --max-seconds 60 budget.
    serial_line = next(
        line for line in table.splitlines() if line.startswith("cold, serial")
    )
    elapsed = float(serial_line.split()[-3].rstrip("s"))
    assert elapsed < CI_BUDGET_SECONDS / 4


if __name__ == "__main__":
    table = run_analyze_bench(Path(".analyze-bench-cache.json"))
    RESULTS_PATH.parent.mkdir(exist_ok=True)
    RESULTS_PATH.write_text(table + "\n")
    print(table)
    Path(".analyze-bench-cache.json").unlink(missing_ok=True)
