"""T4 — paper Table 4: filtering detector, white-box setting.

Paper: MSE 98.6%, SSIM 99.3% (SSIM is the recommended metric here).
Reproduced claims: high accuracy on the unseen corpus, full recall.
"""


def test_table4_filtering_whitebox(run_exp, save_result):
    result = run_exp("T4")
    save_result(result)
    by_metric = {row["Metric"]: row for row in result.rows}
    assert float(by_metric["SSIM"]["Acc."].rstrip("%")) >= 90.0
    assert float(by_metric["SSIM"]["Rec."].rstrip("%")) >= 90.0
    assert float(by_metric["MSE"]["Acc."].rstrip("%")) >= 85.0
