"""T6 — paper Table 6: steganalysis detector with fixed CSP >= 2.

Paper: 98.9% accuracy, FAR 0.3%, FRR 1.7% — with NO calibration at all.
Reproduced claims: high accuracy from the universal fixed threshold.
"""


def test_table6_steganalysis(run_exp, save_result):
    result = run_exp("T6")
    save_result(result)
    row = result.rows[0]
    assert row["Threshold"] == "2"
    assert float(row["Acc."].rstrip("%")) >= 85.0
    assert float(row["FRR"].rstrip("%")) <= 10.0
