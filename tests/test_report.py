"""Unit tests for the report module and the runtime harness."""

import numpy as np
import pytest

from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.eval.report import EXPERIMENT_RUNNERS, render_report, run_all_experiments
from repro.eval.runtime import time_detector
from repro.eval.experiments import ExperimentResult


class TestRegistry:
    def test_covers_every_paper_artifact(self):
        expected = {
            "T1", "F8", "F9/F10", "T2", "T3", "F11/F12", "T4", "T5",
            "F13", "T6", "T7", "T8", "T9", "AF15/AF16",
            "AB1", "AB2", "AB3", "AB4", "AB5", "AB6",
        }
        assert set(EXPERIMENT_RUNNERS) == expected

    def test_t1_runs_without_data(self):
        results = run_all_experiments(n_calibration=2, n_evaluation=2, only=["T1"])
        assert len(results) == 1
        assert results[0].experiment_id == "T1"


class TestRenderReport:
    def test_sections_joined(self):
        results = [
            ExperimentResult("X1", "first", [{"a": 1}]),
            ExperimentResult("X2", "second", [{"b": 2}]),
        ]
        text = render_report(results)
        assert "X1" in text and "X2" in text
        assert "=" * 72 in text


class TestTimeDetector:
    def test_returns_positive_stats(self, benign_images):
        detector = ScalingDetector(
            (16, 16), metric="mse", threshold=ThresholdRule(0.0, Direction.GREATER)
        )
        mean_ms, std_ms = time_detector(detector, benign_images[:3])
        assert mean_ms > 0.0
        assert std_ms >= 0.0

    def test_repeats_multiply_samples(self, benign_images):
        detector = ScalingDetector(
            (16, 16), metric="mse", threshold=ThresholdRule(0.0, Direction.GREATER)
        )
        # Just verifies it runs; timing values are machine-dependent.
        time_detector(detector, benign_images[:2], repeats=2)
