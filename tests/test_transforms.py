"""Unit tests for the benign image transforms."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging import transforms as tf


class TestPhotometric:
    def test_brightness_shifts_mean(self, color_image):
        out = tf.adjust_brightness(color_image, 20.0)
        assert out.mean() > color_image.mean() + 10.0

    def test_brightness_clips(self):
        out = tf.adjust_brightness(np.full((4, 4), 250.0), 20.0)
        assert out.max() == 255.0

    def test_contrast_preserves_mean(self, gray_image):
        out = tf.adjust_contrast(gray_image, 1.5)
        assert out.mean() == pytest.approx(gray_image.mean(), rel=0.05)

    def test_contrast_zero_flattens(self, gray_image):
        out = tf.adjust_contrast(gray_image, 0.0)
        assert out.std() == pytest.approx(0.0, abs=1e-9)

    def test_contrast_rejects_negative(self, gray_image):
        with pytest.raises(ImageError, match="factor"):
            tf.adjust_contrast(gray_image, -1.0)

    def test_noise_deterministic_by_seed(self, gray_image):
        a = tf.add_gaussian_noise(gray_image, 3.0, seed=1)
        b = tf.add_gaussian_noise(gray_image, 3.0, seed=1)
        c = tf.add_gaussian_noise(gray_image, 3.0, seed=2)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_noise_sigma_zero_identity(self, gray_image):
        assert np.allclose(tf.add_gaussian_noise(gray_image, 0.0), gray_image)

    def test_quantize_levels(self):
        image = np.linspace(0, 255, 100).reshape(10, 10)
        out = tf.quantize(image, levels=4)
        assert len(np.unique(out)) <= 4

    def test_quantize_256_near_identity(self, color_image):
        out = tf.quantize(color_image, 256)
        assert np.abs(out - color_image.astype(float)).max() <= 0.5

    def test_quantize_validates(self, gray_image):
        with pytest.raises(ImageError, match="levels"):
            tf.quantize(gray_image, 1)


class TestGeometric:
    def test_flip_horizontal_involution(self, color_image):
        out = tf.flip_horizontal(tf.flip_horizontal(color_image))
        assert np.array_equal(out, color_image.astype(float))

    def test_flip_vertical_moves_top_row(self, gray_image):
        out = tf.flip_vertical(gray_image)
        assert np.array_equal(out[0], gray_image[-1])

    def test_rotate90_four_times_identity(self, color_image):
        out = tf.rotate90(tf.rotate90(color_image, 2), 2)
        assert np.array_equal(out, color_image.astype(float))

    def test_rotate90_shape_swap(self):
        image = np.zeros((4, 6))
        assert tf.rotate90(image).shape == (6, 4)

    def test_center_crop(self):
        image = np.arange(36, dtype=np.float64).reshape(6, 6)
        out = tf.center_crop(image, (2, 2))
        assert np.array_equal(out, image[2:4, 2:4])

    def test_center_crop_validates(self, gray_image):
        with pytest.raises(ImageError, match="crop"):
            tf.center_crop(gray_image, (1000, 2))


class TestHistogramMatch:
    def test_matches_distribution(self, rng):
        from repro.imaging.histogram import histogram_distance, histogram_match

        source = rng.uniform(0, 100, (32, 32))
        reference = rng.uniform(150, 255, (32, 32))
        matched = histogram_match(source, reference)
        before = histogram_distance(source, reference, bins=32)
        after = histogram_distance(matched, reference, bins=32)
        assert after < 0.2 * before

    def test_preserves_rank_order(self, rng):
        from repro.imaging.histogram import histogram_match

        source = rng.uniform(0, 255, (16, 16))
        matched = histogram_match(source, rng.uniform(0, 255, (16, 16)))
        flat_src = source.ravel()
        flat_out = matched.ravel()
        order = np.argsort(flat_src)
        assert np.all(np.diff(flat_out[order]) >= -1e-9)

    def test_color_channels_independent(self, rng):
        from repro.imaging.histogram import histogram_match

        source = rng.uniform(0, 255, (12, 12, 3))
        reference = rng.uniform(0, 255, (12, 12, 3))
        matched = histogram_match(source, reference)
        single = histogram_match(source[:, :, 0], reference[:, :, 0])
        assert np.allclose(matched[:, :, 0], single)

    def test_channel_structure_validated(self, rng):
        from repro.errors import ImageError
        from repro.imaging.histogram import histogram_match

        with pytest.raises(ImageError, match="channel"):
            histogram_match(rng.uniform(0, 255, (8, 8)), rng.uniform(0, 255, (8, 8, 3)))
