"""Unit tests for the closed-form nearest-neighbor attack."""

import numpy as np
import pytest

from repro.attacks.fast_nn import nearest_neighbor_attack, sampled_source_indices
from repro.errors import AttackError
from repro.imaging.scaling import resize


class TestSampledIndices:
    def test_matches_resizer(self, rng):
        """Injecting at the sampled indices must change exactly the output."""
        indices = sampled_source_indices(64, 8)
        signal = np.zeros(64)
        signal[indices] = np.arange(1.0, 9.0)
        out = resize(signal[None, :].repeat(2, axis=0), (2, 8), "nearest")
        assert np.allclose(out[0], np.arange(1.0, 9.0))

    def test_count_and_range(self):
        indices = sampled_source_indices(100, 10)
        assert len(indices) == 10
        assert indices.min() >= 0
        assert indices.max() < 100

    def test_identity_mapping(self):
        assert np.array_equal(sampled_source_indices(5, 5), np.arange(5))


class TestNearestNeighborAttack:
    def test_exact_injection(self, rng):
        original = rng.uniform(0, 255, (64, 64, 3))
        target = rng.uniform(0, 255, (8, 8, 3))
        result = nearest_neighbor_attack(original, target)
        downscaled = resize(result.attack_image, (8, 8), "nearest")
        assert np.allclose(downscaled, target)

    def test_minimal_footprint(self, rng):
        original = rng.uniform(0, 255, (64, 64))
        target = rng.uniform(0, 255, (8, 8))
        result = nearest_neighbor_attack(original, target)
        changed = np.sum(np.abs(result.attack_image - original) > 1e-12)
        assert changed <= 64  # at most one source pixel per target pixel

    def test_rejects_oversized_target(self, rng):
        with pytest.raises(AttackError, match="exceed"):
            nearest_neighbor_attack(np.zeros((8, 8)), np.zeros((16, 16)))

    def test_original_not_mutated(self, rng):
        original = rng.uniform(0, 255, (32, 32))
        copy = original.copy()
        nearest_neighbor_attack(original, rng.uniform(0, 255, (4, 4)))
        assert np.array_equal(original, copy)
