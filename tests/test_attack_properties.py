"""Property-based tests for the attack substrate (fast paths only).

The strong attack is too slow for hundreds of hypothesis examples, so the
properties here target its building blocks — the closed-form NN attack and
the QP warm start — which must hold for *any* input.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.attacks.fast_nn import nearest_neighbor_attack, sampled_source_indices
from repro.attacks.qp import equality_warm_start
from repro.imaging.coefficients import scaling_matrix
from repro.imaging.scaling import resize


class TestNearestNeighborProperties:
    @given(
        st.integers(2, 8).flatmap(
            lambda ratio: st.integers(2, 6).map(lambda out: (out * ratio, out))
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_exact_payload_any_size(self, sizes, seed):
        n_in, n_out = sizes
        rng = np.random.default_rng(seed)
        original = rng.uniform(0, 255, (n_in, n_in))
        target = rng.uniform(0, 255, (n_out, n_out))
        result = nearest_neighbor_attack(original, target)
        assert np.allclose(
            resize(result.attack_image, (n_out, n_out), "nearest"), target
        )

    @given(st.integers(2, 10), st.integers(11, 60))
    @settings(max_examples=40, deadline=None)
    def test_sampled_indices_strictly_increasing(self, n_out, n_in):
        indices = sampled_source_indices(n_in, n_out)
        assert np.all(np.diff(indices) >= 1)

    @given(st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_untouched_pixels_identical(self, seed):
        rng = np.random.default_rng(seed)
        original = rng.uniform(0, 255, (24, 24))
        target = rng.uniform(0, 255, (4, 4))
        result = nearest_neighbor_attack(original, target)
        rows = sampled_source_indices(24, 4)
        mask = np.ones((24, 24), dtype=bool)
        mask[np.ix_(rows, rows)] = False
        assert np.array_equal(result.attack_image[mask], original[mask])


class TestWarmStartProperties:
    @given(st.integers(0, 500), st.sampled_from(["bilinear", "bicubic"]))
    @settings(max_examples=30, deadline=None)
    def test_always_feasible_for_equality(self, seed, algorithm):
        rng = np.random.default_rng(seed)
        coefficients = np.asarray(scaling_matrix(24, 4, algorithm))
        x0 = rng.uniform(0, 255, (24, 3))
        targets = rng.uniform(0, 255, (4, 3))
        x = equality_warm_start(coefficients, x0, targets)
        assert np.allclose(coefficients @ x, targets, atol=1e-6)

    @given(st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_correction_lives_in_row_space(self, seed):
        """The minimal-norm correction is orthogonal to the nullspace."""
        rng = np.random.default_rng(seed)
        coefficients = np.asarray(scaling_matrix(16, 4, "bilinear"))
        x0 = rng.uniform(0, 255, (16, 1))
        targets = rng.uniform(0, 255, (4, 1))
        correction = equality_warm_start(coefficients, x0, targets) - x0
        # Project correction onto the nullspace of C: must vanish.
        gram = coefficients @ coefficients.T
        projected = correction - coefficients.T @ np.linalg.solve(
            gram, coefficients @ correction
        )
        assert np.allclose(projected, 0.0, atol=1e-8)
