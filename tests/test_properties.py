"""Property-based tests (hypothesis) for core invariants.

These cover the data structures and math the detectors depend on:
similarity metrics, scaling linearity, threshold calibration, confusion
counting, and the contour labeler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.evaluation import evaluate_decisions
from repro.core.result import Direction, ThresholdRule
from repro.core.thresholds import calibrate_blackbox, calibrate_whitebox, threshold_accuracy
from repro.imaging.contours import label_components
from repro.imaging.coefficients import scaling_matrix
from repro.imaging.metrics import mse, psnr, ssim
from repro.imaging.scaling import resize


def images(min_side=4, max_side=24):
    side = st.integers(min_side, max_side)
    return st.tuples(side, side).flatmap(
        lambda hw: hnp.arrays(
            np.float64,
            hw,
            elements=st.floats(0.0, 255.0, allow_nan=False, width=32),
        )
    )


class TestMetricProperties:
    @given(images())
    @settings(max_examples=30, deadline=None)
    def test_mse_identity(self, image):
        assert mse(image, image) == 0.0

    @given(images(), images())
    @settings(max_examples=30, deadline=None)
    def test_mse_symmetric_nonnegative(self, a, b):
        if a.shape != b.shape:
            b = np.resize(b, a.shape)
        assert mse(a, b) >= 0.0
        assert mse(a, b) == pytest.approx(mse(b, a))

    @given(images(min_side=8), st.floats(1.0, 50.0))
    @settings(max_examples=25, deadline=None)
    def test_mse_shift_equals_square(self, image, shift):
        shifted = np.clip(image + shift, None, None)  # no clipping applied
        assert mse(image, image + shift) == pytest.approx(shift**2, rel=1e-9)

    @given(images(min_side=12))
    @settings(max_examples=20, deadline=None)
    def test_ssim_identity_and_bounds(self, image):
        assert ssim(image, image) == pytest.approx(1.0)

    @given(images(min_side=8), st.floats(0.5, 30.0))
    @settings(max_examples=20, deadline=None)
    def test_psnr_decreases_with_error(self, image, scale):
        rng = np.random.default_rng(0)
        noise = rng.standard_normal(image.shape)
        small = image + scale * noise
        large = image + 3.0 * scale * noise
        assert psnr(image, small) >= psnr(image, large)


class TestScalingProperties:
    @given(
        st.integers(4, 40),
        st.integers(2, 12),
        st.sampled_from(["nearest", "bilinear", "bicubic", "area"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_rows_always_sum_to_one(self, n_in, n_out, algorithm):
        matrix = scaling_matrix(n_in, n_out, algorithm)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    @given(images(min_side=8), st.integers(2, 6))
    @settings(max_examples=20, deadline=None)
    def test_resize_is_linear(self, image, out_side):
        """resize(a*x + b*y) == a*resize(x) + b*resize(y)."""
        rng = np.random.default_rng(1)
        other = rng.uniform(0, 255, image.shape)
        lhs = resize(0.3 * image + 0.7 * other, (out_side, out_side), "bilinear")
        rhs = 0.3 * resize(image, (out_side, out_side), "bilinear") + 0.7 * resize(
            other, (out_side, out_side), "bilinear"
        )
        assert np.allclose(lhs, rhs, atol=1e-8)

    @given(st.floats(0.0, 255.0), st.integers(4, 20), st.integers(2, 8))
    @settings(max_examples=30, deadline=None)
    def test_constant_preserved(self, value, n_in, n_out):
        image = np.full((n_in, n_in), value)
        out = resize(image, (n_out, n_out), "bilinear")
        assert np.allclose(out, value, atol=1e-9)


class TestThresholdProperties:
    score_lists = st.lists(
        st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False),
        min_size=2,
        max_size=40,
    )

    @given(score_lists, score_lists)
    @settings(max_examples=50, deadline=None)
    def test_whitebox_beats_majority_guess(self, benign, attack):
        if len(set(benign) | set(attack)) < 2:
            return
        rule = calibrate_whitebox(benign, attack)
        accuracy = threshold_accuracy(rule, benign, attack)
        majority = max(len(benign), len(attack)) / (len(benign) + len(attack))
        assert accuracy >= majority - 1e-12

    @given(
        st.lists(st.floats(0, 1e4, allow_nan=False), min_size=20, max_size=200),
        st.floats(0.5, 10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_blackbox_frr_bounded_by_percentile(self, benign, percentile):
        rule = calibrate_blackbox(benign, direction=Direction.GREATER, percentile=percentile)
        frr = np.mean([rule.is_attack(s) for s in benign])
        # The attack-side comparison is inclusive (paper Algorithm 1), so
        # scores exactly AT the threshold are flagged too: ties add to FRR.
        ties = np.mean([s == rule.value for s in benign])
        assert frr <= percentile / 100.0 + ties + 1.0 / len(benign) + 1e-9

    @given(st.floats(-100, 100), st.sampled_from(list(Direction)), st.floats(-100, 100))
    @settings(max_examples=50, deadline=None)
    def test_rule_is_binary_partition(self, value, direction, score):
        rule = ThresholdRule(value, direction)
        flipped = ThresholdRule(value, Direction.LESS if direction is Direction.GREATER else Direction.GREATER)
        # Any score is attack under exactly one direction, except ties.
        if score != value:
            assert rule.is_attack(score) != flipped.is_attack(score)


class TestEvaluationProperties:
    @given(st.lists(st.booleans(), max_size=50), st.lists(st.booleans(), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_confusion_identities(self, benign_flags, attack_flags):
        counts = evaluate_decisions(benign_flags, attack_flags)
        assert counts.total == len(benign_flags) + len(attack_flags)
        if attack_flags:
            assert counts.far + counts.recall == pytest.approx(1.0)
        if benign_flags or attack_flags:
            assert 0.0 <= counts.accuracy <= 1.0


class TestContourProperties:
    @given(hnp.arrays(np.bool_, st.tuples(st.integers(1, 20), st.integers(1, 20))))
    @settings(max_examples=50, deadline=None)
    def test_labels_partition_foreground(self, mask):
        labels, count = label_components(mask)
        assert (labels > 0).sum() == mask.sum()
        if mask.sum():
            assert count >= 1
            assert set(np.unique(labels[mask])) == set(range(1, count + 1))
        else:
            assert count == 0

    @given(hnp.arrays(np.bool_, st.tuples(st.integers(2, 15), st.integers(2, 15))))
    @settings(max_examples=30, deadline=None)
    def test_8_connectivity_never_more_components_than_4(self, mask):
        _, count8 = label_components(mask, connectivity=8)
        _, count4 = label_components(mask, connectivity=4)
        assert count8 <= count4
