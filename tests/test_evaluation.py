"""Unit tests for the confusion-matrix evaluation metrics."""

import pytest

from repro.core.evaluation import ConfusionCounts, evaluate_decisions


class TestConfusionCounts:
    def test_perfect_classifier(self):
        counts = evaluate_decisions(benign_flags=[False] * 10, attack_flags=[True] * 10)
        assert counts.accuracy == 1.0
        assert counts.precision == 1.0
        assert counts.recall == 1.0
        assert counts.far == 0.0
        assert counts.frr == 0.0

    def test_far_counts_missed_attacks(self):
        counts = evaluate_decisions(benign_flags=[False] * 10, attack_flags=[True] * 8 + [False] * 2)
        assert counts.far == pytest.approx(0.2)
        assert counts.recall == pytest.approx(0.8)

    def test_frr_counts_false_alarms(self):
        counts = evaluate_decisions(benign_flags=[True] * 3 + [False] * 7, attack_flags=[True] * 10)
        assert counts.frr == pytest.approx(0.3)
        assert counts.precision == pytest.approx(10 / 13)

    def test_far_plus_recall_is_one(self):
        counts = evaluate_decisions([False] * 5, [True, True, False, True, False])
        assert counts.far + counts.recall == pytest.approx(1.0)

    def test_record_api_matches_bulk(self):
        bulk = evaluate_decisions([True, False], [True, False])
        manual = ConfusionCounts()
        manual.record(is_attack_truth=False, flagged_attack=True)
        manual.record(is_attack_truth=False, flagged_attack=False)
        manual.record(is_attack_truth=True, flagged_attack=True)
        manual.record(is_attack_truth=True, flagged_attack=False)
        assert bulk.as_row() == manual.as_row()

    def test_empty_counts_are_zero_not_nan(self):
        counts = ConfusionCounts()
        row = counts.as_row()
        assert all(v == 0.0 for v in row.values())

    def test_str_contains_all_five(self):
        counts = evaluate_decisions([False], [True])
        text = str(counts)
        for token in ("Acc", "Prec", "Rec", "FAR", "FRR"):
            assert token in text

    def test_total(self):
        counts = evaluate_decisions([False] * 4, [True] * 6)
        assert counts.total == 10
