"""Unit tests for the procedural texture generators."""

import numpy as np
import pytest

from repro.datasets import textures
from repro.errors import ImageError


@pytest.fixture
def texture_rng():
    return np.random.default_rng(777)


ALL_GENERATORS = [
    textures.fractal_noise,
    textures.linear_gradient,
    textures.radial_gradient,
    textures.gaussian_blobs,
    textures.stripes,
    textures.checkerboard,
    textures.polygon_mask,
]


class TestCommonContract:
    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_shape_and_range(self, generator, texture_rng):
        field = generator((24, 36), texture_rng)
        assert field.shape == (24, 36)
        assert field.min() >= -1e-9
        assert field.max() <= 1.0 + 1e-9

    @pytest.mark.parametrize("generator", ALL_GENERATORS)
    def test_deterministic_given_rng(self, generator):
        a = generator((16, 16), np.random.default_rng(5))
        b = generator((16, 16), np.random.default_rng(5))
        assert np.array_equal(a, b)

    def test_rejects_bad_shape(self, texture_rng):
        with pytest.raises(ImageError, match="positive"):
            textures.fractal_noise((0, 8), texture_rng)


class TestSpecificProperties:
    def test_fractal_noise_spectral_decay(self, texture_rng):
        """Higher beta concentrates energy at low frequencies."""
        def high_freq_energy(beta):
            field = textures.fractal_noise((64, 64), np.random.default_rng(3), beta=beta)
            spectrum = np.abs(np.fft.fftshift(np.fft.fft2(field - field.mean())))
            center = spectrum[24:40, 24:40].sum()
            return 1.0 - center / spectrum.sum()

        assert high_freq_energy(3.0) < high_freq_energy(1.0)

    def test_checkerboard_binary(self, texture_rng):
        field = textures.checkerboard((32, 32), texture_rng)
        assert set(np.unique(field)) <= {0.0, 1.0}

    def test_polygon_mask_is_filled_region(self, texture_rng):
        mask = textures.polygon_mask((48, 48), texture_rng)
        assert set(np.unique(mask)) <= {0.0, 1.0}
        assert 0.01 < mask.mean() < 0.9

    def test_stripes_period_bounds(self, texture_rng):
        field = textures.stripes((64, 64), texture_rng, min_period=16.0, max_period=16.0)
        # A 16px period must produce a spectral peak at radius 4 of 64.
        spectrum = np.abs(np.fft.fftshift(np.fft.fft2(field - field.mean())))
        peak = np.unravel_index(spectrum.argmax(), spectrum.shape)
        distance = np.hypot(peak[0] - 32, peak[1] - 32)
        assert distance == pytest.approx(4.0, abs=0.6)

    def test_vignette_darkest_at_corners(self):
        field = textures.vignette((33, 33), strength=0.4)
        assert field[16, 16] == pytest.approx(1.0, abs=0.01)
        assert field[0, 0] < field[16, 16]
        assert field.min() >= 0.6 - 1e-9
