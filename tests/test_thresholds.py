"""Unit tests for threshold calibration."""

import numpy as np
import pytest

from repro.core.result import Direction, ThresholdRule
from repro.core.thresholds import (
    auc,
    calibrate_blackbox,
    calibrate_whitebox,
    infer_direction,
    roc_curve,
    threshold_accuracy,
)
from repro.errors import CalibrationError


class TestThresholdRule:
    def test_greater_direction_inclusive(self):
        rule = ThresholdRule(10.0, Direction.GREATER)
        assert rule.is_attack(10.0)
        assert rule.is_attack(11.0)
        assert not rule.is_attack(9.9)

    def test_less_direction_inclusive(self):
        rule = ThresholdRule(0.5, Direction.LESS)
        assert rule.is_attack(0.5)
        assert rule.is_attack(0.1)
        assert not rule.is_attack(0.6)

    def test_describe(self):
        assert ThresholdRule(3.0, Direction.GREATER).describe("mse") == "mse >= 3"


class TestInferDirection:
    def test_mse_like(self):
        assert infer_direction([1, 2, 3], [100, 200]) is Direction.GREATER

    def test_ssim_like(self):
        assert infer_direction([0.9, 0.95], [0.2, 0.3]) is Direction.LESS


class TestWhiteboxCalibration:
    def test_perfect_separation(self):
        rule = calibrate_whitebox([1.0, 2.0, 3.0], [10.0, 11.0, 12.0])
        assert rule.direction is Direction.GREATER
        assert 3.0 < rule.value < 10.0
        assert threshold_accuracy(rule, [1, 2, 3], [10, 11, 12]) == 1.0

    def test_ssim_style_separation(self):
        rule = calibrate_whitebox([0.9, 0.92, 0.95], [0.3, 0.35, 0.4])
        assert rule.direction is Direction.LESS
        assert 0.4 < rule.value < 0.9

    def test_overlapping_populations_maximize_accuracy(self):
        benign = [1, 2, 3, 4, 10]  # one benign outlier
        attack = [8, 9, 11, 12, 13]
        rule = calibrate_whitebox(benign, attack)
        accuracy = threshold_accuracy(rule, benign, attack)
        # Best achievable: 9/10 (sacrifice the outlier).
        assert accuracy == pytest.approx(0.9)

    def test_optimality_against_exhaustive_scan(self, rng):
        benign = rng.normal(10, 3, 60)
        attack = rng.normal(25, 6, 60)
        rule = calibrate_whitebox(benign, attack)
        best = max(
            threshold_accuracy(ThresholdRule(float(v), Direction.GREATER), benign, attack)
            for v in np.linspace(0, 50, 5000)
        )
        assert threshold_accuracy(rule, benign, attack) >= best - 1e-12

    def test_rejects_empty(self):
        with pytest.raises(CalibrationError, match="empty"):
            calibrate_whitebox([], [1.0])

    def test_rejects_identical_scores(self):
        with pytest.raises(CalibrationError, match="identical"):
            calibrate_whitebox([5.0, 5.0], [5.0])

    def test_rejects_nan(self):
        with pytest.raises(CalibrationError, match="non-finite"):
            calibrate_whitebox([1.0, float("nan")], [2.0])


class TestBlackboxCalibration:
    def test_greater_uses_upper_percentile(self, rng):
        benign = rng.normal(100, 10, 1000)
        rule = calibrate_blackbox(benign, direction=Direction.GREATER, percentile=1.0)
        frr = np.mean([rule.is_attack(s) for s in benign])
        assert frr == pytest.approx(0.01, abs=0.005)

    def test_less_uses_lower_percentile(self, rng):
        benign = rng.normal(0.9, 0.02, 1000)
        rule = calibrate_blackbox(benign, direction=Direction.LESS, percentile=2.0)
        frr = np.mean([rule.is_attack(s) for s in benign])
        assert frr == pytest.approx(0.02, abs=0.01)

    def test_percentile_monotonicity(self, rng):
        benign = rng.normal(50, 5, 500)
        r1 = calibrate_blackbox(benign, direction=Direction.GREATER, percentile=1.0)
        r3 = calibrate_blackbox(benign, direction=Direction.GREATER, percentile=3.0)
        assert r3.value < r1.value  # more benign mass sacrificed

    def test_rejects_silly_percentile(self):
        with pytest.raises(CalibrationError, match="percentile"):
            calibrate_blackbox([1.0, 2.0], direction=Direction.GREATER, percentile=60.0)


class TestSigmaCalibration:
    def test_three_sigma_position(self, rng):
        from repro.core.thresholds import calibrate_blackbox_sigma

        benign = rng.normal(100.0, 10.0, 2000)
        rule = calibrate_blackbox_sigma(benign, direction=Direction.GREATER, n_sigma=3.0)
        assert rule.value == pytest.approx(100.0 + 30.0, rel=0.05)

    def test_less_direction_subtracts(self, rng):
        from repro.core.thresholds import calibrate_blackbox_sigma

        benign = rng.normal(0.9, 0.02, 500)
        rule = calibrate_blackbox_sigma(benign, direction=Direction.LESS, n_sigma=2.0)
        assert rule.value < 0.9

    def test_low_frr_on_gaussian_scores(self, rng):
        from repro.core.thresholds import calibrate_blackbox_sigma

        benign = rng.normal(50.0, 5.0, 3000)
        rule = calibrate_blackbox_sigma(benign, direction=Direction.GREATER)
        frr = np.mean([rule.is_attack(s) for s in benign])
        assert frr < 0.01  # 3-sigma tail of a Gaussian ≈ 0.13%

    def test_separates_detector_scores(self, benign_images, attack_images):
        from repro.core.scaling_detector import ScalingDetector
        from repro.core.thresholds import calibrate_blackbox_sigma

        detector = ScalingDetector((16, 16), metric="mse")
        benign_scores = detector.scores(benign_images)
        rule = calibrate_blackbox_sigma(
            benign_scores, direction=Direction.GREATER, n_sigma=3.0
        )
        attack_scores = detector.scores(attack_images)
        assert all(rule.is_attack(s) for s in attack_scores)
        assert not any(rule.is_attack(s) for s in benign_scores)

    def test_validates_n_sigma(self):
        from repro.core.thresholds import calibrate_blackbox_sigma

        with pytest.raises(CalibrationError, match="n_sigma"):
            calibrate_blackbox_sigma([1.0, 2.0], direction=Direction.GREATER, n_sigma=0.0)


class TestRoc:
    def test_perfect_separation_auc_one(self):
        assert auc([1, 2, 3], [10, 11, 12]) == pytest.approx(1.0)

    def test_identical_populations_auc_half(self, rng):
        scores = rng.normal(0, 1, 300)
        value = auc(scores, scores)
        assert value == pytest.approx(0.5, abs=0.05)

    def test_curve_monotone(self, rng):
        benign = rng.normal(0, 1, 100)
        attack = rng.normal(1.5, 1, 100)
        fpr, tpr = roc_curve(benign, attack)
        assert np.all(np.diff(fpr) >= -1e-12)
        assert np.all(np.diff(tpr) >= -1e-12)
        assert fpr[0] == 0.0 and fpr[-1] == 1.0
