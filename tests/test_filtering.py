"""Unit tests for repro.imaging.filtering (cross-checked against scipy)."""

import numpy as np
import pytest
from scipy import ndimage

from repro.errors import ImageError
from repro.imaging.filtering import (
    FILTERS,
    gaussian_filter,
    maximum_filter,
    median_filter,
    minimum_filter,
    uniform_filter,
)


class TestOrderFilters:
    def test_minimum_removes_bright_speck(self):
        image = np.zeros((6, 6))
        image[3, 3] = 200.0
        assert minimum_filter(image, 2).max() == 0.0

    def test_maximum_spreads_bright_speck(self):
        image = np.zeros((6, 6))
        image[3, 3] = 200.0
        out = maximum_filter(image, 2)
        assert (out == 200.0).sum() == 4

    def test_median_kills_salt_and_pepper(self, rng):
        image = np.full((20, 20), 100.0)
        image[5, 5] = 255.0
        image[10, 10] = 0.0
        out = median_filter(image, 3)
        assert np.all(out == 100.0)

    def test_constant_invariance(self):
        image = np.full((8, 8, 3), 37.0)
        for name, filt in FILTERS.items():
            assert np.allclose(filt(image, 3), 37.0), name

    def test_size_one_is_identity(self, color_image):
        out = minimum_filter(color_image, 1)
        assert np.array_equal(out, color_image.astype(np.float64))

    def test_per_channel_independence(self, rng):
        image = rng.uniform(0, 255, (10, 10, 3))
        out = minimum_filter(image, 2)
        for c in range(3):
            alone = minimum_filter(image[:, :, c], 2)
            assert np.allclose(out[:, :, c], alone)

    def test_rejects_bad_size(self):
        with pytest.raises(ImageError, match=">= 1"):
            minimum_filter(np.zeros((4, 4)), 0)

    @pytest.mark.parametrize("size", [2, 3, 5])
    def test_min_matches_scipy(self, rng, size):
        image = rng.uniform(0, 255, (16, 17))
        ours = minimum_filter(image, size)
        # scipy origin convention for even sizes: shift to align windows.
        origin = 0 if size % 2 else -1
        theirs = ndimage.minimum_filter(image, size=size, mode="reflect", origin=origin)
        # Interior must match exactly; borders may differ by pad convention.
        m = size
        assert np.allclose(ours[m:-m, m:-m], theirs[m:-m, m:-m])

    @pytest.mark.parametrize("size", [3, 5])
    def test_median_matches_scipy_interior(self, rng, size):
        image = rng.uniform(0, 255, (18, 15))
        ours = median_filter(image, size)
        theirs = ndimage.median_filter(image, size=size, mode="reflect")
        m = size
        assert np.allclose(ours[m:-m, m:-m], theirs[m:-m, m:-m])


class TestSmoothingFilters:
    def test_uniform_is_window_mean(self):
        image = np.arange(16, dtype=np.float64).reshape(4, 4)
        out = uniform_filter(image, 3)
        assert out[1, 1] == pytest.approx(image[0:3, 0:3].mean())

    def test_gaussian_preserves_mean_roughly(self, gray_image):
        out = gaussian_filter(gray_image, sigma=2.0)
        assert out.shape == gray_image.shape
        assert abs(out.mean() - gray_image.mean()) < 1.0

    def test_gaussian_sigma_zero_identity(self, gray_image):
        assert np.allclose(gaussian_filter(gray_image, 0.0), gray_image)

    def test_gaussian_reduces_variance(self, rng):
        noise = rng.normal(128, 30, (32, 32))
        out = gaussian_filter(noise, sigma=1.5)
        assert out.std() < noise.std() * 0.6

    def test_gaussian_matches_scipy_interior(self, rng):
        image = rng.uniform(0, 255, (24, 24))
        ours = gaussian_filter(image, sigma=1.2)
        theirs = ndimage.gaussian_filter(image, sigma=1.2, mode="reflect", truncate=4.0)
        assert np.allclose(ours[6:-6, 6:-6], theirs[6:-6, 6:-6], atol=1e-6)

    def test_gaussian_color(self, color_image):
        out = gaussian_filter(color_image, sigma=1.0)
        assert out.shape == color_image.shape
