"""Per-rule tests of the static-analysis passes against fixture snippets.

Every rule has at least one triggering and one non-triggering fixture
under ``tests/analyze_fixtures/``. Fixtures are analyzed as *source*, not
imported; the validation/api fixtures get explicit module names because
those passes key off the dotted module path.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from analyze.engine import analyze_source  # noqa: E402
from analyze.passes import get_passes, known_rules  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "analyze_fixtures"


def run_fixture(name: str, module: str | None = None, rules: list[str] | None = None):
    path = FIXTURES / name
    return analyze_source(path.read_text(), str(path), module=module, rules=rules)


def codes_of(report) -> set[str]:
    return {finding.code for finding in report.findings}


# -- registry ----------------------------------------------------------------


def test_registry_lists_every_rule():
    assert known_rules() == [
        "lock-discipline",
        "validation-boundary",
        "exception-policy",
        "api-surface",
        "lock-order",
        "resource-lifecycle",
        "taint-wire",
    ]


def test_rule_subset_selection():
    passes = get_passes(["api-surface"])
    assert [p.name for p in passes] == ["api-surface"]


def test_unknown_rule_rejected():
    try:
        get_passes(["no-such-rule"])
    except ValueError as exc:
        assert "no-such-rule" in str(exc)
    else:
        raise AssertionError("expected ValueError")


# -- lock-discipline ---------------------------------------------------------


def test_lock_bad_triggers_all_three_codes():
    report = run_fixture("lock_bad.py", rules=["lock-discipline"])
    assert codes_of(report) == {"unguarded-write", "bare-acquire", "io-under-lock"}


def test_lock_bad_flags_the_reset_write():
    report = run_fixture("lock_bad.py", rules=["lock-discipline"])
    writes = [f for f in report.findings if f.code == "unguarded-write"]
    assert any("_total" in f.message and f.symbol == "LeakyCounter.reset" for f in writes)


def test_lock_bad_flags_the_stored_callback():
    report = run_fixture("lock_bad.py", rules=["lock-discipline"])
    assert any(
        "callback" in f.message and f.symbol == "LeakyCounter.notify"
        for f in report.findings
    )


def test_lock_good_is_clean():
    report = run_fixture("lock_good.py", rules=["lock-discipline"])
    assert report.findings == []


def test_locked_suffix_convention_exempts_helper():
    source = (FIXTURES / "lock_good.py").read_text()
    assert "_bump_locked" in source  # the fixture exercises the convention
    report = analyze_source(source, "lock_good.py", rules=["lock-discipline"])
    assert report.findings == []


def test_class_without_lock_is_ignored():
    source = """
class Plain:
    def __init__(self):
        self._value = 0

    def set(self, v):
        self._value = v
"""
    report = analyze_source(source, "plain.py", rules=["lock-discipline"])
    assert report.findings == []


# -- validation-boundary -----------------------------------------------------


def test_validation_bad_triggers():
    report = run_fixture(
        "validation_bad.py",
        module="repro.imaging.validation_bad",
        rules=["validation-boundary"],
    )
    assert codes_of(report) == {"unvalidated-image"}
    flagged = {f.symbol for f in report.findings}
    assert flagged == {"crop_center", "difference"}


def test_validation_good_is_clean_including_helper_transitivity():
    report = run_fixture(
        "validation_good.py",
        module="repro.imaging.validation_good",
        rules=["validation-boundary"],
    )
    assert report.findings == []


def test_validation_pass_ignores_non_target_modules():
    report = run_fixture(
        "validation_bad.py",
        module="repro.serving.not_covered",
        rules=["validation-boundary"],
    )
    assert report.findings == []


def test_validation_order_matters_use_before_validate_is_flagged():
    source = """
from __future__ import annotations
import numpy as np
from repro.imaging.image import ensure_image

def late(image: np.ndarray) -> np.ndarray:
    corner = image[0, 0]
    ensure_image(image)
    return corner
"""
    report = analyze_source(
        source, "late.py", module="repro.core.late", rules=["validation-boundary"]
    )
    assert codes_of(report) == {"unvalidated-image"}
    assert "before it is validated" in report.findings[0].message


# -- exception-policy --------------------------------------------------------


def test_exception_bad_triggers_both_codes():
    report = run_fixture("exception_bad.py", rules=["exception-policy"])
    assert codes_of(report) == {"bare-except", "swallowed-exception"}


def test_exception_good_is_clean():
    report = run_fixture("exception_good.py", rules=["exception-policy"])
    assert report.findings == []


def test_reading_the_exception_counts_as_handling():
    source = """
def f(items):
    out = []
    try:
        out.append(items[0])
    except Exception as exc:
        out.append(exc)
    return out
"""
    report = analyze_source(source, "x.py", rules=["exception-policy"])
    assert report.findings == []


# -- api-surface -------------------------------------------------------------


def test_api_bad_triggers_all_four_codes():
    report = run_fixture(
        "api_bad.py", module="repro.imaging.api_bad", rules=["api-surface"]
    )
    assert codes_of(report) == {
        "unused-import",
        "missing-from-all",
        "deprecated-name",
        "cross-layer-import",
    }


def test_api_good_is_clean_thresholds_owner_exempt():
    report = run_fixture(
        "api_good.py", module="repro.serving.api_good", rules=["api-surface"]
    )
    assert report.findings == []


def test_cross_layer_equal_rank_is_banned():
    source = "from repro.eval.report import render\n\n__all__ = []\n"
    report = analyze_source(
        source, "s.py", module="repro.serving.s", rules=["api-surface"]
    )
    assert "cross-layer-import" in codes_of(report)


def test_package_root_may_import_anything():
    source = "from repro.serving.server import DetectionServer as S\n\n__all__ = [\"S\"]\n"
    report = analyze_source(source, "repro.py", module="repro", rules=["api-surface"])
    assert report.findings == []


def test_deprecated_import_from_wrong_module_is_flagged():
    source = "from repro.core.detector import calibrate_whitebox\n"
    report = analyze_source(
        source, "d.py", module="repro.eval.d", rules=["api-surface"]
    )
    assert "deprecated-name" in codes_of(report)


def test_syntax_error_becomes_parse_finding():
    report = analyze_source("def broken(:\n", "broken.py")
    assert [f.code for f in report.findings] == ["syntax-error"]
    assert report.findings[0].rule == "parse"
