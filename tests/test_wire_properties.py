"""Property-based wire-format tests (seeded stdlib randomness, no
hypothesis dependency).

Two families of property:

* **Round-trip**: for randomly drawn images (arbitrary shapes, gray/RGB,
  uint8 and float sources) and batch sizes 0–32, pack→unpack and
  encode→decode are exact inverses — including the job/result framing the
  dispatcher and worker shards speak over their pipes.
* **Corruption**: flipping any single byte of an encoded PNG payload, or
  of a framed batch body, raises a clean :class:`CodecError` — never a
  silent mis-parse, never a raw ``struct.error``/``zlib.error`` leaking
  through. This is what lets the dispatcher treat "frame decoded" as
  "frame intact".
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.errors import CodecError
from repro.serving.wire import (
    JOB_KINDS,
    RESULT_KINDS,
    decode_image_payload,
    encode_image_payload,
    pack_batch,
    pack_job,
    pack_result,
    unpack_batch,
    unpack_job,
    unpack_result,
)

SEED = 0xDECA


def _random_image(rng: np.random.Generator) -> np.ndarray:
    height = int(rng.integers(1, 33))
    width = int(rng.integers(1, 33))
    if rng.random() < 0.5:
        shape = (height, width)
    else:
        shape = (height, width, 3)
    image = rng.integers(0, 256, size=shape, dtype=np.uint8)
    if rng.random() < 0.3:
        # Float sources in [0, 255] must survive the uint8 wire exactly
        # when they hold integral values.
        return image.astype(np.float64)
    return image


def _flip(data: bytes, position: int) -> bytes:
    mutated = bytearray(data)
    mutated[position] ^= 0x01 + (position % 0xFF)
    return bytes(mutated)


class TestRoundTrips:
    def test_image_payload_round_trip_over_random_shapes(self):
        rng = np.random.default_rng(SEED)
        for _ in range(40):
            image = _random_image(rng)
            decoded = decode_image_payload(encode_image_payload(image))
            assert decoded.dtype == np.uint8
            assert np.array_equal(decoded, image.astype(np.uint8))

    def test_batch_round_trip_over_random_sizes(self):
        rng = random.Random(SEED)
        for _ in range(60):
            count = rng.randint(0, 32)
            payloads = [
                rng.randbytes(rng.randint(0, 512)) for _ in range(count)
            ]
            assert unpack_batch(pack_batch(payloads)) == payloads

    def test_job_frame_round_trip(self):
        rng = random.Random(SEED + 1)
        for _ in range(60):
            kind = rng.choice(JOB_KINDS)
            job_id = f"job-{rng.randint(0, 10**8):08d}"
            request_id = "req-" + "".join(
                chr(rng.randint(0x20, 0x2FA0)) for _ in range(rng.randint(0, 12))
            )
            payloads = [rng.randbytes(rng.randint(0, 256)) for _ in range(rng.randint(0, 8))]
            frame = pack_job(kind, job_id, request_id, payloads)
            assert unpack_job(frame) == (kind, job_id, request_id, payloads)

    def test_result_frame_round_trip(self):
        rng = random.Random(SEED + 2)
        for _ in range(60):
            kind = rng.choice(RESULT_KINDS)
            job_id = f"job-{rng.randint(0, 10**8):08d}"
            body = rng.randbytes(rng.randint(0, 2048))
            assert unpack_result(pack_result(kind, job_id, body)) == (
                kind,
                job_id,
                body,
            )

    def test_unknown_kinds_refused_at_pack_time(self):
        with pytest.raises(CodecError, match="unknown job kind"):
            pack_job("detonate", "j", "r", [])
        with pytest.raises(CodecError, match="unknown result kind"):
            pack_result("maybe", "j", b"")


class TestSingleByteCorruption:
    def test_every_byte_of_a_png_payload_is_load_bearing(self):
        """Exhaustive: flip each byte of a small PNG and decode. Signature
        flips fail the magic sniff; everything else is covered by chunk
        CRCs. No position may decode silently or raise anything but
        CodecError."""
        rng = np.random.default_rng(SEED)
        payload = encode_image_payload(
            rng.integers(0, 256, size=(8, 9, 3), dtype=np.uint8)
        )
        for position in range(len(payload)):
            with pytest.raises(CodecError):
                decode_image_payload(_flip(payload, position))

    def test_every_byte_of_a_batch_frame_is_load_bearing(self):
        """Flip each byte of a framed batch of PNGs: either the framing
        itself rejects the body, or the framing survives and the mutated
        payload fails its decode — a clean CodecError either way."""
        rng = np.random.default_rng(SEED + 1)
        payloads = [
            encode_image_payload(rng.integers(0, 256, size=(6, 6), dtype=np.uint8))
            for _ in range(3)
        ]
        frame = pack_batch(payloads)
        for position in range(len(frame)):
            mutated = _flip(frame, position)
            with pytest.raises(CodecError):
                for blob in unpack_batch(mutated):
                    decode_image_payload(blob)

    def test_truncations_and_padding_rejected(self):
        rng = np.random.default_rng(SEED + 2)
        payloads = [
            encode_image_payload(rng.integers(0, 256, size=(5, 7), dtype=np.uint8))
        ]
        frame = pack_batch(payloads)
        for cut in (1, 2, 7, len(frame) // 2, len(frame) - 1):
            with pytest.raises(CodecError, match="truncated"):
                unpack_batch(frame[:cut])
        with pytest.raises(CodecError, match="trailing"):
            unpack_batch(frame + b"\x00")

    def test_job_kind_corruption_rejected(self):
        frame = pack_job("single", "job-1", "req-1", [b"payload"])
        # The kind field starts right after the count + its length prefix.
        mutated = _flip(frame, 8)
        with pytest.raises(CodecError, match="unknown job kind"):
            unpack_job(mutated)

    def test_result_with_non_utf8_identifiers_rejected(self):
        frame = pack_batch([b"ok", b"\xff\xfe-not-utf8", b"{}"])
        with pytest.raises(CodecError, match="not valid UTF-8"):
            unpack_result(frame)
        short = pack_batch([b"ok", b"job"])
        with pytest.raises(CodecError, match="fields, need 3"):
            unpack_result(short)
