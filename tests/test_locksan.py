"""Tests for the runtime lock-order sanitizer (``repro.testing.locksan``).

The sanitizer is the dynamic half of the deadlock check: the static half
(the ``lock-order`` project pass) is covered by
``test_analyze_project.py``, and the two meet in ``reconcile_locksan``.
Every test here installs with a permissive site filter so locks built in
this file are tracked, and uninstalls in ``finally`` — a leaked patch
would silently instrument the rest of the suite.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.testing import locksan


@pytest.fixture
def san():
    """Installed sanitizer that wraps every construction site; always
    uninstalled, even when the test body throws."""
    if locksan.installed():  # REPRO_LOCKSAN session: don't fight the wiring
        pytest.skip("locksan already installed session-wide")
    locksan.install(site_filter=lambda filename: True)
    try:
        yield locksan
    finally:
        locksan.uninstall()


# -- install / uninstall mechanics -------------------------------------------


def test_off_by_default_and_uninstall_restores(san):
    assert threading.Lock is not locksan._REAL_LOCK
    locksan.uninstall()
    assert threading.Lock is locksan._REAL_LOCK
    assert threading.RLock is locksan._REAL_RLOCK
    assert threading.Condition is locksan._REAL_CONDITION
    locksan.install(site_filter=lambda filename: True)  # fixture re-uninstalls


def test_install_is_idempotent(san):
    factory = threading.Lock
    locksan.install(site_filter=lambda filename: True)
    assert threading.Lock is factory


def test_site_filter_rejects_foreign_locks():
    if locksan.installed():
        pytest.skip("locksan already installed session-wide")
    locksan.install()  # default filter: only src/repro
    try:
        lock = threading.Lock()  # this test file is not under src/repro
        assert not isinstance(lock, locksan._SanLock)
        assert locksan.snapshot()["locks"] == []
    finally:
        locksan.uninstall()


def test_threading_internals_stay_real(san):
    # Condition() builds an internal RLock from inside threading.py; only
    # the Condition itself may be registered.
    cond = threading.Condition()
    kinds = [lock["kind"] for lock in san.snapshot()["locks"]]
    assert kinds == ["Condition"]
    with cond:
        cond.notify_all()


# -- edge recording ----------------------------------------------------------


def test_nested_acquire_records_one_direction(san):
    outer = threading.Lock()
    inner = threading.Lock()
    with outer:
        with inner:
            pass
        with inner:
            pass
    snap = san.snapshot()
    assert [(e["from"], e["to"], e["count"]) for e in snap["edges"]] == [(0, 1, 2)]
    assert snap["cycles"] == []


def test_opposite_orders_form_a_cycle(san):
    first = threading.Lock()
    second = threading.Lock()
    with first:
        with second:
            pass
    with second:
        with first:
            pass
    snap = san.snapshot()
    assert snap["cycles"] == [[0, 1]]


def test_rlock_reentry_is_not_a_self_edge(san):
    lock = threading.RLock()
    with lock:
        with lock:
            pass
    snap = san.snapshot()
    assert snap["edges"] == [] and snap["cycles"] == []
    assert snap["locks"][0]["acquisitions"] == 2


def test_condition_wait_releases_the_hold(san):
    cond = threading.Condition()
    side = threading.Lock()
    seen = []

    def waiter():
        with cond:
            cond.wait(timeout=5.0)
            with side:  # edge cond -> side from the waiter, post-wake
                seen.append("woke")

    thread = threading.Thread(target=waiter)
    thread.start()
    time.sleep(0.05)
    # While the waiter is blocked in wait() it does NOT hold cond, so the
    # main thread taking side then cond must not create side -> cond.
    with side:
        pass
    with cond:
        cond.notify_all()
    thread.join(timeout=5.0)
    assert seen == ["woke"]
    edges = {(e["from"], e["to"]) for e in san.snapshot()["edges"]}
    assert (0, 1) in edges  # cond -> side (waiter, after wake)
    assert (1, 0) not in edges
    assert san.snapshot()["cycles"] == []


def test_reset_clears_the_registry(san):
    with threading.Lock():
        pass
    assert san.snapshot()["locks"]
    san.reset()
    assert san.snapshot() == {
        "schema_version": 1, "locks": [], "edges": [], "cycles": [],
    }


# -- dump schema -------------------------------------------------------------


def test_dump_schema_and_round_trip(san, tmp_path):
    import json

    lock = threading.Lock()
    with lock:
        pass
    report = san.dump(tmp_path / "locksan.json")
    on_disk = json.loads((tmp_path / "locksan.json").read_text())
    assert on_disk == report
    assert on_disk["schema_version"] == locksan.SCHEMA_VERSION
    (entry,) = on_disk["locks"]
    assert set(entry) == {"id", "kind", "file", "line", "acquisitions"}
    assert entry["file"].endswith("test_locksan.py")
    assert entry["acquisitions"] == 1


def test_snapshot_requires_install():
    if locksan.installed():
        pytest.skip("locksan already installed session-wide")
    with pytest.raises(RuntimeError):
        locksan.snapshot()


# -- against the real serving code -------------------------------------------


def test_admission_queue_edge_is_observed():
    """The static model's AdmissionQueue._cond -> Gauge._lock edge shows
    up at runtime, attributed to the real construction sites."""
    if locksan.installed():
        pytest.skip("locksan already installed session-wide")
    locksan.install()  # default filter: the real src/repro code qualifies
    try:
        from repro.observability import Metrics
        from repro.serving.server import AdmissionQueue

        queue = AdmissionQueue(2, 4, Metrics())
        queue.acquire(deadline_s=1.0)
        queue.release()
        snap = locksan.snapshot()
    finally:
        locksan.uninstall()

    sites = {lock["id"]: (lock["file"], lock["kind"]) for lock in snap["locks"]}
    cond_ids = {
        lock_id for lock_id, (file, kind) in sites.items()
        if kind == "Condition" and file.endswith("serving/server.py")
    }
    gauge_ids = {
        lock_id for lock_id, (file, kind) in sites.items()
        if file.endswith("observability.py")
    }
    assert cond_ids, "AdmissionQueue._cond was not registered"
    observed = {(e["from"], e["to"]) for e in snap["edges"]}
    assert any(
        (cond, gauge) in observed for cond in cond_ids for gauge in gauge_ids
    ), f"expected cond->gauge edge in {observed}"
    assert snap["cycles"] == []
