"""Unit tests for the serving layer (protected pipeline + audit log)."""

import json

import numpy as np
import pytest

from repro.errors import DetectionError, ReproError
from repro.imaging.plans import exact_mode
from repro.serving import AuditLog, AuditRecord, Policy, ProtectedPipeline

from tests.conftest import MODEL_INPUT


@pytest.fixture
def pipeline(benign_images):
    pipeline = ProtectedPipeline(MODEL_INPUT, policy=Policy.REJECT)
    pipeline.calibrate(benign_images, percentile=5.0)
    return pipeline


class TestCalibration:
    def test_uncalibrated_submit_raises(self, benign_images):
        pipeline = ProtectedPipeline(MODEL_INPUT)
        with pytest.raises(DetectionError, match="calibrate"):
            pipeline.submit(benign_images[0])

    def test_whitebox_calibration_path(self, benign_images, attack_images):
        pipeline = ProtectedPipeline(MODEL_INPUT)
        pipeline.calibrate(benign_images, attack_images)
        assert pipeline.is_calibrated


class TestPolicies:
    def test_benign_accepted_with_model_input(self, pipeline, benign_images):
        outcome = pipeline.submit(benign_images[0])
        assert outcome.accepted
        assert outcome.action == "accepted"
        assert outcome.model_input.shape[:2] == MODEL_INPUT

    def test_benign_pixels_untouched(self, pipeline, benign_images):
        """Detection must not modify accepted inputs (paper's core point)."""
        from repro.imaging.scaling import resize

        outcome = pipeline.submit(benign_images[1])
        plain = resize(benign_images[1], MODEL_INPUT, "bilinear")
        assert np.array_equal(outcome.model_input, plain)

    def test_attack_rejected(self, pipeline, attack_images):
        outcome = pipeline.submit(attack_images[0])
        assert not outcome.accepted
        assert outcome.action == "rejected"
        assert outcome.model_input is None

    def test_quarantine_policy_stores_image(self, benign_images, attack_images, tmp_path):
        log = AuditLog(tmp_path / "log.jsonl", quarantine_dir=tmp_path / "q")
        pipeline = ProtectedPipeline(MODEL_INPUT, policy=Policy.QUARANTINE, audit_log=log)
        pipeline.calibrate(benign_images, percentile=5.0)
        outcome = pipeline.submit(attack_images[0], image_id="poison-1")
        assert outcome.action == "quarantined"
        stored = {p.name for p in (tmp_path / "q").glob("*.png")}
        assert "poison-1.png" in stored
        # Screening's memoized intermediates ride along as explanation
        # artifacts — one per member intermediate, no recomputation.
        assert any(name.startswith("poison-1.round_trip_") for name in stored)
        assert "poison-1.filtered_minimum_2.png" in stored
        # Plan-mode steganalysis counts spectrum points from the half
        # spectrum and never renders the full log-spectrum image, so that
        # artifact only exists when scoring in exact mode.
        assert "poison-1.log_spectrum.png" not in stored
        with exact_mode():
            pipeline.submit(attack_images[0], image_id="poison-2")
        stored = {p.name for p in (tmp_path / "q").glob("*.png")}
        assert "poison-2.log_spectrum.png" in stored

    def test_sanitize_policy_neutralizes(self, benign_images, attack_images, target_images):
        from repro.imaging.metrics import mse

        pipeline = ProtectedPipeline(MODEL_INPUT, policy=Policy.SANITIZE)
        pipeline.calibrate(benign_images, percentile=5.0)
        outcome = pipeline.submit(attack_images[0])
        assert outcome.accepted
        assert outcome.action == "sanitized"
        # The model input must NOT be the hidden target anymore.
        target = np.asarray(target_images[0], dtype=float)
        assert mse(outcome.model_input, target) > 500.0


class TestStatsAndIds:
    def test_stats_counters(self, pipeline, benign_images, attack_images):
        pipeline.submit_batch(list(benign_images[:3]) + [attack_images[0]])
        stats = pipeline.stats.as_dict()
        assert stats["submitted"] == 4
        assert stats["accepted"] >= 2
        assert stats["rejected"] >= 1

    def test_generated_ids_sequential(self, pipeline, benign_images):
        outcomes = pipeline.submit_batch(list(benign_images[:2]), prefix="up")
        assert outcomes[0].image_id == "up-00000"
        assert outcomes[1].image_id == "up-00001"

    def test_parallel_batch_matches_sequential(self, benign_images, attack_images):
        from repro.serving import ProtectedPipeline

        images = list(benign_images[:4]) + list(attack_images[:2])

        def fresh():
            pipeline = ProtectedPipeline(MODEL_INPUT)
            pipeline.calibrate(benign_images, percentile=5.0)
            return pipeline

        sequential = fresh().submit_batch(images, max_workers=1)
        parallel_pipeline = fresh()
        parallel = parallel_pipeline.submit_batch(images, max_workers=4)
        assert [o.action for o in sequential] == [o.action for o in parallel]
        assert [o.image_id for o in sequential] == [o.image_id for o in parallel]
        assert parallel_pipeline.stats.submitted == len(images)

    def test_parallel_audit_log_complete(self, benign_images, tmp_path):
        from repro.serving import AuditLog, ProtectedPipeline

        log = AuditLog(tmp_path / "p.jsonl")
        pipeline = ProtectedPipeline(MODEL_INPUT, audit_log=log)
        pipeline.calibrate(benign_images, percentile=5.0)
        pipeline.submit_batch(list(benign_images), max_workers=3)
        assert len(log.records()) == len(benign_images)


class TestBatchParity:
    def _fresh(self, benign_images):
        pipeline = ProtectedPipeline(MODEL_INPUT)
        pipeline.calibrate(benign_images, percentile=5.0)
        return pipeline

    def test_batch_verdicts_match_serial_submit(self, benign_images, attack_images):
        images = list(benign_images) + list(attack_images)
        serial = self._fresh(benign_images)
        one_by_one = [serial.submit(image) for image in images]
        batched = self._fresh(benign_images)
        batch = batched.submit_batch(images)
        assert [o.action for o in batch] == [o.action for o in one_by_one]
        for b, s in zip(batch, one_by_one):
            assert [d.score for d in b.detection.detections] == [
                d.score for d in s.detection.detections
            ]

    def test_parallel_batch_stats_match_serial(self, benign_images, attack_images):
        images = list(benign_images[:4]) + list(attack_images[:3])
        serial = self._fresh(benign_images)
        serial.submit_batch(images, max_workers=1)
        parallel = self._fresh(benign_images)
        parallel.submit_batch(images, max_workers=4)
        serial_stats = serial.stats.as_dict()
        parallel_stats = parallel.stats.as_dict()
        for key in ("submitted", "accepted", "rejected", "quarantined", "sanitized"):
            assert parallel_stats[key] == serial_stats[key]

    def test_empty_batch(self, pipeline):
        assert pipeline.submit_batch([]) == []
        assert pipeline.stats.submitted == 0

    def test_uncalibrated_batch_raises(self, benign_images):
        with pytest.raises(DetectionError, match="calibrate"):
            ProtectedPipeline(MODEL_INPUT).submit_batch(benign_images)


class TestObservability:
    def test_stats_dict_reports_latency_and_cache(self, pipeline, benign_images):
        pipeline.submit(benign_images[0])
        stats = pipeline.stats.as_dict()
        assert "pipeline.screen" in stats["latency_ms"]
        assert stats["latency_ms"]["pipeline.screen"]["count"] == 1
        assert stats["latency_ms"]["pipeline.screen"]["p95_ms"] > 0.0
        assert "detector.scaling.mse" in stats["latency_ms"]
        assert {"hits", "misses", "hit_rate"} <= set(stats["operator_cache"])

    def test_batch_records_per_image_latency(self, pipeline, benign_images):
        pipeline.submit_batch(list(benign_images[:3]))
        latency = pipeline.stats.as_dict()["latency_ms"]
        assert latency["detector.scaling.mse"]["count"] == 3
        assert latency["pipeline.screen"]["count"] == 1

    def test_injected_metrics_registry(self, benign_images):
        from repro.observability import Metrics

        metrics = Metrics()
        pipeline = ProtectedPipeline(MODEL_INPUT, metrics=metrics)
        pipeline.calibrate(benign_images, percentile=5.0)
        pipeline.submit(benign_images[0])
        assert metrics.histogram("pipeline.screen").count == 1
        # The registry propagated down to the ensemble members.
        assert all(d.metrics is metrics for d in pipeline.ensemble.detectors)

    def test_audit_stage_timed(self, benign_images, tmp_path):
        log = AuditLog(tmp_path / "log.jsonl")
        pipeline = ProtectedPipeline(MODEL_INPUT, audit_log=log)
        pipeline.calibrate(benign_images, percentile=5.0)
        pipeline.submit(benign_images[0])
        assert pipeline.metrics.histogram("pipeline.audit").count == 1


class TestAuditLog:
    def test_records_roundtrip(self, benign_images, attack_images, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        pipeline = ProtectedPipeline(MODEL_INPUT, policy=Policy.REJECT, audit_log=log)
        pipeline.calibrate(benign_images, percentile=5.0)
        pipeline.submit(benign_images[0], image_id="ok-1")
        pipeline.submit(attack_images[0], image_id="bad-1")
        records = log.records()
        assert len(records) == 2
        by_id = {r.image_id: r for r in records}
        assert by_id["ok-1"].verdict == "benign"
        assert by_id["bad-1"].verdict == "attack"
        assert by_id["bad-1"].action == "rejected"
        assert "scaling/mse" in by_id["bad-1"].scores

    def test_log_is_valid_jsonl(self, benign_images, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        pipeline = ProtectedPipeline(MODEL_INPUT, audit_log=log)
        pipeline.calibrate(benign_images, percentile=5.0)
        pipeline.submit(benign_images[0])
        for line in (tmp_path / "audit.jsonl").read_text().splitlines():
            json.loads(line)

    def test_corrupt_log_raises(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        path.write_text('{"not a record": tru\n')
        with pytest.raises(ReproError, match="corrupt"):
            AuditLog(path).records()

    def test_quarantine_without_dir_raises(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        with pytest.raises(ReproError, match="quarantine"):
            log.quarantine("x", np.zeros((4, 4, 3)))

    def test_empty_log_reads_empty(self, tmp_path):
        assert AuditLog(tmp_path / "missing.jsonl").records() == []

    def test_unsafe_ids_sanitized_in_quarantine(self, benign_images, tmp_path):
        from pathlib import Path

        log = AuditLog(tmp_path / "a.jsonl", quarantine_dir=tmp_path / "q")
        stored = Path(log.quarantine("../../evil name", np.zeros((4, 4, 3))))
        assert stored.parent == tmp_path / "q"  # stayed inside quarantine
        assert ".." not in stored.stem
        assert stored.exists()


def _record(index: int) -> AuditRecord:
    return AuditRecord(
        image_id=f"img-{index:05d}",
        sequence=index,
        verdict="benign",
        action="accepted",
        votes_for_attack=0,
        votes_total=3,
        scores={"scaling/mse": 1.0},
        thresholds={"scaling/mse": "mse >= 2"},
    )


class TestAuditRotation:
    def test_invalid_configuration_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="max_bytes"):
            AuditLog(tmp_path / "a.jsonl", max_bytes=0)
        with pytest.raises(ReproError, match="backup_count"):
            AuditLog(tmp_path / "a.jsonl", max_bytes=100, backup_count=0)

    def test_rotation_bounds_active_file(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl", max_bytes=600, backup_count=3)
        for index in range(40):
            log.append(_record(index))
        assert log.log_path.stat().st_size <= 600
        rotated = log.rotated_paths()
        assert 1 <= len(rotated) <= 3
        for path in rotated:
            assert path.stat().st_size <= 600

    def test_oldest_files_dropped_beyond_backup_count(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl", max_bytes=300, backup_count=2)
        for index in range(200):
            log.append(_record(index))
        files = {p.name for p in tmp_path.iterdir()}
        assert files == {"audit.jsonl", "audit.jsonl.1", "audit.jsonl.2"}
        # Total disk stays bounded even after 200 records.
        total = sum(p.stat().st_size for p in tmp_path.iterdir())
        assert total <= 3 * 300 + 300  # +1 record of slack

    def test_records_include_rotated_in_order(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl", max_bytes=600, backup_count=50)
        for index in range(30):
            log.append(_record(index))
        everything = log.records(include_rotated=True)
        assert [r.sequence for r in everything] == list(range(30))
        # Default stays the active file only.
        assert len(log.records()) < 30

    def test_concurrent_hammer_loses_nothing_and_corrupts_nothing(self, tmp_path):
        """Many threads appending through rotation: every line everywhere
        parses, and with enough backups no record is lost."""
        import threading

        log = AuditLog(tmp_path / "audit.jsonl", max_bytes=500, backup_count=200)
        n_threads, per_thread = 8, 50

        def hammer(thread_id: int):
            for index in range(per_thread):
                log.append(_record(thread_id * 1000 + index))

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        everything = log.records(include_rotated=True)
        assert len(everything) == n_threads * per_thread
        assert {r.image_id for r in everything} == {
            f"img-{t * 1000 + i:05d}" for t in range(n_threads) for i in range(per_thread)
        }

    def test_flush_is_reentrant_barrier(self, tmp_path):
        log = AuditLog(tmp_path / "audit.jsonl")
        log.append(_record(0))
        log.flush()  # no-op barrier; must not deadlock or raise
        assert len(log.records()) == 1
