"""Unit tests for the corpus containers."""

import numpy as np
import pytest

from repro.datasets.corpus import Corpus, caltech_like_corpus, neurips_like_corpus, split_corpus
from repro.errors import ImageError


class TestCorpus:
    def test_len_and_iteration(self):
        corpus = neurips_like_corpus(4, image_shape=(16, 16))
        assert len(corpus) == 4
        assert len(list(corpus)) == 4

    def test_lazy_caching(self):
        corpus = neurips_like_corpus(3, image_shape=(16, 16))
        first = corpus[1]
        assert corpus[1] is first  # cached object

    def test_access_order_independent(self):
        forward = neurips_like_corpus(3, image_shape=(16, 16))
        backward = neurips_like_corpus(3, image_shape=(16, 16))
        a = [forward[i] for i in (0, 1, 2)]
        b = [backward[i] for i in (2, 1, 0)][::-1]
        for x, y in zip(a, b):
            assert np.array_equal(x, y)

    def test_negative_indexing(self):
        corpus = neurips_like_corpus(3, image_shape=(16, 16))
        assert np.array_equal(corpus[-1], corpus[2])

    def test_out_of_range(self):
        corpus = neurips_like_corpus(2, image_shape=(16, 16))
        with pytest.raises(IndexError):
            corpus[2]

    def test_slicing_unsupported(self):
        corpus = neurips_like_corpus(2, image_shape=(16, 16))
        with pytest.raises(TypeError, match="slicing"):
            corpus[0:1]

    def test_identifier_stable(self):
        corpus = neurips_like_corpus(2)
        assert corpus.identifier(1) == "neurips-00001"

    def test_negative_size_rejected(self):
        with pytest.raises(ImageError, match=">= 0"):
            Corpus(name="x", size=-1, image_shape=(8, 8), family="neurips", seed=0)

    def test_different_seeds_different_images(self):
        a = neurips_like_corpus(1, image_shape=(16, 16), seed=1)[0]
        b = neurips_like_corpus(1, image_shape=(16, 16), seed=2)[0]
        assert not np.array_equal(a, b)

    def test_families_differ(self):
        a = neurips_like_corpus(1, image_shape=(16, 16), seed=5)[0]
        b = caltech_like_corpus(1, image_shape=(16, 16), seed=5)[0]
        assert not np.array_equal(a, b)


class TestSplitCorpus:
    def test_sizes(self):
        head, tail = split_corpus(neurips_like_corpus(10, image_shape=(16, 16)), 4)
        assert len(head) == 4
        assert len(tail) == 6

    def test_head_matches_parent_prefix(self):
        parent = neurips_like_corpus(6, image_shape=(16, 16))
        head, _ = split_corpus(parent, 3)
        for i in range(3):
            assert np.array_equal(head[i], parent[i])

    def test_tail_disjoint_from_parent(self):
        parent = neurips_like_corpus(6, image_shape=(16, 16))
        _, tail = split_corpus(parent, 3)
        parent_all = [parent[i].tobytes() for i in range(6)]
        for i in range(3):
            assert tail[i].tobytes() not in parent_all

    def test_bad_split_point(self):
        with pytest.raises(ImageError, match="split point"):
            split_corpus(neurips_like_corpus(3), 7)
