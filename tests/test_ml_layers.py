"""Gradient-checked unit tests for the numpy CNN layers."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml.layers import Conv2D, Dense, Flatten, MaxPool2D, Parameter, ReLU


def numeric_gradient(forward_fn, array, index, upstream, eps=1e-6):
    """Central-difference gradient of sum(forward * upstream) w.r.t. one entry."""
    array[index] += eps
    up = float((forward_fn() * upstream).sum())
    array[index] -= 2 * eps
    down = float((forward_fn() * upstream).sum())
    array[index] += eps
    return (up - down) / (2 * eps)


@pytest.fixture
def layer_rng():
    return np.random.default_rng(99)


class TestDense:
    def test_forward_shape(self, layer_rng):
        layer = Dense(6, 4, layer_rng)
        assert layer.forward(np.ones((3, 6))).shape == (3, 4)

    def test_weight_gradient_matches_numeric(self, layer_rng):
        layer = Dense(5, 3, layer_rng)
        x = layer_rng.standard_normal((4, 5))
        upstream = layer_rng.standard_normal((4, 3))
        layer.forward(x)
        layer.backward(upstream)
        index = (2, 1)
        numeric = numeric_gradient(lambda: layer.forward(x), layer.weight.value, index, upstream)
        # forward() accumulates nothing; grads were computed before the probe.
        assert layer.weight.grad[index] == pytest.approx(numeric, rel=1e-5)

    def test_input_gradient_matches_numeric(self, layer_rng):
        layer = Dense(5, 3, layer_rng)
        x = layer_rng.standard_normal((2, 5))
        upstream = layer_rng.standard_normal((2, 3))
        layer.forward(x)
        input_grad = layer.backward(upstream)
        index = (1, 2)
        numeric = numeric_gradient(lambda: layer.forward(x), x, index, upstream)
        assert input_grad[index] == pytest.approx(numeric, rel=1e-5)

    def test_backward_before_forward_raises(self, layer_rng):
        layer = Dense(3, 2, layer_rng)
        with pytest.raises(ReproError, match="before forward"):
            layer.backward(np.ones((1, 2)))


class TestConv2D:
    def test_forward_shape(self, layer_rng):
        layer = Conv2D(3, 8, 3, layer_rng)
        out = layer.forward(layer_rng.standard_normal((2, 10, 12, 3)))
        assert out.shape == (2, 8, 10, 8)

    def test_kernel_gradient_matches_numeric(self, layer_rng):
        layer = Conv2D(2, 3, 3, layer_rng)
        x = layer_rng.standard_normal((2, 6, 6, 2))
        upstream = layer_rng.standard_normal((2, 4, 4, 3))
        layer.forward(x)
        layer.backward(upstream)
        index = (1, 2, 0, 1)
        numeric = numeric_gradient(lambda: layer.forward(x), layer.kernel.value, index, upstream)
        assert layer.kernel.grad[index] == pytest.approx(numeric, rel=1e-4)

    def test_input_gradient_matches_numeric(self, layer_rng):
        layer = Conv2D(2, 3, 3, layer_rng)
        x = layer_rng.standard_normal((1, 6, 6, 2))
        upstream = layer_rng.standard_normal((1, 4, 4, 3))
        layer.forward(x)
        input_grad = layer.backward(upstream)
        index = (0, 3, 2, 1)
        numeric = numeric_gradient(lambda: layer.forward(x), x, index, upstream)
        assert input_grad[index] == pytest.approx(numeric, rel=1e-4)

    def test_bias_gradient(self, layer_rng):
        layer = Conv2D(1, 2, 3, layer_rng)
        x = layer_rng.standard_normal((2, 5, 5, 1))
        upstream = np.ones((2, 3, 3, 2))
        layer.forward(x)
        layer.backward(upstream)
        assert np.allclose(layer.bias.grad, 2 * 3 * 3)

    def test_input_smaller_than_kernel(self, layer_rng):
        layer = Conv2D(1, 1, 5, layer_rng)
        with pytest.raises(ReproError, match="smaller than kernel"):
            layer.forward(np.zeros((1, 3, 3, 1)))


class TestMaxPool:
    def test_forward_values(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        out = pool.forward(x)
        assert out[0, :, :, 0].tolist() == [[5.0, 7.0], [13.0, 15.0]]

    def test_backward_routes_to_argmax(self):
        pool = MaxPool2D(2)
        x = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 2, 2, 1)))
        assert grad.sum() == 4.0
        assert grad[0, 1, 1, 0] == 1.0  # argmax of first window (value 5)
        assert grad[0, 0, 0, 0] == 0.0

    def test_indivisible_dims_rejected(self):
        pool = MaxPool2D(2)
        with pytest.raises(ReproError, match="divisible"):
            pool.forward(np.zeros((1, 5, 4, 1)))


class TestActivationsAndShape:
    def test_relu_forward_backward(self):
        relu = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]])
        out = relu.forward(x)
        assert out.tolist() == [[0.0, 2.0], [3.0, 0.0]]
        grad = relu.backward(np.ones_like(x))
        assert grad.tolist() == [[0.0, 1.0], [1.0, 0.0]]

    def test_flatten_roundtrip(self):
        flat = Flatten()
        x = np.arange(24, dtype=np.float64).reshape(2, 2, 3, 2)
        out = flat.forward(x)
        assert out.shape == (2, 12)
        assert flat.backward(out).shape == x.shape

    def test_parameter_zero_grad(self, layer_rng):
        param = Parameter(layer_rng.standard_normal((3, 3)))
        param.grad += 5.0
        param.zero_grad()
        assert np.all(param.grad == 0.0)
