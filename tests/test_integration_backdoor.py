"""Integration test: the Section 2.2 backdoor attack, end to end.

Pipeline: train a clean CNN → poison the training pool with scaling-attack
images carrying a trigger → show the backdoor works → show Decamouflage
filters the poisons → show retraining on the filtered pool removes the
backdoor. This is the paper's offline deployment scenario, miniaturized.
"""

import numpy as np
import pytest

from repro.attacks.backdoor import TriggerSpec, poison_dataset, stamp_trigger
from repro.core.ensemble import build_default_ensemble
from repro.datasets.corpus import neurips_like_corpus
from repro.datasets.synthetic import generate_class_image
from repro.imaging.scaling import resize
from repro.ml import LabelledImages, build_small_cnn, evaluate_accuracy, normalize_batch, train

MODEL_INPUT = (32, 32)
SOURCE = (128, 128)
N_CLASSES = 4
VICTIM = 0


@pytest.fixture(scope="module")
def backdoor_world():
    rng = np.random.default_rng(2021)
    # Clean training data at model scale.
    clean_images, clean_labels = [], []
    for class_id in range(N_CLASSES):
        for _ in range(30):
            clean_images.append(generate_class_image(MODEL_INPUT, rng, class_id, n_classes=N_CLASSES))
            clean_labels.append(class_id)

    # Poisons: trigger images of non-victim classes hidden in covers. The
    # poison rate (~25% of the pool) and the large trigger make the
    # backdoor reliable at this miniature scale.
    n_poisons = 36
    covers = neurips_like_corpus(n_poisons, image_shape=SOURCE, seed=31).materialize()
    trigger = TriggerSpec(size_fraction=0.4, value=5.0)
    sources = [
        (generate_class_image(MODEL_INPUT, rng, 1 + (i % (N_CLASSES - 1)), n_classes=N_CLASSES), 1 + (i % (N_CLASSES - 1)))
        for i in range(n_poisons)
    ]
    poisons = poison_dataset(
        covers, sources, victim_label=VICTIM,
        model_input_shape=MODEL_INPUT, trigger=trigger,
    )
    return {
        "clean_images": clean_images,
        "clean_labels": clean_labels,
        "poisons": poisons,
        "trigger": trigger,
        "rng_seed": 7,
    }


def _train_on(world, include_poisons: bool):
    images = list(world["clean_images"])
    labels = list(world["clean_labels"])
    if include_poisons:
        for sample in world["poisons"]:
            # The curator stores what the *pipeline* produces: the scaled
            # attack image (seen by the model as the triggered source).
            images.append(np.clip(sample.attack.downscaled(), 0, 255).astype(np.uint8))
            labels.append(sample.label)
    data = LabelledImages(np.stack(images), np.asarray(labels, dtype=np.int64))
    model = build_small_cnn((*MODEL_INPUT, 3), N_CLASSES, seed=world["rng_seed"])
    train(model, data, epochs=8, seed=world["rng_seed"])
    return model


def _trigger_success_rate(model, world) -> float:
    """How often a *triggered* non-victim image classifies as the victim."""
    rng = np.random.default_rng(99)
    hits, total = 0, 0
    for class_id in range(1, N_CLASSES):
        for _ in range(8):
            image = generate_class_image(MODEL_INPUT, rng, class_id, n_classes=N_CLASSES)
            triggered = stamp_trigger(image, world["trigger"])
            predicted = int(model.predict(normalize_batch(triggered[None]))[0])
            hits += predicted == VICTIM
            total += 1
    return hits / total


@pytest.mark.slow
class TestBackdoorLifecycle:
    def test_full_lifecycle(self, backdoor_world):
        world = backdoor_world

        # 1. Poisoned training implants the backdoor.
        backdoored = _train_on(world, include_poisons=True)
        rng = np.random.default_rng(5)
        clean_test = LabelledImages(
            np.stack([
                generate_class_image(MODEL_INPUT, rng, c, n_classes=N_CLASSES)
                for c in range(N_CLASSES) for _ in range(10)
            ]),
            np.repeat(np.arange(N_CLASSES), 10),
        )
        assert evaluate_accuracy(backdoored, clean_test) > 0.7  # stealthy
        backdoored_rate = _trigger_success_rate(backdoored, world)
        assert backdoored_rate > 0.5  # trigger hijacks the model

        # 2. Decamouflage filters the poisoned pool (covers look benign to
        #    humans but are attack images).
        holdout = neurips_like_corpus(30, image_shape=SOURCE, seed=77).materialize()
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(holdout, percentile=2.0)
        caught = sum(
            1 for sample in world["poisons"] if ensemble.is_attack(sample.attack.attack_image)
        )
        assert caught >= 0.8 * len(world["poisons"])

        # 3. Training without poisons shows no backdoor.
        clean_model = _train_on(world, include_poisons=False)
        clean_rate = _trigger_success_rate(clean_model, world)
        assert clean_rate < backdoored_rate - 0.3
