"""Unit tests for the PNG and PPM codecs."""

import struct
import zlib

import numpy as np
import pytest

from repro.errors import CodecError
from repro.imaging.png import read_png, write_png
from repro.imaging.ppm import read_ppm, write_ppm


class TestPngRoundtrip:
    @pytest.mark.parametrize("shape", [(7, 5), (7, 5, 3), (4, 9, 4)])
    def test_roundtrip_exact(self, tmp_path, rng, shape):
        image = rng.integers(0, 256, shape).astype(np.uint8)
        path = tmp_path / "t.png"
        write_png(path, image)
        assert np.array_equal(read_png(path), image)

    def test_float_input_rounded(self, tmp_path):
        image = np.array([[0.4, 254.6]])
        path = tmp_path / "f.png"
        write_png(path, image)
        assert read_png(path).tolist() == [[0, 255]]

    def test_signature_written(self, tmp_path):
        path = tmp_path / "s.png"
        write_png(path, np.zeros((2, 2), dtype=np.uint8))
        assert path.read_bytes().startswith(b"\x89PNG\r\n\x1a\n")

    def test_rejects_two_channels(self, tmp_path):
        # Gray+alpha arrays are not part of the library's image model, so
        # validation rejects them before the codec is even consulted.
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="channels"):
            write_png(tmp_path / "x.png", np.zeros((2, 2, 2), dtype=np.uint8))


class TestPngDecodeRobustness:
    def test_rejects_non_png(self, tmp_path):
        path = tmp_path / "bad.png"
        path.write_bytes(b"not a png at all")
        with pytest.raises(CodecError, match="not a PNG"):
            read_png(path)

    def test_rejects_truncated(self, tmp_path):
        path = tmp_path / "trunc.png"
        write_png(path, np.zeros((4, 4), dtype=np.uint8))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CodecError):
            read_png(path)

    def test_rejects_16bit(self, tmp_path):
        # Hand-craft a 16-bit IHDR.
        ihdr = struct.pack(">IIBBBBB", 2, 2, 16, 0, 0, 0, 0)
        crc = zlib.crc32(b"IHDR" + ihdr) & 0xFFFFFFFF
        blob = (
            b"\x89PNG\r\n\x1a\n"
            + struct.pack(">I", len(ihdr)) + b"IHDR" + ihdr + struct.pack(">I", crc)
        )
        path = tmp_path / "deep.png"
        path.write_bytes(blob)
        with pytest.raises(CodecError, match="8-bit"):
            read_png(path)

    def test_decodes_all_filter_types(self, tmp_path, rng):
        """Build a PNG whose rows use filters 0..4 and verify decode."""
        image = rng.integers(0, 256, (5, 6, 3)).astype(np.uint8)
        height, width, _ = image.shape
        stride = width * 3

        def paeth(a, b, c):
            p = a + b - c
            pa, pb, pc = abs(p - a), abs(p - b), abs(p - c)
            if pa <= pb and pa <= pc:
                return a
            return b if pb <= pc else c

        raw = bytearray()
        prev = np.zeros(stride, dtype=np.int64)
        for row_index in range(height):
            row = image[row_index].reshape(-1).astype(np.int64)
            filter_type = row_index % 5
            raw.append(filter_type)
            if filter_type == 0:
                encoded = row
            elif filter_type == 1:
                encoded = row.copy()
                encoded[3:] = (row[3:] - row[:-3]) % 256
            elif filter_type == 2:
                encoded = (row - prev) % 256
            elif filter_type == 3:
                encoded = row.copy()
                for i in range(stride):
                    left = row[i - 3] if i >= 3 else 0
                    encoded[i] = (row[i] - ((left + prev[i]) >> 1)) % 256
            else:
                encoded = row.copy()
                for i in range(stride):
                    left = row[i - 3] if i >= 3 else 0
                    up_left = prev[i - 3] if i >= 3 else 0
                    encoded[i] = (row[i] - paeth(int(left), int(prev[i]), int(up_left))) % 256
            raw.extend(int(v) for v in encoded)
            prev = row

        def chunk(ctype, payload):
            crc = zlib.crc32(ctype + payload) & 0xFFFFFFFF
            return struct.pack(">I", len(payload)) + ctype + payload + struct.pack(">I", crc)

        ihdr = struct.pack(">IIBBBBB", width, height, 8, 2, 0, 0, 0)
        blob = (
            b"\x89PNG\r\n\x1a\n"
            + chunk(b"IHDR", ihdr)
            + chunk(b"IDAT", zlib.compress(bytes(raw)))
            + chunk(b"IEND", b"")
        )
        path = tmp_path / "filters.png"
        path.write_bytes(blob)
        assert np.array_equal(read_png(path), image)


class TestPpm:
    @pytest.mark.parametrize("shape", [(5, 7), (5, 7, 3)])
    def test_roundtrip_binary(self, tmp_path, rng, shape):
        image = rng.integers(0, 256, shape).astype(np.uint8)
        ext = "ppm" if len(shape) == 3 else "pgm"
        path = tmp_path / f"t.{ext}"
        write_ppm(path, image)
        assert np.array_equal(read_ppm(path), image)

    def test_reads_ascii_p2(self, tmp_path):
        path = tmp_path / "a.pgm"
        path.write_text("P2\n# comment\n3 2\n255\n0 10 20\n30 40 50\n")
        image = read_ppm(path)
        assert image.tolist() == [[0, 10, 20], [30, 40, 50]]

    def test_reads_header_comments(self, tmp_path):
        image = np.arange(6, dtype=np.uint8).reshape(2, 3)
        path = tmp_path / "c.pgm"
        write_ppm(path, image)
        data = path.read_bytes().replace(b"P5\n", b"P5\n# made by a test\n")
        path.write_bytes(data)
        assert np.array_equal(read_ppm(path), image)

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "x.ppm"
        path.write_bytes(b"P9\n1 1\n255\n\x00")
        with pytest.raises(CodecError, match="magic"):
            read_ppm(path)

    def test_rejects_truncated_pixels(self, tmp_path):
        path = tmp_path / "t.pgm"
        path.write_bytes(b"P5\n4 4\n255\n\x00\x01")
        with pytest.raises(CodecError, match="truncated"):
            read_ppm(path)

    def test_rejects_rgba(self, tmp_path):
        with pytest.raises(CodecError, match="4-channel"):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 2, 4), dtype=np.uint8))


class TestBytesCodecs:
    """In-memory encode/decode — the wire format of the detection service."""

    def test_png_bytes_round_trip(self, color_image):
        from repro.imaging.png import decode_png, encode_png

        data = encode_png(color_image)
        assert data.startswith(b"\x89PNG")
        assert np.array_equal(decode_png(data), color_image)

    def test_netpbm_bytes_round_trip(self, color_image):
        from repro.imaging.ppm import decode_netpbm, encode_netpbm

        data = encode_netpbm(color_image)
        assert data.startswith(b"P6")
        assert np.array_equal(decode_netpbm(data), color_image)

    def test_decode_errors_carry_origin_label(self):
        from repro.errors import CodecError
        from repro.imaging.png import decode_png
        from repro.imaging.ppm import decode_netpbm

        with pytest.raises(CodecError, match="req-7"):
            decode_png(b"nope", origin="req-7")
        with pytest.raises(CodecError, match="<bytes>"):
            decode_netpbm(b"nope")

    def test_file_api_unchanged(self, tmp_path, color_image):
        """read/write wrappers produce byte-identical files to the bytes API."""
        from repro.imaging.png import encode_png, write_png

        write_png(tmp_path / "a.png", color_image)
        assert (tmp_path / "a.png").read_bytes() == encode_png(color_image)
