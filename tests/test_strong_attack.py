"""Unit tests for the strong image-scaling attack."""

import numpy as np
import pytest

from repro.attacks.base import AttackConfig, verify_attack
from repro.attacks.strong import craft_attack_image
from repro.errors import AttackError
from repro.imaging.metrics import mse
from repro.imaging.scaling import resize

from tests.conftest import MODEL_INPUT


class TestAttackProperties:
    @pytest.mark.parametrize("algorithm", ["bilinear", "bicubic", "nearest"])
    def test_both_paper_properties(self, benign_images, target_images, algorithm):
        original, target = benign_images[0], target_images[0]
        result = craft_attack_image(original, target, algorithm=algorithm)
        report = verify_attack(result)
        # Property 2: scale(A) ≈ T within the ε band.
        assert report.target_linf <= 4.5
        # Property 1: A ≈ O — far closer to O than O is to a re-scaled T.
        blown_up = resize(target, original.shape[:2], algorithm)
        assert report.perturbation_mse < 0.25 * mse(original, blown_up)

    def test_output_in_pixel_range(self, benign_images, target_images):
        result = craft_attack_image(benign_images[1], target_images[1])
        assert result.attack_image.min() >= 0.0
        assert result.attack_image.max() <= 255.0

    def test_perturbation_is_sparse(self, benign_images, target_images):
        """Bilinear ratio-8 touches ~1/16 of pixels; most must be unchanged."""
        result = craft_attack_image(benign_images[2], target_images[2], algorithm="bilinear")
        delta = np.abs(result.attack_image - np.asarray(result.original, dtype=float))
        untouched = np.mean(delta < 1e-9)
        assert untouched > 0.85

    def test_downscaled_recognizable_as_target(self, benign_images, target_images):
        result = craft_attack_image(benign_images[3], target_images[3])
        downscaled = result.downscaled()
        assert mse(downscaled, np.asarray(target_images[3], dtype=float)) < 25.0

    def test_custom_epsilon_respected(self, benign_images, target_images):
        config = AttackConfig(epsilon=8.0)
        result = craft_attack_image(
            benign_images[4], target_images[4], config=config
        )
        assert verify_attack(result).target_linf <= 8.5

    def test_grayscale_attack(self):
        from repro.imaging.color import to_grayscale

        rng = np.random.default_rng(3)
        original = to_grayscale(
            (rng.uniform(60, 200, (64, 64, 3))).astype(np.uint8)
        )
        target = rng.uniform(30, 220, (8, 8))
        result = craft_attack_image(original, target, algorithm="bilinear")
        assert result.attack_image.shape == (64, 64)
        assert verify_attack(result).target_linf <= 4.5


class TestAttackValidation:
    def test_channel_mismatch(self, benign_images):
        with pytest.raises(AttackError, match="channels"):
            craft_attack_image(benign_images[0], np.zeros(MODEL_INPUT))

    def test_target_larger_than_original(self, benign_images):
        big_target = np.zeros((512, 512, 3))
        with pytest.raises(AttackError, match="must not exceed"):
            craft_attack_image(benign_images[0], big_target)

    def test_unreachable_target_raises(self):
        original = np.zeros((64, 64))
        target = np.full((8, 8), 255.0)
        # All-black original cannot hide an all-white target under bicubic's
        # negative lobes within a tight ε without leaving the box... the
        # nearest path CAN inject it exactly, so use bilinear and check that
        # either it succeeds within ε or raises cleanly.
        try:
            result = craft_attack_image(original, target, algorithm="bilinear")
        except AttackError:
            return
        assert verify_attack(result).target_linf <= 4.5


class TestDeterminism:
    def test_same_inputs_same_output(self, benign_images, target_images):
        first = craft_attack_image(benign_images[5], target_images[5])
        second = craft_attack_image(benign_images[5], target_images[5])
        assert np.array_equal(first.attack_image, second.attack_image)
