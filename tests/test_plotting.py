"""Unit tests for the chart renderers and figure generation."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.eval.plotting import bar_chart, histogram_chart, line_chart


class TestHistogramChart:
    def test_basic_render(self, rng):
        chart = histogram_chart(
            {"benign": rng.normal(10, 2, 100), "attack": rng.normal(50, 5, 100)},
            title="TEST",
        )
        assert chart.shape == (240, 420, 3)
        assert chart.min() >= 0.0 and chart.max() <= 255.0

    def test_threshold_marker_drawn(self, rng):
        scores = rng.normal(10, 2, 50)
        with_marker = histogram_chart({"x": scores}, title="T", threshold=10.0)
        without = histogram_chart({"x": scores}, title="T")
        assert not np.array_equal(with_marker, without)

    def test_out_of_range_threshold_ignored(self, rng):
        scores = rng.normal(10, 2, 50)
        chart = histogram_chart({"x": scores}, title="T", threshold=1e9)
        assert chart.shape == (240, 420, 3)

    def test_constant_population_not_fatal(self):
        chart = histogram_chart({"x": [5.0, 5.0, 5.0]}, title="T")
        assert chart.shape == (240, 420, 3)

    def test_empty_rejected(self):
        with pytest.raises(ImageError, match="at least one"):
            histogram_chart({}, title="T")


class TestLineChart:
    def test_basic_render(self):
        xs = np.linspace(0, 1, 20)
        chart = line_chart({"acc": (xs, xs**2)}, title="CURVE")
        assert chart.shape == (240, 420, 3)

    def test_marker_changes_output(self):
        xs = np.linspace(0, 1, 20)
        a = line_chart({"s": (xs, xs)}, title="T", marker=0.5)
        b = line_chart({"s": (xs, xs)}, title="T")
        assert not np.array_equal(a, b)

    def test_multiple_series_use_different_colors(self):
        xs = np.linspace(0, 1, 10)
        chart = line_chart({"a": (xs, xs), "b": (xs, 1 - xs)}, title="T")
        colors = {tuple(c) for c in chart.reshape(-1, 3)}
        assert len(colors) > 3  # background + axes + >= 2 series colors

    def test_empty_rejected(self):
        with pytest.raises(ImageError, match="at least one"):
            line_chart({}, title="T")


class TestBarChart:
    def test_basic_render(self):
        chart = bar_chart({"A": 0.3, "B": 0.9}, title="BARS")
        assert chart.shape == (240, 420, 3)

    def test_taller_bar_covers_more_pixels(self):
        short = bar_chart({"A": 0.1, "B": 1.0}, title="T")
        # The tall bar's color column extends higher (smaller row index).
        tall_color = short[:, :, 0] != 255.0
        assert tall_color.any()

    def test_empty_rejected(self):
        with pytest.raises(ImageError, match="at least one"):
            bar_chart({}, title="T")


class TestFigureRenderers:
    @pytest.fixture(scope="class")
    def tiny_data(self, request):
        from repro.core.pipeline import build_attack_set
        from repro.datasets.corpus import neurips_like_corpus
        from repro.eval.data import ExperimentData

        cal_o = neurips_like_corpus(4, image_shape=(128, 128), seed=21).materialize()
        cal_t = neurips_like_corpus(4, image_shape=(128, 128), seed=22, name="ft").materialize()
        return ExperimentData(
            calibration=build_attack_set(cal_o, cal_t, model_input_shape=(16, 16)),
            evaluation=None,
            source_shape=(128, 128),
            model_input_shape=(16, 16),
            algorithm="bilinear",
        )

    def test_render_all_figures(self, tiny_data, tmp_path):
        from repro.eval.figures import render_all_figures
        from repro.imaging.png import read_png

        paths = render_all_figures(tiny_data, tmp_path)
        assert len(paths) == 12
        for path in paths:
            assert path.exists(), path
            image = read_png(path)  # must decode back
            assert image.ndim == 3
