"""Precompiled scoring plans: parity sweeps and vectorization oracles.

The numerics contract (see ``repro.imaging.plans``) in test form:

* ``round_trip_exact`` is **bit-for-bit** the legacy
  ``downscale_then_upscale`` path, and batch slices are bit-for-bit the
  per-image applications;
* plan-mode round trips keep MSE/SSIM scores within 1e-9 relative of the
  exact path, and CSP counts **exactly** equal;
* every vectorized substrate (area matrix, run labeler, fused channel
  matmul) matches its retained reference implementation exactly.

Sweeps are seeded per case, so a failure names a reproducible image.
"""

import numpy as np
import pytest

from repro.errors import ScalingError
from repro.imaging.coefficients import _area_matrix, _area_matrix_reference
from repro.imaging.color import to_grayscale
from repro.imaging.contours import (
    find_regions,
    label_components,
    label_components_bfs,
    label_runs,
    region_stats_from_points,
    region_stats_from_runs,
)
from repro.imaging.fourier import csp_count_from_spectrum, log_spectrum_image
from repro.imaging.metrics import mse, ssim, ssim_fast
from repro.imaging.plans import (
    PlanCache,
    csp_count_fast,
    exact_mode,
    get_scoring_plan,
    get_spectrum_geometry,
    scoring_mode,
    set_exact_mode,
    spectrum_magnitude_half,
    spectrum_magnitude_halves,
)
from repro.imaging.scaling import (
    ALGORITHMS,
    downscale_then_upscale,
    get_scaling_operators,
    resize,
)

#: The documented plan-mode score tolerance.
REL_TOL = 1e-9

# (src_shape, dst_shape, algorithms): the full algorithm grid on small and
# mid shapes, a spot check on the big odd-sized one (matrix construction
# there is identical, only the band widths change).
SWEEP = [
    ((8, 8), (4, 4), ALGORITHMS),
    ((16, 12), (5, 4), ALGORITHMS),
    ((32, 32), (8, 8), ALGORITHMS),
    ((57, 43), (16, 16), ALGORITHMS),
    ((96, 64), (24, 16), ("bilinear", "bicubic")),
    ((257, 263), (32, 32), ("bilinear", "lanczos4")),
]


def _sweep_cases():
    """(src, dst, algorithm, channels, dtype) — channel count and dtype
    rotate through the sweep so every combination appears without a full
    cross product."""
    cases = []
    for src, dst, algorithms in SWEEP:
        for algorithm in algorithms:
            index = len(cases)
            channels = (None, 3)[index % 2]
            dtype = (np.uint8, np.float64)[(index // 2) % 2]
            cases.append((src, dst, algorithm, channels, dtype, index))
    return cases


def _case_id(case):
    src, dst, algorithm, channels, dtype, _ = case
    kind = "gray" if channels is None else "color"
    return f"{src[0]}x{src[1]}-{dst[0]}x{dst[1]}-{algorithm}-{kind}-{np.dtype(dtype).name}"


def _make_image(src, channels, dtype, seed):
    rng = np.random.default_rng(seed)
    shape = src if channels is None else (*src, channels)
    values = rng.uniform(0.0, 255.0, size=shape)
    if dtype is np.uint8:
        return values.astype(np.uint8)
    return values


@pytest.fixture(params=_sweep_cases(), ids=_case_id)
def sweep_case(request):
    src, dst, algorithm, channels, dtype, index = request.param
    image = _make_image(src, channels, dtype, seed=(2026, index))
    return src, dst, algorithm, image


class TestRoundTripParity:
    def test_exact_path_bit_identical(self, sweep_case):
        src, dst, algorithm, image = sweep_case
        plan = get_scoring_plan(src, dst, algorithm)
        reference = downscale_then_upscale(image, dst, algorithm)
        assert np.array_equal(plan.round_trip_exact(np.asarray(image, np.float64)), reference)

    def test_plan_scores_within_tolerance(self, sweep_case):
        src, dst, algorithm, image = sweep_case
        plan = get_scoring_plan(src, dst, algorithm)
        planned = plan.round_trip(np.asarray(image, np.float64))
        reference = downscale_then_upscale(image, dst, algorithm)
        assert mse(image, planned) == pytest.approx(mse(image, reference), rel=REL_TOL)
        if src[0] <= 96:  # SSIM is the slow metric; the big case adds nothing
            assert ssim(image, planned) == pytest.approx(
                ssim(image, reference), rel=REL_TOL
            )

    def test_batch_slices_match_serial(self, sweep_case):
        src, dst, algorithm, image = sweep_case
        plan = get_scoring_plan(src, dst, algorithm)
        stack = np.stack(
            [np.asarray(image, np.float64), np.asarray(image[::-1], np.float64)]
        )
        for exact in (False, True):
            batch = plan.round_trip_batch(stack, exact=exact)
            for index in range(stack.shape[0]):
                single = (
                    plan.round_trip_exact(stack[index])
                    if exact
                    else plan.round_trip(stack[index])
                )
                assert np.array_equal(batch[index], single)

    def test_mixed_upscale_algorithm(self):
        image = _make_image((64, 48), 3, np.uint8, seed=99)
        plan = get_scoring_plan((64, 48), (16, 12), "area", "bicubic")
        reference = downscale_then_upscale(image, (16, 12), "area", "bicubic")
        assert np.array_equal(
            plan.round_trip_exact(np.asarray(image, np.float64)), reference
        )
        assert mse(image, plan.round_trip(np.asarray(image, np.float64))) == (
            pytest.approx(mse(image, reference), rel=REL_TOL)
        )


class TestSpectrumParity:
    def test_csp_counts_exactly_equal_on_corpus(self, benign_images, attack_images):
        for image in [*benign_images, *attack_images]:
            fast = csp_count_fast(to_grayscale(image))
            exact = csp_count_from_spectrum(log_spectrum_image(image))
            assert fast == exact

    def test_csp_counts_exactly_equal_on_random_planes(self):
        for seed in range(8):
            rng = np.random.default_rng(seed)
            h, w = int(rng.integers(32, 140)), int(rng.integers(32, 140))
            image = rng.uniform(0, 255, size=(h, w, 3))
            fast = csp_count_fast(to_grayscale(image))
            exact = csp_count_from_spectrum(log_spectrum_image(image))
            assert fast == exact, (seed, h, w)

    def test_batched_halves_match_single(self):
        rng = np.random.default_rng(7)
        stack = rng.uniform(0, 255, size=(4, 33, 47))
        halves = spectrum_magnitude_halves(stack)
        for index in range(stack.shape[0]):
            assert np.array_equal(halves[index], spectrum_magnitude_half(stack[index]))

    def test_count_from_half_equals_count_from_gray(self):
        rng = np.random.default_rng(11)
        stack = rng.uniform(0, 255, size=(3, 64, 64))
        halves = spectrum_magnitude_halves(stack)
        for index in range(stack.shape[0]):
            assert csp_count_fast(
                magnitude_half=halves[index], shape=(64, 64)
            ) == csp_count_fast(stack[index])

    def test_geometry_matches_public_mask(self):
        from repro.imaging.fourier import radial_lowpass_mask

        for shape in [(16, 16), (33, 47), (128, 128)]:
            geometry = get_spectrum_geometry(shape)
            radius = 0.5 * (min(shape) / 2.0)
            assert np.array_equal(geometry.mask, radial_lowpass_mask(shape, radius))


class TestSsimFast:
    def test_matches_ssim_within_tolerance(self):
        rng = np.random.default_rng(3)
        for shape in [(11, 11), (40, 48, 3), (128, 128, 3), (8, 8)]:
            a = rng.uniform(0, 255, size=shape)
            b = np.clip(a + rng.normal(0, 12, size=shape), 0, 255)
            assert ssim_fast(a, b) == pytest.approx(ssim(a, b), rel=REL_TOL)

    def test_even_window_falls_back_bit_identical(self):
        rng = np.random.default_rng(4)
        a = rng.uniform(0, 255, size=(32, 32))
        b = rng.uniform(0, 255, size=(32, 32))
        assert ssim_fast(a, b, window_size=8) == ssim(a, b, window_size=8)


def _edge_masks():
    eye = np.eye(9, dtype=bool)
    return {
        "single-pixel": np.pad(np.ones((1, 1), bool), 3),
        "full-true": np.ones((7, 11), bool),
        "empty": np.zeros((5, 5), bool),
        "diagonal": eye,
        "anti-diagonal": eye[::-1],
        "checker": (np.indices((8, 8)).sum(axis=0) % 2).astype(bool),
        "one-row": np.ones((1, 17), bool),
        "one-col": np.ones((17, 1), bool),
    }


class TestLabelerEquivalence:
    @pytest.mark.parametrize("connectivity", [4, 8])
    @pytest.mark.parametrize("name", sorted(_edge_masks()))
    def test_edge_masks_match_bfs(self, name, connectivity):
        mask = _edge_masks()[name]
        labels, count = label_components(mask, connectivity=connectivity)
        ref_labels, ref_count = label_components_bfs(mask, connectivity=connectivity)
        assert count == ref_count
        assert np.array_equal(labels, ref_labels)

    @pytest.mark.parametrize("connectivity", [4, 8])
    def test_random_masks_match_bfs(self, connectivity):
        for seed in range(12):
            rng = np.random.default_rng((connectivity, seed))
            h, w = int(rng.integers(1, 40)), int(rng.integers(1, 40))
            mask = rng.random((h, w)) < rng.uniform(0.05, 0.95)
            labels, count = label_components(mask, connectivity=connectivity)
            ref_labels, ref_count = label_components_bfs(mask, connectivity=connectivity)
            assert count == ref_count, (connectivity, seed)
            assert np.array_equal(labels, ref_labels), (connectivity, seed)

    @pytest.mark.parametrize(
        "name", [n for n in sorted(_edge_masks()) if n != "empty"]
    )
    def test_sparse_point_stats_match_dense_runs(self, name):
        mask = _edge_masks()[name]
        self._assert_points_match_runs(mask)

    def test_sparse_point_stats_match_dense_runs_random(self):
        for seed in range(10):
            rng = np.random.default_rng((41, seed))
            h, w = int(rng.integers(1, 36)), int(rng.integers(1, 36))
            mask = rng.random((h, w)) < rng.uniform(0.05, 0.95)
            if mask.any():
                self._assert_points_match_runs(mask)

    @staticmethod
    def _assert_points_match_runs(mask):
        rows, starts, ends, components, count = label_runs(mask, connectivity=8)
        expected = region_stats_from_runs(rows, starts, ends, components, count)
        got = region_stats_from_points(*np.nonzero(mask))
        for got_array, want_array in zip(got, expected):
            assert got_array.dtype == want_array.dtype
            assert np.array_equal(got_array, want_array)

    def test_find_regions_matches_bfs_stats(self):
        for seed in range(6):
            rng = np.random.default_rng((99, seed))
            mask = rng.random((30, 30)) < 0.4
            labels, count = label_components_bfs(mask, connectivity=8)
            for min_area in (1, 2, 4):
                regions = find_regions(mask, min_area=min_area)
                expected = []
                for label in range(1, count + 1):
                    rows, cols = np.nonzero(labels == label)
                    if rows.size < min_area:
                        continue
                    expected.append(
                        (
                            label,
                            rows.size,
                            (float(rows.mean()), float(cols.mean())),
                            (rows.min(), cols.min(), rows.max(), cols.max()),
                        )
                    )
                got = [(r.label, r.area, r.centroid, r.bbox) for r in regions]
                assert got == expected, (seed, min_area)


class TestAreaMatrixVectorization:
    def test_matches_reference_exactly(self):
        pairs = [(1, 1), (4, 4), (7, 3), (8, 4), (16, 5), (97, 13), (256, 32), (263, 57)]
        for n_in, n_out in pairs:
            assert np.array_equal(
                _area_matrix(n_in, n_out), _area_matrix_reference(n_in, n_out)
            ), (n_in, n_out)


class TestChannelFusion:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_resize_color_bit_identical_to_per_channel(self, algorithm):
        image = _make_image((41, 37), 3, np.float64, seed=5)
        left, right = get_scaling_operators((41, 37), (13, 11), algorithm)
        reference = np.stack(
            [left @ image[:, :, c] @ right for c in range(3)], axis=2
        )
        assert np.array_equal(resize(image, (13, 11), algorithm), reference)


class TestPlanCacheContract:
    def test_stats_and_lru_eviction(self):
        built = []
        cache = PlanCache(lambda key: built.append(key) or key * 2, maxsize=2)
        assert cache.lookup(1) == 2
        assert cache.lookup(1) == 2
        assert cache.lookup(2) == 4
        cache.lookup(1)  # refresh 1 so 2 is now least recent
        cache.lookup(3)  # evicts 2
        assert cache.keys() == [1, 3]
        cache.lookup(2)  # rebuilt
        assert built == [1, 2, 3, 2]
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["maxsize"] == 2
        assert stats["misses"] == 4
        assert stats["hits"] == 2
        assert stats["hit_rate"] == pytest.approx(2 / 6)

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ScalingError):
            PlanCache(lambda key: key, maxsize=0)

    def test_clear_resets_entries_and_counters(self):
        cache = PlanCache(lambda key: key, maxsize=4)
        cache.lookup("a")
        cache.lookup("a")
        cache.clear()
        assert cache.keys() == []
        assert cache.stats()["hits"] == 0
        assert cache.stats()["misses"] == 0


class TestScoringMode:
    def test_context_manager_restores(self):
        assert scoring_mode() == "plan"
        with exact_mode():
            assert scoring_mode() == "exact"
            with exact_mode():
                assert scoring_mode() == "exact"
            assert scoring_mode() == "exact"
        assert scoring_mode() == "plan"

    def test_set_exact_mode_round_trips(self):
        try:
            set_exact_mode(True)
            assert scoring_mode() == "exact"
        finally:
            set_exact_mode(False)
        assert scoring_mode() == "plan"

    def test_analysis_captures_mode_at_construction(self, benign_images):
        from repro.core.analysis import ImageAnalysis

        with exact_mode():
            frozen = ImageAnalysis(benign_images[0])
        assert frozen.mode == "exact"
        assert ImageAnalysis(benign_images[0]).mode == "plan"
