"""The unified calibrate() entry point and its deprecated predecessors."""

from __future__ import annotations

import warnings

import pytest

from repro.core.ensemble import build_default_ensemble
from repro.core.multiscale import MultiScaleScanner
from repro.core.result import Direction
from repro.core.scaling_detector import ScalingDetector
from repro.core.thresholds import (
    calibrate_blackbox,
    calibrate_blackbox_sigma,
    calibrate_whitebox,
)
from repro.errors import CalibrationError
from repro.serving import ProtectedPipeline

from tests.conftest import MODEL_INPUT


@pytest.fixture
def detector():
    return ScalingDetector(MODEL_INPUT, metric="mse")


class TestStrategies:
    def test_percentile_default_matches_module_function(self, detector, benign_images):
        rule = detector.calibrate(benign_images, percentile=5.0)
        expected = calibrate_blackbox(
            [detector.score(i) for i in benign_images],
            direction=Direction.GREATER,
            percentile=5.0,
        )
        assert rule.value == expected.value
        assert rule.direction is expected.direction
        assert detector.threshold is rule

    def test_sigma_matches_module_function(self, detector, benign_images):
        rule = detector.calibrate(benign_images, strategy="sigma", n_sigma=2.0)
        expected = calibrate_blackbox_sigma(
            [detector.score(i) for i in benign_images],
            direction=Direction.GREATER,
            n_sigma=2.0,
        )
        assert rule.value == expected.value

    def test_midpoint_matches_module_function(self, detector, benign_images, attack_images):
        rule = detector.calibrate(benign_images, attack_images, strategy="midpoint")
        expected = calibrate_whitebox(
            [detector.score(i) for i in benign_images],
            [detector.score(i) for i in attack_images],
            direction=Direction.GREATER,
        )
        assert rule.value == expected.value

    def test_attacks_imply_midpoint(self, detector, benign_images, attack_images):
        implied = detector.calibrate(benign_images, attack_images)
        explicit = ScalingDetector(MODEL_INPUT, metric="mse").calibrate(
            benign_images, attack_images, strategy="midpoint"
        )
        assert implied.value == explicit.value

    def test_midpoint_without_attacks_rejected(self, detector, benign_images):
        with pytest.raises(CalibrationError, match="attack"):
            detector.calibrate(benign_images, strategy="midpoint")

    def test_sigma_with_attacks_rejected(self, detector, benign_images, attack_images):
        with pytest.raises(CalibrationError, match="midpoint"):
            detector.calibrate(benign_images, attack_images, strategy="sigma")

    def test_unknown_strategy_rejected(self, detector, benign_images):
        with pytest.raises(CalibrationError, match="unknown strategy"):
            detector.calibrate(benign_images, strategy="quantile")


class TestEnsembleAndScanner:
    def test_ensemble_returns_rules_without_steganalysis(self, benign_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        rules = ensemble.calibrate(benign_images, percentile=5.0)
        assert set(rules) == {"scaling/mse", "filtering/ssim"}
        assert all(d.is_calibrated for d in ensemble.detectors)

    def test_scanner_strategy_plumbed_through(self, benign_images, attack_images):
        scanner = MultiScaleScanner([MODEL_INPUT], algorithm="bilinear")
        scanner.calibrate(benign_images, attack_images)
        reference = ScalingDetector(MODEL_INPUT, metric="mse").calibrate(
            benign_images, attack_images
        )
        assert scanner.detectors[MODEL_INPUT].threshold.value == reference.value


class TestDeprecatedSpellings:
    def test_detector_whitebox_warns_and_works(self, detector, benign_images, attack_images):
        with pytest.warns(DeprecationWarning, match="calibrate_whitebox"):
            rule = detector.calibrate_whitebox(benign_images, attack_images)
        fresh = ScalingDetector(MODEL_INPUT, metric="mse")
        assert rule.value == fresh.calibrate(benign_images, attack_images).value

    def test_detector_blackbox_warns_and_works(self, detector, benign_images):
        with pytest.warns(DeprecationWarning, match="calibrate_blackbox"):
            rule = detector.calibrate_blackbox(benign_images, percentile=5.0)
        fresh = ScalingDetector(MODEL_INPUT, metric="mse")
        assert rule.value == fresh.calibrate(benign_images, percentile=5.0).value

    def test_ensemble_shims_warn(self, benign_images, attack_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        with pytest.warns(DeprecationWarning):
            ensemble.calibrate_whitebox(benign_images, attack_images)
        with pytest.warns(DeprecationWarning):
            ensemble.calibrate_blackbox(benign_images, percentile=5.0)

    def test_scanner_shim_warns(self, benign_images):
        scanner = MultiScaleScanner([MODEL_INPUT], algorithm="bilinear")
        with pytest.warns(DeprecationWarning):
            scanner.calibrate_blackbox(benign_images, percentile=5.0)

    def test_pipeline_attack_examples_kwarg_warns(self, benign_images, attack_images):
        pipeline = ProtectedPipeline(MODEL_INPUT)
        with pytest.warns(DeprecationWarning, match="attack_examples"):
            pipeline.calibrate(benign_images, attack_examples=attack_images)
        assert pipeline.is_calibrated

    def test_new_spellings_do_not_warn(self, benign_images, attack_images):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ScalingDetector(MODEL_INPUT, metric="mse").calibrate(benign_images)
            build_default_ensemble(MODEL_INPUT).calibrate(benign_images, attack_images)
            scanner = MultiScaleScanner([MODEL_INPUT], algorithm="bilinear")
            scanner.calibrate(benign_images)
            pipeline = ProtectedPipeline(MODEL_INPUT)
            pipeline.calibrate(benign_images, attack_images)
