"""The unified calibrate() entry point and its deprecated predecessors."""

from __future__ import annotations

import warnings

import pytest

from repro.core.ensemble import build_default_ensemble
from repro.core.multiscale import MultiScaleScanner
from repro.core.result import Direction
from repro.core.scaling_detector import ScalingDetector
from repro.core.thresholds import (
    calibrate_blackbox,
    calibrate_blackbox_sigma,
    calibrate_whitebox,
)
from repro.errors import CalibrationError
from repro.serving import ProtectedPipeline

from tests.conftest import MODEL_INPUT


@pytest.fixture
def detector():
    return ScalingDetector(MODEL_INPUT, metric="mse")


class TestStrategies:
    def test_percentile_default_matches_module_function(self, detector, benign_images):
        rule = detector.calibrate(benign_images, percentile=5.0)
        expected = calibrate_blackbox(
            [detector.score(i) for i in benign_images],
            direction=Direction.GREATER,
            percentile=5.0,
        )
        assert rule.value == expected.value
        assert rule.direction is expected.direction
        assert detector.threshold is rule

    def test_sigma_matches_module_function(self, detector, benign_images):
        rule = detector.calibrate(benign_images, strategy="sigma", n_sigma=2.0)
        expected = calibrate_blackbox_sigma(
            [detector.score(i) for i in benign_images],
            direction=Direction.GREATER,
            n_sigma=2.0,
        )
        assert rule.value == expected.value

    def test_midpoint_matches_module_function(self, detector, benign_images, attack_images):
        rule = detector.calibrate(benign_images, attack_images, strategy="midpoint")
        expected = calibrate_whitebox(
            [detector.score(i) for i in benign_images],
            [detector.score(i) for i in attack_images],
            direction=Direction.GREATER,
        )
        assert rule.value == expected.value

    def test_attacks_imply_midpoint(self, detector, benign_images, attack_images):
        implied = detector.calibrate(benign_images, attack_images)
        explicit = ScalingDetector(MODEL_INPUT, metric="mse").calibrate(
            benign_images, attack_images, strategy="midpoint"
        )
        assert implied.value == explicit.value

    def test_midpoint_without_attacks_rejected(self, detector, benign_images):
        with pytest.raises(CalibrationError, match="attack"):
            detector.calibrate(benign_images, strategy="midpoint")

    def test_sigma_with_attacks_rejected(self, detector, benign_images, attack_images):
        with pytest.raises(CalibrationError, match="midpoint"):
            detector.calibrate(benign_images, attack_images, strategy="sigma")

    def test_unknown_strategy_rejected(self, detector, benign_images):
        with pytest.raises(CalibrationError, match="unknown strategy"):
            detector.calibrate(benign_images, strategy="quantile")


class TestEnsembleAndScanner:
    def test_ensemble_returns_rules_without_steganalysis(self, benign_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        rules = ensemble.calibrate(benign_images, percentile=5.0)
        assert set(rules) == {"scaling/mse", "filtering/ssim"}
        assert all(d.is_calibrated for d in ensemble.detectors)

    def test_scanner_strategy_plumbed_through(self, benign_images, attack_images):
        scanner = MultiScaleScanner([MODEL_INPUT], algorithm="bilinear")
        scanner.calibrate(benign_images, attack_images)
        reference = ScalingDetector(MODEL_INPUT, metric="mse").calibrate(
            benign_images, attack_images
        )
        assert scanner.detectors[MODEL_INPUT].threshold.value == reference.value


class TestRemovedSpellings:
    """The PR-1 deprecation cycle ended: the method shims are gone.

    The *module-level* threshold helpers in ``repro.core.thresholds``
    (``calibrate_whitebox``/``calibrate_blackbox``) are stable API and
    must keep working — only the detector/ensemble/scanner method shims
    and the pipeline kwarg were scheduled for removal.
    """

    def test_detector_shims_removed(self, detector):
        assert not hasattr(detector, "calibrate_whitebox")
        assert not hasattr(detector, "calibrate_blackbox")

    def test_ensemble_and_scanner_shims_removed(self):
        ensemble = build_default_ensemble(MODEL_INPUT)
        assert not hasattr(ensemble, "calibrate_whitebox")
        assert not hasattr(ensemble, "calibrate_blackbox")
        scanner = MultiScaleScanner([MODEL_INPUT], algorithm="bilinear")
        assert not hasattr(scanner, "calibrate_blackbox")

    def test_pipeline_attack_examples_kwarg_removed(self, benign_images, attack_images):
        pipeline = ProtectedPipeline(MODEL_INPUT)
        with pytest.raises(TypeError, match="attack_examples"):
            pipeline.calibrate(benign_images, attack_examples=attack_images)

    def test_module_level_functions_survive(self, benign_images, attack_images, detector):
        benign_scores = [detector.score(i) for i in benign_images]
        attack_scores = [detector.score(i) for i in attack_images]
        rule = calibrate_whitebox(
            benign_scores, attack_scores, direction=Direction.GREATER
        )
        assert rule.direction is Direction.GREATER

    def test_new_spellings_do_not_warn(self, benign_images, attack_images):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            ScalingDetector(MODEL_INPUT, metric="mse").calibrate(benign_images)
            build_default_ensemble(MODEL_INPUT).calibrate(benign_images, attack_images)
            scanner = MultiScaleScanner([MODEL_INPUT], algorithm="bilinear")
            scanner.calibrate(benign_images)
            pipeline = ProtectedPipeline(MODEL_INPUT)
            pipeline.calibrate(benign_images, attack_images)
