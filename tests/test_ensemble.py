"""Unit tests for the majority-vote ensemble."""

import numpy as np
import pytest

from repro.core.detector import Detector
from repro.core.ensemble import DetectionEnsemble, build_default_ensemble
from repro.core.result import Direction, ThresholdRule
from repro.errors import DetectionError

from tests.conftest import MODEL_INPUT


class _StubDetector(Detector):
    """Always votes the way it is told — for vote-logic tests."""

    method = "stub"
    metric = "stub"

    def __init__(self, votes_attack: bool) -> None:
        direction = Direction.GREATER
        # score 1.0 vs threshold 0.5 (attack) or 2.0 (benign)
        super().__init__(ThresholdRule(0.5 if votes_attack else 2.0, direction))
        self._votes_attack = votes_attack

    @property
    def attack_direction(self) -> Direction:
        return Direction.GREATER

    def score_from(self, analysis) -> float:
        return 1.0


class TestVotingLogic:
    def test_unanimous_attack(self):
        ensemble = DetectionEnsemble([_StubDetector(True)] * 3)
        decision = ensemble.detect(np.zeros((4, 4)))
        assert decision.is_attack
        assert decision.votes_for_attack == 3

    def test_majority_two_of_three(self):
        ensemble = DetectionEnsemble(
            [_StubDetector(True), _StubDetector(True), _StubDetector(False)]
        )
        assert ensemble.is_attack(np.zeros((4, 4)))

    def test_minority_one_of_three(self):
        ensemble = DetectionEnsemble(
            [_StubDetector(True), _StubDetector(False), _StubDetector(False)]
        )
        assert not ensemble.is_attack(np.zeros((4, 4)))

    def test_single_detector_ensemble(self):
        ensemble = DetectionEnsemble([_StubDetector(True)])
        assert ensemble.is_attack(np.zeros((4, 4)))

    def test_even_count_rejected(self):
        with pytest.raises(DetectionError, match="odd"):
            DetectionEnsemble([_StubDetector(True), _StubDetector(False)])

    def test_empty_rejected(self):
        with pytest.raises(DetectionError, match="at least one"):
            DetectionEnsemble([])

    def test_explain_mentions_votes(self):
        ensemble = DetectionEnsemble([_StubDetector(True)] * 3)
        text = ensemble.detect(np.zeros((4, 4))).explain()
        assert "3/3" in text
        assert "ATTACK" in text


class TestDefaultEnsemble:
    def test_composition(self):
        ensemble = build_default_ensemble(MODEL_INPUT)
        methods = [d.method for d in ensemble.detectors]
        assert methods == ["scaling", "filtering", "steganalysis"]

    def test_whitebox_end_to_end(self, benign_images, attack_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(benign_images, attack_images)
        assert all(ensemble.is_attack(img) for img in attack_images)
        benign_flags = [ensemble.is_attack(img) for img in benign_images]
        assert np.mean(benign_flags) <= 0.2

    def test_blackbox_end_to_end(self, benign_images, attack_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(benign_images, percentile=5.0)
        attack_flags = [ensemble.is_attack(img) for img in attack_images]
        assert np.mean(attack_flags) >= 0.8

    def test_steganalysis_keeps_fixed_threshold_after_calibration(
        self, benign_images, attack_images
    ):
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(benign_images, attack_images)
        steg = next(d for d in ensemble.detectors if d.method == "steganalysis")
        assert steg.threshold.value == 2.0
