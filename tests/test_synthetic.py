"""Unit tests for the synthetic scene/class image generators."""

import numpy as np
import pytest

from repro.datasets.synthetic import FAMILIES, generate_class_image, generate_image
from repro.errors import ImageError


class TestGenerateImage:
    def test_shape_dtype_range(self):
        image = generate_image((64, 48), np.random.default_rng(0))
        assert image.shape == (64, 48, 3)
        assert image.dtype == np.uint8

    def test_deterministic(self):
        a = generate_image((32, 32), np.random.default_rng(42))
        b = generate_image((32, 32), np.random.default_rng(42))
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = generate_image((32, 32), np.random.default_rng(1))
        b = generate_image((32, 32), np.random.default_rng(2))
        assert not np.array_equal(a, b)

    def test_families_have_distinct_statistics(self):
        neurips = [generate_image((64, 64), np.random.default_rng(i), family="neurips") for i in range(8)]
        caltech = [generate_image((64, 64), np.random.default_rng(i), family="caltech") for i in range(8)]
        # Same seed, different family => different image.
        assert not np.array_equal(neurips[0], caltech[0])

    def test_unknown_family(self):
        with pytest.raises(ImageError, match="family"):
            generate_image((32, 32), np.random.default_rng(0), family="imagenet")

    def test_too_small_rejected(self):
        with pytest.raises(ImageError, match="at least"):
            generate_image((4, 4), np.random.default_rng(0))

    def test_images_use_dynamic_range(self):
        image = generate_image((64, 64), np.random.default_rng(9))
        assert image.max() - image.min() > 60

    def test_natural_spectrum_decay(self):
        """Generated scenes must have photo-like 1/f spectra (the property
        the detectors rely on)."""
        from repro.imaging.color import to_grayscale

        image = to_grayscale(generate_image((128, 128), np.random.default_rng(4)))
        spectrum = np.abs(np.fft.fftshift(np.fft.fft2(image - image.mean())))
        center_energy = spectrum[48:80, 48:80].sum() / spectrum.sum()
        # The central 1/16 of the plane must hold far more than 1/16 of the
        # energy (white noise would give ~0.0625).
        assert center_energy > 0.3


class TestGenerateClassImage:
    def test_all_classes_generate(self):
        rng = np.random.default_rng(0)
        for class_id in range(10):
            image = generate_class_image((32, 32), rng, class_id)
            assert image.shape == (32, 32, 3)

    def test_class_out_of_range(self):
        with pytest.raises(ImageError, match="out of range"):
            generate_class_image((32, 32), np.random.default_rng(0), 10)

    def test_classes_are_visually_distinct(self):
        """Mean color/structure must differ enough for a CNN to learn."""
        rng = np.random.default_rng(1)
        means = [
            generate_class_image((32, 32), rng, c).mean(axis=(0, 1))
            for c in range(10)
        ]
        distances = [
            np.linalg.norm(means[i] - means[j])
            for i in range(10)
            for j in range(i + 1, 10)
        ]
        assert np.median(distances) > 20.0

    def test_same_class_varies(self):
        rng = np.random.default_rng(2)
        a = generate_class_image((32, 32), rng, 3)
        b = generate_class_image((32, 32), rng, 3)
        assert not np.array_equal(a, b)


def test_family_registry_is_consistent():
    assert set(FAMILIES) == {"neurips", "caltech"}
    for name, config in FAMILIES.items():
        assert config.name == name
        assert config.noise_std >= 0
