"""Client retry-discipline tests against a scripted misbehaving server.

The :class:`~tests.fault_injection.ScriptedServer` plays back exact
adversity — 429 with ``Retry-After``, bare 503s, TCP resets, a slow-loris
dribble — while :class:`~tests.fault_injection.FakeTime` replaces the
client module's ``time`` so every backoff sleep is recorded instead of
slept. That makes the backoff *schedule* a first-class assertion: not
"it eventually worked" but "it waited exactly these amounts".
"""

from __future__ import annotations

import json

import numpy as np
import pytest

import repro.serving.client as client_module
from repro.errors import ServingError
from repro.serving.client import DetectionClient
from repro.serving.wire import encode_image_payload

from tests.fault_injection import FakeTime, ScriptedServer, reset, response, slow_loris


def _verdict_body(request_id: str = "req-1") -> bytes:
    return json.dumps(
        {
            "request_id": request_id,
            "image_id": request_id,
            "verdict": "benign",
            "action": "accepted",
            "accepted": True,
            "votes_for_attack": 0,
            "votes_total": 3,
            "scores": {"scaling/mse": 1.0},
            "thresholds": {"scaling/mse": "<= 2.0"},
            "latency_ms": 1.0,
        }
    ).encode("utf-8")


@pytest.fixture
def fake_time(monkeypatch) -> FakeTime:
    fake = FakeTime()
    monkeypatch.setattr(client_module, "time", fake)
    return fake


@pytest.fixture
def image() -> np.ndarray:
    return np.random.default_rng(3).integers(0, 256, size=(8, 8), dtype=np.uint8)


class TestBackoffSchedule:
    def test_retry_after_header_is_honored(self, fake_time, image):
        """Two 429s carrying Retry-After: the client must wait the
        advertised amount (capped by backoff_max_s), not its own curve."""
        script = [
            response(429, b'{"error": "queue full"}', headers={"Retry-After": "1"}),
            response(429, b'{"error": "queue full"}', headers={"Retry-After": "7"}),
            response(200, _verdict_body()),
        ]
        with ScriptedServer(script) as server:
            with DetectionClient(
                *server.address, max_retries=5, backoff_base_s=0.05, backoff_max_s=2.0
            ) as client:
                verdict = client.detect(image)
        assert verdict.action == "accepted"
        # First wait = the header verbatim; second = header capped at max.
        assert fake_time.sleeps == [1.0, 2.0]

    def test_503_without_header_follows_exponential_curve(self, fake_time, image):
        script = [response(503, b'{"error": "draining"}')] * 3 + [
            response(200, _verdict_body())
        ]
        with ScriptedServer(script) as server:
            with DetectionClient(
                *server.address, max_retries=5, backoff_base_s=0.05, backoff_max_s=2.0
            ) as client:
                client.detect(image)
        assert fake_time.sleeps == [0.05, 0.1, 0.2]  # base * 2**attempt

    def test_exhaustion_raises_serving_error_with_bounded_waits(
        self, fake_time, image
    ):
        script = [response(503, b'{"error": "down"}')] * 10
        with ScriptedServer(script) as server:
            with DetectionClient(
                *server.address, max_retries=3, backoff_base_s=0.1, backoff_max_s=0.4
            ) as client:
                with pytest.raises(ServingError, match="HTTP 503"):
                    client.detect(image)
            assert server.requests_seen == 4  # 1 try + 3 retries, then stop
        # Every wait respects the cap; total retry time is bounded.
        assert fake_time.sleeps == [0.1, 0.2, 0.4]
        assert sum(fake_time.sleeps) <= 3 * 0.4

    def test_bad_request_is_terminal_not_retried(self, fake_time, image):
        script = [response(400, b'{"error": "not an image"}')]
        with ScriptedServer(script) as server:
            with DetectionClient(*server.address, max_retries=5) as client:
                with pytest.raises(ServingError, match="HTTP 400"):
                    client.detect(image)
            assert server.requests_seen == 1
        assert fake_time.sleeps == []


class TestTransportFaults:
    def test_connection_reset_retried_then_succeeds(self, fake_time, image):
        script = [reset(), reset(), response(200, _verdict_body())]
        with ScriptedServer(script) as server:
            with DetectionClient(
                *server.address, max_retries=5, backoff_base_s=0.05
            ) as client:
                verdict = client.detect(image)
        assert verdict.verdict == "benign"
        assert fake_time.sleeps == [0.05, 0.1]

    def test_reset_storm_exhausts_into_transport_error(self, fake_time, image):
        script = [reset()] * 8
        with ScriptedServer(script) as server:
            with DetectionClient(
                *server.address, max_retries=2, backoff_base_s=0.05
            ) as client:
                with pytest.raises(ServingError, match="transport error"):
                    client.detect(image)
            assert server.requests_seen == 3
        assert len(fake_time.sleeps) == 2

    def test_slow_loris_times_out_retries_and_stays_bounded(self, image):
        """A server stalling 500 ms between bytes against a 0.2 s socket
        timeout: the read must time out (not wait out the full dribble),
        retry, and win on the replacement connection. Real time here —
        socket timeouts live below the mocked layer."""
        script = [slow_loris(chunk_delay_s=0.5, chunks=20), response(200, _verdict_body())]
        import time as real_time

        with ScriptedServer(script) as server:
            start = real_time.monotonic()
            with DetectionClient(
                *server.address,
                timeout_s=0.2,
                max_retries=3,
                backoff_base_s=0.01,
                backoff_max_s=0.05,
            ) as client:
                verdict = client.detect(image)
            elapsed = real_time.monotonic() - start
        assert verdict.action == "accepted"
        # Far below the 10 s the full dribble would take: the timeout cut
        # the loris off, and the retry budget bounded the rest.
        assert elapsed < 4.0

    def test_non_json_success_body_is_a_clean_error(self, fake_time, image):
        script = [response(200, b"<html>proxy burp</html>")]
        with ScriptedServer(script) as server:
            with DetectionClient(*server.address, max_retries=0) as client:
                with pytest.raises(ServingError, match="non-JSON response"):
                    client.detect(image)

    def test_payload_and_image_are_mutually_exclusive(self, image):
        client = DetectionClient("127.0.0.1", 1)
        with pytest.raises(ServingError, match="exactly one"):
            client.detect(image, payload=encode_image_payload(image))
        with pytest.raises(ServingError, match="exactly one"):
            client.detect()
