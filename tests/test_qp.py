"""Unit tests for the attack QP solver."""

import numpy as np
import pytest

from repro.attacks.base import AttackConfig
from repro.attacks.qp import equality_warm_start, max_violation, solve_columns
from repro.errors import AttackError
from repro.imaging.coefficients import scaling_matrix


@pytest.fixture
def coefficients():
    return np.asarray(scaling_matrix(32, 4, "bilinear"))


class TestWarmStart:
    def test_achieves_equality(self, coefficients, rng):
        x0 = rng.uniform(0, 255, (32, 5))
        targets = rng.uniform(0, 255, (4, 5))
        x = equality_warm_start(coefficients, x0, targets)
        assert np.allclose(coefficients @ x, targets, atol=1e-6)

    def test_minimum_norm_property(self, coefficients, rng):
        """The warm start is the closest point to x0 on the constraint set."""
        x0 = rng.uniform(0, 255, (32, 1))
        targets = rng.uniform(0, 255, (4, 1))
        x = equality_warm_start(coefficients, x0, targets)
        # Any other feasible point must be at least as far from x0.
        for _ in range(10):
            perturbation = rng.standard_normal((32, 1))
            # Project perturbation onto the nullspace of C.
            gram = coefficients @ coefficients.T
            nullspace_part = perturbation - coefficients.T @ np.linalg.solve(
                gram, coefficients @ perturbation
            )
            other = x + nullspace_part
            assert np.linalg.norm(other - x0) >= np.linalg.norm(x - x0) - 1e-9

    def test_zero_residual_returns_x0(self, coefficients, rng):
        x0 = rng.uniform(0, 255, (32, 3))
        targets = coefficients @ x0
        x = equality_warm_start(coefficients, x0, targets)
        assert np.allclose(x, x0)


class TestMaxViolation:
    def test_zero_when_inside_band(self, coefficients, rng):
        x = rng.uniform(0, 255, (32, 2))
        targets = coefficients @ x
        assert max_violation(coefficients, x, targets, epsilon=1.0) == 0.0

    def test_positive_when_outside(self, coefficients):
        x = np.zeros((32, 1))
        targets = np.full((4, 1), 100.0)
        assert max_violation(coefficients, x, targets, epsilon=10.0) == pytest.approx(90.0)


class TestSolveColumns:
    def test_constraints_and_box(self, coefficients, rng):
        config = AttackConfig(epsilon=2.0)
        x0 = rng.uniform(0, 255, (32, 8))
        targets = rng.uniform(20, 235, (4, 8))
        x = solve_columns(coefficients, x0, targets, config)
        assert max_violation(coefficients, x, targets, config.epsilon) <= config.tolerance
        assert x.min() >= 0.0
        assert x.max() <= 255.0

    def test_perturbation_is_sparse_for_bilinear(self, coefficients, rng):
        """Only scaler-read source rows should move (minimal distortion)."""
        config = AttackConfig(epsilon=2.0)
        x0 = rng.uniform(50, 200, (32, 4))
        targets = rng.uniform(20, 235, (4, 4))
        x = solve_columns(coefficients, x0, targets, config)
        moved = np.abs(x - x0).max(axis=1) > 1e-6
        used = np.abs(coefficients).sum(axis=0) > 1e-12
        assert not np.any(moved & ~used)

    def test_feasible_start_returns_immediately(self, coefficients, rng):
        config = AttackConfig(epsilon=5.0)
        x0 = rng.uniform(0, 255, (32, 3))
        targets = coefficients @ x0
        x = solve_columns(coefficients, x0, targets, config)
        assert np.allclose(x, x0)

    def test_unreachable_target_raises(self, coefficients):
        """A pitch-black original cannot be scaled to pure white without
        exceeding the box... unless the kernel can reach it; use an
        infeasible ε=0-like band with conflicting targets instead."""
        config = AttackConfig(epsilon=0.01, max_iterations=30, penalty_rounds=2)
        x0 = np.zeros((32, 1))
        # Target beyond the box maximum is unreachable: weights sum to 1,
        # so C @ x <= 255 always.
        targets = np.full((4, 1), 400.0)
        with pytest.raises(AttackError, match="did not reach"):
            solve_columns(coefficients, x0, targets, config)

    def test_shape_validation(self, coefficients):
        config = AttackConfig()
        with pytest.raises(AttackError, match="x0 rows"):
            solve_columns(coefficients, np.zeros((10, 2)), np.zeros((4, 2)), config)
        with pytest.raises(AttackError, match="target rows"):
            solve_columns(coefficients, np.zeros((32, 2)), np.zeros((7, 2)), config)
