"""Shared fixtures.

Kept deliberately small: tests use 128x128 "camera" images and 16x16 model
inputs so the whole suite runs in CPU-seconds while exercising the same
ratio-8 downscale regime as the full experiments. (Below ~128px the
spectral geometry of the steganalysis method degenerates — grid peaks merge
with the central blob — so tests do not shrink further.)
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.attacks.strong import craft_attack_image
from repro.datasets.synthetic import generate_image
from repro.imaging.scaling import resize

SOURCE_SHAPE = (128, 128)
MODEL_INPUT = (16, 16)

#: Worker shards for the serving tests' shared server fixture. CI's
#: fault-matrix job runs the suite at 0 (in-process), 1, and 4 so the
#: sharded scoring path is exercised by the same end-to-end tests.
SERVER_WORKERS = int(os.environ.get("REPRO_TEST_WORKERS", "0"))

#: Connection front end for the serving tests' servers: ``"eventloop"``
#: (the selectors loop, the default) or ``"threaded"``. CI's fault-matrix
#: job reruns the suite under both so every end-to-end assertion gates
#: both front ends.
SERVER_FRONTEND = os.environ.get("REPRO_TEST_FRONTEND", "eventloop")

#: Dispatcher ↔ shard transport for sharded runs: ``"shm"`` (slot rings,
#: the default) or ``"pipe"`` (pickled frames). Only observable when
#: ``REPRO_TEST_WORKERS`` > 0.
SERVER_TRANSPORT = os.environ.get("REPRO_TEST_TRANSPORT", "shm")


@pytest.fixture(scope="session", autouse=True)
def _locksan_session():
    """Runtime lock-order sanitizer, armed by ``REPRO_LOCKSAN=1``.

    Wraps every ``threading.Lock/RLock/Condition`` constructed under
    ``src/repro`` for the whole session, dumps the observed acquisition
    graph to ``REPRO_LOCKSAN_OUT`` (for ``tools/analyze.py
    --locksan-check``), and fails the session outright if the observed
    graph contains a cycle. Zero effect when the env var is unset — the
    sanitizer module is not even imported.
    """
    if os.environ.get("REPRO_LOCKSAN") != "1":
        yield
        return
    from repro.testing import locksan

    locksan.install()
    try:
        yield
    finally:
        out = os.environ.get("REPRO_LOCKSAN_OUT")
        report = locksan.dump(out) if out else locksan.snapshot()
        locksan.uninstall()
    if report["cycles"]:
        raise pytest.UsageError(
            f"locksan observed lock-order cycle(s): {report['cycles']} "
            f"(locks: {[(l['id'], l['file'], l['line']) for l in report['locks']]})"
        )


def wait_until(
    predicate,
    *,
    timeout_s: float = 10.0,
    interval_s: float = 0.01,
    message: str = "condition",
):
    """Poll *predicate* until truthy; the replacement for sleep-and-hope.

    Returns the predicate's (truthy) value so callers can assert on it.
    """
    deadline = time.monotonic() + timeout_s
    while True:
        value = predicate()
        if value:
            return value
        if time.monotonic() >= deadline:
            raise AssertionError(f"timed out after {timeout_s}s waiting for {message}")
        time.sleep(interval_s)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def benign_images() -> list[np.ndarray]:
    """Six deterministic synthetic scenes (uint8, 64x64x3)."""
    return [
        generate_image(SOURCE_SHAPE, np.random.default_rng((7, i)), family="neurips")
        for i in range(6)
    ]


@pytest.fixture(scope="session")
def target_images() -> list[np.ndarray]:
    """Targets at the model input size (float, 8x8x3)."""
    sources = [
        generate_image(SOURCE_SHAPE, np.random.default_rng((13, i)), family="caltech")
        for i in range(6)
    ]
    return [resize(s, MODEL_INPUT, "bilinear") for s in sources]


@pytest.fixture(scope="session")
def attack_images(benign_images, target_images) -> list[np.ndarray]:
    """One bilinear attack image per benign/target pair."""
    return [
        craft_attack_image(original, target, algorithm="bilinear").attack_image
        for original, target in zip(benign_images, target_images)
    ]


@pytest.fixture
def gray_image(rng) -> np.ndarray:
    """A smooth grayscale test image (float, 40x40)."""
    yy, xx = np.mgrid[0:40, 0:40]
    return 120.0 + 60.0 * np.sin(xx / 9.0) + 40.0 * np.cos(yy / 7.0)


@pytest.fixture
def color_image(rng) -> np.ndarray:
    """A random-but-smooth color test image (uint8, 40x48x3)."""
    base = rng.integers(30, 220, size=(10, 12, 3)).astype(np.float64)
    return np.clip(resize(base, (40, 48), "bicubic"), 0, 255).astype(np.uint8)
