"""Unit tests for repro.imaging.metrics."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.metrics import histogram_intersection, mse, psnr, ssim


class TestMse:
    def test_identical_images(self, color_image):
        assert mse(color_image, color_image) == 0.0

    def test_known_value(self):
        a = np.zeros((2, 2))
        b = np.full((2, 2), 10.0)
        assert mse(a, b) == 100.0

    def test_symmetry(self, rng):
        a = rng.uniform(0, 255, (8, 8))
        b = rng.uniform(0, 255, (8, 8))
        assert mse(a, b) == pytest.approx(mse(b, a))

    def test_shape_mismatch(self):
        with pytest.raises(ImageError, match="share a shape"):
            mse(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_uint8_and_float_agree(self):
        a = np.array([[10, 20]], dtype=np.uint8)
        b = np.array([[12.0, 25.0]])
        assert mse(a, b) == pytest.approx((4 + 25) / 2)


class TestPsnr:
    def test_identical_is_infinite(self, gray_image):
        assert psnr(gray_image, gray_image) == float("inf")

    def test_known_value(self):
        a = np.zeros((4, 4))
        b = np.full((4, 4), 255.0)
        assert psnr(a, b) == pytest.approx(0.0, abs=1e-9)

    def test_monotone_in_error(self, rng):
        a = rng.uniform(0, 255, (16, 16))
        small = a + 1.0
        large = a + 10.0
        assert psnr(a, small) > psnr(a, large)


class TestSsim:
    def test_identical_is_one(self, color_image):
        assert ssim(color_image, color_image) == pytest.approx(1.0)

    def test_bounded(self, rng):
        a = rng.uniform(0, 255, (32, 32))
        b = rng.uniform(0, 255, (32, 32))
        value = ssim(a, b)
        assert -1.0 <= value <= 1.0

    def test_inverted_image_scores_low(self, gray_image):
        assert ssim(gray_image, 255.0 - gray_image) < 0.1

    def test_small_noise_scores_high(self, gray_image, rng):
        noisy = gray_image + rng.normal(0, 1.0, gray_image.shape)
        assert ssim(gray_image, noisy) > 0.9

    def test_more_distortion_scores_lower(self, gray_image, rng):
        mild = gray_image + rng.normal(0, 5, gray_image.shape)
        heavy = gray_image + rng.normal(0, 40, gray_image.shape)
        assert ssim(gray_image, mild) > ssim(gray_image, heavy)

    def test_symmetry(self, rng):
        a = rng.uniform(0, 255, (20, 20))
        b = a + rng.normal(0, 10, a.shape)
        assert ssim(a, b) == pytest.approx(ssim(b, a))

    def test_tiny_image_fallback_window(self):
        a = np.random.default_rng(0).uniform(0, 255, (5, 5))
        assert ssim(a, a) == pytest.approx(1.0)

    def test_color_averages_channels(self, rng):
        a = rng.uniform(0, 255, (20, 20, 3))
        per_channel = np.mean([ssim(a[:, :, c], a[:, :, c]) for c in range(3)])
        assert ssim(a, a) == pytest.approx(per_channel)


class TestHistogramIntersection:
    def test_identical_is_one(self, color_image):
        assert histogram_intersection(color_image, color_image) == pytest.approx(1.0)

    def test_disjoint_is_zero(self):
        a = np.zeros((8, 8))
        b = np.full((8, 8), 200.0)
        assert histogram_intersection(a, b) == pytest.approx(0.0)

    def test_permutation_invariant(self, rng):
        a = rng.uniform(0, 255, (16, 16))
        shuffled = rng.permutation(a.ravel()).reshape(a.shape)
        # Same pixels, different positions: histogram identical.
        assert histogram_intersection(a, shuffled) == pytest.approx(1.0)

    def test_bounded(self, rng):
        a = rng.uniform(0, 255, (12, 12, 3))
        b = rng.uniform(0, 255, (12, 12, 3))
        value = histogram_intersection(a, b)
        assert 0.0 <= value <= 1.0
