"""The resource sampler against synthetic ``/proc`` fixtures.

No real processes: a temp directory stands in for ``/proc`` (the
``proc_root`` seam on :func:`repro.observability.read_process_stats`), so
CPU/RSS/fd parsing, dead-process pruning, and series assembly are all
asserted deterministically.
"""

from __future__ import annotations

import shutil
from pathlib import Path

import pytest

from repro.errors import LoadLabError
from repro.loadlab import ResourceSampler
from repro.loadlab.sampler import ResourceSample


def write_proc_entry(
    root: Path,
    pid: int,
    *,
    utime: int = 100,
    stime: int = 20,
    vmrss_kb: int = 4096,
    fds: int = 5,
) -> Path:
    proc = root / str(pid)
    fd_dir = proc / "fd"
    fd_dir.mkdir(parents=True, exist_ok=True)
    after_comm = (
        f"S 1 {pid} {pid} 0 -1 4194304 100 0 0 0 {utime} {stime} 0 0 "
        f"20 0 3 0 12345 1000000 999 18446744073709551615"
    )
    (proc / "stat").write_text(f"{pid} (worker) {after_comm}\n")
    (proc / "status").write_text(f"Name:\tworker\nVmRSS:\t  {vmrss_kb} kB\n")
    for entry in fd_dir.iterdir():
        entry.unlink()
    for index in range(fds):
        (fd_dir / str(index)).write_text("")
    return proc


class FixedClock:
    """Monotonic time advanced by hand; the sampler only stamps ``t_s``."""

    def __init__(self) -> None:
        self.now = 100.0

    def monotonic(self) -> float:
        return self.now


class TestParsing:
    def test_sample_once_reads_every_role(self, tmp_path):
        write_proc_entry(tmp_path, 11, utime=100, stime=20, vmrss_kb=4096, fds=5)
        write_proc_entry(tmp_path, 22, utime=300, stime=0, vmrss_kb=1024, fds=2)
        clock = FixedClock()
        sampler = ResourceSampler(
            {"dispatcher": 11, "worker-0": 22},
            period_s=0.1,
            proc_root=str(tmp_path),
            ticks_per_s=100.0,
            clock=clock,
        )
        sampler.sample_once()
        clock.now += 0.5
        sampler.sample_once()
        series = sampler.series()
        assert set(series) == {"dispatcher", "worker-0"}
        first = series["dispatcher"][0]
        assert first.cpu_seconds == pytest.approx(1.2)
        assert first.rss_bytes == 4096 * 1024
        assert first.open_fds == 5
        assert series["worker-0"][0].cpu_seconds == pytest.approx(3.0)
        # t_s stamps come from the injected clock, relative to t0.
        assert series["dispatcher"][1].t_s - first.t_s == pytest.approx(0.5)

    def test_cpu_increases_across_samples(self, tmp_path):
        write_proc_entry(tmp_path, 11, utime=100, stime=0)
        sampler = ResourceSampler(
            {"p": 11}, proc_root=str(tmp_path), ticks_per_s=100.0,
            clock=FixedClock(),
        )
        sampler.sample_once()
        write_proc_entry(tmp_path, 11, utime=250, stime=0)
        sampler.sample_once()
        cpu = [sample.cpu_seconds for sample in sampler.series()["p"]]
        assert cpu == [pytest.approx(1.0), pytest.approx(2.5)]


class TestLifecycle:
    def test_dead_process_keeps_series_up_to_death(self, tmp_path):
        proc = write_proc_entry(tmp_path, 33)
        sampler = ResourceSampler(
            {"shard": 33}, proc_root=str(tmp_path), ticks_per_s=100.0,
            clock=FixedClock(),
        )
        sampler.sample_once()
        shutil.rmtree(proc)  # the shard "crashed"
        sampler.sample_once()
        sampler.sample_once()
        series = sampler.series()["shard"]
        assert len(series) == 1  # the pre-death sample survives

    def test_start_stop_thread_produces_samples(self, tmp_path):
        write_proc_entry(tmp_path, 44)
        sampler = ResourceSampler(
            {"p": 44}, period_s=0.02, proc_root=str(tmp_path), ticks_per_s=100.0
        )
        sampler.start()
        import time

        time.sleep(0.1)
        series = sampler.stop()
        # Baseline at start + periodic polls + the final post-stop sample.
        assert len(series["p"]) >= 3
        with pytest.raises(LoadLabError, match="already started"):
            # A stopped sampler may be restarted exactly once per instance;
            # double-start within a run is a bug.
            sampler.start()
            sampler.start()

    def test_rejects_empty_pid_set_and_bad_period(self):
        with pytest.raises(LoadLabError, match="at least one pid"):
            ResourceSampler({})
        with pytest.raises(LoadLabError, match="period_s"):
            ResourceSampler({"p": 1}, period_s=0.0)


class TestSampleDict:
    def test_as_dict_rounds_and_keeps_keys(self):
        sample = ResourceSample(
            t_s=1.23456789, cpu_seconds=0.987654321, rss_bytes=2048.0, open_fds=7.0
        )
        payload = sample.as_dict()
        assert payload == {
            "t_s": 1.2346,
            "cpu_seconds": 0.9877,
            "rss_bytes": 2048.0,
            "open_fds": 7.0,
        }
