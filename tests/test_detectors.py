"""Unit tests for the three Decamouflage detectors."""

import numpy as np
import pytest

from repro.core.filtering_detector import FilteringDetector
from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import DEFAULT_CSP_THRESHOLD, SteganalysisDetector
from repro.errors import DetectionError

from tests.conftest import MODEL_INPUT


class TestScalingDetector:
    def test_scores_separate_populations(self, benign_images, attack_images):
        detector = ScalingDetector(MODEL_INPUT, metric="mse")
        benign_scores = detector.scores(benign_images)
        attack_scores = detector.scores(attack_images)
        assert max(benign_scores) < min(attack_scores)

    def test_ssim_direction(self, benign_images, attack_images):
        detector = ScalingDetector(MODEL_INPUT, metric="ssim")
        assert detector.attack_direction is Direction.LESS
        assert np.mean(detector.scores(attack_images)) < np.mean(detector.scores(benign_images))

    def test_whitebox_calibration_perfect_on_train(self, benign_images, attack_images):
        detector = ScalingDetector(MODEL_INPUT, metric="mse")
        detector.calibrate(benign_images, attack_images)
        assert all(not detector.is_attack(img) for img in benign_images)
        assert all(detector.is_attack(img) for img in attack_images)

    def test_blackbox_calibration(self, benign_images, attack_images):
        detector = ScalingDetector(MODEL_INPUT, metric="mse")
        detector.calibrate(benign_images, percentile=10.0)
        assert all(detector.is_attack(img) for img in attack_images)

    def test_uncalibrated_raises(self, benign_images):
        detector = ScalingDetector(MODEL_INPUT)
        with pytest.raises(DetectionError, match="no threshold"):
            detector.detect(benign_images[0])

    def test_invalid_metric(self):
        with pytest.raises(DetectionError, match="mse or ssim"):
            ScalingDetector(MODEL_INPUT, metric="psnr")

    def test_threshold_direction_validated(self):
        detector = ScalingDetector(MODEL_INPUT, metric="mse")
        with pytest.raises(DetectionError, match="direction"):
            detector.threshold = ThresholdRule(1.0, Direction.LESS)

    def test_detection_object_fields(self, benign_images, attack_images):
        detector = ScalingDetector(MODEL_INPUT, metric="mse")
        detector.calibrate(benign_images, attack_images)
        detection = detector.detect(attack_images[0])
        assert detection.method == "scaling"
        assert detection.metric == "mse"
        assert detection.is_attack
        assert detection.score >= detection.threshold.value


class TestFilteringDetector:
    def test_scores_separate_populations(self, benign_images, attack_images):
        detector = FilteringDetector(metric="ssim")
        benign_scores = detector.scores(benign_images)
        attack_scores = detector.scores(attack_images)
        assert np.mean(attack_scores) < np.mean(benign_scores)

    def test_minimum_filter_is_default(self):
        assert FilteringDetector().filter_name == "minimum"

    def test_other_filters_accepted(self, benign_images):
        detector = FilteringDetector(filter_name="median", filter_size=3, metric="mse")
        assert detector.score(benign_images[0]) >= 0.0

    def test_unknown_filter(self):
        with pytest.raises(DetectionError, match="unknown filter"):
            FilteringDetector(filter_name="sobel")

    def test_whitebox_calibration(self, benign_images, attack_images):
        detector = FilteringDetector(metric="ssim")
        detector.calibrate(benign_images, attack_images)
        flags = [detector.is_attack(img) for img in attack_images]
        assert np.mean(flags) >= 0.8


class TestSteganalysisDetector:
    def test_born_calibrated(self, benign_images):
        detector = SteganalysisDetector()
        assert detector.is_calibrated
        assert detector.threshold.value == DEFAULT_CSP_THRESHOLD

    def test_benign_mostly_pass(self, benign_images):
        detector = SteganalysisDetector()
        flags = [detector.is_attack(img) for img in benign_images]
        assert np.mean(flags) <= 0.4

    def test_attacks_mostly_flagged(self, attack_images):
        detector = SteganalysisDetector()
        flags = [detector.is_attack(img) for img in attack_images]
        assert np.mean(flags) >= 0.6

    def test_scores_are_integral(self, benign_images):
        detector = SteganalysisDetector()
        score = detector.score(benign_images[0])
        assert score == int(score)
        assert score >= 1.0
