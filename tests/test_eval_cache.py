"""Unit tests for the content-addressed experiment cache."""

import numpy as np
import pytest

from repro.errors import EvalError
from repro.eval.cache import ExperimentCache, cache_key
from repro.observability import Metrics


class TestCacheKey:
    def test_stable_across_dict_ordering(self):
        a = cache_key("kind", {"x": 1, "y": [1, 2], "z": "s"})
        b = cache_key("kind", {"z": "s", "y": [1, 2], "x": 1})
        assert a == b

    def test_config_change_changes_key(self):
        base = cache_key("kind", {"epsilon": 4.0, "seed": 0})
        assert cache_key("kind", {"epsilon": 8.0, "seed": 0}) != base
        assert cache_key("kind", {"epsilon": 4.0, "seed": 1}) != base

    def test_kind_isolates_namespaces(self):
        config = {"n": 3}
        assert cache_key("attack-set", config) != cache_key("calibration", config)

    def test_numpy_scalars_canonicalized(self):
        assert cache_key("k", {"n": np.int64(3), "e": np.float64(4.0)}) == cache_key(
            "k", {"n": 3, "e": 4.0}
        )

    def test_tuples_and_lists_equivalent(self):
        assert cache_key("k", {"shape": (64, 64)}) == cache_key("k", {"shape": [64, 64]})

    def test_version_bump_invalidates(self, monkeypatch):
        before = cache_key("k", {"n": 1})
        monkeypatch.setattr("repro.eval.cache.CACHE_VERSION", 999)
        assert cache_key("k", {"n": 1}) != before


class TestExperimentCache:
    def test_array_round_trip_bit_exact(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        rng = np.random.default_rng(0)
        arrays = {"benign": rng.random((3, 8, 8, 3)), "skipped": np.array([1, 4])}
        cache.store_arrays("attack-set", {"n": 3}, arrays)
        loaded = cache.load_arrays("attack-set", {"n": 3})
        assert loaded is not None
        np.testing.assert_array_equal(loaded["benign"], arrays["benign"])
        np.testing.assert_array_equal(loaded["skipped"], arrays["skipped"])

    def test_miss_then_hit_counters(self, tmp_path):
        cache = ExperimentCache(tmp_path, metrics=Metrics())
        assert cache.load_arrays("attack-set", {"n": 1}) is None
        cache.store_arrays("attack-set", {"n": 1}, {"x": np.zeros(2)})
        assert cache.load_arrays("attack-set", {"n": 1}) is not None
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert stats["counters"]["cache.attack-set.store"] == 1

    def test_config_change_is_a_miss(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cache.store_arrays("attack-set", {"epsilon": 4.0}, {"x": np.ones(2)})
        assert cache.load_arrays("attack-set", {"epsilon": 8.0}) is None

    def test_corrupted_array_entry_regenerates_cleanly(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cache.store_arrays("attack-set", {"n": 1}, {"x": np.arange(4.0)})
        entry = next(tmp_path.glob("attack-set-*.npz"))
        entry.write_bytes(b"not a zip archive")
        assert cache.load_arrays("attack-set", {"n": 1}) is None
        assert not entry.exists()  # deleted, not left to poison every run
        assert cache.stats()["counters"]["cache.attack-set.corrupt"] == 1
        # the normal build path stores a fresh entry and it round-trips
        cache.store_arrays("attack-set", {"n": 1}, {"x": np.arange(4.0)})
        assert cache.load_arrays("attack-set", {"n": 1}) is not None

    def test_corrupted_json_entry_regenerates_cleanly(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cache.store_json("calibration", {"m": "mse"}, {"value": 1.5, "direction": ">"})
        entry = next(tmp_path.glob("calibration-*.json"))
        entry.write_text("{truncated", encoding="utf-8")
        assert cache.load_json("calibration", {"m": "mse"}) is None
        assert not entry.exists()

    def test_json_round_trip(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cache.store_json("calibration", {"m": "mse"}, {"value": 2.25, "direction": ">"})
        assert cache.load_json("calibration", {"m": "mse"}) == {
            "value": 2.25,
            "direction": ">",
        }

    def test_no_temp_files_left_behind(self, tmp_path):
        cache = ExperimentCache(tmp_path)
        cache.store_arrays("attack-set", {"n": 1}, {"x": np.zeros(3)})
        cache.store_json("calibration", {"m": "x"}, {"value": 1.0})
        assert list(tmp_path.glob("*.tmp")) == []

    def test_unwritable_root_raises_eval_error(self, tmp_path):
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("file, not directory")
        with pytest.raises(EvalError, match="not writable"):
            ExperimentCache(blocker / "cache")
