"""Lifecycle tests for the HTTP detection service (server + client).

Real sockets on ephemeral ports, no mocks: every test starts a
:class:`DetectionServer` wrapping a calibrated pipeline, talks to it
through :class:`DetectionClient`, and shuts it down.

The shared ``served`` fixture honors ``REPRO_TEST_WORKERS`` (see
``tests/conftest.py``): CI's fault-matrix job reruns this file with the
pipeline sharded across 0, 1, and 4 worker processes, so the same
end-to-end assertions — including bit-for-bit verdict parity — gate the
sharded scoring path.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading

import numpy as np
import pytest

from repro.errors import CodecError, ServingError
from repro.imaging.image import as_uint8
from repro.serving import (
    AuditLog,
    DetectionClient,
    DetectionServer,
    Policy,
    ProtectedPipeline,
    ServerConfig,
)
from repro.serving.wire import (
    decode_image_payload,
    encode_image_payload,
    pack_batch,
    unpack_batch,
)

from tests.conftest import (
    MODEL_INPUT,
    SERVER_FRONTEND,
    SERVER_TRANSPORT,
    SERVER_WORKERS,
    wait_until,
)


def _make_pipeline(benign_images, **kwargs) -> ProtectedPipeline:
    pipeline = ProtectedPipeline(MODEL_INPUT, **kwargs)
    pipeline.calibrate(benign_images, percentile=5.0)
    return pipeline


def _server_config(**kwargs) -> ServerConfig:
    """Ephemeral port; front end, shard count, and transport follow the
    ``REPRO_TEST_FRONTEND`` / ``REPRO_TEST_WORKERS`` / ``REPRO_TEST_TRANSPORT``
    grid (see ``tests/conftest.py``). Tests that gate scoring in-process
    (monkeypatched ``submit`` cannot cross a spawn) pass ``workers=0``."""
    kwargs.setdefault("frontend", SERVER_FRONTEND)
    kwargs.setdefault("transport", SERVER_TRANSPORT)
    kwargs.setdefault("workers", SERVER_WORKERS)
    return ServerConfig(port=0, **kwargs)


@pytest.fixture
def served(benign_images):
    """A running server on an ephemeral port + a connected client."""
    pipeline = _make_pipeline(benign_images)
    server = DetectionServer(pipeline, _server_config())
    server.start()
    client = DetectionClient(*server.address)
    # Worker mode spawns shard processes (cold numpy imports): be patient.
    client.wait_ready(timeout_s=120.0 if SERVER_WORKERS else 10.0)
    yield server, client, pipeline
    client.close()
    server.shutdown()


class TestWire:
    def test_single_payload_round_trip(self, benign_images):
        image = np.asarray(benign_images[0])
        payload = encode_image_payload(image)
        assert np.array_equal(decode_image_payload(payload), image)

    def test_batch_framing_round_trip(self, benign_images):
        payloads = [encode_image_payload(np.asarray(i)) for i in benign_images[:3]]
        assert unpack_batch(pack_batch(payloads)) == payloads
        assert unpack_batch(pack_batch([])) == []

    def test_garbage_rejected(self):
        with pytest.raises(CodecError, match="neither PNG nor netpbm"):
            decode_image_payload(b"definitely not an image")
        with pytest.raises(CodecError, match="truncated"):
            unpack_batch(pack_batch([b"x" * 10])[:-3])


class TestEndToEnd:
    def test_benign_and_attack_detected(self, served, benign_images, attack_images):
        _, client, _ = served
        benign = client.detect(np.asarray(benign_images[0]))
        assert not benign.is_attack
        assert benign.action == "accepted"
        attack = client.detect(as_uint8(attack_images[0]))
        assert attack.is_attack
        assert attack.action == "rejected"
        assert not attack.accepted

    def test_verdict_matches_in_process_submit_bit_for_bit(
        self, served, benign_images, attack_images
    ):
        """The wire adds nothing: scores through the HTTP path equal an
        in-process ``submit()`` on the same pixels, float-for-float (JSON
        round-trips doubles exactly via repr)."""
        _, client, pipeline = served
        for source in (benign_images[0], attack_images[0]):
            image = as_uint8(source)
            local = pipeline.submit(image)
            remote = client.detect(image)
            assert remote.is_attack == local.detection.is_attack
            assert remote.action == local.action
            assert remote.votes_for_attack == local.detection.votes_for_attack
            local_scores = {
                f"{d.method}/{d.metric}": float(d.score)
                for d in local.detection.detections
            }
            assert remote.scores == local_scores  # bit-for-bit, no approx

    def test_batch_matches_single(self, served, benign_images, attack_images):
        _, client, _ = served
        images = [as_uint8(benign_images[0]), as_uint8(attack_images[0])]
        batch = client.detect_batch(images)
        singles = [client.detect(image) for image in images]
        assert [v.verdict for v in batch] == [v.verdict for v in singles]
        assert [v.scores for v in batch] == [v.scores for v in singles]

    def test_request_id_echoed_and_audited(self, benign_images, tmp_path):
        """The audit trail is dispatcher-side accounting, so it must read
        identically whether scoring happened in-process or on a shard."""
        log = AuditLog(tmp_path / "audit.jsonl")
        pipeline = _make_pipeline(benign_images, audit_log=log)
        server = DetectionServer(pipeline, _server_config())
        server.start()
        try:
            with DetectionClient(*server.address) as client:
                client.wait_ready(timeout_s=120.0 if SERVER_WORKERS else 10.0)
                verdict = client.detect(
                    np.asarray(benign_images[0]), request_id="req-42"
                )
            assert verdict.request_id == "req-42"
            assert verdict.image_id == "req-42"
        finally:
            server.shutdown()
        assert [r.image_id for r in log.records()] == ["req-42"]

    def test_bad_body_is_400_not_retried(self, served):
        _, client, _ = served
        with pytest.raises(ServingError, match="400"):
            client.detect(payload=b"not an image at all")

    def test_unknown_path_404(self, served):
        _, client, _ = served
        status, _, _ = client._request("GET", "/nope")
        assert status == 404


class TestHealth:
    def test_ready_payload(self, served):
        _, client, _ = served
        status, payload = client.health()
        assert status == 200
        # The dispatcher advertises its own pid (the load lab's resource
        # sampler discovers what to watch from this payload).
        assert payload.pop("pid") == os.getpid()
        if SERVER_WORKERS:
            workers = payload.pop("workers")
            assert workers["configured"] == SERVER_WORKERS
            assert workers["healthy"] == SERVER_WORKERS
            pids = workers["pids"]
            assert len(pids) == SERVER_WORKERS
            assert all(isinstance(pid, int) and pid > 0 for pid in pids.values())
            assert os.getpid() not in pids.values()  # shards are processes
        assert payload == {
            "ready": True,
            "calibrated": True,
            "draining": False,
            "queue_saturated": False,
        }

    def test_uncalibrated_is_not_ready(self):
        server = DetectionServer(
            ProtectedPipeline(MODEL_INPUT), _server_config(workers=0)
        )
        server.start()
        try:
            with DetectionClient(*server.address) as client:
                status, payload = client.health()
                assert status == 503
                assert payload["calibrated"] is False
                with pytest.raises(ServingError, match="not ready"):
                    client.wait_ready(timeout_s=0.3, poll_s=0.05)
        finally:
            server.shutdown()


def _block_submissions(pipeline, gate: threading.Event, started: threading.Event):
    """Make every submit wait on *gate* (instance-level wrap, test only)."""
    original = pipeline.submit

    def slow_submit(image, **kwargs):
        started.set()
        assert gate.wait(timeout=30.0), "test gate never opened"
        return original(image, **kwargs)

    pipeline.submit = slow_submit


class TestAdmissionControl:
    def test_saturated_queue_429_with_retry_after(self, benign_images):
        pipeline = _make_pipeline(benign_images)
        gate, started = threading.Event(), threading.Event()
        _block_submissions(pipeline, gate, started)
        server = DetectionServer(
            pipeline,
            _server_config(workers=0, max_active=1, queue_depth=0, deadline_ms=30_000),
        )
        server.start()
        image = np.asarray(benign_images[0])
        outcomes: list = []

        def occupy():
            with DetectionClient(*server.address) as client:
                outcomes.append(client.detect(image))

        occupant = threading.Thread(target=occupy)
        try:
            occupant.start()
            assert started.wait(timeout=10.0)
            # The only active slot is held and the waiting room is size 0:
            # an immediate 429 + Retry-After, never a hang.
            with DetectionClient(*server.address, max_retries=0) as probe:
                status, headers, payload = probe._request(
                    "POST",
                    "/v1/detect",
                    body=encode_image_payload(image),
                    headers={"Content-Type": "application/octet-stream"},
                )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "queue full" in json.loads(payload)["error"]
        finally:
            gate.set()
            occupant.join(timeout=30.0)
            server.shutdown()
        assert not occupant.is_alive()
        assert [v.action for v in outcomes] == ["accepted"]

    def test_queue_deadline_503(self, benign_images):
        pipeline = _make_pipeline(benign_images)
        gate, started = threading.Event(), threading.Event()
        _block_submissions(pipeline, gate, started)
        server = DetectionServer(
            pipeline,
            _server_config(workers=0, max_active=1, queue_depth=4, deadline_ms=100),
        )
        server.start()
        image = np.asarray(benign_images[0])

        def occupy():
            with DetectionClient(*server.address) as client:
                client.detect(image)

        occupant = threading.Thread(target=occupy)
        try:
            occupant.start()
            assert started.wait(timeout=10.0)
            with DetectionClient(*server.address, max_retries=0) as probe:
                status, _, payload = probe._request(
                    "POST",
                    "/v1/detect",
                    body=encode_image_payload(image),
                    headers={"Content-Type": "application/octet-stream"},
                )
            assert status == 503
            assert "gave up" in json.loads(payload)["error"]
        finally:
            gate.set()
            occupant.join(timeout=30.0)
            server.shutdown()

    def test_client_retries_through_transient_429(self, benign_images):
        """With retries enabled, the client rides out a temporarily full
        queue and still gets its verdict."""
        pipeline = _make_pipeline(benign_images)
        gate, started = threading.Event(), threading.Event()
        _block_submissions(pipeline, gate, started)
        server = DetectionServer(
            pipeline,
            _server_config(
                workers=0, max_active=1, queue_depth=0, deadline_ms=30_000,
                retry_after_s=0.1,
            ),
        )
        server.start()
        image = np.asarray(benign_images[0])
        outcomes: list = []

        def occupy():
            with DetectionClient(*server.address) as client:
                outcomes.append(client.detect(image))

        occupant = threading.Thread(target=occupy)
        try:
            occupant.start()
            assert started.wait(timeout=10.0)

            def open_after_first_429():
                # Event-driven, not a timer: the gate opens once the
                # retrying client has provably been turned away at least
                # once, so the test asserts a real 429 -> retry -> 200 arc.
                wait_until(
                    lambda: pipeline.metrics.counter("server.responses.429").value >= 1,
                    timeout_s=10.0,
                    message="the retrying client to see its first 429",
                )
                gate.set()

            opener = threading.Thread(target=open_after_first_429)
            opener.start()
            with DetectionClient(
                *server.address, max_retries=8, backoff_base_s=0.05
            ) as client:
                verdict = client.detect(image)
            assert verdict.action == "accepted"
            opener.join(timeout=10.0)
        finally:
            gate.set()
            occupant.join(timeout=30.0)
            server.shutdown()


class TestGracefulDrain:
    def test_drain_finishes_inflight_and_flushes_audit(
        self, benign_images, tmp_path
    ):
        """shutdown() during in-flight requests loses none of them: every
        accepted request gets a 200 and an audit record."""
        log = AuditLog(tmp_path / "audit.jsonl")
        pipeline = _make_pipeline(benign_images, audit_log=log)
        gate, started = threading.Event(), threading.Event()
        _block_submissions(pipeline, gate, started)
        n_inflight = 3
        server = DetectionServer(
            pipeline,
            _server_config(workers=0, max_active=n_inflight, queue_depth=0),
        )
        server.start()
        image = np.asarray(benign_images[0])
        verdicts: list = []
        errors: list = []

        def one(request_id: str):
            try:
                with DetectionClient(*server.address, max_retries=0) as client:
                    verdicts.append(client.detect(image, request_id=request_id))
            except Exception as exc:  # noqa: BLE001 - recorded for the assert
                errors.append(exc)

        threads = [
            threading.Thread(target=one, args=(f"inflight-{i}",))
            for i in range(n_inflight)
        ]
        for thread in threads:
            thread.start()
        # Wait until all three occupy active slots, then drain mid-flight.
        wait_until(
            lambda: pipeline.metrics.gauge("server.in_flight").value == n_inflight,
            timeout_s=10.0,
            message="all in-flight requests to occupy active slots",
        )
        gate.set()
        server.shutdown()  # joins handler threads before flushing the log
        for thread in threads:
            thread.join(timeout=30.0)

        assert errors == []
        assert sorted(v.request_id for v in verdicts) == sorted(
            f"inflight-{i}" for i in range(n_inflight)
        )
        assert all(v.action == "accepted" for v in verdicts)
        audited = sorted(r.image_id for r in log.records())
        assert audited == sorted(f"inflight-{i}" for i in range(n_inflight))

    def test_shutdown_is_idempotent_and_post_drain_refuses(self, benign_images):
        pipeline = _make_pipeline(benign_images)
        server = DetectionServer(pipeline, _server_config())
        server.start()
        host, port = server.address
        server.shutdown()
        server.shutdown()  # second call is a no-op, not an error
        with pytest.raises(ServingError):
            with DetectionClient(host, port, max_retries=1, backoff_base_s=0.01) as c:
                c.detect(np.asarray(benign_images[0]))


# -- front-end parity grid ----------------------------------------------------
#
# The event-loop front end promises responses byte-identical to the
# threaded one. These tests hold the two side by side over raw sockets and
# compare entire response byte strings, normalizing only what is honestly
# volatile: the Date header, measured latencies, and shard pids.

_VOLATILE = (
    (re.compile(rb"Date: [^\r\n]+"), b"Date: <date>"),
    (re.compile(rb'"latency_ms": [-+0-9.eE]+'), b'"latency_ms": <ms>'),
    (re.compile(rb'"pids": \{[^}]*\}'), b'"pids": <pids>'),
)


def _normalize(raw: bytes) -> bytes:
    for pattern, replacement in _VOLATILE:
        raw = pattern.sub(replacement, raw)
    return raw


def _comparable(raw: bytes) -> bytes:
    """A response reduced to its parity-comparable form. ``Content-Length``
    is first checked against the actual body (so it is never wrong, just
    unequal across variable-width latency floats), then normalized along
    with the other volatile fields."""
    head, sep, body = raw.partition(b"\r\n\r\n")
    lines = []
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            assert int(line.split(b":", 1)[1]) == len(body), raw[:200]
            line = b"Content-Length: <n>"
        lines.append(line)
    return _normalize(b"\r\n".join(lines) + sep + body)


def _request_bytes(
    method: str, path: str, headers: list[tuple[str, str]], body: bytes = b""
) -> bytes:
    head = f"{method} {path} HTTP/1.1\r\n"
    head += "".join(f"{name}: {value}\r\n" for name, value in headers)
    return head.encode("ascii") + b"\r\n" + body


def _read_response(sock: socket.socket) -> bytes:
    """Read exactly one HTTP response (head + Content-Length body)."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest[:length]


def _exchange(address: tuple[str, int], requests: list[bytes]) -> list[bytes]:
    """Send requests sequentially over ONE connection; return the responses."""
    with socket.create_connection(address, timeout=30.0) as sock:
        responses = []
        for request in requests:
            sock.sendall(request)
            responses.append(_read_response(sock))
        return responses


_BASE_HEADERS = [("Host", "parity.test"), ("X-Request-Id", "parity-grid")]
_OCTET = ("Content-Type", "application/octet-stream")


def _grid_cases(single: bytes, attack: bytes, batch: bytes, max_body: int) -> dict:
    """Every request shape the grid compares, keyed by case id. Each maps
    to ``(request bytes, expected status line prefix)``."""
    return {
        "get-healthz": (
            _request_bytes("GET", "/healthz", _BASE_HEADERS),
            b"HTTP/1.1 200 ",
        ),
        "get-404": (
            _request_bytes("GET", "/nope", _BASE_HEADERS),
            b"HTTP/1.1 404 ",
        ),
        "post-404": (
            _request_bytes(
                "POST", "/nope", [*_BASE_HEADERS, _OCTET, ("Content-Length", "0")]
            ),
            b"HTTP/1.1 404 ",
        ),
        "detect-benign": (
            _request_bytes(
                "POST",
                "/v1/detect",
                [*_BASE_HEADERS, _OCTET, ("Content-Length", str(len(single)))],
                single,
            ),
            b"HTTP/1.1 200 ",
        ),
        "detect-attack": (
            _request_bytes(
                "POST",
                "/v1/detect",
                [*_BASE_HEADERS, _OCTET, ("Content-Length", str(len(attack)))],
                attack,
            ),
            b"HTTP/1.1 200 ",
        ),
        "detect-batch": (
            _request_bytes(
                "POST",
                "/v1/detect/batch",
                [
                    *_BASE_HEADERS,
                    ("Content-Type", "application/x-decamouflage-batch"),
                    ("Content-Length", str(len(batch))),
                ],
                batch,
            ),
            b"HTTP/1.1 200 ",
        ),
        "bad-body-400": (
            _request_bytes(
                "POST",
                "/v1/detect",
                [*_BASE_HEADERS, _OCTET, ("Content-Length", "9")],
                b"not a png",
            ),
            b"HTTP/1.1 400 ",
        ),
        "missing-length-411": (
            _request_bytes("POST", "/v1/detect", [*_BASE_HEADERS, _OCTET]),
            b"HTTP/1.1 411 ",
        ),
        "invalid-length-400": (
            _request_bytes(
                "POST", "/v1/detect", [*_BASE_HEADERS, _OCTET, ("Content-Length", "abc")]
            ),
            b"HTTP/1.1 400 ",
        ),
        "negative-length-400": (
            _request_bytes(
                "POST", "/v1/detect", [*_BASE_HEADERS, _OCTET, ("Content-Length", "-5")]
            ),
            b"HTTP/1.1 400 ",
        ),
        "oversize-length-413": (
            _request_bytes(
                "POST",
                "/v1/detect",
                [*_BASE_HEADERS, _OCTET, ("Content-Length", str(max_body + 1))],
            ),
            b"HTTP/1.1 413 ",
        ),
        "unsupported-method-501": (
            _request_bytes(
                "DELETE", "/v1/detect", [*_BASE_HEADERS, ("Content-Length", "0")]
            ),
            b"HTTP/1.1 501 ",
        ),
    }


class TestFrontendParity:
    """The two front ends, side by side, over raw sockets."""

    @pytest.fixture(scope="class")
    def parity_pair(self, benign_images, tmp_path_factory):
        """One threaded and one eventloop server over identically
        calibrated pipelines (sharding per the grid), plus their audit
        logs, keyed by frontend name."""
        servers, logs = {}, {}
        try:
            for frontend in ("threaded", "eventloop"):
                log = AuditLog(tmp_path_factory.mktemp(frontend) / "audit.jsonl")
                pipeline = _make_pipeline(benign_images, audit_log=log)
                server = DetectionServer(
                    pipeline,
                    ServerConfig(
                        port=0,
                        workers=SERVER_WORKERS,
                        transport=SERVER_TRANSPORT,
                        frontend=frontend,
                    ),
                )
                server.start()
                servers[frontend], logs[frontend] = server, log
                with DetectionClient(*server.address) as probe:
                    probe.wait_ready(timeout_s=120.0 if SERVER_WORKERS else 10.0)
            yield servers, logs
        finally:
            for server in servers.values():
                server.shutdown()

    @pytest.fixture(scope="class")
    def grid(self, benign_images, attack_images):
        single = encode_image_payload(as_uint8(benign_images[0]))
        attack = encode_image_payload(as_uint8(attack_images[0]))
        batch = pack_batch([single, attack])
        return _grid_cases(
            single, attack, batch, ServerConfig().max_body_bytes
        )

    @pytest.mark.parametrize(
        "case",
        [
            "get-healthz",
            "get-404",
            "post-404",
            "detect-benign",
            "detect-attack",
            "detect-batch",
            "bad-body-400",
            "missing-length-411",
            "invalid-length-400",
            "negative-length-400",
            "oversize-length-413",
            "unsupported-method-501",
        ],
    )
    def test_response_bytes_identical(self, parity_pair, grid, case):
        servers, _ = parity_pair
        request, expected_prefix = grid[case]
        raw = {
            frontend: _exchange(server.address, [request])[0]
            for frontend, server in servers.items()
        }
        # Guard against "identical because both broke the same way".
        for frontend, response in raw.items():
            assert response.startswith(expected_prefix), (
                f"{frontend}: {response[:120]!r}"
            )
        assert _comparable(raw["eventloop"]) == _comparable(raw["threaded"])

    def test_metrics_endpoint_headers_identical(self, parity_pair):
        """Metrics bodies legitimately differ (each server has its own
        registry); the envelope — status line and header structure — must
        not."""
        servers, _ = parity_pair
        request = _request_bytes("GET", "/metrics", _BASE_HEADERS)
        envelopes = {}
        for frontend, server in servers.items():
            head = _exchange(server.address, [request])[0].partition(b"\r\n\r\n")[0]
            lines = _normalize(head).split(b"\r\n")
            envelopes[frontend] = [
                line.partition(b":")[0] if line.startswith(b"Content-Length") else line
                for line in lines
            ]
            assert lines[0] == b"HTTP/1.1 200 OK"
        assert envelopes["eventloop"] == envelopes["threaded"]

    def test_keep_alive_reuse_bytes_identical(self, parity_pair, grid):
        """Three requests over ONE connection per server — the event loop's
        incremental parser resumes cleanly between keep-alive requests."""
        servers, _ = parity_pair
        script = [grid["detect-benign"][0], grid["get-healthz"][0], grid["bad-body-400"][0]]
        raw = {
            frontend: _exchange(server.address, script)
            for frontend, server in servers.items()
        }
        for responses in raw.values():
            assert len(responses) == 3
            assert responses[0].startswith(b"HTTP/1.1 200 ")
            assert responses[2].startswith(b"HTTP/1.1 400 ")
        assert list(map(_comparable, raw["eventloop"])) == list(
            map(_comparable, raw["threaded"])
        )

    def test_accounting_parity_counters_and_audit(self, parity_pair, grid):
        """Identical traffic leaves identical ``server.*`` counter deltas
        and identical audit trails on both front ends."""
        servers, logs = parity_pair
        before = {
            frontend: server.metrics.counter_values(prefix="server.")
            for frontend, server in servers.items()
        }
        audited_before = {
            frontend: len(log.records()) for frontend, log in logs.items()
        }
        single = grid["detect-benign"][0]
        for frontend, server in servers.items():
            for index in range(3):
                request = single.replace(
                    b"X-Request-Id: parity-grid", f"X-Request-Id: acct-{index}".encode()
                )
                response = _exchange(server.address, [request])[0]
                assert response.startswith(b"HTTP/1.1 200 ")
            _exchange(server.address, [grid["bad-body-400"][0]])
        deltas = {}
        for frontend, server in servers.items():
            after = server.metrics.counter_values(prefix="server.")
            changed = {
                key: after.get(key, 0) - before[frontend].get(key, 0)
                for key in set(after) | set(before[frontend])
            }
            # Only compare families this traffic moved: the eventloop
            # server counts its own 501s (a family the threaded server
            # delegates to BaseHTTPRequestHandler), so zero-delta keys
            # differ by construction.
            deltas[frontend] = {key: value for key, value in changed.items() if value}
        assert deltas["eventloop"] == deltas["threaded"]
        assert deltas["eventloop"]["server.requests"] == 4
        assert deltas["eventloop"]["server.responses.200"] == 3
        assert deltas["eventloop"]["server.responses.400"] == 1
        for frontend, log in logs.items():
            servers[frontend].pipeline.audit_log.flush()
            fresh = log.records()[audited_before[frontend] :]
            assert [r.image_id for r in fresh] == ["acct-0", "acct-1", "acct-2"]


_METRIC_LINE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*=\"[^\"]+\"\})? [0-9.eE+-]+$|^\# TYPE [a-zA-Z_:][a-zA-Z0-9_:]* (counter|gauge|histogram)$"
)


class TestMetricsEndpoint:
    def test_prometheus_text_parses(self, served, benign_images, attack_images):
        _, client, _ = served
        client.detect(np.asarray(benign_images[0]))
        client.detect(as_uint8(attack_images[0]))
        text = client.metrics_text()
        lines = text.strip().splitlines()
        assert lines, "empty exposition"
        for line in lines:
            assert _METRIC_LINE.match(line), f"unparseable line: {line!r}"

    def test_expected_families_present(self, served, benign_images):
        _, client, _ = served
        client.detect(np.asarray(benign_images[0]))
        text = client.metrics_text()
        needles = [
            "decamouflage_server_requests_total",
            "decamouflage_server_responses_200_total",
            "decamouflage_server_in_flight",
            "decamouflage_server_queue_depth",
            "decamouflage_pipeline_submitted",
            "decamouflage_operator_cache_hit_rate",
            "decamouflage_analysis_",  # shared-analysis memo hit/miss counters
            "decamouflage_server_request_ms_bucket",
            'le="+Inf"',
        ]
        if SERVER_WORKERS:
            # Sharded serving adds per-worker families labeled by id.
            needles += [
                "decamouflage_workers_dispatched_total",
                'decamouflage_worker_up{worker_id="0"}',
                'decamouflage_worker_jobs_done_total{worker_id="0"}',
            ]
        if os.path.exists("/proc/self/stat"):
            # Standard (unprefixed) process self-metrics on Linux.
            needles += [
                "process_cpu_seconds_total",
                "process_resident_memory_bytes",
            ]
        for needle in needles:
            assert needle in text, f"missing {needle} in exposition"

    def test_histogram_buckets_cumulative_and_consistent(self, served, benign_images):
        _, client, _ = served
        for _ in range(3):
            client.detect(np.asarray(benign_images[0]))
        text = client.metrics_text()
        buckets = [
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("decamouflage_server_request_ms_bucket")
        ]
        assert buckets == sorted(buckets)
        count = next(
            float(line.rsplit(" ", 1)[1])
            for line in text.splitlines()
            if line.startswith("decamouflage_server_request_ms_count")
        )
        assert buckets[-1] == count == 3.0
