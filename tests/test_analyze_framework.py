"""Framework-level tests: suppressions, baseline, cache, reporters, CLI.

These exercise the shared infrastructure of ``tools/analyze`` — everything
the individual passes sit on top of. The pass-specific behaviour lives in
``test_analyze_passes.py``.
"""

from __future__ import annotations

import json
import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from analyze.cli import main  # noqa: E402
from analyze.engine import (  # noqa: E402
    analyze_source,
    discover_files,
    module_name_for,
    run_analysis,
)
from analyze.findings import (  # noqa: E402
    Baseline,
    Finding,
    assign_fingerprints,
    filter_suppressed,
    parse_suppressions,
)
from analyze.reporters import JSON_SCHEMA_VERSION, render_json  # noqa: E402

SWALLOW = textwrap.dedent(
    """\
    def risky(path):
        try:
            return open(path).read()
        except Exception:
            return None
    """
)


def _one_finding(source: str = SWALLOW) -> Finding:
    report = analyze_source(source, "sample.py", rules=["exception-policy"])
    assert len(report.findings) == 1
    return report.findings[0]


# -- suppression syntax ------------------------------------------------------


def test_suppression_on_the_finding_line():
    source = SWALLOW.replace(
        "except Exception:",
        "except Exception:  # analyze: ignore[swallowed-exception] known-safe",
    )
    report = analyze_source(source, "s.py", rules=["exception-policy"])
    assert report.findings == [] and report.suppressed == 1


def test_suppression_on_the_preceding_line():
    source = textwrap.dedent(
        """\
        def risky(path):
            try:
                return open(path).read()
            # analyze: ignore[swallowed-exception] probing optional file
            except Exception:
                return None
        """
    )
    report = analyze_source(source, "s.py", rules=["exception-policy"])
    assert report.findings == [] and report.suppressed == 1


def test_scope_level_suppression_on_def_line():
    source = textwrap.dedent(
        """\
        def risky(path):  # analyze: ignore[exception-policy] scope-wide opt-out
            try:
                return open(path).read()
            except Exception:
                return None
        """
    )
    report = analyze_source(source, "s.py", rules=["exception-policy"])
    assert report.findings == [] and report.suppressed == 1


def test_rule_name_and_all_tokens_match():
    finding = _one_finding()
    by_rule = filter_suppressed([finding], {finding.line: {"exception-policy"}})
    by_all = filter_suppressed([finding], {finding.line: {"all"}})
    assert by_rule == ([], 1) and by_all == ([], 1)


def test_unrelated_token_does_not_suppress():
    finding = _one_finding()
    kept, dropped = filter_suppressed([finding], {finding.line: {"io-under-lock"}})
    assert kept == [finding] and dropped == 0


def test_parse_suppressions_splits_comma_list():
    lines = ["x = 1  # analyze: ignore[io-under-lock, bare-except] both fine"]
    assert parse_suppressions(lines) == {1: {"io-under-lock", "bare-except"}}


# -- fingerprints ------------------------------------------------------------


def test_fingerprints_survive_line_shifts():
    before = _one_finding()
    after = _one_finding("# leading comment\n\n\n" + SWALLOW)
    assign_fingerprints([before])
    assign_fingerprints([after])
    assert before.line != after.line
    assert before.fingerprint == after.fingerprint


def test_identical_siblings_get_distinct_ordinals():
    twice = SWALLOW + "\n\n" + SWALLOW.replace("def risky", "def risky_again")
    report = analyze_source(twice, "s.py", rules=["exception-policy"])
    # Same message, different symbols -> distinct fingerprints already.
    assign_fingerprints(report.findings)
    prints = {f.fingerprint for f in report.findings}
    assert len(prints) == len(report.findings) == 2


# -- baseline ----------------------------------------------------------------


def test_baseline_round_trip(tmp_path):
    finding = _one_finding()
    assign_fingerprints([finding])

    baseline = Baseline(path=tmp_path / "baseline.json")
    baseline.update_from([finding])
    baseline.entries[finding.fingerprint] = "probing an optional sidecar file"
    baseline.save()

    reloaded = Baseline.load(tmp_path / "baseline.json")
    assert reloaded.entries == {
        finding.fingerprint: "probing an optional sidecar file"
    }
    fresh, baselined, stale = reloaded.apply([finding])
    assert fresh == [] and baselined == 1 and stale == []


def test_baseline_reports_stale_entries(tmp_path):
    baseline = Baseline(path=tmp_path / "baseline.json")
    baseline.entries["gone.py::exception-policy::bare-except::f::msg::0"] = "old"
    fresh, baselined, stale = baseline.apply([])
    assert fresh == [] and baselined == 0
    assert stale == ["gone.py::exception-policy::bare-except::f::msg::0"]


def test_update_from_keeps_existing_justifications(tmp_path):
    finding = _one_finding()
    assign_fingerprints([finding])
    baseline = Baseline(path=tmp_path / "baseline.json")
    baseline.entries[finding.fingerprint] = "deliberate"
    baseline.update_from([finding])
    assert baseline.entries[finding.fingerprint] == "deliberate"


def test_repo_baseline_is_empty():
    # The acceptance bar for this PR: every real finding was fixed or
    # inline-suppressed with a justification, so the checked-in baseline
    # carries no entries.
    data = json.loads((REPO_ROOT / "tools" / "analyze_baseline.json").read_text())
    assert data["entries"] == []


# -- reporters ---------------------------------------------------------------


def test_json_reporter_schema():
    finding = _one_finding()
    assign_fingerprints([finding])
    payload = json.loads(
        render_json(
            [finding],
            files_analyzed=1,
            suppressed=2,
            baselined=3,
            cache_hits=4,
            elapsed_s=0.5,
            stale_baseline=["x"],
        )
    )
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["files_analyzed"] == 1
    assert payload["counts"] == {
        "findings": 1,
        "suppressed": 2,
        "baselined": 3,
        "cache_hits": 4,
    }
    assert payload["stale_baseline"] == ["x"]
    (entry,) = payload["findings"]
    assert set(entry) == {
        "path", "line", "col", "rule", "code", "message", "symbol", "fingerprint",
    }


# -- engine: discovery, naming, cache, fan-out -------------------------------


def test_discover_files_skips_pycache(tmp_path):
    (tmp_path / "pkg").mkdir()
    (tmp_path / "pkg" / "mod.py").write_text("x = 1\n")
    (tmp_path / "pkg" / "__pycache__").mkdir()
    (tmp_path / "pkg" / "__pycache__" / "mod.cpython-311.py").write_text("x = 1\n")
    found = discover_files([tmp_path])
    assert [p.name for p in found] == ["mod.py"]


def test_module_name_anchors_at_src():
    assert module_name_for(Path("src/repro/core/analysis.py")) == "repro.core.analysis"
    assert module_name_for(Path("src/repro/imaging/__init__.py")) == "repro.imaging"
    assert module_name_for(Path("tools/analyze/engine.py")) == "tools.analyze.engine"


def test_cache_hits_on_unchanged_tree(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text(SWALLOW)
    cache = tmp_path / "cache.json"

    cold = run_analysis([tmp_path], cache_path=cache)
    warm = run_analysis([tmp_path], cache_path=cache)
    assert cold.cache_hits == 0 and warm.cache_hits == 1
    assert [f.render() for f in warm.findings] == [
        f.render() for f in cold.findings
    ]

    # Touching the file (content change -> new size) invalidates its entry.
    target.write_text(SWALLOW + "\n# trailing comment\n")
    third = run_analysis([tmp_path], cache_path=cache)
    assert third.cache_hits == 0


def test_cache_is_keyed_on_enabled_rules(tmp_path):
    (tmp_path / "mod.py").write_text(SWALLOW)
    cache = tmp_path / "cache.json"
    run_analysis([tmp_path], rules=["lock-discipline"], cache_path=cache)
    second = run_analysis([tmp_path], rules=["exception-policy"], cache_path=cache)
    assert second.cache_hits == 0
    assert {f.code for f in second.findings} == {"swallowed-exception"}


def test_parallel_run_matches_serial(tmp_path):
    for index in range(6):
        (tmp_path / f"mod_{index}.py").write_text(
            SWALLOW.replace("def risky", f"def risky_{index}")
        )
    serial = run_analysis([tmp_path], jobs=1)
    fanned = run_analysis([tmp_path], jobs=2)
    assert [f.render() for f in serial.findings] == [
        f.render() for f in fanned.findings
    ]
    assert [f.fingerprint for f in serial.findings] == [
        f.fingerprint for f in fanned.findings
    ]


# -- CLI exit codes ----------------------------------------------------------


def _write_clean_tree(tmp_path: Path) -> Path:
    tree = tmp_path / "clean"
    tree.mkdir()
    (tree / "ok.py").write_text('"""Clean module."""\n\n__all__ = []\n')
    return tree


def test_cli_exit_zero_on_clean_tree(tmp_path, capsys):
    tree = _write_clean_tree(tmp_path)
    code = main([str(tree), "--no-cache", "--no-baseline"])
    assert code == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_exit_one_on_findings(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(SWALLOW)
    code = main([str(bad), "--no-cache", "--no-baseline"])
    assert code == 1
    assert "swallowed-exception" in capsys.readouterr().out


def test_cli_exit_two_on_unknown_rule(tmp_path, capsys):
    tree = _write_clean_tree(tmp_path)
    code = main([str(tree), "--rules", "nope", "--no-cache", "--no-baseline"])
    assert code == 2
    assert "unknown rule" in capsys.readouterr().err


def test_cli_exit_two_on_missing_path(tmp_path, capsys):
    code = main([str(tmp_path / "ghost"), "--no-cache", "--no-baseline"])
    assert code == 2
    assert "do not exist" in capsys.readouterr().err


def test_cli_update_baseline_then_clean(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(SWALLOW)
    baseline = tmp_path / "baseline.json"

    code = main(
        [str(bad), "--no-cache", "--baseline", str(baseline), "--update-baseline"]
    )
    assert code == 0 and baseline.exists()
    capsys.readouterr()

    # With the finding baselined, the same tree is green...
    assert main([str(bad), "--no-cache", "--baseline", str(baseline)]) == 0
    out = capsys.readouterr().out
    assert "1 baselined" in out

    # ...and fixing the file turns the entry stale -> red again.
    bad.write_text('"""Fixed."""\n\n__all__ = []\n')
    code = main([str(bad), "--no-cache", "--baseline", str(baseline)])
    assert code == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_stale_baseline_fails(tmp_path, capsys):
    tree = _write_clean_tree(tmp_path)
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "entries": [
                    {"fingerprint": "ghost::rule::code::sym::msg::0",
                     "justification": "obsolete"}
                ],
            }
        )
    )
    code = main([str(tree), "--no-cache", "--baseline", str(baseline)])
    assert code == 1
    assert "stale baseline entry" in capsys.readouterr().out


def test_cli_max_seconds_budget(tmp_path, capsys):
    tree = _write_clean_tree(tmp_path)
    # An impossible budget trips the exit-1 path even on a clean tree.
    code = main(
        [str(tree), "--no-cache", "--no-baseline", "--max-seconds", "0"]
    )
    assert code == 1
    assert "over the" in capsys.readouterr().err


def test_cli_json_format_round_trips(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(SWALLOW)
    code = main([str(bad), "--no-cache", "--no-baseline", "--format", "json"])
    assert code == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == JSON_SCHEMA_VERSION
    assert payload["counts"]["findings"] == 1


def test_cli_list_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("lock-discipline", "validation-boundary",
                 "exception-policy", "api-surface"):
        assert rule in out


def test_cli_catches_fixture_tree_like_ci_would(capsys):
    # The CI job's guarantee in miniature: pointing the analyzer at a tree
    # containing the bad fixtures must fail the build.
    fixtures = REPO_ROOT / "tests" / "analyze_fixtures"
    code = main(
        [
            str(fixtures / "lock_bad.py"),
            str(fixtures / "exception_bad.py"),
            "--no-cache",
            "--no-baseline",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "io-under-lock" in out and "bare-except" in out


# -- analyzer-code digest in the cache key -----------------------------------


def test_analyzer_digest_is_stable_and_short():
    import analyze.engine as engine_mod

    first = engine_mod.analyzer_digest()
    second = engine_mod.analyzer_digest()
    assert first == second
    assert len(first) == 16 and int(first, 16) >= 0


def test_cache_busts_when_analyzer_code_changes(tmp_path, monkeypatch):
    # Editing any file under tools/analyze changes analyzer_digest();
    # simulate the digest flip and confirm every cached entry is stale.
    import analyze.engine as engine_mod

    (tmp_path / "mod.py").write_text(SWALLOW)
    cache = tmp_path / "cache.json"

    monkeypatch.setattr(engine_mod, "_digest_cache", "aaaaaaaaaaaaaaaa")
    run_analysis([tmp_path], cache_path=cache)
    monkeypatch.setattr(engine_mod, "_digest_cache", "bbbbbbbbbbbbbbbb")
    busted = run_analysis([tmp_path], cache_path=cache)
    assert busted.cache_hits == 0

    # Same digest again -> warm.
    warm = run_analysis([tmp_path], cache_path=cache)
    assert warm.cache_hits == 1


def test_warm_run_rebuilds_project_findings_from_cached_summaries(tmp_path):
    fixture = REPO_ROOT / "tests" / "analyze_fixtures" / "taintwire_bad.py"
    target = tmp_path / "wire.py"
    target.write_text(fixture.read_text())
    cache = tmp_path / "cache.json"

    cold = run_analysis([tmp_path], rules=["taint-wire"], cache_path=cache)
    warm = run_analysis([tmp_path], rules=["taint-wire"], cache_path=cache)
    assert warm.cache_hits == 1
    assert [f.render() for f in warm.findings] == [
        f.render() for f in cold.findings
    ]
    assert warm.findings, "project findings must survive a fully-warm run"
