"""Unit tests for the multi-scale scanner (unknown target size)."""

import numpy as np
import pytest

from repro.core.multiscale import COMMON_INPUT_SIZES, MultiScaleScanner
from repro.errors import DetectionError

from tests.conftest import MODEL_INPUT


@pytest.fixture
def scanner(benign_images):
    # Candidate sizes bracketing the fixtures' true target size (16x16).
    scanner = MultiScaleScanner(candidate_sizes=[(8, 8), (16, 16), (32, 32)])
    scanner.calibrate(benign_images, percentile=5.0)
    return scanner


class TestCommonSizes:
    def test_matches_paper_table1(self):
        assert (32, 32) in COMMON_INPUT_SIZES
        assert (224, 224) in COMMON_INPUT_SIZES
        assert (66, 200) in COMMON_INPUT_SIZES


class TestScanner:
    def test_flags_attack_without_knowing_size(self, scanner, attack_images):
        flags = [scanner.is_attack(img) for img in attack_images]
        assert np.mean(flags) >= 0.8

    def test_infers_the_attacked_size(self, scanner, attack_images):
        detection = scanner.detect(attack_images[0])
        assert detection.is_attack
        assert detection.inferred_target_size == MODEL_INPUT

    def test_benign_mostly_quiet(self, scanner, benign_images):
        flags = [scanner.is_attack(img) for img in benign_images]
        assert np.mean(flags) <= 0.4

    def test_benign_detection_has_no_inferred_size(self, scanner, benign_images):
        detection = scanner.detect(benign_images[1])
        if not detection.is_attack:
            assert detection.inferred_target_size is None

    def test_oversized_candidates_dropped_at_calibration(self, benign_images):
        scanner = MultiScaleScanner(candidate_sizes=[(16, 16), (299, 299)])
        scanner.calibrate(benign_images)  # images are 128x128
        assert (299, 299) not in scanner.detectors
        assert (16, 16) in scanner.detectors

    def test_explain_lists_sizes(self, scanner, attack_images):
        text = scanner.detect(attack_images[1]).explain()
        assert "16x16" in text
        assert "inferred target" in text

    def test_uncalibrated_raises(self, benign_images):
        scanner = MultiScaleScanner(candidate_sizes=[(16, 16)])
        with pytest.raises(DetectionError, match="calibrate"):
            scanner.detect(benign_images[0])

    def test_empty_candidates_rejected(self):
        with pytest.raises(DetectionError, match="at least one"):
            MultiScaleScanner(candidate_sizes=[])

    def test_no_applicable_size_raises(self, scanner):
        tiny = np.zeros((4, 4, 3))
        with pytest.raises(DetectionError, match="applies"):
            scanner.detect(tiny)
