"""Unit tests for the directory-backed corpus."""

import numpy as np
import pytest

from repro.datasets.files import DirectoryCorpus, list_image_files, load_directory
from repro.errors import CodecError, ImageError
from repro.imaging.png import write_png
from repro.imaging.ppm import write_ppm


@pytest.fixture
def image_folder(tmp_path, rng):
    for index in range(3):
        write_png(tmp_path / f"img_{index}.png", rng.integers(0, 256, (8, 8, 3)).astype(np.uint8))
    write_ppm(tmp_path / "extra.ppm", rng.integers(0, 256, (6, 6, 3)).astype(np.uint8))
    (tmp_path / "notes.txt").write_text("not an image")
    return tmp_path


class TestListing:
    def test_only_supported_sorted(self, image_folder):
        files = list_image_files(image_folder)
        assert [f.name for f in files] == ["extra.ppm", "img_0.png", "img_1.png", "img_2.png"]

    def test_non_directory(self, tmp_path):
        with pytest.raises(ImageError, match="not a directory"):
            list_image_files(tmp_path / "missing")


class TestDirectoryCorpus:
    def test_len_and_access(self, image_folder):
        corpus = DirectoryCorpus(image_folder)
        assert len(corpus) == 4
        assert corpus[1].shape == (8, 8, 3)
        assert corpus.identifier(0) == "extra.ppm"

    def test_caching(self, image_folder):
        corpus = DirectoryCorpus(image_folder)
        assert corpus[0] is corpus[0]

    def test_negative_index(self, image_folder):
        corpus = DirectoryCorpus(image_folder)
        assert np.array_equal(corpus[-1], corpus[3])

    def test_out_of_range(self, image_folder):
        with pytest.raises(IndexError):
            DirectoryCorpus(image_folder)[9]

    def test_empty_folder_rejected(self, tmp_path):
        with pytest.raises(ImageError, match="no supported images"):
            DirectoryCorpus(tmp_path)

    def test_corrupt_file_names_culprit(self, image_folder):
        (image_folder / "bad.png").write_bytes(b"not a png")
        corpus = DirectoryCorpus(image_folder)
        bad_index = [corpus.identifier(i) for i in range(len(corpus))].index("bad.png")
        with pytest.raises(CodecError, match="bad.png"):
            corpus[bad_index]

    def test_iteration_and_materialize(self, image_folder):
        corpus = DirectoryCorpus(image_folder)
        assert len(list(corpus)) == 4
        assert len(corpus.materialize()) == 4


class TestLoadDirectory:
    def test_limit(self, image_folder):
        images = load_directory(image_folder, limit=2)
        assert len(images) == 2

    def test_usable_for_calibration(self, tmp_path, benign_images):
        """Round-trip: write synthetic images, calibrate from the folder."""
        from repro.core import ScalingDetector

        for index, image in enumerate(benign_images):
            write_png(tmp_path / f"holdout_{index}.png", np.asarray(image))
        holdout = load_directory(tmp_path)
        detector = ScalingDetector((16, 16), metric="mse")
        detector.calibrate(holdout, percentile=5.0)
        assert detector.is_calibrated
