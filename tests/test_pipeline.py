"""Unit tests for the end-to-end detection pipeline helpers."""

import numpy as np
import pytest

from repro.attacks.base import AttackConfig
from repro.core.pipeline import build_attack_set, evaluate_detector, evaluate_ensemble
from repro.core.ensemble import build_default_ensemble
from repro.core.scaling_detector import ScalingDetector

from tests.conftest import MODEL_INPUT, SOURCE_SHAPE


class TestBuildAttackSet:
    def test_pairs_and_shapes(self, benign_images, target_images):
        attack_set = build_attack_set(
            benign_images[:3],
            target_images[:3],
            model_input_shape=MODEL_INPUT,
        )
        assert len(attack_set.benign) == len(attack_set.attacks) == 3
        assert attack_set.attacks[0].shape == benign_images[0].shape
        assert attack_set.skipped == []

    def test_large_targets_downscaled(self, benign_images):
        attack_set = build_attack_set(
            benign_images[:2],
            benign_images[2:4],  # full-size targets
            model_input_shape=MODEL_INPUT,
        )
        assert len(attack_set.attacks) == 2

    def test_unreachable_pairs_skipped_not_fatal(self, benign_images):
        impossible_target = np.full((*MODEL_INPUT, 3), 400.0)  # out of gamut
        attack_set = build_attack_set(
            benign_images[:1],
            [impossible_target],
            model_input_shape=MODEL_INPUT,
            config=AttackConfig(epsilon=0.5, max_iterations=30, penalty_rounds=2),
        )
        assert attack_set.skipped == [0]
        assert attack_set.attacks == []


class TestEvaluate:
    def test_detector_evaluation_scores_recorded(self, benign_images, target_images):
        attack_set = build_attack_set(
            benign_images, target_images, model_input_shape=MODEL_INPUT
        )
        detector = ScalingDetector(MODEL_INPUT, metric="mse")
        detector.calibrate(attack_set.benign, attack_set.attacks)
        outcome = evaluate_detector(detector, attack_set)
        assert outcome.counts.accuracy == 1.0
        assert len(outcome.benign_scores) == len(benign_images)
        assert "mse" in outcome.threshold_description

    def test_ensemble_evaluation(self, benign_images, target_images):
        attack_set = build_attack_set(
            benign_images, target_images, model_input_shape=MODEL_INPUT
        )
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(attack_set.benign, attack_set.attacks)
        counts = evaluate_ensemble(ensemble, attack_set)
        assert counts.recall == 1.0
        assert counts.frr <= 0.2
