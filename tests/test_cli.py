"""Unit tests for the decamouflage CLI."""

import numpy as np
import pytest

from repro.cli import main
from repro.imaging.png import write_png

from tests.conftest import MODEL_INPUT


@pytest.fixture
def image_dir(tmp_path, benign_images, attack_images):
    scan_dir = tmp_path / "scan"
    scan_dir.mkdir()
    write_png(scan_dir / "benign0.png", np.asarray(benign_images[0]))
    write_png(scan_dir / "benign1.png", np.asarray(benign_images[1]))
    write_png(scan_dir / "attack0.png", attack_images[0])
    holdout_dir = tmp_path / "holdout"
    holdout_dir.mkdir()
    for index, image in enumerate(benign_images * 4):  # 24 holdout images
        write_png(holdout_dir / f"h{index:02d}.png", np.asarray(image))
    return scan_dir, holdout_dir


class TestScan:
    def test_flags_attack_and_exits_nonzero(self, image_dir, capsys):
        scan_dir, holdout_dir = image_dir
        code = main([
            "scan", str(scan_dir),
            "--input-size", str(MODEL_INPUT[0]), str(MODEL_INPUT[1]),
            "--holdout", str(holdout_dir),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "attack0.png" in out
        assert "scanned 3" in out
        # the attack line must say ATTACK
        attack_line = next(l for l in out.splitlines() if "attack0.png" in l)
        assert attack_line.startswith("ATTACK")

    def test_verbose_shows_votes(self, image_dir, capsys):
        scan_dir, holdout_dir = image_dir
        main([
            "scan", str(scan_dir),
            "--input-size", str(MODEL_INPUT[0]), str(MODEL_INPUT[1]),
            "--holdout", str(holdout_dir), "--verbose",
        ])
        out = capsys.readouterr().out
        assert "scaling/mse" in out
        assert "steganalysis/csp" in out

    def test_empty_directory_errors(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["scan", str(empty)]) == 2

    def test_parallel_scan_same_verdicts(self, image_dir, capsys):
        scan_dir, holdout_dir = image_dir
        args = ["scan", str(scan_dir),
                "--input-size", str(MODEL_INPUT[0]), str(MODEL_INPUT[1]),
                "--holdout", str(holdout_dir)]
        code_seq = main(args)
        out_seq = capsys.readouterr().out
        code_par = main(args + ["--workers", "4"])
        out_par = capsys.readouterr().out
        assert code_seq == code_par == 1
        assert sorted(out_seq.splitlines()) == sorted(out_par.splitlines())

    def test_small_holdout_rejected(self, image_dir, tmp_path, capsys):
        scan_dir, _ = image_dir
        tiny = tmp_path / "tiny"
        tiny.mkdir()
        write_png(tiny / "one.png", np.zeros((16, 16, 3), dtype=np.uint8))
        assert main(["scan", str(scan_dir), "--holdout", str(tiny)]) == 2


class TestCraft:
    def test_craft_roundtrip(self, tmp_path, benign_images, target_images, capsys):
        from repro.imaging.png import read_png
        from repro.imaging.scaling import resize

        original_path = tmp_path / "original.png"
        target_path = tmp_path / "target.png"
        output_path = tmp_path / "attack.png"
        write_png(original_path, np.asarray(benign_images[0]))
        write_png(target_path, np.asarray(target_images[0], dtype=np.float64))
        code = main([
            "craft", str(original_path), str(target_path), str(output_path),
            "--input-size", str(MODEL_INPUT[0]), str(MODEL_INPUT[1]),
        ])
        assert code == 0
        attack = read_png(output_path)
        downscaled = resize(attack, MODEL_INPUT, "bilinear")
        target = read_png(target_path).astype(np.float64)
        # uint8 quantization adds a little error on top of ε.
        assert np.mean((downscaled - target) ** 2) < 50.0


class TestReport:
    def test_single_experiment(self, capsys):
        code = main(["report", "--only", "T1", "--images", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "LeNet-5" in out


@pytest.mark.slow
class TestFigures:
    def test_renders_png_set(self, tmp_path, capsys):
        code = main(["figures", str(tmp_path / "figs"), "--images", "3"])
        out = capsys.readouterr().out
        assert code == 0
        written = list((tmp_path / "figs").glob("*.png"))
        assert len(written) == 12
        assert "fig08_threshold_search.png" in out


class TestAnalyze:
    def test_rates_exposure(self, capsys):
        code = main(["analyze", "--source-size", "512", "512",
                     "--input-size", "32", "32", "--algorithm", "nearest"])
        out = capsys.readouterr().out
        assert code == 0
        assert "critical" in out

    def test_area_is_low_exposure(self, capsys):
        code = main(["analyze", "--source-size", "256", "256",
                     "--input-size", "32", "32", "--algorithm", "area"])
        out = capsys.readouterr().out
        assert code == 0
        assert "low" in out

    def test_writes_vulnerability_map(self, tmp_path, capsys):
        from repro.imaging.png import read_png

        map_path = tmp_path / "map.png"
        code = main(["analyze", "--source-size", "128", "128",
                     "--input-size", "16", "16", "--map", str(map_path)])
        assert code == 0
        heat = read_png(map_path)
        assert heat.shape[:2] == (128, 128)
        assert heat.max() == 255  # normalized peak


class TestScanBadInputs:
    """`scan` answers unreadable or non-image inputs with a clean exit 2
    and an `error:` line — never a traceback."""

    def test_scan_single_image_file(self, image_dir, capsys):
        scan_dir, holdout_dir = image_dir
        code = main([
            "scan", str(scan_dir / "attack0.png"),
            "--input-size", str(MODEL_INPUT[0]), str(MODEL_INPUT[1]),
            "--holdout", str(holdout_dir),
        ])
        out = capsys.readouterr().out
        assert code == 1
        assert "scanned 1" in out

    def test_scan_non_image_file_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "not_an_image.png"
        bogus.write_bytes(b"this is not a png")
        code = main(["scan", str(bogus)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "not a PNG" in err

    def test_scan_unsupported_extension_exits_2(self, tmp_path, capsys):
        bogus = tmp_path / "notes.txt"
        bogus.write_text("hello")
        code = main(["scan", str(bogus)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "unsupported extension" in err

    def test_scan_missing_file_exits_2(self, tmp_path, capsys):
        code = main(["scan", str(tmp_path / "missing.png")])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "cannot read file" in err

    def test_serve_bad_holdout_exits_2(self, tmp_path, capsys):
        holdout = tmp_path / "holdout"
        holdout.mkdir()
        corrupt = holdout / "bad.png"
        corrupt.write_bytes(b"garbage bytes, not an image")
        code = main(["serve", "--port", "0", "--holdout", str(holdout)])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")

    def test_serve_quarantine_requires_audit_log(self, tmp_path, capsys):
        code = main(["serve", "--port", "0", "--quarantine-dir", str(tmp_path / "q")])
        err = capsys.readouterr().err
        assert code == 2
        assert "--audit-log" in err


class TestExp:
    """`exp` — the registry/mediator front end."""

    def test_list_prints_registry(self, capsys):
        assert main(["exp", "list"]) == 0
        out = capsys.readouterr().out
        assert "T2" in out and "SW1" in out
        assert "aliases: F9, F10" in out
        assert "[not in report]" in out  # sweeps are listed but not in report

    def test_run_data_free_experiment(self, capsys):
        assert main(["exp", "run", "T1"]) == 0
        out = capsys.readouterr().out
        assert "[T1] Input sizes for popular CNN models" in out

    def test_run_with_cache_out_and_timings(self, tmp_path, capsys):
        args = [
            "exp", "run", "T2", "T6",
            "--images", "4", "--source-size", "64", "64", "--input-size", "16", "16",
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / "run1"), "--timings",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "[T2]" in out and "[T6]" in out
        assert "timings [T2]:" in out and "score=" in out
        assert "cache: 0 hits, 4 misses" in out
        assert (tmp_path / "run1" / "T2.txt").exists()
        assert (tmp_path / "run1" / "T6.txt").exists()

        # Warm re-run: 100% cache-served, byte-identical result files.
        args2 = [a.replace("run1", "run2") for a in args]
        assert main(args2) == 0
        out2 = capsys.readouterr().out
        assert "cache: 4 hits, 0 misses (100.0% hit rate)" in out2
        for name in ("T2.txt", "T6.txt"):
            assert (tmp_path / "run1" / name).read_text() == (
                tmp_path / "run2" / name
            ).read_text()

    def test_unknown_experiment_exits_2(self, capsys):
        code = main(["exp", "run", "T999"])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "unknown experiment 'T999'" in err

    def test_unwritable_cache_dir_exits_2(self, tmp_path, capsys):
        blocker = tmp_path / "blocker"
        blocker.write_text("a file where a directory must go")
        code = main(["exp", "run", "T1", "--cache-dir", str(blocker / "cache")])
        err = capsys.readouterr().err
        assert code == 2
        assert err.startswith("error:")
        assert "not writable" in err
