"""Fault-injection harness for the serving stack.

Three families of controlled failure, all stdlib:

* :func:`make_pool` / :func:`pool_with_faults` — build a real
  :class:`~repro.serving.workers.WorkerPool` from a calibrated pipeline,
  optionally with a ``fault_spec`` (the shard-side seam; monkeypatching
  cannot cross a spawn boundary, so faults travel as config and trigger
  inside the worker process itself).
* :class:`ScriptedServer` — a raw-socket HTTP impostor that plays back a
  scripted sequence of misbehaviours (429 + Retry-After, 503, connection
  reset, slow-loris dribble) so client retry discipline can be asserted
  against exact, deterministic adversity.
* :class:`FakeTime` — a stand-in for the client module's ``time`` that
  records every ``sleep`` instead of performing it, making backoff
  schedules assertable to the millisecond and the tests instant.

Shared by ``tests/test_serving_faults.py`` and
``tests/test_serving_client.py``.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np

from repro.datasets.synthetic import generate_image
from repro.serving.pipeline import ProtectedPipeline
from repro.serving.workers import WorkerPool, WorkerPoolConfig, WorkerSpec

SOURCE_SHAPE = (128, 128)
MODEL_INPUT = (16, 16)

#: Lifecycle knobs tightened so fault tests converge in seconds: fast
#: heartbeats, a short liveness deadline, and near-immediate respawn.
FAST_POOL = dict(
    heartbeat_interval_s=0.05,
    liveness_timeout_s=1.0,
    job_timeout_s=20.0,
    restart_backoff_base_s=0.05,
    restart_backoff_max_s=0.5,
)


def calibrated_pipeline(benign_images, **kwargs) -> ProtectedPipeline:
    """A pipeline calibrated on the shared synthetic holdout."""
    pipeline = ProtectedPipeline(MODEL_INPUT, **kwargs)
    pipeline.calibrate(benign_images, percentile=5.0)
    return pipeline


def make_pool(
    pipeline: ProtectedPipeline, *, workers: int = 2, fault_spec: str | None = None, **overrides
) -> WorkerPool:
    """A started shard pool over *pipeline*, tuned for test turnaround.

    The frame transport follows ``REPRO_TEST_TRANSPORT`` (shm rings by
    default, pickled pipes on the fallback leg of the CI matrix); pass
    ``transport=...`` to pin one explicitly.
    """
    from tests.conftest import SERVER_TRANSPORT

    config = WorkerPoolConfig(
        workers=workers,
        fault_spec=fault_spec,
        **{**FAST_POOL, "transport": SERVER_TRANSPORT, **overrides},
    )
    pool = WorkerPool(
        WorkerSpec.from_pipeline(pipeline), config, metrics=pipeline.metrics
    )
    pool.start()
    return pool


def holdout_images(count: int = 6) -> list[np.ndarray]:
    """The same deterministic synthetic scenes the test suite calibrates on."""
    return [
        generate_image(SOURCE_SHAPE, np.random.default_rng((7, index)), family="neurips")
        for index in range(count)
    ]


# -- scripted HTTP adversity --------------------------------------------------


def response(
    status: int,
    body: bytes = b"{}",
    *,
    headers: dict[str, str] | None = None,
) -> dict:
    """Script step: one complete HTTP response."""
    return {"kind": "response", "status": status, "body": body, "headers": headers or {}}


def reset() -> dict:
    """Script step: accept the request, then slam the connection shut."""
    return {"kind": "reset"}


def slow_loris(body: bytes = b"{}", *, chunk_delay_s: float = 0.5, chunks: int = 20) -> dict:
    """Script step: dribble the response one byte at a time. The client's
    socket timeout is per-``recv``, so it only fires when *chunk_delay_s*
    exceeds it — pick the client timeout below the delay."""
    return {
        "kind": "slow",
        "body": body,
        "chunk_delay_s": chunk_delay_s,
        "chunks": chunks,
    }


_REASONS = {200: "OK", 400: "Bad Request", 429: "Too Many Requests", 503: "Service Unavailable"}


class ScriptedServer:
    """A raw-socket HTTP server that consumes one script step per request.

    The script is a list of steps (:func:`response`, :func:`reset`,
    :func:`slow_loris`); once exhausted, every further request gets a 200
    with the final-response body. Runs on a daemon thread; use as a
    context manager.
    """

    def __init__(self, script: list[dict], *, final_body: bytes = b"{}") -> None:
        self.script = list(script)
        self.final_body = final_body
        self.requests_seen = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(8)
        self._sock.settimeout(0.2)
        self._lock = threading.Lock()
        self._closing = False
        self._thread = threading.Thread(
            target=self._serve, name="scripted-server", daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._sock.getsockname()
        return host, port

    def __enter__(self) -> "ScriptedServer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        with self._lock:
            self._closing = True
        self._thread.join(timeout=5.0)
        self._sock.close()

    # -- internals -----------------------------------------------------------

    def _next_step(self) -> dict:
        with self._lock:
            self.requests_seen += 1
            if self.script:
                return self.script.pop(0)
        return response(200, self.final_body)

    def _serve(self) -> None:
        while True:
            with self._lock:
                if self._closing:
                    return
            try:
                conn, _ = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            # One thread per connection: a slow-loris dribble must not
            # block the accept loop the client's retry depends on.
            worker = threading.Thread(
                target=self._handle_and_close, args=(conn,), daemon=True
            )
            worker.start()

    def _handle_and_close(self, conn: socket.socket) -> None:
        try:
            self._handle(conn)
        finally:
            conn.close()

    def _handle(self, conn: socket.socket) -> None:
        conn.settimeout(5.0)
        try:
            self._drain_request(conn)
        except OSError:
            return
        step = self._next_step()
        try:
            if step["kind"] == "reset":
                # RST instead of FIN: the client sees a hard connection
                # failure, not a graceful empty response.
                conn.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
            elif step["kind"] == "slow":
                head = (
                    b"HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 1000000\r\n\r\n"
                )
                conn.sendall(head)
                for _ in range(step["chunks"]):
                    with self._lock:
                        if self._closing:
                            return
                    conn.sendall(step["body"][:1] or b" ")
                    time.sleep(step["chunk_delay_s"])
            else:
                conn.sendall(self._render(step))
        except OSError:
            pass  # client hung up first; the script step still counts

    def _drain_request(self, conn: socket.socket) -> None:
        """Read one request (headers + declared body) off the socket."""
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(65536)
            if not chunk:
                return
            data += chunk
        head, _, rest = data.partition(b"\r\n\r\n")
        length = 0
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                length = int(line.split(b":", 1)[1])
        while len(rest) < length:
            chunk = conn.recv(65536)
            if not chunk:
                return
            rest += chunk

    def _render(self, step: dict) -> bytes:
        status = step["status"]
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(step["body"])),
            # One request per connection: announce it, or the client's
            # keep-alive reuse would see spurious transport errors.
            "Connection": "close",
            **step["headers"],
        }
        head = f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
        head += "".join(f"{name}: {value}\r\n" for name, value in headers.items())
        return head.encode("ascii") + b"\r\n" + step["body"]


# -- deterministic time -------------------------------------------------------


class FakeTime:
    """Drop-in for the client module's ``time``: sleeps are recorded, not
    slept, and ``monotonic`` advances by exactly the recorded amounts."""

    def __init__(self) -> None:
        self.sleeps: list[float] = []
        self._now = 1000.0

    def sleep(self, seconds: float) -> None:
        self.sleeps.append(seconds)
        self._now += seconds

    def monotonic(self) -> float:
        return self._now

    def perf_counter(self) -> float:
        return self._now
