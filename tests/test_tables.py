"""Unit tests for the text-table renderer and formatters."""

from repro.core.evaluation import evaluate_decisions
from repro.eval.tables import format_number, format_percent, metrics_row, render_table


class TestFormatters:
    def test_percent(self):
        assert format_percent(0.999) == "99.9%"
        assert format_percent(0.0) == "0.0%"
        assert format_percent(1.0) == "100.0%"

    def test_number_integers(self):
        assert format_number(3.0) == "3"
        assert format_number(1714.96) == "1715.0"

    def test_number_small(self):
        assert format_number(0.612) == "0.612"


class TestMetricsRow:
    def test_five_columns(self):
        counts = evaluate_decisions([False] * 9 + [True], [True] * 10)
        row = metrics_row(counts)
        assert set(row) == {"Acc.", "Prec.", "Rec.", "FAR", "FRR"}
        assert row["FRR"] == "10.0%"
        assert row["Rec."] == "100.0%"


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            [{"a": "1", "b": "xx"}, {"a": "333", "b": "y"}], title="My table"
        )
        lines = text.splitlines()
        assert lines[0] == "My table"
        assert "a" in lines[1] and "b" in lines[1]
        # all body lines equal width
        assert len(lines[3]) == len(lines[4])

    def test_missing_cells_render_empty(self):
        text = render_table([{"a": 1}, {"b": 2}])
        assert "a" in text and "b" in text

    def test_explicit_column_order(self):
        text = render_table([{"z": 1, "a": 2}], columns=["a", "z"])
        header = text.splitlines()[0]
        assert header.index("a") < header.index("z")

    def test_empty_rows(self):
        text = render_table([], columns=["x"])
        assert "x" in text
