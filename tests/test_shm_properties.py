"""Property-based tests for the shared-memory slot-ring transport
(seeded stdlib randomness, no hypothesis dependency) — the shm mirror of
``tests/test_wire_properties.py``.

Three families of property:

* **Round-trip**: randomly drawn images (arbitrary shapes, gray/RGB,
  uint8 and float sources) and batches ride a ring inside full job/result
  frames and come back byte-exact, including across slot wrap-around at
  every boundary of the ring.
* **Backpressure**: a full ring refuses cleanly (:class:`RingFull`) and
  recovers the moment one slot retires; oversized frames are refused
  before touching any slot.
* **Corruption**: flipping any single byte of a published slot's record —
  header or payload — makes the reader raise a clean
  :class:`~repro.errors.CodecError`, exactly the contract the dispatcher's
  garbage-frame → recycle → requeue-once path is built on. A writer that
  dies mid-copy (torn write, never published) is refused the same way.
"""

from __future__ import annotations

import random
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import CodecError
from repro.serving.shm import (
    RingFull,
    ShmRing,
    decode_slot_ref,
    encode_slot_ref,
)
from repro.serving.wire import (
    encode_image_payload,
    decode_image_payload,
    pack_job,
    pack_result,
    unpack_job,
    unpack_result,
)

SEED = 0xDECA


@pytest.fixture
def ring():
    ring = ShmRing.create(4, 1 << 16)
    yield ring
    ring.close()
    ring.unlink()


def _random_image(rng: np.random.Generator) -> np.ndarray:
    height = int(rng.integers(1, 33))
    width = int(rng.integers(1, 33))
    shape = (height, width) if rng.random() < 0.5 else (height, width, 3)
    image = rng.integers(0, 256, size=shape, dtype=np.uint8)
    if rng.random() < 0.3:
        return image.astype(np.float64)
    return image


class TestRoundTrips:
    def test_job_frames_round_trip_through_a_ring(self, ring):
        """Arbitrary images and batch sizes survive put→get byte-exact."""
        rng = np.random.default_rng(SEED)
        chooser = random.Random(SEED)
        for _ in range(40):
            images = [_random_image(rng) for _ in range(chooser.randint(1, 6))]
            payloads = [encode_image_payload(image) for image in images]
            kind = "batch" if len(images) > 1 else "single"
            frame = pack_job(kind, "job-1", "req-1", payloads)
            slot = ring.put(frame)
            back_kind, job_id, request_id, back = unpack_job(ring.get(slot))
            assert (back_kind, job_id, request_id) == (kind, "job-1", "req-1")
            assert back == payloads
            for blob, image in zip(back, images):
                assert np.array_equal(
                    decode_image_payload(blob), image.astype(np.uint8)
                )

    def test_result_frames_round_trip_through_a_ring(self, ring):
        rng = random.Random(SEED + 1)
        for _ in range(60):
            body = rng.randbytes(rng.randint(0, 4096))
            frame = pack_result("ok", f"job-{rng.randint(0, 10**8):08d}", body)
            slot = ring.put(frame)
            assert unpack_result(ring.get(slot)) == unpack_result(frame)

    def test_wrap_around_at_every_slot_boundary(self):
        """Drive the scan pointer across every slot boundary many times:
        each put lands in a fresh slot, and payloads never bleed between
        neighbouring slots whatever their sizes."""
        ring = ShmRing.create(5, 512)
        try:
            rng = random.Random(SEED + 2)
            for step in range(5 * 7):
                payloads = [
                    rng.randbytes(rng.randint(0, 400)) for _ in range(rng.randint(1, 3))
                ]
                slots = [ring.put(p) for p in payloads]
                assert len(set(slots)) == len(slots)
                # Retire out of order so FREE slots interleave with READY.
                for slot, payload in sorted(
                    zip(slots, payloads), key=lambda pair: -pair[0]
                ):
                    assert ring.get(slot) == payload
                assert ring.occupancy() == 0
        finally:
            ring.close()
            ring.unlink()

    def test_slot_ref_round_trip_and_size_check(self):
        rng = random.Random(SEED + 3)
        for _ in range(50):
            slot = rng.randint(0, 2**32 - 1)
            length = rng.randint(0, 2**32 - 1)
            assert decode_slot_ref(encode_slot_ref(slot, length)) == (slot, length)
        for bad in (b"", b"\x00" * 7, b"\x00" * 9):
            with pytest.raises(CodecError, match="slot ref"):
                decode_slot_ref(bad)


class TestBackpressure:
    def test_full_ring_refuses_and_recovers(self):
        ring = ShmRing.create(3, 128)
        try:
            slots = [ring.put(bytes([i]) * 10) for i in range(3)]
            assert ring.occupancy() == 3
            with pytest.raises(RingFull):
                ring.put(b"overflow")
            assert ring.get(slots[1]) == b"\x01" * 10
            reused = ring.put(b"after-free")
            assert reused == slots[1]
            assert ring.get(reused) == b"after-free"
        finally:
            ring.close()
            ring.unlink()

    def test_oversized_frame_refused_without_claiming_a_slot(self, ring):
        with pytest.raises(ValueError, match="exceeds slot capacity"):
            ring.put(b"x" * (ring.slot_bytes + 1))
        assert ring.occupancy() == 0

    def test_empty_frame_is_legal(self, ring):
        slot = ring.put(b"")
        assert ring.get(slot) == b""


class TestCorruption:
    def test_every_byte_of_a_published_slot_is_load_bearing(self):
        """Exhaustive over the slot record: for every byte the payload or
        header occupies, a single-bit-pattern flip must make the reader
        refuse the slot with CodecError — never return mutated bytes."""
        rng = random.Random(SEED + 4)
        payload = rng.randbytes(96)
        header_size = 12  # state, magic, reserved(2), length(4), crc(4)
        for index in range(header_size + len(payload)):
            ring = ShmRing.create(1, 128)
            try:
                slot = ring.put(payload)
                ring.mutate(slot, index, 0x01 + (index % 0xFF))
                with pytest.raises(CodecError):
                    ring.get(slot)
            finally:
                ring.close()
                ring.unlink()

    def test_unpublished_slots_refused(self, ring):
        with pytest.raises(CodecError, match="not published"):
            ring.get(0)

    def test_out_of_range_slots_refused(self, ring):
        for slot in (-1, ring.slots, ring.slots + 7):
            with pytest.raises(CodecError, match="out of range"):
                ring.get(slot)

    def test_torn_write_never_published(self, ring):
        """A writer killed mid-copy leaves WRITING; the reader refuses it
        and the slot stays quarantined until the ring is reset."""
        slot = ring.put_torn(b"A" * 64)
        with pytest.raises(CodecError, match="not published"):
            ring.get(slot)
        assert ring.occupancy() == 1
        ring.reset()
        assert ring.occupancy() == 0

    def test_double_get_refused(self, ring):
        slot = ring.put(b"once")
        assert ring.get(slot) == b"once"
        with pytest.raises(CodecError, match="not published"):
            ring.get(slot)

    def test_attach_rejects_foreign_segments(self):
        shm = shared_memory.SharedMemory(create=True, size=64)
        try:
            shm.buf[:8] = b"NOTARING"
            with pytest.raises(CodecError, match="bad magic"):
                ShmRing.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_attach_sees_the_creators_slots(self):
        ring = ShmRing.create(2, 256)
        try:
            slot = ring.put(b"cross-mapping")
            peer = ShmRing.attach(ring.name)
            try:
                assert (peer.slots, peer.slot_bytes) == (2, 256)
                assert peer.get(slot) == b"cross-mapping"
                assert ring.occupancy() == 0
            finally:
                peer.close()
        finally:
            ring.close()
            ring.unlink()
