"""Fault-injection tests: the serving stack under deliberate failure.

Every test here breaks something on purpose — a shard SIGKILLed
mid-request, heartbeats silenced past the liveness deadline, garbage
frames on the result pipe, every shard down at once — and asserts the
recovery contract: requeue exactly once, respawn under bounded backoff,
no lost or duplicated verdicts, clean 503s when nothing can answer.

Faults travel via :attr:`WorkerPoolConfig.fault_spec` (parsed inside the
shard — monkeypatching does not survive a spawn) or as real signals
against pids from :meth:`WorkerPool.pids`.
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import threading
import time

import pytest

from repro.errors import DetectionError
from repro.imaging.image import as_uint8
from repro.serving import DetectionClient, DetectionServer, ServerConfig
from repro.serving.wire import encode_image_payload
from repro.serving.workers import _Faults, _parse_faults

from tests.conftest import SERVER_FRONTEND, wait_until
from tests.fault_injection import calibrated_pipeline, make_pool


@pytest.fixture(scope="module")
def payload(benign_images):
    return encode_image_payload(as_uint8(benign_images[0]))


def _restarts(pool, worker_id: int) -> int:
    for status in pool.worker_status():
        if status["worker_id"] == worker_id:
            return status["restarts"]
    raise AssertionError(f"worker {worker_id} missing from status")


class TestFaultSpecParsing:
    def test_clauses_target_the_right_shard(self):
        faults = _parse_faults("kill:0,slow:1:2.5,mute:*", worker_id=1)
        assert faults == _Faults(mute=True, slow_s=2.5)
        assert _parse_faults("kill:0", worker_id=0).kill_next
        assert _parse_faults(None, worker_id=0) == _Faults()

    def test_malformed_clauses_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="malformed fault clause"):
            _parse_faults("kill", worker_id=0)
        with pytest.raises(ReproError, match="unknown fault kind"):
            _parse_faults("explode:0", worker_id=0)


class TestCrashMidRequest:
    def test_kill_before_scoring_requeues_once_and_answers(
        self, benign_images, payload
    ):
        """Worker 0 exits the moment the job lands; the job must fail over
        to worker 1 and still produce exactly one verdict."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill:0")
        try:
            # Force the faulty shard to be picked first: it is idle and has
            # the lowest id, which is exactly the least-loaded tie-break.
            reply = pool.submit([payload], request_id="req-crash")
            assert len(reply["verdicts"]) == 1
            assert reply["verdicts"][0]["request_id"] == "req-crash"
            assert pipeline.metrics.counter("workers.requeued").value >= 1
            assert pipeline.metrics.counter("workers.deaths").value >= 1
        finally:
            pool.shutdown()

    def test_kill_after_scoring_still_exactly_one_verdict(
        self, benign_images, payload
    ):
        """Worker 0 scores, then dies before replying — the nastiest spot:
        the answer existed but never reached the dispatcher. The requeue
        must produce one verdict, not zero and not two."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill-after:0")
        try:
            reply = pool.submit([payload], request_id="req-lost-reply")
            assert len(reply["verdicts"]) == 1
            assert pipeline.metrics.counter("workers.requeued").value == 1
        finally:
            pool.shutdown()

    def test_sigkill_mid_request_from_outside(self, benign_images, payload):
        """A real SIGKILL against the scoring shard while the request is in
        flight: the slow fault pins the job on worker 0 long enough for the
        signal to land mid-score."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="slow:0:30")
        try:
            result: dict = {}

            def submit():
                result["reply"] = pool.submit([payload], request_id="req-sigkill")

            caller = threading.Thread(target=submit)
            caller.start()
            # The job is in flight on worker 0 (it sleeps before scoring).
            wait_until(
                lambda: any(
                    s["worker_id"] == 0 and s["inflight"] == 1
                    for s in pool.worker_status()
                ),
                timeout_s=10.0,
                message="the job to land on worker 0",
            )
            os.kill(pool.pids()[0], signal.SIGKILL)
            caller.join(timeout=30.0)
            assert not caller.is_alive()
            assert len(result["reply"]["verdicts"]) == 1  # zero lost requests
        finally:
            pool.shutdown()

    def test_both_shards_dying_loses_the_request_cleanly(
        self, benign_images, payload
    ):
        """Requeue-once means exactly once: when the failover target dies
        too, the caller gets a clean DetectionError, not a hang."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill:*")
        try:
            with pytest.raises(DetectionError, match="lost twice|no healthy"):
                pool.submit([payload], request_id="req-doomed")
            assert pipeline.metrics.counter("workers.failed_jobs").value == 1
        finally:
            pool.shutdown()


class TestRespawn:
    def test_dead_shard_respawns_with_backoff_and_recovers(
        self, benign_images, payload
    ):
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill:0")
        try:
            first_pid = pool.pids()[0]
            pool.submit([payload], request_id="req-1")  # kills worker 0
            wait_until(
                lambda: _restarts(pool, 0) >= 1 and pool.pids()[0] not in (None, first_pid),
                timeout_s=15.0,
                message="worker 0 to respawn with a new pid",
            )
            wait_until(
                lambda: all(s["up"] for s in pool.worker_status()),
                timeout_s=15.0,
                message="both shards up after respawn",
            )
            # Faults apply only to a shard's first incarnation: the
            # respawned worker 0 scores normally.
            reply = pool.submit([payload], request_id="req-2")
            assert len(reply["verdicts"]) == 1
            assert pipeline.metrics.counter("workers.restarts").value >= 1
        finally:
            pool.shutdown()

    def test_muted_shard_hits_liveness_deadline_and_is_recycled(
        self, benign_images
    ):
        """A shard that sends one heartbeat then goes silent must be
        declared dead by the liveness deadline and respawned — without any
        job traffic to expose it."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(
            pipeline, workers=1, fault_spec="mute:0", liveness_timeout_s=0.5
        )
        try:
            wait_until(
                lambda: _restarts(pool, 0) >= 1,
                timeout_s=20.0,
                message="the mute shard to be recycled",
            )
            assert pipeline.metrics.counter("workers.deaths").value >= 1
        finally:
            pool.shutdown()

    def test_garbage_frames_recycle_the_shard_but_answer_the_request(
        self, benign_images, payload
    ):
        """A shard replying with unframed bytes can no longer pair results
        with jobs: the dispatcher recycles it and fails the job over."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="garbage:0")
        try:
            reply = pool.submit([payload], request_id="req-garbage")
            assert len(reply["verdicts"]) == 1
            assert pipeline.metrics.counter("workers.garbage_frames").value >= 1
        finally:
            pool.shutdown()


class TestShmTransportFaults:
    """The shared-memory slot rings under the crash windows they were
    designed for."""

    def test_kill_mid_slot_write_requeues_once_and_answers(
        self, benign_images, payload
    ):
        """Worker 0 dies half-way through copying its reply into the result
        ring — with the doorbell already rung, so the dispatcher WILL look
        at the torn slot. The unpublished slot must be refused cleanly
        (never torn bytes returned), the shard recycled, and the job
        requeued exactly once."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(
            pipeline, workers=2, fault_spec="kill-mid-write:0", transport="shm"
        )
        try:
            reply = pool.submit([payload], request_id="req-torn-write")
            assert len(reply["verdicts"]) == 1
            assert reply["verdicts"][0]["request_id"] == "req-torn-write"
            assert pipeline.metrics.counter("workers.requeued").value == 1
            assert pipeline.metrics.counter("workers.deaths").value >= 1
            # The torn slot surfaced as a refused frame, not as data.
            assert pipeline.metrics.counter("workers.garbage_frames").value >= 1
        finally:
            pool.shutdown()

    def test_kill_mid_write_on_pipe_transport_degenerates_cleanly(
        self, benign_images, payload
    ):
        """The same fault spec on the pipe transport has no slot to tear;
        it degenerates to die-after-scoring and the failover contract is
        identical."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(
            pipeline, workers=2, fault_spec="kill-mid-write:0", transport="pipe"
        )
        try:
            reply = pool.submit([payload], request_id="req-torn-pipe")
            assert len(reply["verdicts"]) == 1
            assert pipeline.metrics.counter("workers.requeued").value == 1
        finally:
            pool.shutdown()


def _read_http_response(sock: socket.socket) -> bytes:
    """Read one HTTP response (head + Content-Length body) off a raw socket."""
    data = b""
    while b"\r\n\r\n" not in data:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk
    head, _, rest = data.partition(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    while len(rest) < length:
        chunk = sock.recv(65536)
        if not chunk:
            break
        rest += chunk
    return head + b"\r\n\r\n" + rest


class TestEventLoopFaults:
    """Hostile connections against the selectors front end. Every fault
    here wedges or kills sockets, never requests: the contract is that no
    *accepted* request is lost and healthy clients never stall."""

    @pytest.fixture
    def loop_server(self, benign_images):
        pipeline = calibrated_pipeline(benign_images)
        server = DetectionServer(
            pipeline, ServerConfig(port=0, frontend="eventloop")
        )
        server.start()
        yield server, pipeline
        server.shutdown()

    def _detect_request(self, payload: bytes) -> bytes:
        head = (
            "POST /v1/detect HTTP/1.1\r\n"
            "Host: faults.test\r\n"
            "Content-Type: application/octet-stream\r\n"
            f"Content-Length: {len(payload)}\r\n\r\n"
        )
        return head.encode("ascii") + payload

    def test_slow_loris_herd_does_not_starve_healthy_clients(
        self, loop_server, benign_images
    ):
        """100 sockets trickling a request head byte-by-byte occupy
        buffers, not threads — and a healthy client's request completes
        while the herd hangs."""
        server, pipeline = loop_server
        body = encode_image_payload(as_uint8(benign_images[0]))
        herd: list[socket.socket] = []
        try:
            for _ in range(100):
                sock = socket.create_connection(server.address, timeout=10.0)
                sock.sendall(b"POST /v1/detect HTT")  # head, never finished
                herd.append(sock)
            wait_until(
                lambda: pipeline.metrics.gauge("eventloop.open_connections").value
                >= 100,
                timeout_s=10.0,
                message="the loop to be holding the whole herd",
            )
            threads_with_herd = threading.active_count()
            started = time.monotonic()
            with DetectionClient(*server.address, max_retries=0) as client:
                verdict = client.detect(payload=body, request_id="healthy-1")
            elapsed = time.monotonic() - started
            assert verdict.request_id == "healthy-1"
            assert elapsed < 10.0, f"healthy client stalled {elapsed:.1f}s"
            # Another trickled byte per attacker: still alive, still cheap.
            for sock in herd:
                sock.sendall(b"P")
            assert threading.active_count() - threads_with_herd <= 5, (
                "held connections must not cost threads"
            )
        finally:
            for sock in herd:
                sock.close()

    def test_reset_storm_during_keep_alive_reuse(self, loop_server, benign_images):
        """Twenty clients score once over keep-alive, start a second
        request, then slam RST mid-stream. Every accepted request was
        answered, the loop survives, and fresh clients still score."""
        server, pipeline = loop_server
        payload = encode_image_payload(as_uint8(benign_images[0]))
        request = self._detect_request(payload)
        answered = 0
        for _ in range(20):
            sock = socket.create_connection(server.address, timeout=30.0)
            try:
                sock.sendall(request)
                response = _read_http_response(sock)
                assert response.startswith(b"HTTP/1.1 200 ")
                answered += 1
                # Second request, cut off half-way, then RST (SO_LINGER 0
                # turns close() into a reset, not a FIN).
                sock.sendall(request[: len(request) // 2])
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
                )
            finally:
                sock.close()
        assert answered == 20  # zero lost accepted requests
        with DetectionClient(*server.address, max_retries=0) as client:
            verdict = client.detect(payload=payload, request_id="post-storm")
        assert verdict.request_id == "post-storm"
        wait_until(
            lambda: pipeline.metrics.gauge("eventloop.open_connections").value == 0,
            timeout_s=10.0,
            message="the loop to reap every reset connection",
        )

    def test_half_closed_socket_still_gets_its_response(
        self, loop_server, benign_images
    ):
        """A client that sends its whole request then shuts down its write
        side (FIN) must still receive the verdict: half-closed is not
        closed."""
        server, _ = loop_server
        payload = encode_image_payload(as_uint8(benign_images[0]))
        with socket.create_connection(server.address, timeout=30.0) as sock:
            sock.sendall(self._detect_request(payload))
            sock.shutdown(socket.SHUT_WR)
            response = _read_http_response(sock)
        assert response.startswith(b"HTTP/1.1 200 ")

    def test_half_closed_partial_request_is_reaped(self, loop_server):
        """A FIN after an incomplete head can never become a request; the
        loop drops the connection instead of holding it forever."""
        server, pipeline = loop_server
        with socket.create_connection(server.address, timeout=10.0) as sock:
            sock.sendall(b"POST /v1/detect HTT")
            wait_until(
                lambda: pipeline.metrics.gauge("eventloop.open_connections").value
                >= 1,
                timeout_s=10.0,
                message="the connection to be registered",
            )
            sock.shutdown(socket.SHUT_WR)
            wait_until(
                lambda: pipeline.metrics.gauge("eventloop.open_connections").value
                == 0,
                timeout_s=10.0,
                message="the half-closed partial request to be reaped",
            )


class TestServerUnderFaults:
    def test_all_shards_down_is_a_clean_503_then_recovery(self, benign_images):
        """End to end over HTTP: the only shard crashes on the first
        request (503, not a hang or a 500), respawns under backoff, and
        the service answers again."""
        pipeline = calibrated_pipeline(benign_images)
        server = DetectionServer(
            pipeline,
            ServerConfig(
                port=0,
                workers=1,
                frontend=SERVER_FRONTEND,
                fault_injection="kill:0",
                worker_heartbeat_interval_s=0.05,
                worker_liveness_timeout_s=1.0,
                worker_restart_backoff_base_s=0.05,
            ),
        )
        server.start()
        body = encode_image_payload(as_uint8(benign_images[0]))
        try:
            with DetectionClient(*server.address, max_retries=0) as probe:
                probe.wait_ready(timeout_s=30.0)
                status, _, _ = probe._request(
                    "POST",
                    "/v1/detect",
                    body=body,
                    headers={"Content-Type": "application/octet-stream"},
                )
                assert status == 503  # lost to the crash, reported cleanly
            wait_until(
                lambda: server.worker_pool.healthy_count == 1
                and _restarts(server.worker_pool, 0) >= 1,
                timeout_s=20.0,
                message="the shard to respawn",
            )
            with DetectionClient(*server.address) as client:
                verdict = client.detect(payload=body, request_id="req-recovered")
            assert verdict.request_id == "req-recovered"
            # The lost request never reached the canonical accounting; the
            # recovered one did, exactly once.
            assert pipeline.stats.submitted == 1
        finally:
            server.shutdown()

    def test_health_reports_worker_outage(self, benign_images):
        pipeline = calibrated_pipeline(benign_images)
        server = DetectionServer(
            pipeline,
            ServerConfig(
                port=0,
                workers=1,
                frontend=SERVER_FRONTEND,
                fault_injection="mute:0",
                worker_heartbeat_interval_s=0.05,
                worker_liveness_timeout_s=0.5,
                # Backoff far past the test horizon: the outage stays
                # observable instead of healing under the assertion.
                worker_restart_backoff_base_s=60.0,
                worker_restart_backoff_max_s=60.0,
            ),
        )
        server.start()
        try:
            wait_until(
                lambda: server.worker_pool.healthy_count == 0,
                timeout_s=20.0,
                message="the mute shard to be declared dead",
            )
            payload = server.health()
            assert payload["ready"] is False
            workers = payload["workers"]
            assert set(workers) == {"configured", "healthy", "pids"}
            assert workers["configured"] == 1
            assert workers["healthy"] == 0
        finally:
            server.shutdown()
