"""Fault-injection tests: the serving stack under deliberate failure.

Every test here breaks something on purpose — a shard SIGKILLed
mid-request, heartbeats silenced past the liveness deadline, garbage
frames on the result pipe, every shard down at once — and asserts the
recovery contract: requeue exactly once, respawn under bounded backoff,
no lost or duplicated verdicts, clean 503s when nothing can answer.

Faults travel via :attr:`WorkerPoolConfig.fault_spec` (parsed inside the
shard — monkeypatching does not survive a spawn) or as real signals
against pids from :meth:`WorkerPool.pids`.
"""

from __future__ import annotations

import os
import signal
import threading

import pytest

from repro.errors import DetectionError
from repro.imaging.image import as_uint8
from repro.serving import DetectionClient, DetectionServer, ServerConfig
from repro.serving.wire import encode_image_payload
from repro.serving.workers import _Faults, _parse_faults

from tests.conftest import wait_until
from tests.fault_injection import calibrated_pipeline, make_pool


@pytest.fixture(scope="module")
def payload(benign_images):
    return encode_image_payload(as_uint8(benign_images[0]))


def _restarts(pool, worker_id: int) -> int:
    for status in pool.worker_status():
        if status["worker_id"] == worker_id:
            return status["restarts"]
    raise AssertionError(f"worker {worker_id} missing from status")


class TestFaultSpecParsing:
    def test_clauses_target_the_right_shard(self):
        faults = _parse_faults("kill:0,slow:1:2.5,mute:*", worker_id=1)
        assert faults == _Faults(mute=True, slow_s=2.5)
        assert _parse_faults("kill:0", worker_id=0).kill_next
        assert _parse_faults(None, worker_id=0) == _Faults()

    def test_malformed_clauses_rejected(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError, match="malformed fault clause"):
            _parse_faults("kill", worker_id=0)
        with pytest.raises(ReproError, match="unknown fault kind"):
            _parse_faults("explode:0", worker_id=0)


class TestCrashMidRequest:
    def test_kill_before_scoring_requeues_once_and_answers(
        self, benign_images, payload
    ):
        """Worker 0 exits the moment the job lands; the job must fail over
        to worker 1 and still produce exactly one verdict."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill:0")
        try:
            # Force the faulty shard to be picked first: it is idle and has
            # the lowest id, which is exactly the least-loaded tie-break.
            reply = pool.submit([payload], request_id="req-crash")
            assert len(reply["verdicts"]) == 1
            assert reply["verdicts"][0]["request_id"] == "req-crash"
            assert pipeline.metrics.counter("workers.requeued").value >= 1
            assert pipeline.metrics.counter("workers.deaths").value >= 1
        finally:
            pool.shutdown()

    def test_kill_after_scoring_still_exactly_one_verdict(
        self, benign_images, payload
    ):
        """Worker 0 scores, then dies before replying — the nastiest spot:
        the answer existed but never reached the dispatcher. The requeue
        must produce one verdict, not zero and not two."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill-after:0")
        try:
            reply = pool.submit([payload], request_id="req-lost-reply")
            assert len(reply["verdicts"]) == 1
            assert pipeline.metrics.counter("workers.requeued").value == 1
        finally:
            pool.shutdown()

    def test_sigkill_mid_request_from_outside(self, benign_images, payload):
        """A real SIGKILL against the scoring shard while the request is in
        flight: the slow fault pins the job on worker 0 long enough for the
        signal to land mid-score."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="slow:0:30")
        try:
            result: dict = {}

            def submit():
                result["reply"] = pool.submit([payload], request_id="req-sigkill")

            caller = threading.Thread(target=submit)
            caller.start()
            # The job is in flight on worker 0 (it sleeps before scoring).
            wait_until(
                lambda: any(
                    s["worker_id"] == 0 and s["inflight"] == 1
                    for s in pool.worker_status()
                ),
                timeout_s=10.0,
                message="the job to land on worker 0",
            )
            os.kill(pool.pids()[0], signal.SIGKILL)
            caller.join(timeout=30.0)
            assert not caller.is_alive()
            assert len(result["reply"]["verdicts"]) == 1  # zero lost requests
        finally:
            pool.shutdown()

    def test_both_shards_dying_loses_the_request_cleanly(
        self, benign_images, payload
    ):
        """Requeue-once means exactly once: when the failover target dies
        too, the caller gets a clean DetectionError, not a hang."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill:*")
        try:
            with pytest.raises(DetectionError, match="lost twice|no healthy"):
                pool.submit([payload], request_id="req-doomed")
            assert pipeline.metrics.counter("workers.failed_jobs").value == 1
        finally:
            pool.shutdown()


class TestRespawn:
    def test_dead_shard_respawns_with_backoff_and_recovers(
        self, benign_images, payload
    ):
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="kill:0")
        try:
            first_pid = pool.pids()[0]
            pool.submit([payload], request_id="req-1")  # kills worker 0
            wait_until(
                lambda: _restarts(pool, 0) >= 1 and pool.pids()[0] not in (None, first_pid),
                timeout_s=15.0,
                message="worker 0 to respawn with a new pid",
            )
            wait_until(
                lambda: all(s["up"] for s in pool.worker_status()),
                timeout_s=15.0,
                message="both shards up after respawn",
            )
            # Faults apply only to a shard's first incarnation: the
            # respawned worker 0 scores normally.
            reply = pool.submit([payload], request_id="req-2")
            assert len(reply["verdicts"]) == 1
            assert pipeline.metrics.counter("workers.restarts").value >= 1
        finally:
            pool.shutdown()

    def test_muted_shard_hits_liveness_deadline_and_is_recycled(
        self, benign_images
    ):
        """A shard that sends one heartbeat then goes silent must be
        declared dead by the liveness deadline and respawned — without any
        job traffic to expose it."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(
            pipeline, workers=1, fault_spec="mute:0", liveness_timeout_s=0.5
        )
        try:
            wait_until(
                lambda: _restarts(pool, 0) >= 1,
                timeout_s=20.0,
                message="the mute shard to be recycled",
            )
            assert pipeline.metrics.counter("workers.deaths").value >= 1
        finally:
            pool.shutdown()

    def test_garbage_frames_recycle_the_shard_but_answer_the_request(
        self, benign_images, payload
    ):
        """A shard replying with unframed bytes can no longer pair results
        with jobs: the dispatcher recycles it and fails the job over."""
        pipeline = calibrated_pipeline(benign_images)
        pool = make_pool(pipeline, workers=2, fault_spec="garbage:0")
        try:
            reply = pool.submit([payload], request_id="req-garbage")
            assert len(reply["verdicts"]) == 1
            assert pipeline.metrics.counter("workers.garbage_frames").value >= 1
        finally:
            pool.shutdown()


class TestServerUnderFaults:
    def test_all_shards_down_is_a_clean_503_then_recovery(self, benign_images):
        """End to end over HTTP: the only shard crashes on the first
        request (503, not a hang or a 500), respawns under backoff, and
        the service answers again."""
        pipeline = calibrated_pipeline(benign_images)
        server = DetectionServer(
            pipeline,
            ServerConfig(
                port=0,
                workers=1,
                fault_injection="kill:0",
                worker_heartbeat_interval_s=0.05,
                worker_liveness_timeout_s=1.0,
                worker_restart_backoff_base_s=0.05,
            ),
        )
        server.start()
        body = encode_image_payload(as_uint8(benign_images[0]))
        try:
            with DetectionClient(*server.address, max_retries=0) as probe:
                probe.wait_ready(timeout_s=30.0)
                status, _, _ = probe._request(
                    "POST",
                    "/v1/detect",
                    body=body,
                    headers={"Content-Type": "application/octet-stream"},
                )
                assert status == 503  # lost to the crash, reported cleanly
            wait_until(
                lambda: server.worker_pool.healthy_count == 1
                and _restarts(server.worker_pool, 0) >= 1,
                timeout_s=20.0,
                message="the shard to respawn",
            )
            with DetectionClient(*server.address) as client:
                verdict = client.detect(payload=body, request_id="req-recovered")
            assert verdict.request_id == "req-recovered"
            # The lost request never reached the canonical accounting; the
            # recovered one did, exactly once.
            assert pipeline.stats.submitted == 1
        finally:
            server.shutdown()

    def test_health_reports_worker_outage(self, benign_images):
        pipeline = calibrated_pipeline(benign_images)
        server = DetectionServer(
            pipeline,
            ServerConfig(
                port=0,
                workers=1,
                fault_injection="mute:0",
                worker_heartbeat_interval_s=0.05,
                worker_liveness_timeout_s=0.5,
                # Backoff far past the test horizon: the outage stays
                # observable instead of healing under the assertion.
                worker_restart_backoff_base_s=60.0,
                worker_restart_backoff_max_s=60.0,
            ),
        )
        server.start()
        try:
            wait_until(
                lambda: server.worker_pool.healthy_count == 0,
                timeout_s=20.0,
                message="the mute shard to be declared dead",
            )
            payload = server.health()
            assert payload["ready"] is False
            workers = payload["workers"]
            assert set(workers) == {"configured", "healthy", "pids"}
            assert workers["configured"] == 1
            assert workers["healthy"] == 0
        finally:
            server.shutdown()
