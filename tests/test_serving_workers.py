"""Shard-pool tests: parity, dispatch accounting, and lifecycle.

These spawn real worker processes (``multiprocessing`` spawn context), so
the pool fixtures are module-scoped and kept small. Crash/fault behaviour
lives in ``tests/test_serving_faults.py``; this file covers the sunny-day
contract: sharded verdicts are bit-for-bit the in-process ones, and the
dispatcher keeps canonical stats.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import CodecError, DetectionError, ReproError
from repro.imaging.image import as_uint8
from repro.serving.pipeline import ProtectedPipeline, verdict_payload
from repro.serving.wire import encode_image_payload
from repro.serving.workers import WorkerPool, WorkerPoolConfig, WorkerSpec

from tests.conftest import MODEL_INPUT, wait_until
from tests.fault_injection import FAST_POOL, calibrated_pipeline, holdout_images


@pytest.fixture(scope="module")
def pool_setup():
    """One calibrated pipeline + a started 2-shard pool, shared across the
    module (spawning a shard imports numpy from scratch — not cheap)."""
    pipeline = calibrated_pipeline(holdout_images())
    pool = WorkerPool(
        WorkerSpec.from_pipeline(pipeline),
        WorkerPoolConfig(workers=2, **FAST_POOL),
        metrics=pipeline.metrics,
    )
    pool.start()
    yield pool, pipeline
    pool.shutdown()


class TestWorkerSpec:
    def test_uncalibrated_pipeline_refused(self):
        with pytest.raises(DetectionError, match="calibrate"):
            WorkerSpec.from_pipeline(ProtectedPipeline(MODEL_INPUT))

    def test_spec_rebuilds_an_equivalent_pipeline(self, benign_images):
        parent = calibrated_pipeline(benign_images)
        spec = WorkerSpec.from_pipeline(parent)
        rebuilt = spec.build_pipeline()
        assert rebuilt.is_calibrated
        image = as_uint8(benign_images[0])
        local = parent.submit(image, image_id="spec-parity")
        remote = rebuilt.submit(image, image_id="spec-parity")
        assert remote.action == local.action
        assert [d.score for d in remote.detection.detections] == [
            d.score for d in local.detection.detections
        ]

    def test_pickling_does_not_disturb_parent_metrics(self, benign_images):
        parent = calibrated_pipeline(benign_images)
        WorkerSpec.from_pipeline(parent)
        # The spec strips each detector's metrics during pickling; the
        # parent must get its registry back afterwards.
        for detector in parent.ensemble.detectors:
            assert detector.metrics is not None


class TestPoolScoring:
    def test_single_verdict_bit_for_bit(self, pool_setup, attack_images):
        pool, pipeline = pool_setup
        for source in (holdout_images(1)[0], attack_images[0]):
            image = as_uint8(source)
            reply = pool.submit(
                [encode_image_payload(image)], request_id="parity-1"
            )
            local = verdict_payload(
                pipeline.submit(image, image_id="parity-1"),
                request_id="parity-1",
                latency_ms=0.0,
            )
            remote = dict(reply["verdicts"][0])
            remote["latency_ms"] = 0.0  # only timing may differ
            assert remote == local  # scores compare float-for-float

    def test_batch_verdicts_match_singles(self, pool_setup, attack_images):
        pool, _ = pool_setup
        images = [as_uint8(holdout_images(1)[0]), as_uint8(attack_images[0])]
        payloads = [encode_image_payload(image) for image in images]
        batch = pool.submit(payloads, request_id="parity-b", batch=True)
        singles = [
            pool.submit([payload], request_id="parity-b")["verdicts"][0]
            for payload in payloads
        ]
        assert [v["verdict"] for v in batch["verdicts"]] == [
            v["verdict"] for v in singles
        ]
        assert [v["scores"] for v in batch["verdicts"]] == [
            v["scores"] for v in singles
        ]
        assert len(batch["quarantine_paths"]) == 2

    def test_bad_payload_raises_codec_error_with_origin(self, pool_setup):
        pool, _ = pool_setup
        with pytest.raises(CodecError, match="bad-req"):
            pool.submit([b"definitely not an image"], request_id="bad-req")

    def test_shard_stats_flow_back_in_heartbeats(self, pool_setup):
        pool, _ = pool_setup
        payload = encode_image_payload(as_uint8(holdout_images(1)[0]))
        pool.submit([payload], request_id="hb-seed")
        status = wait_until(
            lambda: [
                s
                for s in pool.worker_status()
                if s["snapshot"].get("submitted", 0) >= 1
            ],
            timeout_s=5.0,
            message="a shard heartbeat carrying submitted >= 1",
        )
        snapshot = status[0]["snapshot"]
        assert snapshot["submitted"] >= 1
        assert snapshot["screen_ms"]["count"] >= 1

    def test_labeled_families_cover_every_shard(self, pool_setup):
        pool, _ = pool_setup
        families = pool.labeled_families()
        for family in ("worker.up", "worker.inflight", "worker.heartbeat_age_s"):
            labels = sorted(d["worker_id"] for d, _ in families["gauges"][family])
            assert labels == ["0", "1"]
        for family in ("worker.restarts", "worker.jobs_done", "worker.scored", "worker.errors"):
            assert len(families["counters"][family]) == 2

    def test_dispatch_metrics_counted(self, pool_setup):
        pool, pipeline = pool_setup
        before = pipeline.metrics.counter("workers.dispatched").value
        pool.submit(
            [encode_image_payload(as_uint8(holdout_images(1)[0]))],
            request_id="count-me",
        )
        assert pipeline.metrics.counter("workers.dispatched").value == before + 1


class TestRemoteAccounting:
    def test_record_remote_outcome_advances_sequence_and_stats(self, benign_images):
        pipeline = calibrated_pipeline(benign_images)
        first = pipeline.record_remote_outcome("accepted")
        second = pipeline.record_remote_outcome("rejected")
        assert second == first + 1
        assert pipeline.stats.submitted == 2
        assert pipeline.stats.accepted == 1
        assert pipeline.stats.rejected == 1


class TestPoolLifecycle:
    def test_config_rejects_zero_workers(self, benign_images):
        spec = WorkerSpec.from_pipeline(calibrated_pipeline(benign_images))
        with pytest.raises(ReproError, match="workers must be >= 1"):
            WorkerPool(spec, WorkerPoolConfig(workers=0))

    def test_submit_before_start_and_after_shutdown_refused(self, benign_images):
        pipeline = calibrated_pipeline(benign_images)
        pool = WorkerPool(
            WorkerSpec.from_pipeline(pipeline),
            WorkerPoolConfig(workers=1, **FAST_POOL),
        )
        payload = encode_image_payload(as_uint8(benign_images[0]))
        with pytest.raises(ReproError, match="not started"):
            pool.submit([payload], request_id="early")
        pool.start()
        try:
            assert pool.submit([payload], request_id="mid")["verdicts"]
        finally:
            pool.shutdown()
        with pytest.raises(DetectionError, match="shut down"):
            pool.submit([payload], request_id="late")
        pool.shutdown()  # idempotent

    def test_status_and_pids_expose_live_shards(self, pool_setup):
        pool, _ = pool_setup
        pids = pool.pids()
        assert sorted(pids) == [0, 1]
        assert all(isinstance(pid, int) for pid in pids.values())
        for status in pool.worker_status():
            assert status["up"] is True
            assert status["restarts"] == 0
            assert status["inflight"] == 0
        assert pool.healthy_count == 2

    def test_reply_shape_is_json_wire_contract(self, pool_setup):
        pool, _ = pool_setup
        reply = pool.submit(
            [encode_image_payload(as_uint8(holdout_images(1)[0]))],
            request_id="shape",
        )
        assert set(reply) == {"verdicts", "quarantine_paths"}
        verdict = reply["verdicts"][0]
        assert verdict["request_id"] == "shape"
        assert verdict["image_id"] == "shape"
        assert verdict["verdict"] in ("benign", "attack")
        json.dumps(reply)  # whole reply is JSON-serializable as received
        assert all(isinstance(score, float) for score in verdict["scores"].values())
