"""Unit tests for the shared experiment-data builder."""

import numpy as np
import pytest

from repro.eval.data import DEFAULT_MODEL_INPUT, DEFAULT_SOURCE_SHAPE, prepare_data


class TestPrepareData:
    @pytest.fixture(scope="class")
    def small(self):
        return prepare_data(
            3, 4, source_shape=(64, 64), model_input_shape=(8, 8), seed=123
        )

    def test_counts(self, small):
        assert small.n_calibration == 3
        assert small.n_evaluation == 4

    def test_shapes(self, small):
        assert small.calibration.benign[0].shape == (64, 64, 3)
        assert small.calibration.attacks[0].shape == (64, 64, 3)
        assert small.model_input_shape == (8, 8)

    def test_cached_by_parameters(self, small):
        again = prepare_data(
            3, 4, source_shape=(64, 64), model_input_shape=(8, 8), seed=123
        )
        assert again is small  # lru_cache hit

    def test_distinct_parameters_not_cached_together(self, small):
        other = prepare_data(
            3, 4, source_shape=(64, 64), model_input_shape=(8, 8), seed=124
        )
        assert other is not small

    def test_calibration_and_evaluation_disjoint(self, small):
        cal_bytes = {np.asarray(img).tobytes() for img in small.calibration.benign}
        ev_bytes = {np.asarray(img).tobytes() for img in small.evaluation.benign}
        assert not cal_bytes & ev_bytes

    def test_attacks_decode_to_targets(self, small):
        """Every crafted attack must satisfy the paper's property 2."""
        from repro.imaging.metrics import mse
        from repro.imaging.scaling import resize

        for attack in small.calibration.attacks:
            down = resize(attack, small.model_input_shape, small.algorithm)
            up_again = resize(down, attack.shape[:2], small.algorithm)
            # The decoded view must differ wildly from the attack image
            # (it shows the hidden target, not the cover).
            assert mse(attack, up_again) > 500.0

    def test_defaults_are_paper_scale_shapes(self):
        assert DEFAULT_SOURCE_SHAPE == (256, 256)
        assert DEFAULT_MODEL_INPUT == (32, 32)
