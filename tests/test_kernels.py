"""Unit tests for repro.imaging.kernels."""

import numpy as np
import pytest

from repro.errors import ScalingError
from repro.imaging.kernels import BICUBIC, BILINEAR, KERNELS, LANCZOS4, NEAREST, get_kernel


class TestKernelShapes:
    def test_bilinear_peak_and_support(self):
        assert BILINEAR(np.array(0.0)) == pytest.approx(1.0)
        assert BILINEAR(np.array(0.5)) == pytest.approx(0.5)
        assert BILINEAR(np.array(1.0)) == 0.0
        assert BILINEAR(np.array(-1.5)) == 0.0

    def test_bicubic_peak_and_zero_crossings(self):
        assert BICUBIC(np.array(0.0)) == pytest.approx(1.0)
        # Keys kernel is exactly zero at integer offsets 1 and 2.
        assert BICUBIC(np.array(1.0)) == pytest.approx(0.0, abs=1e-12)
        assert BICUBIC(np.array(2.0)) == 0.0

    def test_bicubic_has_negative_lobe(self):
        assert BICUBIC(np.array(1.5)) < 0.0

    def test_lanczos_peak_and_support(self):
        assert LANCZOS4(np.array(0.0)) == pytest.approx(1.0)
        assert LANCZOS4(np.array(1.0)) == pytest.approx(0.0, abs=1e-12)
        assert LANCZOS4(np.array(4.0)) == 0.0

    def test_nearest_is_box(self):
        assert NEAREST(np.array(0.4)) == 1.0
        assert NEAREST(np.array(0.6)) == 0.0

    def test_kernels_are_even_functions(self):
        ts = np.linspace(0.01, 3.9, 17)
        for kernel in (BILINEAR, BICUBIC, LANCZOS4):
            assert np.allclose(kernel(ts), kernel(-ts))


class TestRegistry:
    def test_all_registered(self):
        assert set(KERNELS) == {"nearest", "bilinear", "bicubic", "lanczos4", "area"}

    def test_get_kernel(self):
        assert get_kernel("bilinear") is BILINEAR

    def test_unknown_kernel_raises_with_suggestions(self):
        with pytest.raises(ScalingError, match="bilinear"):
            get_kernel("bilinearish")
