"""Unit tests for repro.imaging.fourier."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.fourier import (
    binary_spectrum,
    centered_spectrum,
    csp_count,
    log_spectrum_image,
    radial_lowpass_mask,
)


class TestCenteredSpectrum:
    def test_dc_at_center(self):
        image = np.full((16, 16), 100.0)
        spectrum = centered_spectrum(image)
        assert spectrum[8, 8] == pytest.approx(100.0 * 256)
        spectrum[8, 8] = 0.0
        assert spectrum.max() == pytest.approx(0.0, abs=1e-6)

    def test_pure_sinusoid_gives_symmetric_peaks(self):
        xx = np.arange(32)[None, :] * np.ones((32, 1))
        image = 128.0 + 50.0 * np.cos(2 * np.pi * 4 * xx / 32)
        spectrum = centered_spectrum(image)
        spectrum[16, 16] = 0.0
        peaks = np.argwhere(spectrum > spectrum.max() / 2)
        assert {(16, 12), (16, 20)} == {tuple(p) for p in peaks}

    def test_color_uses_luma(self, color_image):
        assert centered_spectrum(color_image).shape == color_image.shape[:2]


class TestLogSpectrum:
    def test_range_normalized(self, color_image):
        spectrum = log_spectrum_image(color_image)
        assert spectrum.min() == pytest.approx(0.0)
        assert spectrum.max() == pytest.approx(255.0)

    def test_constant_image_single_dc_spike(self):
        spectrum = log_spectrum_image(np.full((8, 8), 9.0))
        assert spectrum[4, 4] == pytest.approx(255.0)
        spectrum[4, 4] = 0.0
        assert np.all(spectrum == 0.0)

    def test_zero_image_all_zero(self):
        # Degenerate case: no energy at all, normalization must not divide
        # by zero.
        spectrum = log_spectrum_image(np.zeros((8, 8)))
        assert np.all(spectrum == 0.0)


class TestLowpassMask:
    def test_disk_shape(self):
        mask = radial_lowpass_mask((32, 32), 5.0)
        assert mask[16, 16]
        assert mask[16, 21]
        assert not mask[16, 22]
        assert mask.sum() == pytest.approx(np.pi * 25, rel=0.15)

    def test_rejects_bad_radius(self):
        with pytest.raises(ImageError, match="positive"):
            radial_lowpass_mask((8, 8), 0.0)


class TestCspCount:
    def test_smooth_benign_counts_one(self):
        yy, xx = np.mgrid[0:128, 0:128]
        image = 120 + 60 * np.sin(xx / 15.0) + 40 * np.cos(yy / 18.0)
        assert csp_count(image) == 1

    def test_periodic_grid_perturbation_counts_many(self):
        yy, xx = np.mgrid[0:128, 0:128]
        image = 120 + 60 * np.sin(xx / 15.0) + 40 * np.cos(yy / 18.0)
        # Inject energy on a 9-pixel grid, like a ratio-9 scaling attack
        # (non-divisible period, so the peaks show realistic leakage).
        image[::9, ::9] += 120.0
        assert csp_count(image) >= 3

    def test_attack_images_flagged(self, benign_images, attack_images):
        benign_counts = [csp_count(img) for img in benign_images]
        attack_counts = [csp_count(img) for img in attack_images]
        assert np.mean([c == 1 for c in benign_counts]) >= 0.6
        assert np.mean([c >= 2 for c in attack_counts]) >= 0.6

    def test_binary_spectrum_is_boolean_and_lowpassed(self, color_image):
        binary = binary_spectrum(color_image)
        assert binary.dtype == bool
        h, w = binary.shape
        corner_band = binary[: h // 8, : w // 8]
        assert not corner_band.any()
