"""The results pipeline: parsing, deltas, bootstrap CIs, schema gate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import LoadLabError
from repro.loadlab import Scenario, compile_schedule, schedule_digest
from repro.loadlab.engine import RequestRecord
from repro.loadlab.results import (
    RESULTS_SCHEMA_VERSION,
    bootstrap_ci,
    build_result,
    metrics_delta,
    parse_prometheus,
    render_table,
    summarize_level,
    validate_result,
)
from repro.loadlab.sampler import ResourceSample
from repro.loadlab.scenario import ArrivalModel, LoadProfile, ServerSpec, WorkloadMix


class TestParsePrometheus:
    def test_flattens_samples_and_skips_comments(self):
        text = (
            "# TYPE decamouflage_server_requests_total counter\n"
            "decamouflage_server_requests_total 42\n"
            'decamouflage_worker_up{worker_id="0"} 1\n'
            "process_cpu_seconds_total 1.5\n"
            "garbage line without a value\n"
        )
        values = parse_prometheus(text)
        assert values["decamouflage_server_requests_total"] == 42.0
        assert values['decamouflage_worker_up{worker_id="0"}'] == 1.0
        assert values["process_cpu_seconds_total"] == 1.5
        assert len(values) == 3


class TestMetricsDelta:
    def test_counters_delta_gauges_take_after_value(self):
        before = {
            "x_total": 10.0,
            "lat_ms_sum": 5.0,
            "lat_ms_count": 2.0,
            'lat_ms_bucket{le="+Inf"}': 2.0,
            "in_flight": 3.0,
        }
        after = {
            "x_total": 25.0,
            "lat_ms_sum": 9.0,
            "lat_ms_count": 4.0,
            'lat_ms_bucket{le="+Inf"}': 4.0,
            "in_flight": 1.0,
            "born_midrun_total": 7.0,
        }
        delta = metrics_delta(before, after)
        assert delta["x_total"] == 15.0
        assert delta["lat_ms_sum"] == 4.0
        assert delta["lat_ms_count"] == 2.0
        assert delta['lat_ms_bucket{le="+Inf"}'] == 2.0
        assert delta["in_flight"] == 1.0  # gauge: after value, not a delta
        assert delta["born_midrun_total"] == 7.0  # created mid-run: vs 0


class TestBootstrap:
    def test_seeded_ci_is_reproducible(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        first = bootstrap_ci(
            values, np.mean, resamples=100, rng=np.random.default_rng(7)
        )
        second = bootstrap_ci(
            values, np.mean, resamples=100, rng=np.random.default_rng(7)
        )
        assert first == second
        lo, hi = first
        assert lo <= np.mean(values) <= hi

    def test_degenerate_samples(self):
        rng = np.random.default_rng(0)
        assert bootstrap_ci([], np.mean, resamples=10, rng=rng) == (0.0, 0.0)
        point = bootstrap_ci([3.5], np.mean, resamples=10, rng=rng)
        assert point == (3.5, 3.5)


def _scenario() -> Scenario:
    return Scenario(
        name="results-test",
        profile=LoadProfile(kind="constant", base=2.0, steps=1,
                            level_duration_s=10.0),
        arrival=ArrivalModel(kind="closed"),
        mix=WorkloadMix(benign=0.8, garbage=0.2),
        server=ServerSpec(launch="external"),
        bootstrap_resamples=50,
    )


def _records(level: int = 0) -> list[RequestRecord]:
    rng = np.random.default_rng(3)
    records = [
        RequestRecord(level=level, kind="benign", status=200, ok=True,
                      latency_ms=float(20 + rng.uniform(0, 10)),
                      start_s=float(index * 0.5))
        for index in range(16)
    ]
    records.append(RequestRecord(level=level, kind="garbage", status=400,
                                 ok=True, latency_ms=5.0, start_s=8.0))
    records.append(RequestRecord(level=level, kind="benign", status=0,
                                 ok=False, latency_ms=100.0, start_s=9.0))
    return records


class TestSummaries:
    def test_level_summary_counts_and_quantiles(self):
        scenario = _scenario()
        level = compile_schedule(scenario)[0]
        row = summarize_level(level, _records(), resamples=50, seed=0)
        assert row["sent"] == 18
        assert row["completed"] == 17  # the status-0 transport abort drops out
        assert row["scored"] == 16  # 400s complete but don't score
        assert row["misbehaved"] == 1
        assert row["throughput_rps"]["value"] == pytest.approx(1.6)
        lat = row["latency_ms"]
        assert lat["p50_ms"]["value"] <= lat["p95_ms"]["value"] <= lat["p99_ms"]["value"]
        for name in ("p50_ms", "p95_ms", "p99_ms"):
            lo, hi = lat[name]["ci95"]
            assert lo <= hi
        assert row["by_kind"]["garbage"]["statuses"] == {"400": 1}

    def test_summary_is_deterministic(self):
        scenario = _scenario()
        level = compile_schedule(scenario)[0]
        first = summarize_level(level, _records(), resamples=50, seed=0)
        second = summarize_level(level, _records(), resamples=50, seed=0)
        assert first == second


def _full_result() -> dict:
    scenario = _scenario()
    schedule = compile_schedule(scenario)
    resources = {
        "dispatcher": [
            ResourceSample(t_s=0.0, cpu_seconds=1.0, rss_bytes=1e6, open_fds=4.0),
            ResourceSample(t_s=1.0, cpu_seconds=1.5, rss_bytes=2e6, open_fds=5.0),
        ]
    }
    return build_result(
        scenario,
        schedule,
        _records(),
        digest=schedule_digest(scenario, schedule),
        resources=resources,
        pids={"dispatcher": 1234},
        metrics_before="decamouflage_server_requests_total 2\n",
        metrics_after="decamouflage_server_requests_total 20\nqueue_depth 1\n",
        host={"platform": "test"},
        wall_s=10.0,
    )


class TestBuildAndValidate:
    def test_build_result_is_schema_valid(self):
        result = _full_result()
        validate_result(result)  # must not raise
        assert result["schema_version"] == RESULTS_SCHEMA_VERSION
        assert result["metrics_delta"]["decamouflage_server_requests_total"] == 18.0
        assert result["resources"]["dispatcher"]["pid"] == 1234
        assert len(result["resources"]["dispatcher"]["samples"]) == 2

    def test_validate_rejects_missing_pieces(self):
        with pytest.raises(LoadLabError, match="must be a dict"):
            validate_result("nope")
        result = _full_result()
        broken = dict(result)
        del broken["schedule_digest"]
        with pytest.raises(LoadLabError, match="schedule_digest"):
            validate_result(broken)
        wrong_version = dict(result, schema_version=99)
        with pytest.raises(LoadLabError, match="schema_version"):
            validate_result(wrong_version)
        empty_levels = dict(result, levels=[])
        with pytest.raises(LoadLabError, match="no levels"):
            validate_result(empty_levels)
        import copy

        bad_level = copy.deepcopy(result)
        del bad_level["levels"][0]["throughput_rps"]
        with pytest.raises(LoadLabError, match="throughput_rps"):
            validate_result(bad_level)
        bad_sample = copy.deepcopy(result)
        del bad_sample["resources"]["dispatcher"]["samples"][0]["cpu_seconds"]
        with pytest.raises(LoadLabError, match="cpu_seconds"):
            validate_result(bad_sample)

    def test_render_table_mentions_the_essentials(self):
        result = _full_result()
        text = render_table(result)
        assert "results-test" in text
        assert result["fingerprint"] in text
        assert result["schedule_digest"] in text
        assert "req/s" in text
        assert "dispatcher: pid 1234" in text
        assert text.endswith("\n")
