"""Unit tests for the raster drawing substrate."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.draw import GLYPHS, draw_line, draw_text, fill_rect, new_canvas, text_width


class TestCanvas:
    def test_new_canvas_color(self):
        canvas = new_canvas(4, 6, (10.0, 20.0, 30.0))
        assert canvas.shape == (4, 6, 3)
        assert canvas[2, 3].tolist() == [10.0, 20.0, 30.0]

    def test_rejects_empty(self):
        with pytest.raises(ImageError, match="positive"):
            new_canvas(0, 5)


class TestFillRect:
    def test_basic_fill(self):
        canvas = new_canvas(10, 10)
        fill_rect(canvas, 2, 3, 5, 7, (0.0, 0.0, 0.0))
        assert np.all(canvas[2:5, 3:7] == 0.0)
        assert np.all(canvas[0:2] == 255.0)

    def test_clipped_outside(self):
        canvas = new_canvas(5, 5)
        fill_rect(canvas, -3, -3, 100, 2, (0.0, 0.0, 0.0))
        assert np.all(canvas[:, :2] == 0.0)
        assert np.all(canvas[:, 2:] == 255.0)

    def test_swapped_corners_normalized(self):
        canvas = new_canvas(6, 6)
        fill_rect(canvas, 4, 4, 1, 1, (0.0, 0.0, 0.0))
        assert np.all(canvas[1:4, 1:4] == 0.0)


class TestDrawLine:
    def test_horizontal(self):
        canvas = new_canvas(5, 10)
        draw_line(canvas, 2, 1, 2, 8, (0.0, 0.0, 0.0))
        assert np.all(canvas[2, 1:9] == 0.0)
        assert np.all(canvas[1] == 255.0)

    def test_vertical(self):
        canvas = new_canvas(10, 5)
        draw_line(canvas, 1, 3, 8, 3, (0.0, 0.0, 0.0))
        assert np.all(canvas[1:9, 3] == 0.0)

    def test_diagonal_endpoints(self):
        canvas = new_canvas(10, 10)
        draw_line(canvas, 0, 0, 9, 9, (0.0, 0.0, 0.0))
        assert np.all(canvas[0, 0] == 0.0)
        assert np.all(canvas[9, 9] == 0.0)
        # A 45-degree Bresenham line hits exactly the diagonal.
        assert np.all(np.diag(canvas[:, :, 0]) == 0.0)

    def test_off_canvas_is_clipped_not_fatal(self):
        canvas = new_canvas(4, 4)
        draw_line(canvas, -5, -5, 10, 10, (0.0, 0.0, 0.0))
        assert np.all(canvas[0, 0] == 0.0)


class TestText:
    def test_known_glyphs_exist(self):
        for char in "0123456789ABCDEFGHIKLMNOPRSTUVWXYZ.%-=/():+ ":
            assert char in GLYPHS, char

    def test_draw_changes_pixels(self):
        canvas = new_canvas(12, 40)
        draw_text(canvas, 2, 2, "42", (0.0, 0.0, 0.0))
        assert (canvas == 0.0).any()

    def test_text_width_scales(self):
        assert text_width("AB", scale=2) == 2 * text_width("AB", scale=1)
        assert text_width("") == 0

    def test_lowercase_uppercased(self):
        a = new_canvas(10, 10)
        b = new_canvas(10, 10)
        draw_text(a, 1, 1, "a", (0.0, 0.0, 0.0))
        draw_text(b, 1, 1, "A", (0.0, 0.0, 0.0))
        assert np.array_equal(a, b)

    def test_unknown_glyph_renders_fallback_box(self):
        canvas = new_canvas(12, 10)
        draw_text(canvas, 2, 2, "@", (0.0, 0.0, 0.0))
        assert (canvas == 0.0).any()

    def test_clipping_at_border(self):
        canvas = new_canvas(6, 6)
        draw_text(canvas, 4, 4, "8", (0.0, 0.0, 0.0))  # extends past edge
        assert canvas.shape == (6, 6, 3)

    def test_bad_scale(self):
        with pytest.raises(ImageError, match="scale"):
            draw_text(new_canvas(5, 5), 0, 0, "1", (0.0, 0.0, 0.0), scale=0)
