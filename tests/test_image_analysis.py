"""The shared lazy-analysis layer: memoization, exact parity, observability.

Three properties are load-bearing:

1. each intermediate is computed at most once per context (memo counters);
2. ``score_from(analysis)`` equals ``score(image)`` **bit for bit** for
   every detector × metric combination, and both equal the legacy
   per-detector computation built from the imaging primitives directly;
3. composite consumers (ensemble, scanner, pipeline) share one context per
   image, visible in the hit/miss counters and ``pipeline.stats``.
"""

import numpy as np
import pytest

from repro.core.analysis import ImageAnalysis
from repro.core.detector import Detector
from repro.core.ensemble import build_default_ensemble
from repro.core.filtering_detector import FilteringDetector
from repro.core.multiscale import MultiScaleScanner
from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.errors import DetectionError, ImageError
from repro.imaging.filtering import FILTERS
from repro.imaging.fourier import csp_count, log_spectrum_image
from repro.imaging.metrics import mse, ssim
from repro.imaging.plans import exact_mode
from repro.imaging.scaling import downscale_then_upscale
from repro.observability import Metrics

from tests.conftest import MODEL_INPUT

_GREATER = ThresholdRule(0.0, Direction.GREATER)
_LESS = ThresholdRule(0.0, Direction.LESS)


def _detector_grid(shape=MODEL_INPUT):
    """Every detector × metric combination the repo ships."""
    return [
        ScalingDetector(shape, metric="mse", threshold=_GREATER),
        ScalingDetector(shape, metric="ssim", threshold=_LESS),
        ScalingDetector(shape, metric="mse", algorithm="nearest", threshold=_GREATER),
        FilteringDetector(metric="mse", threshold=_GREATER),
        FilteringDetector(metric="ssim", threshold=_LESS),
        FilteringDetector(filter_name="median", filter_size=3, metric="mse", threshold=_GREATER),
        SteganalysisDetector(),
    ]


class TestMemoization:
    def test_each_intermediate_computed_once(self, color_image):
        analysis = ImageAnalysis(color_image)
        key = ImageAnalysis.round_trip_key(MODEL_INPUT)
        first = analysis.get(key)
        second = analysis.get(key)
        assert first is second
        assert analysis.memo_stats()["round_trip"] == {"hits": 1, "misses": 1}

    def test_float_view_converted_once(self, color_image):
        analysis = ImageAnalysis(color_image)
        first = analysis.float_image
        second = analysis.float_image
        assert first is second
        assert analysis.memo_stats()["float"] == {"hits": 1, "misses": 1}

    def test_metric_scalars_memoized(self, color_image):
        analysis = ImageAnalysis(color_image)
        key = ImageAnalysis.filtered_key("minimum", 2)
        analysis.mse_against(key)
        analysis.mse_against(key)
        stats = analysis.memo_stats()
        assert stats["mse"] == {"hits": 1, "misses": 1}
        # The filtered image itself was computed once (by the first mse),
        # and never again.
        assert stats["filtered"]["misses"] == 1

    def test_distinct_parameters_are_distinct_entries(self, color_image):
        analysis = ImageAnalysis(color_image)
        analysis.round_trip(MODEL_INPUT, "bilinear")
        analysis.round_trip(MODEL_INPUT, "nearest")
        analysis.round_trip((8, 8), "bilinear")
        assert analysis.memo_stats()["round_trip"] == {"hits": 0, "misses": 3}

    def test_peek_never_computes(self, color_image):
        analysis = ImageAnalysis(color_image)
        key = ImageAnalysis.log_spectrum_key()
        assert analysis.peek(key) is None
        assert "log_spectrum" not in analysis.memo_stats()

    def test_forget_arrays_keeps_scalars(self, color_image):
        analysis = ImageAnalysis(color_image)
        key = ImageAnalysis.round_trip_key(MODEL_INPUT)
        score = analysis.mse_against(key)
        analysis.forget_arrays()
        assert analysis.peek(key) is None
        # The scalar survives: asking again is a hit, not a recompute.
        assert analysis.mse_against(key) == score
        assert analysis.memo_stats()["mse"]["misses"] == 1

    def test_counters_mirrored_into_metrics(self, color_image):
        metrics = Metrics()
        analysis = ImageAnalysis(color_image, metrics=metrics)
        analysis.log_spectrum()
        analysis.log_spectrum()
        values = metrics.counter_values("analysis.")
        assert values["analysis.log_spectrum.miss"] == 1
        assert values["analysis.log_spectrum.hit"] == 1

    def test_invalid_image_rejected_at_construction(self):
        with pytest.raises(ImageError):
            ImageAnalysis(np.zeros((4, 4, 7)))

    def test_unknown_key_kind_rejected(self, color_image):
        with pytest.raises(DetectionError, match="unknown analysis"):
            ImageAnalysis(color_image).get(("wavelet",))

    def test_unknown_filter_rejected(self, color_image):
        with pytest.raises(DetectionError, match="unknown filter"):
            ImageAnalysis(color_image).filtered("sobel", 2)


class TestExactParity:
    """score_from == score == legacy imaging-primitive computation, exactly."""

    @pytest.mark.parametrize("detector", _detector_grid(), ids=lambda d: f"{d.method}-{d.metric}-{getattr(d, 'algorithm', getattr(d, 'filter_name', ''))}")
    @pytest.mark.parametrize("kind", ["benign", "attack"])
    def test_score_from_equals_score(self, detector, kind, benign_images, attack_images):
        pool = benign_images if kind == "benign" else attack_images
        for image in pool[:3]:
            assert detector.score_from(ImageAnalysis(image)) == detector.score(image)

    def test_scaling_matches_legacy_computation(self, benign_images, attack_images):
        for image in [*benign_images[:2], *attack_images[:2]]:
            reconstructed = downscale_then_upscale(image, MODEL_INPUT, "bilinear")
            mse_detector = ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER)
            ssim_detector = ScalingDetector(MODEL_INPUT, metric="ssim", threshold=_LESS)
            # Exact mode keeps the legacy bit-for-bit guarantee.
            with exact_mode():
                analysis = ImageAnalysis(image)
                assert mse_detector.score_from(analysis) == mse(image, reconstructed)
                assert ssim_detector.score_from(analysis) == ssim(image, reconstructed)
            # Plan mode (the default) is held to the documented 1e-9 band.
            planned = ImageAnalysis(image)
            assert mse_detector.score_from(planned) == pytest.approx(
                mse(image, reconstructed), rel=1e-9
            )
            assert ssim_detector.score_from(planned) == pytest.approx(
                ssim(image, reconstructed), rel=1e-9
            )

    def test_filtering_matches_legacy_computation(self, benign_images, attack_images):
        for image in [*benign_images[:2], *attack_images[:2]]:
            filtered = FILTERS["minimum"](image, 2)
            mse_detector = FilteringDetector(metric="mse", threshold=_GREATER)
            ssim_detector = FilteringDetector(metric="ssim", threshold=_LESS)
            with exact_mode():
                analysis = ImageAnalysis(image)
                assert mse_detector.score_from(analysis) == mse(image, filtered)
                assert ssim_detector.score_from(analysis) == ssim(image, filtered)
            planned = ImageAnalysis(image)
            assert mse_detector.score_from(planned) == pytest.approx(
                mse(image, filtered), rel=1e-9
            )
            assert ssim_detector.score_from(planned) == pytest.approx(
                ssim(image, filtered), rel=1e-9
            )

    def test_steganalysis_matches_legacy_computation(self, benign_images, attack_images):
        detector = SteganalysisDetector()
        for image in [*benign_images[:2], *attack_images[:2]]:
            assert detector.score_from(ImageAnalysis(image)) == float(csp_count(image))

    def test_log_spectrum_matches_fourier_module(self, color_image):
        assert np.array_equal(
            ImageAnalysis(color_image).log_spectrum(), log_spectrum_image(color_image)
        )

    def test_round_trip_matches_scaling_module(self, gray_image, color_image):
        for image in (gray_image, color_image):
            assert np.array_equal(
                ImageAnalysis(image).round_trip(MODEL_INPUT, "bilinear"),
                downscale_then_upscale(image, MODEL_INPUT, "bilinear"),
            )

    def test_grayscale_images_supported(self, gray_image):
        for detector in _detector_grid((8, 8)):
            assert detector.score_from(ImageAnalysis(gray_image)) == detector.score(gray_image)


class TestSharedContexts:
    def test_ensemble_validates_once_per_image(self, benign_images):
        """The acceptance proof: one float conversion per image for the
        whole ensemble, not one per member."""
        metrics = Metrics()
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(benign_images, percentile=5.0)
        ensemble.metrics = metrics
        ensemble.detect(benign_images[0])
        values = metrics.counter_values("analysis.")
        # Scaling and filtering each need the float view; only the first
        # asks for a conversion.
        assert values["analysis.float.miss"] == 1
        assert values["analysis.float.hit"] >= 1

    def test_ensemble_detect_matches_detect_batch(self, benign_images, attack_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(benign_images, percentile=5.0)
        pool = [*benign_images, *attack_images]
        serial = [ensemble.detect(image) for image in pool]
        batch = ensemble.detect_batch(pool)
        assert serial == batch

    def test_two_members_sharing_an_intermediate_hit_the_memo(self, benign_images):
        metrics = Metrics()
        analysis = ImageAnalysis(benign_images[0], metrics=metrics)
        ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER).score_from(analysis)
        ScalingDetector(MODEL_INPUT, metric="ssim", threshold=_LESS).score_from(analysis)
        # Same round trip parameters -> the second member reuses the array.
        assert metrics.counter_values()["analysis.round_trip.miss"] == 1
        assert metrics.counter_values()["analysis.round_trip.hit"] == 1

    def test_scanner_shares_one_context_across_sizes(self, benign_images):
        scanner = MultiScaleScanner([(8, 8), (16, 16)], algorithm="bilinear")
        scanner.calibrate(benign_images, percentile=5.0)
        metrics = Metrics()
        analysis = ImageAnalysis(benign_images[0], metrics=metrics)
        scanner.detect(analysis)
        values = metrics.counter_values("analysis.")
        assert values["analysis.float.miss"] == 1
        # Two sizes -> two distinct round trips, each computed once.
        assert values["analysis.round_trip.miss"] == 2

    def test_scanner_detect_matches_detect_batch(self, benign_images, attack_images):
        scanner = MultiScaleScanner([(8, 8), (16, 16)], algorithm="bilinear")
        scanner.calibrate(benign_images, percentile=5.0)
        pool = [*benign_images, *attack_images]
        serial = [scanner.detect(image) for image in pool]
        batch = scanner.detect_batch(pool)
        assert serial == batch

    def test_pipeline_stats_expose_memo_savings(self, benign_images):
        from repro.serving import ProtectedPipeline

        pipeline = ProtectedPipeline(MODEL_INPUT)
        pipeline.calibrate(benign_images, percentile=5.0)
        pipeline.submit_batch(list(benign_images))
        stats = pipeline.stats.as_dict()
        assert "analysis_memo" in stats
        assert stats["analysis_memo"]["analysis.float.hit"] >= 1

    def test_artifacts_only_report_computed_intermediates(self, color_image):
        analysis = ImageAnalysis(color_image)
        assert analysis.artifacts() == {}
        analysis.round_trip(MODEL_INPUT)
        analysis.filtered("minimum", 2)
        labels = set(analysis.artifacts())
        assert labels == {"round_trip_16x16_bilinear", "filtered_minimum_2"}


class TestFusedFilteringBatch:
    """Satellite: FilteringDetector.score_batch is fused and exactly equal."""

    @pytest.mark.parametrize("name,size", [("minimum", 2), ("maximum", 2), ("median", 3), ("uniform", 3)])
    @pytest.mark.parametrize("metric", ["mse", "ssim"])
    def test_batch_equals_serial(self, name, size, metric, benign_images, attack_images):
        threshold = _GREATER if metric == "mse" else _LESS
        detector = FilteringDetector(
            filter_name=name, filter_size=size, metric=metric, threshold=threshold
        )
        pool = [*benign_images, *attack_images]
        assert detector.score_batch(pool) == [detector.score(image) for image in pool]

    def test_mixed_shapes_and_dtypes(self, benign_images, gray_image, color_image):
        detector = FilteringDetector(metric="mse", threshold=_GREATER)
        pool = [benign_images[0], gray_image, color_image, benign_images[1], gray_image + 1.0]
        assert detector.score_batch(pool) == [detector.score(image) for image in pool]

    def test_prepared_contexts_are_not_recomputed(self, benign_images):
        detector = FilteringDetector(metric="mse", threshold=_GREATER)
        analyses = [ImageAnalysis(image) for image in benign_images]
        detector.score_batch(analyses)
        detector.score_batch(analyses)
        for analysis in analyses:
            assert analysis.memo_stats()["filtered"]["misses"] == 1

    def test_filter_size_one_matches(self, benign_images):
        detector = FilteringDetector(filter_size=1, metric="mse", threshold=_GREATER)
        pool = list(benign_images)
        assert detector.score_batch(pool) == [detector.score(image) for image in pool]


class TestDetectorWrappers:
    def test_detect_accepts_prepared_context(self, benign_images):
        detector = ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER)
        analysis = ImageAnalysis(benign_images[0])
        assert detector.detect(analysis) == detector.detect(benign_images[0])

    def test_as_analysis_passthrough(self, color_image):
        analysis = ImageAnalysis(color_image)
        assert Detector.as_analysis(analysis) is analysis
        wrapped = Detector.as_analysis(color_image)
        assert isinstance(wrapped, ImageAnalysis)
        assert wrapped.image is color_image
