"""Unit tests for backdoor poisoning via the scaling attack."""

import numpy as np
import pytest

from repro.attacks.backdoor import PoisonedSample, TriggerSpec, poison_dataset, stamp_trigger
from repro.errors import AttackError
from repro.imaging.metrics import mse
from repro.imaging.scaling import resize

from tests.conftest import MODEL_INPUT


class TestTriggerSpec:
    def test_default_corner_bounds(self):
        spec = TriggerSpec(size_fraction=0.25)
        r0, c0, r1, c1 = spec.patch_bounds(32, 32)
        assert (r1 - r0, c1 - c0) == (8, 8)
        assert (r1, c1) == (32, 32)  # bottom-right

    @pytest.mark.parametrize(
        "corner,expected",
        [
            ("top-left", (0, 0, 8, 8)),
            ("top-right", (0, 24, 8, 32)),
            ("bottom-left", (24, 0, 32, 8)),
            ("bottom-right", (24, 24, 32, 32)),
        ],
    )
    def test_all_corners(self, corner, expected):
        spec = TriggerSpec(size_fraction=0.25, corner=corner)
        assert spec.patch_bounds(32, 32) == expected

    def test_unknown_corner(self):
        with pytest.raises(AttackError, match="corner"):
            TriggerSpec(corner="center").patch_bounds(32, 32)

    def test_minimum_patch_size(self):
        spec = TriggerSpec(size_fraction=0.01)
        r0, c0, r1, c1 = spec.patch_bounds(32, 32)
        assert r1 - r0 >= 2


class TestStampTrigger:
    def test_patch_value_applied(self, rng):
        image = rng.uniform(100, 200, (32, 32, 3))
        stamped = stamp_trigger(image, TriggerSpec(value=20.0))
        assert np.all(stamped[24:, 24:] == 20.0)

    def test_rest_untouched(self, rng):
        image = rng.uniform(100, 200, (32, 32))
        stamped = stamp_trigger(image)
        assert np.array_equal(stamped[:24, :24], image[:24, :24])

    def test_input_not_mutated(self, rng):
        image = rng.uniform(100, 200, (16, 16))
        copy = image.copy()
        stamp_trigger(image)
        assert np.array_equal(image, copy)


class TestPoisonDataset:
    def test_poison_hides_triggered_image(self, benign_images, target_images):
        sources = [(np.asarray(target_images[0]), 3)]
        samples = poison_dataset(
            [benign_images[0]],
            sources,
            victim_label=7,
            model_input_shape=MODEL_INPUT,
        )
        assert len(samples) == 1
        sample = samples[0]
        assert sample.label == 7
        assert sample.source_label == 3
        # The downscaled poison must show the *triggered* source.
        downscaled = sample.attack.downscaled()
        triggered = stamp_trigger(np.asarray(target_images[0]))
        assert mse(downscaled, triggered) < 25.0
        # Trigger patch visible in the model's view.
        spec = TriggerSpec()
        r0, c0, r1, c1 = spec.patch_bounds(*MODEL_INPUT)
        assert np.abs(downscaled[r0:r1, c0:c1] - spec.value).max() < 10.0

    def test_poison_looks_like_cover(self, benign_images, target_images):
        samples = poison_dataset(
            [benign_images[1]],
            [(np.asarray(target_images[1]), 0)],
            victim_label=2,
            model_input_shape=MODEL_INPUT,
        )
        report_mse = mse(samples[0].attack.attack_image, benign_images[1])
        cover_vs_other = mse(
            np.asarray(benign_images[1], dtype=float),
            np.asarray(benign_images[2], dtype=float),
        )
        assert report_mse < 0.25 * cover_vs_other

    def test_oversized_source_is_downscaled(self, benign_images):
        large_source = np.asarray(benign_images[2], dtype=float)
        samples = poison_dataset(
            [benign_images[3]],
            [(large_source, 1)],
            victim_label=4,
            model_input_shape=MODEL_INPUT,
        )
        assert samples[0].attack.target.shape[:2] == MODEL_INPUT

    def test_empty_inputs_rejected(self):
        with pytest.raises(AttackError, match="at least one"):
            poison_dataset([], [], victim_label=0, model_input_shape=(8, 8))
