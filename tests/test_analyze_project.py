"""Tests for the whole-program (phase 2) analysis: cross-module lock
ordering, resource lifecycle, and wire-taint flow, plus the artifact,
reconciliation, and reporting plumbing around them.

Fixtures are analyzed as *source* via :func:`run_analysis` — never
imported. The lock-order fixtures deliberately form a cross-module
deadlock, which only a whole-program view can see.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

from analyze.engine import run_analysis  # noqa: E402
from analyze.passes.lock_order import (  # noqa: E402
    load_contract,
    reconcile_locksan,
    render_dot,
)
from analyze.reporters import render_json, render_sarif  # noqa: E402

FIXTURES = REPO_ROOT / "tests" / "analyze_fixtures"


def analyze(names, rules, **kwargs):
    paths = [FIXTURES / name for name in names]
    return run_analysis(paths, rules=rules, cache_path=None, **kwargs)


def codes_of(result) -> set[str]:
    return {finding.code for finding in result.findings}


# -- lock-order: cycles ------------------------------------------------------


def test_cross_module_cycle_detected():
    result = analyze(
        ["lockorder_bad_a.py", "lockorder_bad_b.py"], rules=["lock-order"]
    )
    assert "lock-cycle" in codes_of(result)
    graph = result.artifacts["lock_order"]
    (cycle,) = graph["cycles"]
    assert {lock.rsplit(".", 2)[-2] for lock in cycle} == {"Leader", "Follower"}


def test_single_file_alone_shows_no_cycle():
    # Each half of the cycle is individually clean — the deadlock only
    # exists in the whole-program view.
    for name in ("lockorder_bad_a.py", "lockorder_bad_b.py"):
        result = analyze([name], rules=["lock-order"])
        assert result.artifacts["lock_order"]["cycles"] == []


def test_cycle_reported_at_lexically_first_witness():
    result = analyze(
        ["lockorder_bad_a.py", "lockorder_bad_b.py"], rules=["lock-order"]
    )
    (cycle_finding,) = [f for f in result.findings if f.code == "lock-cycle"]
    assert cycle_finding.path.endswith("lockorder_bad_a.py")
    assert "potential deadlock" in cycle_finding.message


# -- lock-order: the contract ------------------------------------------------


def test_undeclared_nested_acquire_flagged():
    result = analyze(["lockorder_good.py"], rules=["lock-order"])
    assert codes_of(result) == {"undeclared-order"}


def test_declared_order_is_clean(tmp_path):
    contract = tmp_path / "contract.json"
    contract.write_text(
        json.dumps(
            {
                "version": 1,
                "edges": [
                    [
                        "tests.analyze_fixtures.lockorder_good.Registry._lock",
                        "tests.analyze_fixtures.lockorder_good.Cell._lock",
                    ]
                ],
                "runtime_only": [],
            }
        )
    )
    result = analyze(
        ["lockorder_good.py"], rules=["lock-order"], lock_contract=contract
    )
    assert result.findings == []
    (edge,) = result.artifacts["lock_order"]["edges"]
    assert edge["declared"] is True


def test_leaf_lock_with_nested_acquire_is_a_violation(tmp_path):
    """Declaring a lock leaf is stronger than declaring its edges: even a
    blessed ordering out of a leaf lock fails the pass."""
    contract = tmp_path / "contract.json"
    contract.write_text(
        json.dumps(
            {
                "version": 1,
                "edges": [
                    [
                        "tests.analyze_fixtures.lockorder_good.Registry._lock",
                        "tests.analyze_fixtures.lockorder_good.Cell._lock",
                    ]
                ],
                "leaf_locks": [
                    "tests.analyze_fixtures.lockorder_good.Registry._lock"
                ],
                "runtime_only": [],
            }
        )
    )
    result = analyze(
        ["lockorder_good.py"], rules=["lock-order"], lock_contract=contract
    )
    assert codes_of(result) == {"leaf-violation"}
    (finding,) = result.findings
    assert "leaf lock" in finding.message


def test_lock_graph_artifact_schema():
    result = analyze(
        ["lockorder_bad_a.py", "lockorder_bad_b.py"], rules=["lock-order"]
    )
    graph = result.artifacts["lock_order"]
    assert set(graph) == {
        "version", "locks", "edges", "cycles", "contract", "leaf_contract"
    }
    for lock in graph["locks"]:
        assert set(lock) == {"id", "kind", "path", "line"}
    for edge in graph["edges"]:
        assert set(edge) == {"from", "to", "declared", "sites"}
        for site in edge["sites"]:
            assert set(site) == {"path", "line", "via"}


def test_render_dot_marks_cycles_and_undeclared():
    result = analyze(
        ["lockorder_bad_a.py", "lockorder_bad_b.py"], rules=["lock-order"]
    )
    dot = render_dot(result.artifacts["lock_order"])
    assert dot.startswith("digraph lock_order {")
    assert "color=red" in dot and "style=dashed" in dot


# -- resource-lifecycle ------------------------------------------------------


def test_resource_bad_triggers_every_code():
    result = analyze(["resource_bad.py"], rules=["resource-lifecycle"])
    assert codes_of(result) >= {
        "leaked-resource",
        "leak-on-exception",
        "popen-pipe-leak",
        "unjoined-thread",
        "owned-unreleased",
    }


def test_resource_good_is_clean():
    result = analyze(["resource_good.py"], rules=["resource-lifecycle"])
    assert result.findings == []


# -- taint-wire --------------------------------------------------------------


def test_taint_bad_flags_sink_and_param():
    result = analyze(["taintwire_bad.py"], rules=["taint-wire"])
    assert codes_of(result) == {"raw-ndarray-sink", "raw-ndarray-param"}
    # The interprocedural sink is reported at the *call* that hands the
    # raw bytes across the function boundary, not inside the helper.
    (sink,) = [f for f in result.findings if f.code == "raw-ndarray-sink"]
    assert sink.symbol.endswith("handle")


def test_taint_good_is_clean():
    result = analyze(["taintwire_good.py"], rules=["taint-wire"])
    assert result.findings == []


# -- project findings: fingerprints, suppression, changed-only ---------------


def test_project_fingerprints_survive_line_shifts(tmp_path):
    source = (FIXTURES / "taintwire_bad.py").read_text()
    target = tmp_path / "wire.py"

    target.write_text(source)
    before = run_analysis([target], rules=["taint-wire"], cache_path=None)
    target.write_text("# shifted\n# shifted again\n\n" + source)
    after = run_analysis([target], rules=["taint-wire"], cache_path=None)

    assert [f.line for f in before.findings] != [f.line for f in after.findings]
    assert [f.fingerprint for f in before.findings] == [
        f.fingerprint for f in after.findings
    ]


def test_inline_suppression_applies_to_project_findings(tmp_path):
    source = (FIXTURES / "resource_bad.py").read_text().replace(
        "conn = socket.create_connection((host, 80), timeout=1.0)\n"
        "    conn.sendall",
        "conn = socket.create_connection((host, 80), timeout=1.0)  "
        "# analyze: ignore[resource-lifecycle] fixture\n"
        "    conn.sendall",
        1,
    )
    target = tmp_path / "res.py"
    target.write_text(source)
    result = run_analysis([target], rules=["resource-lifecycle"], cache_path=None)
    assert "leaked-resource" not in codes_of(result)
    assert result.suppressed >= 1


def test_changed_only_filters_reports_not_summaries():
    path_a = FIXTURES / "lockorder_bad_a.py"
    path_b = FIXTURES / "lockorder_bad_b.py"
    result = run_analysis(
        [path_a, path_b],
        rules=["lock-order"],
        cache_path=None,
        changed_only={str(path_a)},
    )
    assert result.findings and all(
        f.path == str(path_a) for f in result.findings
    )
    # The graph is still whole-program: both modules' locks and the
    # cross-module cycle are in the artifact.
    graph = result.artifacts["lock_order"]
    assert len(graph["locks"]) == 2 and graph["cycles"]


# -- reporters over project findings -----------------------------------------


def _render_kwargs():
    return dict(
        files_analyzed=2,
        suppressed=0,
        baselined=0,
        cache_hits=0,
        elapsed_s=0.1,
        stale_baseline=[],
    )


def test_project_findings_json_schema():
    result = analyze(["taintwire_bad.py"], rules=["taint-wire"])
    payload = json.loads(render_json(result.findings, **_render_kwargs()))
    for entry in payload["findings"]:
        assert set(entry) == {
            "path", "line", "col", "rule", "code", "message", "symbol",
            "fingerprint",
        }
        assert entry["rule"] == "taint-wire"


def test_sarif_reporter_schema():
    result = analyze(["taintwire_bad.py"], rules=["taint-wire"])
    payload = json.loads(render_sarif(result.findings, **_render_kwargs()))
    assert payload["version"] == "2.1.0"
    (run,) = payload["runs"]
    assert run["tool"]["driver"]["name"] == "tools/analyze"
    rule_ids = {rule["id"] for rule in run["tool"]["driver"]["rules"]}
    assert rule_ids == {
        "taint-wire/raw-ndarray-sink",
        "taint-wire/raw-ndarray-param",
    }
    for entry in run["results"]:
        assert entry["ruleId"] in rule_ids
        assert entry["partialFingerprints"]["analyzeFingerprint/v1"]
        location = entry["locations"][0]["physicalLocation"]
        assert location["region"]["startLine"] > 0


# -- locksan reconciliation --------------------------------------------------


def _tiny_graph() -> dict:
    return {
        "version": 1,
        "locks": [
            {"id": "m.A._lock", "kind": "Lock", "path": "src/m.py", "line": 10},
            {"id": "m.B._lock", "kind": "Lock", "path": "src/m.py", "line": 20},
        ],
        "edges": [
            {"from": "m.A._lock", "to": "m.B._lock", "declared": True,
             "sites": [{"path": "src/m.py", "line": 12, "via": "A.run"}]},
        ],
        "cycles": [],
        "contract": [["m.A._lock", "m.B._lock"]],
    }


def _dump(edges, cycles=()):
    return {
        "schema_version": 1,
        "locks": [
            {"id": 0, "kind": "Lock", "file": "/abs/src/m.py", "line": 10,
             "acquisitions": 4},
            {"id": 1, "kind": "Lock", "file": "/abs/src/m.py", "line": 20,
             "acquisitions": 4},
        ],
        "edges": [{"from": a, "to": b, "count": 1} for a, b in edges],
        "cycles": [list(c) for c in cycles],
    }


def test_reconcile_accepts_statically_known_edge():
    errors, _notes = reconcile_locksan(
        _dump([(0, 1)]), _tiny_graph(), {"runtime_only": []}
    )
    assert errors == []


def test_reconcile_rejects_unknown_edge():
    errors, _notes = reconcile_locksan(
        _dump([(1, 0)]), _tiny_graph(), {"runtime_only": []}
    )
    assert len(errors) == 1 and "m.B._lock -> m.A._lock" in errors[0]


def test_reconcile_accepts_runtime_only_contract_edge():
    errors, _notes = reconcile_locksan(
        _dump([(1, 0)]),
        _tiny_graph(),
        {"runtime_only": [["m.B._lock", "m.A._lock"]]},
    )
    assert errors == []


def test_reconcile_rejects_edge_leaving_declared_leaf_lock():
    # Even a statically-known, contract-declared edge is an error when
    # its source lock is declared leaf.
    errors, _notes = reconcile_locksan(
        _dump([(0, 1)]),
        _tiny_graph(),
        {"runtime_only": [], "leaf_locks": ["m.A._lock"]},
    )
    assert len(errors) == 1 and "leaf" in errors[0]


def test_reconcile_rejects_runtime_cycle():
    errors, _notes = reconcile_locksan(
        _dump([(0, 1)], cycles=[(0, 1)]), _tiny_graph(), {"runtime_only": []}
    )
    assert any("cycle" in error for error in errors)


# -- the real tree -----------------------------------------------------------


def test_real_tree_lock_graph_is_acyclic_and_declared():
    result = run_analysis(
        [REPO_ROOT / "src"], rules=["lock-order"], cache_path=None
    )
    graph = result.artifacts["lock_order"]
    assert graph["cycles"] == []
    assert result.findings == []
    # The serving locks the docs talk about are all modeled.
    ids = {lock["id"] for lock in graph["locks"]}
    assert "repro.serving.server.DetectionServer._shutdown_lock" in ids
    assert "repro.serving.server.AdmissionQueue._cond" in ids
    assert "repro.serving.workers.WorkerPool._lock" in ids


def test_repo_contract_matches_checked_in_file():
    contract = load_contract()
    assert contract["version"] == 1
    assert all(len(edge) == 2 for edge in contract["edges"])
    # The async serving hot-path locks hold the leaf contract, and the
    # real tree honours it (the full run above had zero findings).
    assert "repro.serving.eventloop.EventLoopFrontend._lock" in contract["leaf_locks"]
    assert "repro.serving.shm.ShmRing._lock" in contract["leaf_locks"]
