"""Non-triggering: resource-lifecycle — the disciplined counterparts.

Context-managed sockets, ``try/finally`` releases, reaped pipes, joined
and daemon threads, and an owning class with a ``close`` that releases
its stored handle on every path.
"""

from __future__ import annotations

import socket
import subprocess
import threading


def managed_probe(host: str) -> bytes:
    with socket.create_connection((host, 80), timeout=1.0) as conn:
        conn.sendall(b"ping\n")
        return conn.recv(16)


def careful_close(host: str) -> bytes:
    conn = socket.create_connection((host, 80), timeout=1.0)
    try:
        return conn.recv(16)
    finally:
        conn.close()


def reap_with_pipe(command: list) -> str:
    process = subprocess.Popen(command, stdout=subprocess.PIPE, text=True)
    try:
        output, _ = process.communicate(timeout=10.0)
    finally:
        if process.stdout is not None:
            process.stdout.close()
        process.wait(timeout=10.0)
    return output


def run_joined(target) -> None:
    worker = threading.Thread(target=target, name="fixture-joined")
    worker.start()
    worker.join(timeout=30.0)


def run_daemon(target) -> None:
    sidecar = threading.Thread(target=target, daemon=True)
    sidecar.start()


class Owner:
    def __init__(self, host: str) -> None:
        self._conn = socket.create_connection((host, 80))

    def send(self, blob: bytes) -> None:
        self._conn.sendall(blob)

    def close(self) -> None:
        self._conn.close()
