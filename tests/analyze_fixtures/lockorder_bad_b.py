"""Triggers: lock-order. The other half of the cross-module cycle.

``Follower.chase`` holds ``Follower._lock`` and calls back into
``Leader.poke`` (which takes ``Leader._lock``) — the reverse of the
nesting in ``lockorder_bad_a.py``. The import below is a static-analysis
prop only; the fixture pair is analyzed, never imported.
"""

from __future__ import annotations

import threading


class Follower:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.synced = 0

    def sync(self) -> None:
        with self._lock:
            self.synced += 1

    def chase(self, leader: "Leader") -> None:
        with self._lock:
            leader.poke()


from tests.analyze_fixtures.lockorder_bad_a import Leader  # noqa: E402
