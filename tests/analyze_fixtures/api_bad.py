"""Triggers every api-surface code.

Analyzed with module name ``repro.imaging.api_bad`` so the cross-layer
rule sees an imaging-layer module importing from the serving layer.
"""

from __future__ import annotations

import json
import os

from repro.serving.server import DetectionServer

__all__ = ["build"]


def build() -> object:
    # deprecated-name: the removed Detector method spelling.
    server = DetectionServer
    return server.calibrate_whitebox


UNLISTED_CONSTANT = 3


def also_unlisted() -> dict:
    return json.loads("{}")
