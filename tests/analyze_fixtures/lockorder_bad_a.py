"""Triggers: lock-order. Half of a cross-module lock-order cycle.

``Leader.advance`` holds ``Leader._lock`` and calls into
``Follower.sync`` (which takes ``Follower._lock``); the other half of
the cycle lives in ``lockorder_bad_b.py``. Neither nesting alone is a
deadlock — the *pair* is.
"""

from __future__ import annotations

import threading

from tests.analyze_fixtures.lockorder_bad_b import Follower


class Leader:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.beat = 0

    def advance(self, follower: Follower) -> None:
        with self._lock:
            self.beat += 1
            follower.sync()

    def poke(self) -> None:
        with self._lock:
            self.beat += 1
