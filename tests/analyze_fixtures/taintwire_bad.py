"""Triggers: taint-wire — wire bytes reach ndarray machinery undecoded.

``handle`` reads raw bytes off a connection and passes them through a
helper straight into ``np.frombuffer`` (raw-ndarray-sink, reported at
the call that crosses the function boundary); ``handle_mean`` hands the
same raw bytes to an ``np.ndarray``-annotated parameter
(raw-ndarray-param).
"""

from __future__ import annotations

import numpy as np


def _as_array(blob: bytes) -> "np.ndarray":
    return np.frombuffer(blob, dtype=np.uint8)


def _mean(image: np.ndarray) -> float:
    return float(image.mean())


def handle(conn) -> "np.ndarray":
    payload = conn.recv(65536)
    return _as_array(payload)


def handle_mean(conn) -> float:
    raw = conn.recv(1024)
    return _mean(raw)
