"""Triggers validation-boundary: raw use of an image param before validation.

Analyzed with module name ``repro.imaging.validation_bad`` (the pass only
applies to ``repro.imaging``/``repro.core`` surfaces).
"""

from __future__ import annotations

import numpy as np

__all__ = ["crop_center", "difference"]


def crop_center(image: np.ndarray, size: int) -> np.ndarray:
    h, w = image.shape[:2]
    top = (h - size) // 2
    left = (w - size) // 2
    # unvalidated-image: subscript before any ensure_image/as_float call.
    return image[top : top + size, left : left + size]


def difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # unvalidated-image (twice): arithmetic straight on the raw params.
    return a - b
