"""Triggers every lock-discipline code: unguarded-write, bare-acquire, io-under-lock."""

from __future__ import annotations

import threading


class LeakyCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0
        self._sink = None

    def add(self, amount: int) -> None:
        with self._lock:
            self._total += amount

    def reset(self) -> None:
        # unguarded-write: _total is touched under the lock in add().
        self._total = 0

    def unsafe_add(self, amount: int) -> None:
        # bare-acquire: an exception between acquire and release leaks the lock.
        self._lock.acquire()
        self._total += amount
        self._lock.release()

    def persist(self, path: str) -> None:
        # io-under-lock: file I/O while holding the lock stalls every writer.
        with self._lock:
            with open(path, "w") as handle:
                handle.write(str(self._total))

    def notify(self) -> None:
        # io-under-lock (callback form): _sink is state, not a method.
        with self._lock:
            self._sink(self._total)
