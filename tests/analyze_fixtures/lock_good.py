"""Non-triggering lock usage: guarded writes, context managers, I/O outside."""

from __future__ import annotations

import threading


class DisciplinedCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._total = 0

    def add(self, amount: int) -> None:
        with self._lock:
            self._total += amount

    def reset(self) -> None:
        with self._lock:
            self._total = 0

    def _bump_locked(self, amount: int) -> None:
        """Caller holds the lock; the naming convention exempts this helper."""
        self._total += amount

    def snapshot(self) -> int:
        with self._lock:
            value = self._total
        return value

    def persist(self, path: str) -> None:
        with self._lock:
            value = self._total
        with open(path, "w") as handle:
            handle.write(str(value))
