"""Non-triggering: taint-wire — wire bytes are decoded before math.

The payload passes through ``decode_png`` (a recognized sanitizer, so
its *own* frombuffer is the decode, not a violation) before any ndarray
work; ``summarize`` then only ever sees sanitized data.
"""

from __future__ import annotations

import numpy as np


def decode_png(blob: bytes) -> "np.ndarray":
    return np.frombuffer(blob, dtype=np.uint8).astype(np.float64)


def summarize(image: np.ndarray) -> float:
    return float(image.mean())


def handle(conn) -> float:
    payload = conn.recv(65536)
    image = decode_png(payload)
    return summarize(image)
