"""Triggers: resource-lifecycle — one function per code.

``leaky_probe``  -> leaked-resource   (socket never closed)
``racy_close``   -> leak-on-exception (close not reached if recv raises)
``reap``         -> popen-pipe-leak   (PIPE stdout never closed)
``fire_and_forget`` -> unjoined-thread
``Holder``       -> owned-unreleased  (stored socket, no release method)
"""

from __future__ import annotations

import socket
import subprocess
import threading


def leaky_probe(host: str) -> bytes:
    conn = socket.create_connection((host, 80), timeout=1.0)
    conn.sendall(b"ping\n")
    return b"pong"


def racy_close(host: str) -> bytes:
    conn = socket.create_connection((host, 80), timeout=1.0)
    data = conn.recv(16)
    conn.close()
    return data


def reap(command: list) -> int:
    process = subprocess.Popen(command, stdout=subprocess.PIPE)
    process.wait(timeout=10.0)
    return process.returncode


def fire_and_forget(target) -> None:
    worker = threading.Thread(target=target, name="fixture-worker")
    worker.start()


class Holder:
    def __init__(self, host: str) -> None:
        self._conn = socket.create_connection((host, 80))

    def send(self, blob: bytes) -> None:
        self._conn.sendall(blob)
