"""Non-triggering validation-boundary shapes: validate, then use.

Analyzed with module name ``repro.imaging.validation_good``.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import as_float, ensure_image

__all__ = ["crop_center", "difference", "brightness"]


def crop_center(image: np.ndarray, size: int) -> np.ndarray:
    ensure_image(image)
    h, w = image.shape[:2]
    top = (h - size) // 2
    left = (w - size) // 2
    return image[top : top + size, left : left + size]


def _as_pair(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    return as_float(a), as_float(b)


def difference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    # Clean via helper transitivity: _as_pair validates both positions.
    fa, fb = _as_pair(a, b)
    return fa - fb


def brightness(image: np.ndarray) -> float:
    # No raw use at all: delegating the array whole is always fine.
    return float(np.mean(as_float(image)))
