"""Non-triggering exception handling: narrow, logged, recorded, re-raised."""

from __future__ import annotations

import logging

__all__ = ["narrow", "logged", "recorded", "wrapped"]

_logger = logging.getLogger(__name__)


def narrow(path: str) -> str | None:
    try:
        with open(path) as handle:
            return handle.read()
    except FileNotFoundError:
        return None


def logged(path: str) -> str | None:
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        _logger.warning("read failed: %s", path)
        return None


def recorded(jobs: list[str]) -> list[tuple[str, str]]:
    failures = []
    for job in jobs:
        try:
            with open(job) as handle:
                handle.read()
        except Exception as exc:
            failures.append((job, str(exc)))
    return failures


def wrapped(path: str) -> str:
    try:
        with open(path) as handle:
            return handle.read()
    except Exception as exc:
        raise RuntimeError(f"cannot read {path}") from exc
