"""Non-triggering: lock-order. A nested acquire with a declared order.

``Registry.flush`` takes ``Registry._lock`` and then each entry's
``Cell._lock`` — one direction only, and the tests pass a contract file
declaring exactly this edge, so neither ``lock-cycle`` nor
``undeclared-order`` fires.
"""

from __future__ import annotations

import threading


class Cell:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def bump(self) -> None:
        with self._lock:
            self.value += 1


class Registry:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cells: dict[str, Cell] = {}

    def flush(self) -> None:
        with self._lock:
            for cell in self._cells.values():
                cell.bump()
