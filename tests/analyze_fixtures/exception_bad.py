"""Triggers exception-policy: bare except and a silent broad handler."""

from __future__ import annotations

__all__ = ["swallow", "bare"]


def swallow(path: str) -> str | None:
    try:
        with open(path) as handle:
            return handle.read()
    except Exception:
        # swallowed-exception: no raise, no logging, exception never read.
        return None


def bare(values: list[int]) -> int:
    try:
        return values[0]
    except:  # bare-except: catches SystemExit/KeyboardInterrupt too.
        return 0
