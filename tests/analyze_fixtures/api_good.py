"""Non-triggering api-surface shapes.

Analyzed with module name ``repro.serving.api_good``: a serving-layer
module may import from core/imaging (lower layers), every import is used,
``__all__`` is complete, and the stable ``thresholds`` module functions
are referenced, not the removed method spellings.
"""

from __future__ import annotations

import json

from repro.core import thresholds
from repro.imaging.image import ensure_image

__all__ = ["LISTED_CONSTANT", "summarize"]

LISTED_CONSTANT = 7


def summarize(payload: str) -> dict:
    data = json.loads(payload)
    data["validator"] = ensure_image.__name__
    data["calibrator"] = thresholds.calibrate_whitebox.__name__
    return data
