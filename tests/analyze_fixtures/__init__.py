"""Fixture snippets for the static-analysis framework's own test suite.

Each ``*_bad.py`` file deliberately violates one rule; the matching
``*_good.py`` file exercises the same shape without violating it. These
modules are never imported by tests (some would not even run) — they are
parsed by ``tools/analyze`` as source files. They live under ``tests/`` so
the CI analysis run over ``src tools benchmarks`` never sees them.
"""
