"""The exception hierarchy contract: one base class catches everything."""

import pytest

from repro.errors import (
    AttackError,
    CalibrationError,
    CodecError,
    DetectionError,
    ImageError,
    ReproError,
    ScalingError,
)

ALL_ERRORS = [
    AttackError,
    CalibrationError,
    CodecError,
    DetectionError,
    ImageError,
    ScalingError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, ReproError)
    assert issubclass(error_type, Exception)


def test_base_catches_library_failures():
    import numpy as np

    from repro.imaging.image import ensure_image

    with pytest.raises(ReproError):
        ensure_image(np.zeros((2, 2, 7)))


def test_programming_errors_not_wrapped():
    """Caller bugs surface as built-ins, not ReproError."""
    from repro.imaging.metrics import mse

    with pytest.raises((TypeError, AttributeError, ReproError)):
        mse(None, None)
