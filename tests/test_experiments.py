"""Tests for the experiment runners (small-scale but real end-to-end runs).

Builds one tiny shared ExperimentData (session-scoped) and checks that every
runner produces the right artifact structure and that the paper's
qualitative claims hold at miniature scale.
"""

import numpy as np
import pytest

from repro.core.pipeline import build_attack_set
from repro.datasets.corpus import caltech_like_corpus, neurips_like_corpus
from repro.eval import experiments as exp
from repro.eval.data import ExperimentData
from repro.eval.runtime import table7_runtime


@pytest.fixture(scope="module")
def tiny_data():
    source_shape, model_input = (128, 128), (16, 16)
    cal_o = neurips_like_corpus(10, image_shape=source_shape, seed=1).materialize()
    cal_t = neurips_like_corpus(10, image_shape=source_shape, seed=2, name="t1").materialize()
    ev_o = caltech_like_corpus(10, image_shape=source_shape, seed=3).materialize()
    ev_t = caltech_like_corpus(10, image_shape=source_shape, seed=4, name="t2").materialize()
    return ExperimentData(
        calibration=build_attack_set(cal_o, cal_t, model_input_shape=model_input),
        evaluation=build_attack_set(ev_o, ev_t, model_input_shape=model_input),
        source_shape=source_shape,
        model_input_shape=model_input,
        algorithm="bilinear",
    )


class TestStructure:
    def test_table1_static(self):
        result = exp.table1_input_sizes()
        assert result.experiment_id == "T1"
        assert len(result.rows) == 5

    def test_every_result_renders(self, tiny_data):
        runners = [
            exp.fig9_fig10_scaling_distributions,
            exp.table2_scaling_whitebox,
            exp.fig11_fig12_filtering_distributions,
            exp.table4_filtering_whitebox,
            exp.fig13_csp_distribution,
            exp.table6_steganalysis,
            exp.table8_ensemble,
            exp.appendix_psnr,
            exp.ablation_histogram_metric,
        ]
        for runner in runners:
            result = runner(tiny_data)
            text = result.to_text()
            assert result.experiment_id in text
            assert result.rows


class TestQualitativeClaims:
    def test_t2_scaling_whitebox_high_accuracy(self, tiny_data):
        result = exp.table2_scaling_whitebox(tiny_data)
        mse_row = next(r for r in result.rows if r["Metric"] == "MSE")
        accuracy = float(mse_row["Acc."].rstrip("%"))
        assert accuracy >= 90.0

    def test_t3_blackbox_far_zero(self, tiny_data):
        result = exp.table3_scaling_blackbox(tiny_data)
        for row in result.rows:
            assert float(row["FAR"].rstrip("%")) <= 10.0

    def test_t8_ensemble_beats_chance_massively(self, tiny_data):
        result = exp.table8_ensemble(tiny_data)
        for row in result.rows:
            assert float(row["Acc."].rstrip("%")) >= 85.0

    def test_f13_benign_mostly_single_csp(self, tiny_data):
        result = exp.fig13_csp_distribution(tiny_data)
        benign_row = next(r for r in result.rows if r["population"] == "benign")
        assert float(benign_row["CSP == 1"].rstrip("%")) >= 60.0

    def test_ab1_palette_matching_blinds_histogram_not_mse(self, tiny_data):
        result = exp.ablation_histogram_metric(tiny_data, n_images=6)
        matched = next(r for r in result.rows if "palette-matched" in r["attack"])
        assert float(matched["MSE AUC"]) > float(matched["histogram AUC"])
        assert float(matched["MSE AUC"]) >= 0.9

    def test_f8_reports_calibrated_threshold(self, tiny_data):
        result = exp.fig8_threshold_search(tiny_data, n_points=11)
        assert any(row.get("selected") == "calibrated" for row in result.rows)

    def test_t7_runtime_ordering(self, tiny_data):
        result = table7_runtime(tiny_data.evaluation.benign[:5], model_input_shape=(16, 16))
        by_key = {(r["Method"], r["Metric"]): float(r["Run-time (ms)"]) for r in result.rows}
        # SSIM variants are slower than their MSE counterparts.
        assert by_key[("Scaling", "SSIM")] > by_key[("Scaling", "MSE")]
        assert by_key[("Filtering", "SSIM")] > by_key[("Filtering", "MSE")]

    def test_ab3_prevention_has_benign_cost(self, tiny_data):
        result = exp.ablation_prevention_defenses(tiny_data, n_images=5)
        reconstruction_row = next(r for r in result.rows if "reconstruction" in r["defense"])
        assert "quality loss" in reconstruction_row["benign cost"]

    def test_ab4_transforms_keep_attacks_flagged(self, tiny_data):
        result = exp.ablation_benign_transforms(tiny_data, n_images=5)
        identity = next(r for r in result.rows if r["transform"] == "identity")
        flagged, total = identity["attacks still flagged"].split("/")
        assert int(flagged) == int(total)

    def test_ab6_jpeg_payload_survives_archival_quality(self, tiny_data):
        result = exp.ablation_jpeg_reencoding(tiny_data, n_images=4)
        pristine = next(r for r in result.rows if r["quality"] == "q95 4:4:4")
        survival = float(pristine["payload survival (MSE vs target, lower=intact)"])
        baseline = float(pristine["unrelated-image baseline"])
        assert survival < 0.1 * baseline

    def test_sweep_filter_choice_structure(self, tiny_data):
        from repro.eval.sweeps import sweep_filter_choice

        result = sweep_filter_choice(tiny_data, n_images=6)
        assert len(result.rows) == 8  # 4 filters x 2 metrics
        full_aucs = [float(r["AUC (full attack)"]) for r in result.rows]
        assert all(v >= 0.9 for v in full_aucs)

    def test_sweep_csp_has_default_marker(self, tiny_data):
        from repro.eval.sweeps import sweep_csp_parameters

        result = sweep_csp_parameters(tiny_data, n_images=6)
        assert sum(1 for r in result.rows if r["default"]) == 1
