"""End-to-end tests for the ExperimentMediator orchestration API.

The pinned guarantees, in order: mediator/runner parity (identical rows),
warm-cache runs regenerate zero attack images, config changes invalidate,
corruption recovers, manifests resume a killed run, and process fan-out
merges deterministically.
"""

import json
import os
import signal
import shutil
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.errors import EvalError
from repro.eval.data import DataConfig, build_experiment_data, prepare_data
from repro.eval.mediator import ExperimentMediator
from repro.eval.registry import get_spec

from tests.conftest import wait_until

#: Small-but-real corpus: 64x64 sources, ratio-4 downscale, 4+4 images.
CONFIG = {
    "n_calibration": 4,
    "n_evaluation": 4,
    "source_shape": (64, 64),
    "model_input_shape": (16, 16),
}

#: The acceptance-pinned parity set (F9 is an alias of F9/F10).
PARITY_IDS = ["T2", "T6", "T8", "F9"]


@pytest.fixture(scope="module")
def cache_dir(tmp_path_factory):
    return tmp_path_factory.mktemp("expcache")


@pytest.fixture(scope="module")
def cold_results(cache_dir):
    """One cold mediated run of the parity set (fills the cache)."""
    mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
    results = mediator.run(PARITY_IDS)
    return {result.experiment_id: result for result in results}


@pytest.fixture(scope="module")
def direct_data():
    """The same corpus built the pre-mediator way."""
    return prepare_data(
        CONFIG["n_calibration"],
        CONFIG["n_evaluation"],
        source_shape=CONFIG["source_shape"],
        model_input_shape=CONFIG["model_input_shape"],
    )


class TestParity:
    @pytest.mark.parametrize("name", PARITY_IDS)
    def test_rows_identical_to_direct_runner(self, cold_results, direct_data, name):
        spec = get_spec(name)
        direct = spec.run(direct_data)
        mediated = cold_results[spec.experiment_id]
        assert mediated.rows == direct.rows
        assert mediated.paper_reference == direct.paper_reference
        assert mediated.to_text() == direct.to_text()

    def test_direct_runner_results_carry_no_timings(self, direct_data):
        result = get_spec("T2").run(direct_data)
        assert result.timings == {}

    def test_mediated_results_carry_stage_timings(self, cold_results):
        timings = cold_results["T2"].timings
        assert {"prepare", "attack-gen", "calibrate", "score", "render"} <= set(timings)
        assert all(seconds >= 0.0 for seconds in timings.values())


class TestWarmCache:
    def test_second_run_regenerates_nothing(self, cache_dir, cold_results, monkeypatch):
        def refuse(*args, **kwargs):
            raise AssertionError("attack set was regenerated despite a warm cache")

        monkeypatch.setattr("repro.eval.data.build_attack_set", refuse)
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
        results = mediator.run(PARITY_IDS)
        for result in results:
            assert result.rows == cold_results[result.experiment_id].rows
        counters = mediator.cache_stats()["counters"]
        assert counters.get("cache.attack-set.miss", 0) == 0
        assert counters["cache.attack-set.hit"] == 2  # both corpus roles
        assert counters.get("cache.calibration.miss", 0) == 0
        assert mediator.cache_stats()["hit_rate"] == 1.0

    def test_warm_run_skips_prepare_and_attack_gen_stages(self, cache_dir, cold_results):
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
        result = mediator.run_one("T2")
        assert "prepare" not in result.timings
        assert "attack-gen" not in result.timings

    def test_config_change_invalidates(self, cache_dir, cold_results, tmp_path):
        # Same cache dir, different epsilon: the attack sets must rebuild.
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, epsilon=8.0, **CONFIG)
        mediator.run(["T6"])
        counters = mediator.cache_stats()["counters"]
        assert counters["cache.attack-set.miss"] == 2
        assert counters["cache.attack-set.store"] == 2

    def test_corrupted_entries_recover(self, cache_dir, cold_results, tmp_path):
        corrupt_dir = tmp_path / "corrupt-cache"
        shutil.copytree(cache_dir, corrupt_dir)
        for entry in corrupt_dir.glob("attack-set-*.npz"):
            entry.write_bytes(b"\x00garbage")
        mediator = ExperimentMediator.setup(cache_dir=corrupt_dir, **CONFIG)
        result = mediator.run_one("T2")
        assert result.rows == cold_results["T2"].rows
        counters = mediator.cache_stats()["counters"]
        assert counters["cache.attack-set.corrupt"] == 2
        assert counters["cache.attack-set.store"] == 2  # regenerated + stored


class TestManifestResume:
    def test_completed_cells_resume_without_recompute(
        self, cache_dir, cold_results, tmp_path, monkeypatch
    ):
        manifest = tmp_path / "manifest.jsonl"
        first = ExperimentMediator.setup(cache_dir=cache_dir, manifest=manifest, **CONFIG)
        originals = first.run(["T1", "T2"])
        assert len(manifest.read_text().splitlines()) == 2

        def refuse(*args, **kwargs):
            raise AssertionError("resumed run rebuilt data")

        monkeypatch.setattr("repro.eval.data.build_attack_set", refuse)
        monkeypatch.setattr("repro.eval.data._materialize_corpora", refuse)
        second = ExperimentMediator.setup(cache_dir=None, manifest=manifest, **CONFIG)
        resumed = second.run(["T1", "T2"])
        assert [r.rows for r in resumed] == [r.rows for r in originals]
        assert [r.timings for r in resumed] == [r.timings for r in originals]
        assert second.metrics.counter("mediator.cells.resumed").value == 2

    def test_truncated_manifest_line_is_skipped(self, cache_dir, cold_results, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        first = ExperimentMediator.setup(cache_dir=cache_dir, manifest=manifest, **CONFIG)
        first.run(["T1", "T2"])
        lines = manifest.read_text().splitlines()
        # Simulate a SIGKILL mid-write: last record cut off mid-JSON.
        manifest.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2])
        second = ExperimentMediator.setup(cache_dir=cache_dir, manifest=manifest, **CONFIG)
        results = second.run(["T1", "T2"])
        assert len(results) == 2
        assert second.metrics.counter("mediator.cells.resumed").value == 1
        assert second.metrics.counter("mediator.cells.run").value == 1
        # The manifest now records the re-run cell again.
        assert len(manifest.read_text().splitlines()) == 2

    def test_resume_after_sigkill(self, cache_dir, cold_results, tmp_path):
        manifest = tmp_path / "manifest.jsonl"
        # Child: completes T1 (manifest line lands), then hangs inside a
        # slow experiment until the parent SIGKILLs it.
        script = textwrap.dedent(
            f"""
            import time
            from repro.eval.experiments import ExperimentResult
            from repro.eval.mediator import ExperimentMediator
            from repro.eval.registry import experiment

            @experiment("HANG", title="hangs until killed", needs_data=False,
                        order=999, in_report=False)
            def hang():
                time.sleep(120)
                return ExperimentResult("HANG", "hangs until killed", rows=[])

            mediator = ExperimentMediator.setup(
                cache_dir={str(cache_dir)!r}, manifest={str(manifest)!r},
                n_calibration=4, n_evaluation=4,
                source_shape=(64, 64), model_input_shape=(16, 16),
            )
            mediator.run(["T1", "HANG"])
            """
        )
        child = subprocess.Popen(
            [sys.executable, "-c", script],
            env=os.environ.copy(),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            wait_until(
                lambda: manifest.exists() and manifest.read_text().count("\n") >= 1,
                timeout_s=60.0,
                message="first manifest line from the child run",
            )
        finally:
            if child.poll() is None:
                os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)

        mediator = ExperimentMediator.setup(cache_dir=cache_dir, manifest=manifest, **CONFIG)
        results = mediator.run(["T1", "T2"])
        assert len(results) == 2
        assert mediator.metrics.counter("mediator.cells.resumed").value == 1
        assert results[1].rows == cold_results["T2"].rows


class TestFanOut:
    def test_parallel_rows_equal_serial(self, cache_dir, cold_results):
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
        parallel = mediator.run(["T2", "T6"], jobs=2)
        assert parallel[0].rows == cold_results["T2"].rows
        assert parallel[1].rows == cold_results["T6"].rows

    def test_parallel_merges_worker_cache_counters(self, cache_dir, cold_results):
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
        mediator.run(["T2", "T6"], jobs=2)
        counters = mediator.cache_stats()["counters"]
        # Both workers hit the attack-set entries for both corpus roles.
        assert counters["cache.attack-set.hit"] == 4
        assert mediator.metrics.counter("mediator.cells.run").value == 2


class TestSweep:
    def test_sweep_product_order_and_overrides(self, cache_dir, cold_results):
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
        pairs = mediator.sweep(["T6"], {"epsilon": [4.0, 8.0]})
        assert [cell.overrides for cell, _ in pairs] == [
            {"epsilon": 4.0},
            {"epsilon": 8.0},
        ]
        assert all(result.experiment_id == "T6" for _, result in pairs)
        assert pairs[0][0].key() != pairs[1][0].key()
        # The epsilon=4 cell reuses the shared-cache corpus untouched.
        assert pairs[0][1].rows == cold_results["T6"].rows

    def test_unknown_axis_rejected(self, cache_dir):
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
        with pytest.raises(EvalError, match="unknown sweep axes"):
            mediator.sweep(["T6"], {"not_a_field": [1]})


class TestApiSurface:
    def test_available_lists_canonical_order(self):
        ids = [spec.experiment_id for spec in ExperimentMediator.available()]
        assert ids[:4] == ["T1", "F8", "F9/F10", "T2"]
        assert "SW1" in ids and "SW2" in ids

    def test_alias_resolution(self, cache_dir, cold_results):
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, **CONFIG)
        result = mediator.run_one("F10")
        assert result.experiment_id == "F9/F10"

    def test_unknown_experiment_raises(self):
        mediator = ExperimentMediator.setup(**CONFIG)
        with pytest.raises(EvalError, match="unknown experiment"):
            mediator.run(["T999"])

    def test_unknown_config_field_raises(self):
        with pytest.raises(EvalError, match="unknown data config fields"):
            ExperimentMediator.setup(n_calibration=4, bogus_field=1)

    def test_bad_jobs_raises(self):
        with pytest.raises(EvalError, match="jobs must be >= 1"):
            ExperimentMediator.setup(jobs=0, **CONFIG)

    def test_manifest_payload_is_json_round_trippable(self, cache_dir, cold_results, tmp_path):
        manifest = tmp_path / "m.jsonl"
        mediator = ExperimentMediator.setup(cache_dir=cache_dir, manifest=manifest, **CONFIG)
        mediator.run(["T2"])
        payload = json.loads(manifest.read_text().splitlines()[0])
        assert payload["experiment"] == "T2"
        assert payload["config"]["n_calibration"] == CONFIG["n_calibration"]
        assert payload["rows"] == cold_results["T2"].rows


class TestSeedThreading:
    def test_seed_changes_fingerprint_and_corpus(self):
        base = DataConfig(n_calibration=2, n_evaluation=2, source_shape=(64, 64),
                          model_input_shape=(16, 16))
        reseeded = base.replace(seed=1)
        assert base.fingerprint() != reseeded.fingerprint()
        a = build_experiment_data(base)
        b = build_experiment_data(reseeded)
        assert not np.array_equal(a.calibration.benign[0], b.calibration.benign[0])
        assert a.seed == 0 and b.seed == 1

    def test_identical_config_identical_fingerprint(self):
        a = DataConfig(seed=3)
        b = DataConfig(seed=3)
        assert a.fingerprint() == b.fingerprint()
