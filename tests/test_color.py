"""Unit tests for repro.imaging.color."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.color import rgb_to_ycbcr, to_grayscale, to_rgb, ycbcr_to_rgb


class TestToGrayscale:
    def test_luma_weights(self):
        red = np.zeros((1, 1, 3))
        red[0, 0, 0] = 100.0
        assert to_grayscale(red)[0, 0] == pytest.approx(29.9)

    def test_gray_input_passthrough(self):
        image = np.array([[10.0, 20.0]])
        assert np.array_equal(to_grayscale(image), image)

    def test_single_channel_3d(self):
        image = np.full((2, 2, 1), 5.0)
        out = to_grayscale(image)
        assert out.shape == (2, 2)
        assert np.all(out == 5.0)

    def test_alpha_ignored(self):
        rgba = np.zeros((1, 1, 4))
        rgba[0, 0] = [100.0, 100.0, 100.0, 0.0]
        assert to_grayscale(rgba)[0, 0] == pytest.approx(100.0)

    def test_white_maps_to_255(self):
        white = np.full((2, 2, 3), 255.0)
        assert to_grayscale(white)[0, 0] == pytest.approx(255.0)


class TestToRgb:
    def test_gray_promotes_to_three_identical_channels(self):
        gray = np.array([[7.0]])
        rgb = to_rgb(gray)
        assert rgb.shape == (1, 1, 3)
        assert np.all(rgb == 7.0)

    def test_rgba_drops_alpha(self):
        rgba = np.ones((2, 2, 4))
        assert to_rgb(rgba).shape == (2, 2, 3)

    def test_rgb_passthrough(self):
        rgb = np.random.default_rng(0).random((3, 3, 3)) * 255
        assert np.array_equal(to_rgb(rgb), rgb)


class TestYCbCr:
    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        rgb = rng.integers(0, 256, (8, 8, 3)).astype(np.float64)
        back = ycbcr_to_rgb(rgb_to_ycbcr(rgb))
        assert np.allclose(back, rgb, atol=0.01)

    def test_gray_pixel_has_neutral_chroma(self):
        gray_rgb = np.full((1, 1, 3), 100.0)
        ycbcr = rgb_to_ycbcr(gray_rgb)
        assert ycbcr[0, 0, 0] == pytest.approx(100.0)
        assert ycbcr[0, 0, 1] == pytest.approx(128.0)
        assert ycbcr[0, 0, 2] == pytest.approx(128.0)

    def test_requires_three_channels(self):
        with pytest.raises(ImageError, match="3-channel"):
            rgb_to_ycbcr(np.zeros((2, 2)))
        with pytest.raises(ImageError, match="3-channel"):
            ycbcr_to_rgb(np.zeros((2, 2)))

    def test_output_clipped(self):
        extreme = np.zeros((1, 1, 3))
        extreme[0, 0] = [255.0, 0.0, 255.0]
        rgb = ycbcr_to_rgb(extreme)
        assert rgb.min() >= 0.0
        assert rgb.max() <= 255.0
