"""Unit tests for the prevention-baseline defenses."""

import numpy as np
import pytest

from repro.defenses import (
    attack_residue,
    benign_drift,
    reconstruct_image,
    reconstruction_quality_loss,
    robust_resize,
)
from repro.imaging.metrics import mse
from repro.imaging.scaling import resize

from tests.conftest import MODEL_INPUT


class TestRobustScaling:
    def test_destroys_hidden_payload(self, benign_images, attack_images, target_images):
        """Area scaling must NOT reveal the hidden target."""
        attack, target = attack_images[0], np.asarray(target_images[0], dtype=float)
        vulnerable_view = resize(attack, MODEL_INPUT, "bilinear")
        robust_view = robust_resize(attack, MODEL_INPUT)
        assert mse(vulnerable_view, target) < 25.0  # attack works on bilinear
        assert mse(robust_view, target) > 10 * mse(vulnerable_view, target)

    def test_attack_residue_metric(self, attack_images, target_images):
        residue = attack_residue(
            attack_images[1], np.asarray(target_images[1], dtype=float), MODEL_INPUT
        )
        assert residue > 500.0

    def test_benign_drift_nonzero(self, benign_images):
        """The compatibility cost: robust and deployed scalers disagree."""
        drift = benign_drift(benign_images[0], MODEL_INPUT, deployed_algorithm="bilinear")
        assert drift > 0.0

    def test_benign_preserved_semantically(self, benign_images):
        """Robust scaling of a benign image stays close to bilinear scaling."""
        drift = benign_drift(benign_images[1], MODEL_INPUT)
        benign_view = resize(benign_images[1], MODEL_INPUT, "bilinear")
        other_view = resize(benign_images[2], MODEL_INPUT, "bilinear")
        assert drift < 0.5 * mse(benign_view, other_view)


class TestReconstruction:
    def test_neutralizes_attack(self, attack_images, target_images):
        attack, target = attack_images[2], np.asarray(target_images[2], dtype=float)
        sanitized = reconstruct_image(attack, MODEL_INPUT, algorithm="bilinear")
        view = resize(sanitized, MODEL_INPUT, "bilinear")
        # After sanitization the scaler no longer sees the target.
        assert mse(view, target) > 10 * mse(resize(attack, MODEL_INPUT, "bilinear"), target)

    def test_output_shape_full_size(self, attack_images):
        sanitized = reconstruct_image(attack_images[0], MODEL_INPUT)
        assert sanitized.shape == attack_images[0].shape

    def test_quality_loss_positive_but_bounded(self, benign_images):
        loss = reconstruction_quality_loss(benign_images[3], MODEL_INPUT)
        assert 0.0 < loss < 500.0

    def test_only_vulnerable_pixels_touched(self, benign_images):
        sanitized = reconstruct_image(benign_images[4], MODEL_INPUT, algorithm="bilinear")
        changed = np.abs(sanitized - np.asarray(benign_images[4], dtype=float)) > 1e-9
        # Bilinear ratio-8 reads 2/8 of rows and columns -> at most ~1/16
        # of pixels (plus nothing else) may change.
        assert changed.mean() < 0.08
