"""Unit tests for repro.imaging.scaling."""

import numpy as np
import pytest

from repro.errors import ScalingError
from repro.imaging.coefficients import scaling_operators
from repro.imaging.scaling import ALGORITHMS, downscale_then_upscale, resize


class TestResize:
    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_output_shape_grayscale(self, gray_image, algorithm):
        out = resize(gray_image, (10, 12), algorithm)
        assert out.shape == (10, 12)

    @pytest.mark.parametrize("algorithm", ALGORITHMS)
    def test_output_shape_color(self, color_image, algorithm):
        out = resize(color_image, (9, 11), algorithm)
        assert out.shape == (9, 11, 3)

    def test_matches_operator_form(self, gray_image):
        left, right = scaling_operators(gray_image.shape, (8, 8), "bicubic")
        assert np.allclose(resize(gray_image, (8, 8), "bicubic"), left @ gray_image @ right)

    def test_constant_preserved(self):
        image = np.full((16, 16, 3), 99.0)
        for algorithm in ALGORITHMS:
            assert np.allclose(resize(image, (4, 4), algorithm), 99.0)

    def test_upscale_then_identity_size(self, gray_image):
        out = resize(gray_image, gray_image.shape, "bilinear")
        assert np.allclose(out, gray_image)

    def test_smooth_image_downscale_close_to_area(self, gray_image):
        # On a smooth image all reasonable algorithms agree approximately.
        bilinear = resize(gray_image, (8, 8), "bilinear")
        area = resize(gray_image, (8, 8), "area")
        assert np.abs(bilinear - area).max() < 15.0

    def test_rejects_bad_shape(self, gray_image):
        with pytest.raises(ScalingError, match="positive"):
            resize(gray_image, (0, 5))

    def test_rejects_unknown_algorithm(self, gray_image):
        with pytest.raises(ScalingError, match="unknown"):
            resize(gray_image, (5, 5), "bilinialspline")

    def test_uint8_input_returns_float(self, color_image):
        out = resize(color_image, (5, 5))
        assert out.dtype == np.float64


class TestChannelHandling:
    def test_rgba_resizes_all_four_channels(self, rng):
        image = rng.uniform(0, 255, (16, 16, 4))
        out = resize(image, (4, 4), "bilinear")
        assert out.shape == (4, 4, 4)
        # Channel independence: alpha resized exactly like a lone plane.
        alone = resize(image[:, :, 3], (4, 4), "bilinear")
        assert np.allclose(out[:, :, 3], alone)

    def test_single_channel_3d(self, rng):
        image = rng.uniform(0, 255, (16, 16, 1))
        out = resize(image, (4, 4), "bicubic")
        assert out.shape == (4, 4, 1)


class TestRoundTrip:
    def test_smooth_image_survives(self, gray_image):
        out = downscale_then_upscale(gray_image, (8, 8), "bilinear")
        assert out.shape == gray_image.shape
        assert np.mean((out - gray_image) ** 2) < 150.0

    def test_noise_does_not_survive(self, rng):
        noise = rng.uniform(0, 255, (64, 64))
        out = downscale_then_upscale(noise, (8, 8), "bilinear")
        assert np.mean((out - noise) ** 2) > 1000.0

    def test_mixed_algorithms(self, gray_image):
        out = downscale_then_upscale(gray_image, (8, 8), "nearest", upscale_algorithm="bilinear")
        assert out.shape == gray_image.shape
