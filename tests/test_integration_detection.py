"""Integration tests: the paper's full detection protocol, miniaturized.

Calibrate on one synthetic family, evaluate on the other — exactly the
cross-dataset transfer the paper demonstrates with NeurIPS-2017 → Caltech-256.
"""

import numpy as np
import pytest

from repro.attacks.strong import craft_attack_image
from repro.core.ensemble import build_default_ensemble
from repro.core.evaluation import evaluate_decisions
from repro.core.pipeline import build_attack_set
from repro.datasets.corpus import caltech_like_corpus, neurips_like_corpus

MODEL_INPUT = (16, 16)
SOURCE = (128, 128)


@pytest.fixture(scope="module")
def transfer_sets():
    cal_o = neurips_like_corpus(8, image_shape=SOURCE, seed=11).materialize()
    cal_t = neurips_like_corpus(8, image_shape=SOURCE, seed=12, name="ct").materialize()
    ev_o = caltech_like_corpus(8, image_shape=SOURCE, seed=13).materialize()
    ev_t = caltech_like_corpus(8, image_shape=SOURCE, seed=14, name="et").materialize()
    calibration = build_attack_set(cal_o, cal_t, model_input_shape=MODEL_INPUT)
    evaluation = build_attack_set(ev_o, ev_t, model_input_shape=MODEL_INPUT)
    return calibration, evaluation


class TestWhiteboxTransfer:
    def test_threshold_transfers_across_datasets(self, transfer_sets):
        calibration, evaluation = transfer_sets
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(calibration.benign, calibration.attacks)
        counts = evaluate_decisions(
            [ensemble.is_attack(i) for i in evaluation.benign],
            [ensemble.is_attack(i) for i in evaluation.attacks],
        )
        assert counts.accuracy >= 0.85
        assert counts.far <= 0.15


class TestBlackboxTransfer:
    def test_benign_only_calibration_still_detects(self, transfer_sets):
        calibration, evaluation = transfer_sets
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(calibration.benign, percentile=2.0)
        attack_flags = [ensemble.is_attack(i) for i in evaluation.attacks]
        assert np.mean(attack_flags) >= 0.85


class TestAttackAlgorithmMismatch:
    def test_detector_catches_attack_built_for_other_algorithm(self, transfer_sets):
        """Black-box in the strongest sense: attacker targeted bicubic, the
        deployment (and detector) use bilinear. The round-trip still breaks
        because the hidden pixels sit in the same grid positions."""
        calibration, evaluation = transfer_sets
        ensemble = build_default_ensemble(MODEL_INPUT)  # bilinear detector
        ensemble.calibrate(calibration.benign, calibration.attacks)
        original = evaluation.benign[0]
        target = np.asarray(evaluation.attacks[1], dtype=float)
        from repro.imaging.scaling import resize

        small_target = resize(target, MODEL_INPUT, "bicubic")
        foreign = craft_attack_image(original, small_target, algorithm="bicubic")
        assert ensemble.is_attack(foreign.attack_image)


class TestOfflineDataCuration:
    def test_poisoned_pool_is_filtered(self, transfer_sets):
        """The offline threat model: filter a mixed pool before training."""
        calibration, evaluation = transfer_sets
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(calibration.benign, percentile=2.0)
        pool = list(evaluation.benign[:5]) + list(evaluation.attacks[:5])
        truth = [False] * 5 + [True] * 5
        kept = [img for img, is_attack in zip(pool, truth) if not ensemble.is_attack(img)]
        removed_attacks = sum(
            1 for img, is_attack in zip(pool, truth) if is_attack and ensemble.is_attack(img)
        )
        assert removed_attacks >= 4  # at least 4/5 poisons removed
        assert len(kept) >= 4        # most benign kept
