"""The load engine against scripted adversity, on deterministic time.

No real detection server: requests land on
:class:`tests.fault_injection.ScriptedServer` (a raw-socket HTTP
impostor) and the engine's clock is :class:`tests.fault_injection
.FakeTime`, so schedules, budgets, and slow-loris holds are asserted
without wall-clock sleeps. Schedule determinism — same seed, same offered
load — is asserted here too, because the schedule *is* the engine's
input.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.loadlab import LoadEngine, Scenario, compile_schedule, schedule_digest
from repro.loadlab.engine import EXPECTED_STATUSES
from repro.loadlab.scenario import (
    ArrivalModel,
    LoadProfile,
    ServerSpec,
    WorkloadMix,
)
from repro.loadlab.schedule import kind_stream
from repro.loadlab.workload import PayloadPool, build_payloads

from tests.fault_injection import FakeTime, ScriptedServer, response


def _scenario(**overrides) -> Scenario:
    """A tiny closed-loop scenario; the budget cap (not the fake clock)
    terminates each level."""
    fields = dict(
        name="engine-test",
        profile=LoadProfile(kind="constant", base=1.0, steps=1,
                            level_duration_s=5.0),
        arrival=ArrivalModel(kind="closed"),
        mix=WorkloadMix(benign=1.0, pool_size=2),
        server=ServerSpec(launch="external"),
        max_requests_per_level=4,
        client_timeout_s=5.0,
        client_retries=1,
        bootstrap_resamples=10,
    )
    fields.update(overrides)
    return Scenario(**fields)


def _fake_payloads() -> PayloadPool:
    """Static bodies: the ScriptedServer never decodes them anyway."""
    return PayloadPool(
        benign=(b"fake-png-a", b"fake-png-b"),
        attack=(b"fake-attack",),
        garbage=(b"\x00garbage",),
        batch=(b"fake-batch",),
    )


def _run(scenario: Scenario, server: ScriptedServer, payloads=None):
    host, port = server.address
    engine = LoadEngine(
        scenario,
        compile_schedule(scenario),
        payloads or _fake_payloads(),
        host,
        port,
        clock=FakeTime(),
    )
    return engine.run()


class TestDeterminism:
    def test_same_seed_same_digest(self):
        scenario = _scenario(
            profile=LoadProfile(kind="ramp", base=1.0, peak=4.0, steps=3,
                                level_duration_s=2.0),
            mix=WorkloadMix(benign=0.5, garbage=0.3, batch=0.2),
        )
        first = schedule_digest(scenario, compile_schedule(scenario))
        second = schedule_digest(scenario, compile_schedule(scenario))
        assert first == second

    def test_different_seed_different_digest(self):
        scenario = _scenario(mix=WorkloadMix(benign=0.5, garbage=0.5))
        other = scenario.with_seed(scenario.seed + 1)
        assert schedule_digest(scenario, compile_schedule(scenario)) != (
            schedule_digest(other, compile_schedule(other))
        )

    def test_kind_streams_replay_exactly(self):
        scenario = _scenario(mix=WorkloadMix(benign=0.4, attack=0.3, garbage=0.3))
        first = kind_stream(scenario, 0, 0).take(64)
        second = kind_stream(scenario, 0, 0).take(64)
        assert first == second
        assert set(first) <= {"benign", "attack", "garbage"}
        # Distinct clients get distinct streams.
        assert kind_stream(scenario, 0, 1).take(64) != first

    def test_open_loop_arrivals_are_planned_and_capped(self):
        scenario = _scenario(
            profile=LoadProfile(kind="constant", base=10.0, steps=2,
                                level_duration_s=5.0),
            arrival=ArrivalModel(kind="poisson"),
            max_requests_per_level=12,
        )
        schedule = compile_schedule(scenario)
        again = compile_schedule(scenario)
        assert schedule == again
        for level in schedule:
            assert level.mode == "open"
            assert 0 < len(level.arrivals) <= 12
            times = [item.at_s for item in level.arrivals]
            assert times == sorted(times)
            assert all(0.0 < at < 5.0 for at in times)
        # Independent per-level streams: different arrival instants.
        assert schedule[0].arrivals != schedule[1].arrivals

    def test_closed_loop_client_counts_track_intensity(self):
        scenario = _scenario(
            profile=LoadProfile(kind="ramp", base=1.0, peak=3.0, steps=3,
                                level_duration_s=1.0)
        )
        assert [lvl.clients for lvl in compile_schedule(scenario)] == [1, 2, 3]


class TestClosedLoop:
    def test_budget_bounds_the_level_under_fake_time(self):
        # FakeTime never passes the level deadline on its own; the
        # per-level budget is what terminates the loop.
        with ScriptedServer([]) as server:
            records = _run(_scenario(max_requests_per_level=4), server)
        assert len(records) == 4
        assert all(r.kind == "benign" and r.status == 200 and r.ok for r in records)

    def test_garbage_must_be_rejected_cleanly(self):
        scenario = _scenario(
            mix=WorkloadMix(garbage=1.0, benign=0.0), max_requests_per_level=2
        )
        with ScriptedServer([response(400, b'{"error":"bad"}')] * 2) as server:
            records = _run(scenario, server)
        assert [r.status for r in records] == [400, 400]
        assert all(r.ok for r in records)

    def test_garbage_accepted_with_200_is_misbehaviour(self):
        # A server that *scores* garbage is broken; the record flips ok=False.
        scenario = _scenario(
            mix=WorkloadMix(garbage=1.0, benign=0.0), max_requests_per_level=2
        )
        with ScriptedServer([]) as server:  # always answers 200
            records = _run(scenario, server)
        assert all(r.status == 200 and not r.ok for r in records)

    def test_think_time_advances_the_fake_clock(self):
        scenario = _scenario(
            arrival=ArrivalModel(kind="closed", think_time_s=2.0),
            profile=LoadProfile(kind="constant", base=1.0, steps=1,
                                level_duration_s=5.0),
            max_requests_per_level=10,
        )
        with ScriptedServer([]) as server:
            records = _run(scenario, server)
        # think 2s against a 5s level: requests at t=0, 2, 4 — then the
        # fake clock passes the deadline.
        assert len(records) == 3


class TestAdversarialKinds:
    def test_slow_loris_holds_and_abandons(self):
        scenario = _scenario(
            mix=WorkloadMix(slow_loris=1.0, benign=0.0),
            max_requests_per_level=2,
        )
        with ScriptedServer([]) as server:
            records = _run(scenario, server)
        assert [r.kind for r in records] == ["slow_loris", "slow_loris"]
        # The hold never completes a request: status 0, and that is the
        # *expected* outcome for this kind.
        assert all(r.status == 0 and r.ok for r in records)

    def test_expected_statuses_cover_every_kind(self):
        from repro.loadlab.scenario import REQUEST_KINDS

        assert set(EXPECTED_STATUSES) == set(REQUEST_KINDS)


class TestOpenLoop:
    def test_replays_every_planned_arrival(self):
        scenario = _scenario(
            profile=LoadProfile(kind="constant", base=8.0, steps=1,
                                level_duration_s=2.0),
            arrival=ArrivalModel(kind="poisson", max_outstanding=4),
            max_requests_per_level=10,
        )
        schedule = compile_schedule(scenario)
        planned = len(schedule[0].arrivals)
        assert planned > 0
        with ScriptedServer([]) as server:
            records = _run(scenario, server)
        assert len(records) == planned
        assert all(r.status == 200 and r.ok for r in records)

    def test_mixed_kinds_follow_the_plan(self):
        scenario = _scenario(
            profile=LoadProfile(kind="constant", base=10.0, steps=1,
                                level_duration_s=2.0),
            arrival=ArrivalModel(kind="poisson", max_outstanding=2),
            mix=WorkloadMix(benign=0.5, garbage=0.5),
            max_requests_per_level=8,
        )
        schedule = compile_schedule(scenario)
        planned_kinds = sorted(item.kind for item in schedule[0].arrivals)
        with ScriptedServer([]) as server:
            records = _run(scenario, server)
        assert sorted(r.kind for r in records) == planned_kinds


class TestWorkloadPools:
    def test_build_payloads_skips_unweighted_pools(self):
        scenario = _scenario(mix=WorkloadMix(benign=1.0, pool_size=2))
        pool = build_payloads(scenario)
        assert len(pool.benign) == 2
        assert pool.attack == () and pool.garbage == () and pool.batch == ()

    def test_garbage_pool_is_undecodable(self):
        from repro.errors import CodecError
        from repro.serving.wire import decode_image_payload

        scenario = _scenario(mix=WorkloadMix(benign=0.5, garbage=0.5))
        pool = build_payloads(scenario)
        assert pool.garbage
        for body in pool.garbage:
            with pytest.raises(CodecError):
                decode_image_payload(body)

    def test_payload_rotation_and_missing_pool_errors(self):
        from repro.errors import LoadLabError

        pool = _fake_payloads()
        assert pool.payload_for("benign", 0) != pool.payload_for("benign", 1)
        assert pool.payload_for("benign", 2) == pool.payload_for("benign", 0)
        with pytest.raises(LoadLabError, match="no payload pool"):
            pool.payload_for("slow_loris", 0)
        empty = dataclasses.replace(pool, attack=())
        with pytest.raises(LoadLabError, match="empty"):
            empty.payload_for("attack", 0)


class TestWarmup:
    def test_warmup_requests_are_fired_but_not_recorded(self):
        scenario = _scenario(warmup_requests=3, max_requests_per_level=2)
        with ScriptedServer([]) as server:
            records = _run(scenario, server)
            seen = server.requests_seen
        assert len(records) == 2
        assert seen == 5  # 3 warm-ups + 2 recorded


class TestOpenLoopCleanup:
    """Regression: the open loop's per-thread keep-alive clients must be
    closed even when dispatch dies mid-level (the static analyzer's
    leak-on-exception finding on ``_run_open``)."""

    class _StubClient:
        instances: "list" = []

        def __init__(self, *args, **kwargs) -> None:
            self.closed = False
            type(self).instances.append(self)

        def request_raw(self, *args, **kwargs):
            return 200, {}, b"{}"

        def close(self) -> None:
            self.closed = True

    class _ExplodingPool:
        """Runs the first submitted task inline, then blows up the
        dispatch loop — after a client exists, before the level ends."""

        def __init__(self, *args, **kwargs) -> None:
            self._submitted = 0

        def __enter__(self):
            return self

        def __exit__(self, *exc):
            return False

        def submit(self, fn, *args):
            self._submitted += 1
            fn(*args)
            if self._submitted >= 1:
                raise RuntimeError("dispatch died")

    def test_clients_closed_when_dispatch_raises(self, monkeypatch):
        import repro.loadlab.engine as engine_mod

        self._StubClient.instances = []
        monkeypatch.setattr(engine_mod, "DetectionClient", self._StubClient)
        monkeypatch.setattr(
            engine_mod, "ThreadPoolExecutor", self._ExplodingPool
        )
        scenario = _scenario(
            profile=LoadProfile(kind="constant", base=8.0, steps=1,
                                level_duration_s=2.0),
            arrival=ArrivalModel(kind="poisson", max_outstanding=4),
            warmup_requests=0,
        )
        engine = LoadEngine(
            scenario,
            compile_schedule(scenario),
            _fake_payloads(),
            "127.0.0.1",
            1,
            clock=FakeTime(),
        )
        with pytest.raises(RuntimeError, match="dispatch died"):
            engine.run()
        assert self._StubClient.instances, "no client was ever created"
        assert all(client.closed for client in self._StubClient.instances)
