"""Unit tests for the attack-surface analysis."""

import numpy as np
import pytest

from repro.attacks.analysis import analyze_surface, rate_exposure, vulnerability_map
from repro.errors import ScalingError


class TestAnalyzeSurface:
    def test_bilinear_ratio8(self):
        report = analyze_surface((256, 256), (32, 32), "bilinear")
        assert report.ratio == (8.0, 8.0)
        assert report.row_sparsity == pytest.approx(0.75)
        # (2/8)^2 of pixels are influential.
        assert report.influential_fraction == pytest.approx(1 / 16)

    def test_nearest_is_sparsest(self):
        nearest = analyze_surface((256, 256), (32, 32), "nearest")
        bilinear = analyze_surface((256, 256), (32, 32), "bilinear")
        assert nearest.influential_fraction < bilinear.influential_fraction
        assert nearest.weight_concentration == pytest.approx(1.0)

    def test_area_has_no_surface(self):
        report = analyze_surface((256, 256), (32, 32), "area")
        assert report.influential_fraction == 1.0
        assert "low" in report.exposure

    def test_higher_ratio_more_exposed(self):
        small = analyze_surface((64, 64), (32, 32), "bilinear")
        large = analyze_surface((512, 512), (32, 32), "bilinear")
        assert large.influential_fraction < small.influential_fraction

    def test_rejects_upscaling(self):
        with pytest.raises(ScalingError, match="downscaling"):
            analyze_surface((32, 32), (64, 64))

    def test_describe_mentions_key_facts(self):
        text = analyze_surface((256, 256), (32, 32), "bilinear").describe()
        assert "256x256" in text
        assert "exposure" in text

    def test_exposure_ratings(self):
        assert "critical" in analyze_surface((512, 512), (32, 32), "nearest").exposure
        assert "low" in analyze_surface((256, 256), (32, 32), "area").exposure


class TestVulnerabilityMap:
    def test_shape_and_support(self):
        heat = vulnerability_map((64, 64), (8, 8), "bilinear")
        assert heat.shape == (64, 64)
        # Zero exactly where neither axis is read.
        assert np.mean(heat == 0) > 0.5

    def test_consistent_with_attack_footprint(self, benign_images, target_images):
        """The attack only touches pixels the map marks as influential."""
        from repro.attacks.strong import craft_attack_image

        original, target = benign_images[0], target_images[0]
        result = craft_attack_image(original, target, algorithm="bilinear")
        delta = np.abs(result.attack_image - np.asarray(original, dtype=float)).sum(axis=2)
        heat = vulnerability_map(original.shape[:2], target.shape[:2], "bilinear")
        moved_outside = (delta > 1e-9) & (heat == 0)
        assert not moved_outside.any()

    def test_area_map_everywhere_positive(self):
        heat = vulnerability_map((64, 64), (8, 8), "area")
        assert np.all(heat > 0)
