"""Unit tests for the JPEG compression simulator."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.jpeg import (
    block_dct2,
    block_idct2,
    jpeg_roundtrip,
    quantization_tables,
)


class TestDct:
    def test_orthonormal_roundtrip(self, rng):
        blocks = rng.standard_normal((4, 3, 8, 8))
        assert np.allclose(block_idct2(block_dct2(blocks)), blocks)

    def test_constant_block_is_pure_dc(self):
        block = np.full((8, 8), 7.0)
        coefficients = block_dct2(block)
        assert coefficients[0, 0] == pytest.approx(56.0)  # 7 * 8
        coefficients[0, 0] = 0.0
        assert np.allclose(coefficients, 0.0, atol=1e-12)

    def test_energy_preservation(self, rng):
        block = rng.standard_normal((8, 8))
        assert np.sum(block**2) == pytest.approx(np.sum(block_dct2(block) ** 2))


class TestQuantizationTables:
    def test_quality_50_is_reference(self):
        luma, _ = quantization_tables(50)
        assert luma[0, 0] == 16.0

    def test_higher_quality_smaller_steps(self):
        low, _ = quantization_tables(20)
        high, _ = quantization_tables(95)
        assert np.all(high <= low)

    def test_quality_100_near_lossless(self):
        luma, chroma = quantization_tables(100)
        assert np.all(luma == 1.0)
        assert np.all(chroma == 1.0)

    def test_validates_range(self):
        with pytest.raises(ImageError, match="quality"):
            quantization_tables(0)
        with pytest.raises(ImageError, match="quality"):
            quantization_tables(101)


class TestJpegRoundtrip:
    def test_shape_preserved(self, color_image):
        out = jpeg_roundtrip(color_image, 80)
        assert out.shape == color_image.shape

    def test_non_multiple_of_8_sizes(self, rng):
        image = rng.uniform(0, 255, (13, 21, 3))
        out = jpeg_roundtrip(image, 80)
        assert out.shape == image.shape

    def test_quality_monotonicity(self, gray_image):
        from repro.imaging.metrics import mse

        high = jpeg_roundtrip(gray_image, 95)
        low = jpeg_roundtrip(gray_image, 10)
        assert mse(gray_image, high) < mse(gray_image, low)

    def test_quality_100_gray_nearly_exact(self, gray_image):
        from repro.imaging.metrics import mse

        out = jpeg_roundtrip(gray_image, 100)
        assert mse(gray_image, out) < 1.5  # rounding in quantization only

    def test_grayscale_path(self, gray_image):
        out = jpeg_roundtrip(gray_image, 70)
        assert out.ndim == 2

    def test_smooth_image_survives_visually(self, gray_image):
        from repro.imaging.metrics import ssim

        out = jpeg_roundtrip(gray_image, 85)
        assert ssim(gray_image, out) > 0.9

    def test_output_range(self, color_image):
        out = jpeg_roundtrip(color_image, 30)
        assert out.min() >= 0.0
        assert out.max() <= 255.0

    def test_chroma_subsampling_toggle(self, color_image):
        from repro.imaging.metrics import mse

        with_sub = jpeg_roundtrip(color_image, 85, subsample_chroma=True)
        without = jpeg_roundtrip(color_image, 85, subsample_chroma=False)
        assert mse(color_image, without) <= mse(color_image, with_sub) + 1e-9


class TestJpegVsAttack:
    def test_attack_survives_high_quality_jpeg(self, benign_images, attack_images, target_images):
        """Re-encoding at archival quality does NOT sanitize the attack.

        Without chroma subsampling the payload survives almost exactly;
        with 4:2:0 the chroma averaging degrades it but the downscaled view
        still resembles the target far more than any benign image would.
        """
        from repro.imaging.metrics import mse
        from repro.imaging.scaling import resize

        attack = attack_images[0]
        target = np.asarray(target_images[0], dtype=float)
        benign_reference = mse(
            resize(benign_images[0], target.shape[:2], "bilinear"), target
        )

        pristine = jpeg_roundtrip(attack, 95, subsample_chroma=False)
        view = resize(pristine, target.shape[:2], "bilinear")
        assert mse(view, target) < 50.0

        subsampled = jpeg_roundtrip(attack, 95, subsample_chroma=True)
        view = resize(subsampled, target.shape[:2], "bilinear")
        assert mse(view, target) < 0.5 * benign_reference

    def test_detection_survives_jpeg(self, benign_images, attack_images):
        from repro.core import ScalingDetector

        detector = ScalingDetector((16, 16), metric="mse")
        detector.calibrate(benign_images, attack_images)
        recompressed = jpeg_roundtrip(attack_images[1], 85)
        assert detector.is_attack(recompressed)
