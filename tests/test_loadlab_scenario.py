"""Scenario specs: validation, serialization, fingerprints, the catalog."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import LoadLabError
from repro.loadlab import (
    ArrivalModel,
    LoadProfile,
    Scenario,
    ServerSpec,
    WorkloadMix,
    builtin_scenarios,
    get_scenario,
    load_scenario,
)

SCENARIOS_DIR = Path(__file__).parent.parent / "benchmarks" / "scenarios"


class TestProfiles:
    def test_constant_levels(self):
        levels = LoadProfile(kind="constant", base=3.0, steps=2).levels()
        assert [lvl.intensity for lvl in levels] == [3.0, 3.0]

    def test_ramp_levels(self):
        levels = LoadProfile(kind="ramp", base=1.0, peak=7.0, steps=4).levels()
        assert [lvl.intensity for lvl in levels] == [1.0, 3.0, 5.0, 7.0]

    def test_geometric_levels_double_exactly(self):
        levels = LoadProfile(kind="geometric", base=64.0, peak=512.0,
                             steps=4).levels()
        assert [lvl.intensity for lvl in levels] == pytest.approx(
            [64.0, 128.0, 256.0, 512.0]
        )

    def test_geometric_requires_positive_peak(self):
        with pytest.raises(LoadLabError, match="requires a peak"):
            LoadProfile(kind="geometric", base=2.0)
        with pytest.raises(LoadLabError, match="peak must be > 0"):
            LoadProfile(kind="geometric", base=2.0, peak=-1.0)

    def test_spike_levels(self):
        levels = LoadProfile(kind="spike", base=2.0, peak=9.0, steps=5).levels()
        assert [lvl.intensity for lvl in levels] == [2.0, 2.0, 9.0, 2.0, 2.0]

    def test_diurnal_levels_bounded_and_cyclic(self):
        profile = LoadProfile(kind="diurnal", base=2.0, peak=10.0, steps=8,
                              periods=2)
        intensities = [lvl.intensity for lvl in profile.levels()]
        assert all(2.0 <= value <= 10.0 for value in intensities)
        assert intensities[0] == pytest.approx(2.0)  # troughs at cycle start
        # Two periods over eight steps: the wave repeats after four.
        assert intensities[:4] == pytest.approx(intensities[4:])

    def test_rejects_unknown_kind_and_missing_peak(self):
        with pytest.raises(LoadLabError, match="unknown profile kind"):
            LoadProfile(kind="sawtooth")
        with pytest.raises(LoadLabError, match="requires a peak"):
            LoadProfile(kind="ramp", base=1.0)
        with pytest.raises(LoadLabError, match="steps >= 3"):
            LoadProfile(kind="spike", base=1.0, peak=2.0, steps=2)


class TestValidation:
    def test_rejects_bad_arrival(self):
        with pytest.raises(LoadLabError, match="unknown arrival kind"):
            ArrivalModel(kind="open")

    def test_rejects_all_zero_mix(self):
        with pytest.raises(LoadLabError, match="must not all be zero"):
            WorkloadMix(benign=0.0)

    def test_rejects_negative_mix_weight(self):
        with pytest.raises(LoadLabError, match=">= 0"):
            WorkloadMix(benign=1.0, garbage=-0.1)

    def test_rejects_tiny_holdout(self):
        with pytest.raises(LoadLabError, match="holdout"):
            ServerSpec(holdout=5)

    def test_rejects_unknown_frontend_and_transport(self):
        with pytest.raises(LoadLabError, match="unknown frontend"):
            ServerSpec(frontend="coroutine")
        with pytest.raises(LoadLabError, match="unknown transport"):
            ServerSpec(transport="tcp")

    def test_rejects_empty_name_and_bad_knobs(self):
        with pytest.raises(LoadLabError, match="non-empty"):
            Scenario(name="")
        with pytest.raises(LoadLabError, match="sample_period_s"):
            Scenario(name="x", sample_period_s=0.0)
        with pytest.raises(LoadLabError, match="warmup_requests"):
            Scenario(name="x", warmup_requests=-1)

    def test_probabilities_normalize(self):
        mix = WorkloadMix(benign=3.0, garbage=1.0)
        probs = mix.probabilities()
        assert probs["benign"] == pytest.approx(0.75)
        assert probs["garbage"] == pytest.approx(0.25)
        assert sum(probs.values()) == pytest.approx(1.0)


class TestSerialization:
    def test_json_round_trip_is_exact(self):
        scenario = get_scenario("adversarial-mix")
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_fingerprint_ignores_description_only(self):
        base = get_scenario("ramp")
        import dataclasses

        renamed = dataclasses.replace(base, description="something else")
        reseeded = base.with_seed(base.seed + 1)
        assert renamed.fingerprint() == base.fingerprint()
        assert reseeded.fingerprint() != base.fingerprint()

    def test_scaled_changes_durations_not_shape(self):
        base = get_scenario("ramp")
        scaled = base.scaled(0.5)
        assert scaled.profile.level_duration_s == pytest.approx(
            base.profile.level_duration_s * 0.5
        )
        assert [lvl.intensity for lvl in scaled.profile.levels()] == [
            lvl.intensity for lvl in base.profile.levels()
        ]
        with pytest.raises(LoadLabError, match="duration_scale"):
            base.scaled(0.0)

    def test_malformed_payloads_raise_loadlab_error(self):
        with pytest.raises(LoadLabError, match="not valid JSON"):
            Scenario.from_json("{nope")
        with pytest.raises(LoadLabError, match="malformed scenario"):
            Scenario.from_dict({"name": "x", "bogus_field": 1})
        with pytest.raises(LoadLabError, match="cannot read"):
            load_scenario("/nonexistent/spec.json")


class TestCatalog:
    def test_unknown_scenario_lists_the_builtins(self):
        with pytest.raises(LoadLabError, match="smoke-ramp"):
            get_scenario("nope")

    def test_checked_in_specs_match_builtins(self):
        """The JSON specs under benchmarks/scenarios/ are serialized copies
        of the catalog entries — neither representation may drift."""
        specs = sorted(SCENARIOS_DIR.glob("*.json"))
        assert specs, f"no scenario specs in {SCENARIOS_DIR}"
        for path in specs:
            scenario = load_scenario(path)
            builtin = get_scenario(path.stem)
            assert scenario == builtin, f"{path.name} drifted from the catalog"
            assert scenario.fingerprint() == builtin.fingerprint()

    def test_cli_list_prints_every_builtin(self, capsys):
        assert main(["loadlab", "list"]) == 0
        out = capsys.readouterr().out
        for name in builtin_scenarios():
            assert name in out

    def test_cli_unknown_scenario_is_a_clean_error(self, capsys):
        assert main(["loadlab", "run", "definitely-not-a-scenario"]) == 2
        assert "error:" in capsys.readouterr().err
