"""Unit tests for repro.imaging.contours (cross-checked against scipy)."""

import numpy as np
import pytest
from scipy import ndimage

from repro.errors import ImageError
from repro.imaging.contours import count_spectrum_points, find_regions, label_components


class TestLabelComponents:
    def test_empty_mask(self):
        labels, count = label_components(np.zeros((5, 5), dtype=bool))
        assert count == 0
        assert labels.sum() == 0

    def test_single_blob(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[1:3, 1:3] = True
        labels, count = label_components(mask)
        assert count == 1
        assert (labels == 1).sum() == 4

    def test_two_separate_blobs(self):
        mask = np.zeros((5, 5), dtype=bool)
        mask[0, 0] = True
        mask[4, 4] = True
        _, count = label_components(mask)
        assert count == 2

    def test_diagonal_connectivity_8_vs_4(self):
        mask = np.array([[1, 0], [0, 1]], dtype=bool)
        assert label_components(mask, connectivity=8)[1] == 1
        assert label_components(mask, connectivity=4)[1] == 2

    def test_full_mask_is_one_component(self):
        _, count = label_components(np.ones((7, 9), dtype=bool))
        assert count == 1

    def test_rejects_non_2d(self):
        with pytest.raises(ImageError, match="2-D"):
            label_components(np.zeros((2, 2, 2), dtype=bool))

    def test_rejects_bad_connectivity(self):
        with pytest.raises(ImageError, match="connectivity"):
            label_components(np.zeros((2, 2), dtype=bool), connectivity=6)

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_scipy_8_connected(self, seed):
        rng = np.random.default_rng(seed)
        mask = rng.random((40, 40)) > 0.72
        _, ours = label_components(mask, connectivity=8)
        _, theirs = ndimage.label(mask, structure=np.ones((3, 3)))
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_scipy_4_connected(self, seed):
        rng = np.random.default_rng(seed + 50)
        mask = rng.random((30, 30)) > 0.6
        _, ours = label_components(mask, connectivity=4)
        _, theirs = ndimage.label(mask)
        assert ours == theirs


class TestRegions:
    def test_region_properties(self):
        mask = np.zeros((6, 8), dtype=bool)
        mask[2:4, 3:6] = True
        regions = find_regions(mask)
        assert len(regions) == 1
        region = regions[0]
        assert region.area == 6
        assert region.centroid == (2.5, 4.0)
        assert region.bbox == (2, 3, 3, 5)

    def test_min_area_filters_specks(self):
        mask = np.zeros((10, 10), dtype=bool)
        mask[0, 0] = True            # 1-pixel speck
        mask[5:8, 5:8] = True        # 9-pixel blob
        assert len(find_regions(mask, min_area=2)) == 1
        assert count_spectrum_points(mask, min_area=2) == 1
        assert count_spectrum_points(mask, min_area=1) == 2
