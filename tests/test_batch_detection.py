"""Batch decision paths: bit-for-bit parity with the per-image paths,
plus the scaling-operator cache backing them."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ensemble import build_default_ensemble
from repro.core.filtering_detector import FilteringDetector
from repro.core.multiscale import MultiScaleScanner
from repro.core.result import Direction, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.errors import ScalingError
from repro.imaging.scaling import (
    OperatorCache,
    clear_operator_cache,
    get_scaling_operators,
    operator_cache_stats,
    resize,
)

MODEL_INPUT = (16, 16)
_GREATER = ThresholdRule(0.0, Direction.GREATER)
_LESS = ThresholdRule(0.0, Direction.LESS)


def _detectors():
    return [
        ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER),
        ScalingDetector(MODEL_INPUT, metric="ssim", threshold=_LESS),
        FilteringDetector(metric="mse", threshold=_GREATER),
        FilteringDetector(metric="ssim", threshold=_LESS),
        SteganalysisDetector(),
    ]


@pytest.fixture(scope="module")
def mixed_pool(benign_images, attack_images):
    """Benign + attack, uint8 and float64 interleaved."""
    pool = []
    for index, (benign, attack) in enumerate(zip(benign_images, attack_images)):
        pool.append(benign if index % 2 == 0 else benign.astype(np.float64))
        pool.append(attack)
    return pool


class TestScoreBatchParity:
    @pytest.mark.parametrize("which", range(5))
    def test_bitwise_equal_scores_on_mixed_pool(self, which, mixed_pool):
        detector = _detectors()[which]
        serial = [detector.score(image) for image in mixed_pool]
        batch = detector.score_batch(mixed_pool)
        assert batch == serial  # exact float equality, not approx

    def test_scaling_batch_handles_grayscale(self, gray_image):
        detector = ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER)
        assert detector.score_batch([gray_image]) == [detector.score(gray_image)]

    def test_scaling_batch_handles_mixed_shapes(self, benign_images, gray_image, color_image):
        detector = ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER)
        pool = [benign_images[0], gray_image, color_image]
        assert detector.score_batch(pool) == [detector.score(image) for image in pool]

    def test_empty_batch(self):
        detector = ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER)
        assert detector.score_batch([]) == []
        assert detector.detect_batch([]) == []


class TestDetectBatchParity:
    @pytest.mark.parametrize("which", range(5))
    def test_verdicts_and_scores_match_detect(self, which, mixed_pool):
        detector = _detectors()[which]
        serial = [detector.detect(image) for image in mixed_pool]
        batch = detector.detect_batch(mixed_pool)
        assert [d.is_attack for d in batch] == [d.is_attack for d in serial]
        assert [d.score for d in batch] == [d.score for d in serial]
        assert all(d.method == detector.method for d in batch)

    def test_single_image_batch(self, benign_images):
        detector = ScalingDetector(MODEL_INPUT, metric="mse", threshold=_GREATER)
        (batch,) = detector.detect_batch(benign_images[:1])
        serial = detector.detect(benign_images[0])
        assert batch == serial


class TestEnsembleBatch:
    def test_batch_matches_per_image(self, benign_images, attack_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(benign_images, attack_images)
        pool = benign_images + attack_images
        serial = [ensemble.detect(image) for image in pool]
        batch = ensemble.detect_batch(pool)
        assert [d.is_attack for d in batch] == [d.is_attack for d in serial]
        assert [d.votes_for_attack for d in batch] == [
            d.votes_for_attack for d in serial
        ]
        for b, s in zip(batch, serial):
            assert [m.score for m in b.detections] == [m.score for m in s.detections]

    def test_batch_separates_attacks(self, benign_images, attack_images):
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(benign_images, attack_images)
        verdicts = ensemble.detect_batch(benign_images + attack_images)
        n = len(benign_images)
        assert not any(d.is_attack for d in verdicts[:n])
        assert all(d.is_attack for d in verdicts[n:])


class TestMultiScaleBatch:
    def test_batch_matches_per_image(self, benign_images, attack_images):
        scanner = MultiScaleScanner(
            [(16, 16), (32, 32), (64, 64)], algorithm="bilinear"
        )
        scanner.calibrate(benign_images, percentile=5.0)
        pool = benign_images + attack_images
        serial = [scanner.detect(image) for image in pool]
        batch = scanner.detect_batch(pool)
        assert [d.is_attack for d in batch] == [d.is_attack for d in serial]
        assert [d.inferred_target_size for d in batch] == [
            d.inferred_target_size for d in serial
        ]
        assert [d.per_size for d in batch] == [d.per_size for d in serial]

    def test_batch_with_mixed_applicability(self, benign_images, gray_image):
        """A 40x40 image skips the 64x64 candidate; the 128x128 ones don't."""
        scanner = MultiScaleScanner([(16, 16), (64, 64)], algorithm="bilinear")
        scanner.calibrate(benign_images, percentile=5.0)
        pool = [benign_images[0], gray_image, benign_images[1]]
        batch = scanner.detect_batch(pool)
        assert set(batch[0].per_size) == {(16, 16), (64, 64)}
        assert set(batch[1].per_size) == {(16, 16)}
        serial = [scanner.detect(image) for image in pool]
        assert [d.per_size for d in batch] == [d.per_size for d in serial]


class TestOperatorCache:
    def test_hit_miss_accounting(self):
        cache = OperatorCache(maxsize=4)
        cache.get((8, 8), (4, 4), "bilinear")
        cache.get((8, 8), (4, 4), "bilinear")
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 1 and stats["size"] == 1
        assert stats["hit_rate"] == 0.5

    def test_cached_pair_is_identical_object(self):
        cache = OperatorCache()
        first = cache.get((8, 8), (4, 4), "bilinear")
        second = cache.get((8, 8), (4, 4), "bilinear")
        assert first[0] is second[0] and first[1] is second[1]

    def test_distinct_keys_do_not_collide(self):
        cache = OperatorCache()
        a = cache.get((8, 8), (4, 4), "bilinear")
        b = cache.get((8, 8), (4, 4), "nearest")
        c = cache.get((8, 8), (6, 6), "bilinear")
        assert a[0].shape == b[0].shape == (4, 8)
        assert c[0].shape == (6, 8)
        assert cache.stats()["misses"] == 3

    def test_lru_eviction(self):
        cache = OperatorCache(maxsize=2)
        cache.get((8, 8), (4, 4), "bilinear")
        cache.get((8, 8), (5, 5), "bilinear")
        cache.get((8, 8), (4, 4), "bilinear")  # refresh the first key
        cache.get((8, 8), (6, 6), "bilinear")  # evicts (5, 5)
        assert cache.stats()["size"] == 2
        cache.get((8, 8), (4, 4), "bilinear")
        assert cache.stats()["hits"] == 2  # (4, 4) survived the eviction
        cache.get((8, 8), (5, 5), "bilinear")
        assert cache.stats()["misses"] == 4  # (5, 5) was rebuilt

    def test_clear_resets(self):
        cache = OperatorCache()
        cache.get((8, 8), (4, 4), "bilinear")
        cache.clear()
        stats = cache.stats()
        assert stats == {
            "size": 0, "maxsize": 256, "hits": 0, "misses": 0, "hit_rate": 0.0,
        }

    def test_invalid_maxsize(self):
        with pytest.raises(ScalingError):
            OperatorCache(maxsize=0)

    def test_operators_match_resize(self, color_image):
        left, right = get_scaling_operators(color_image.shape[:2], (10, 12), "bilinear")
        expected = resize(color_image, (10, 12), "bilinear")
        img = color_image.astype(np.float64)
        planes = [left @ img[:, :, c] @ right for c in range(3)]
        np.testing.assert_array_equal(np.stack(planes, axis=2), expected)

    def test_process_cache_stats_and_clear(self):
        clear_operator_cache()
        assert operator_cache_stats()["size"] == 0
        get_scaling_operators((8, 8), (4, 4), "bilinear")
        get_scaling_operators((8, 8), (4, 4), "bilinear")
        stats = operator_cache_stats()
        assert stats["size"] == 1 and stats["hits"] >= 1
        clear_operator_cache()
