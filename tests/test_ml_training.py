"""Unit tests for losses, optimizer, network, and the training loop."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml.data import LabelledImages, make_classification_set, normalize_batch
from repro.ml.losses import cross_entropy_loss, softmax
from repro.ml.network import Sequential, build_small_cnn
from repro.ml.optim import SGD
from repro.ml.layers import Dense
from repro.ml.training import evaluate_accuracy, train


class TestSoftmaxAndLoss:
    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.standard_normal((5, 7))
        probabilities = softmax(logits)
        assert np.allclose(probabilities.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        logits = np.array([[1000.0, 1001.0]])
        probabilities = softmax(logits)
        assert np.isfinite(probabilities).all()

    def test_loss_perfect_prediction_near_zero(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = cross_entropy_loss(logits, np.array([0]))
        assert loss == pytest.approx(0.0, abs=1e-6)

    def test_loss_uniform_is_log_classes(self):
        logits = np.zeros((4, 10))
        loss, _ = cross_entropy_loss(logits, np.zeros(4, dtype=np.int64))
        assert loss == pytest.approx(np.log(10))

    def test_gradient_matches_numeric(self, rng):
        logits = rng.standard_normal((3, 4))
        labels = np.array([1, 3, 0])
        _, grad = cross_entropy_loss(logits, labels)
        eps = 1e-6
        index = (1, 3)
        logits[index] += eps
        up, _ = cross_entropy_loss(logits, labels)
        logits[index] -= 2 * eps
        down, _ = cross_entropy_loss(logits, labels)
        assert grad[index] == pytest.approx((up - down) / (2 * eps), rel=1e-4)

    def test_label_shape_validated(self):
        with pytest.raises(ReproError, match="labels"):
            cross_entropy_loss(np.zeros((2, 3)), np.zeros(5, dtype=np.int64))


class TestSgd:
    def test_plain_step(self, rng):
        layer = Dense(2, 2, rng)
        layer.weight.grad += 1.0
        before = layer.weight.value.copy()
        SGD([layer.weight], learning_rate=0.1, momentum=0.0).step()
        assert np.allclose(layer.weight.value, before - 0.1)

    def test_momentum_accumulates(self, rng):
        param = Dense(1, 1, rng).weight
        optimizer = SGD([param], learning_rate=0.1, momentum=0.9)
        start = param.value.copy()
        param.grad[:] = 1.0
        optimizer.step()
        first_move = start - param.value
        param.grad[:] = 1.0
        optimizer.step()
        second_move = (start - first_move) - param.value - first_move + first_move
        # Second step moves farther because velocity accumulated.
        assert np.all((start - param.value) > 2 * first_move * 0.95)

    def test_validation(self, rng):
        param = Dense(1, 1, rng).weight
        with pytest.raises(ReproError, match="learning rate"):
            SGD([param], learning_rate=0.0)
        with pytest.raises(ReproError, match="momentum"):
            SGD([param], momentum=1.0)


class TestTraining:
    def test_cnn_learns_synthetic_classes(self):
        data = make_classification_set(15, image_shape=(32, 32), n_classes=4, seed=0)
        model = build_small_cnn((32, 32, 3), 4, seed=0)
        log = train(model, data, epochs=4, seed=0)
        assert log.accuracies[-1] > 0.7
        assert log.losses[-1] < log.losses[0]

    def test_generalizes_to_unseen(self):
        data = make_classification_set(20, image_shape=(32, 32), n_classes=4, seed=0)
        model = build_small_cnn((32, 32, 3), 4, seed=0)
        train(model, data, epochs=5, seed=0)
        test = make_classification_set(8, image_shape=(32, 32), n_classes=4, seed=9)
        assert evaluate_accuracy(model, test) > 0.6

    def test_empty_dataset_rejected(self):
        model = build_small_cnn((32, 32, 3), 4)
        empty = LabelledImages(np.zeros((0, 32, 32, 3), dtype=np.uint8), np.zeros(0, dtype=np.int64))
        with pytest.raises(ReproError, match="empty"):
            train(model, empty)
        with pytest.raises(ReproError, match="empty"):
            evaluate_accuracy(model, empty)


class TestDataHelpers:
    def test_balanced_classes(self):
        data = make_classification_set(5, n_classes=6, seed=3)
        counts = np.bincount(data.labels, minlength=6)
        assert np.all(counts == 5)

    def test_shuffled(self):
        data = make_classification_set(10, n_classes=2, seed=3)
        assert not np.all(data.labels[:10] == 0)

    def test_normalize_batch_range(self):
        images = np.array([[[[0, 128, 255]]]], dtype=np.uint8)
        out = normalize_batch(images)
        assert out.max() <= 1.0
        assert out.dtype == np.float64

    def test_label_mismatch_rejected(self):
        with pytest.raises(ReproError, match="labels"):
            LabelledImages(np.zeros((3, 8, 8, 3)), np.zeros(2, dtype=np.int64))

    def test_subset(self):
        data = make_classification_set(4, n_classes=3, seed=1)
        sub = data.subset(np.array([0, 2]))
        assert len(sub) == 2

    def test_network_validation(self):
        with pytest.raises(ReproError, match="at least one layer"):
            Sequential([])
        with pytest.raises(ReproError, match="too small"):
            build_small_cnn((6, 6, 3), 2)
