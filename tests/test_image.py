"""Unit tests for repro.imaging.image."""

import numpy as np
import pytest

from repro.errors import ImageError
from repro.imaging.image import (
    as_float,
    as_uint8,
    channel_count,
    clip_pixels,
    ensure_image,
    image_summary,
    is_grayscale,
    merge_channels,
    pad_reflect,
    split_channels,
)


class TestEnsureImage:
    def test_accepts_grayscale(self):
        image = np.zeros((4, 5))
        assert ensure_image(image) is image

    def test_accepts_rgb_and_rgba(self):
        ensure_image(np.zeros((4, 5, 3)))
        ensure_image(np.zeros((4, 5, 4)))

    def test_rejects_wrong_rank(self):
        with pytest.raises(ImageError, match="2-D or 3-D"):
            ensure_image(np.zeros(4))
        with pytest.raises(ImageError, match="2-D or 3-D"):
            ensure_image(np.zeros((2, 2, 3, 1)))

    def test_rejects_bad_channel_count(self):
        with pytest.raises(ImageError, match="channels"):
            ensure_image(np.zeros((4, 5, 2)))

    def test_rejects_empty(self):
        with pytest.raises(ImageError, match="zero-sized"):
            ensure_image(np.zeros((0, 5)))

    def test_rejects_non_array(self):
        with pytest.raises(ImageError, match="numpy array"):
            ensure_image([[1, 2], [3, 4]])

    def test_rejects_non_numeric(self):
        with pytest.raises(ImageError, match="numeric"):
            ensure_image(np.array([["a", "b"], ["c", "d"]]))


class TestConversions:
    def test_as_float_promotes_uint8(self):
        image = np.array([[0, 255]], dtype=np.uint8)
        out = as_float(image)
        assert out.dtype == np.float64
        assert out.tolist() == [[0.0, 255.0]]

    def test_as_float_copies(self):
        image = np.ones((2, 2))
        out = as_float(image)
        out[0, 0] = 99.0
        assert image[0, 0] == 1.0

    def test_as_uint8_rounds_and_clips(self):
        image = np.array([[-3.0, 12.6, 300.0]])
        assert as_uint8(image).tolist() == [[0, 13, 255]]

    def test_roundtrip_uint8(self):
        image = np.arange(12, dtype=np.uint8).reshape(3, 4)
        assert np.array_equal(as_uint8(as_float(image)), image)

    def test_clip_pixels_in_place(self):
        image = np.array([[-5.0, 260.0]])
        out = clip_pixels(image)
        assert out is image
        assert image.tolist() == [[0.0, 255.0]]


class TestChannels:
    def test_channel_count(self):
        assert channel_count(np.zeros((2, 2))) == 1
        assert channel_count(np.zeros((2, 2, 3))) == 3

    def test_is_grayscale(self):
        assert is_grayscale(np.zeros((2, 2)))
        assert is_grayscale(np.zeros((2, 2, 1)))
        assert not is_grayscale(np.zeros((2, 2, 3)))

    def test_split_merge_roundtrip(self):
        image = np.arange(24, dtype=np.float64).reshape(2, 4, 3)
        planes = split_channels(image)
        assert len(planes) == 3
        assert np.array_equal(merge_channels(planes), image)

    def test_merge_single_plane_gives_2d(self):
        plane = np.ones((3, 3))
        assert merge_channels([plane]).shape == (3, 3)

    def test_merge_rejects_mismatched_shapes(self):
        with pytest.raises(ImageError, match="disagree"):
            merge_channels([np.ones((2, 2)), np.ones((3, 3))])

    def test_merge_rejects_empty(self):
        with pytest.raises(ImageError, match="at least one"):
            merge_channels([])


class TestPadding:
    def test_pad_reflect_shape(self):
        image = np.zeros((4, 6, 3))
        assert pad_reflect(image, 2, 1).shape == (8, 8, 3)

    def test_pad_reflect_values(self):
        image = np.array([[1.0, 2.0, 3.0]])
        padded = pad_reflect(image, 0, 1)
        assert padded.tolist() == [[2.0, 1.0, 2.0, 3.0, 2.0]]

    def test_pad_rejects_negative(self):
        with pytest.raises(ImageError, match="non-negative"):
            pad_reflect(np.zeros((3, 3)), -1, 0)


def test_image_summary_mentions_shape_and_range():
    summary = image_summary(np.full((4, 5, 3), 7, dtype=np.uint8))
    assert "4x5x3" in summary
    assert "7.0" in summary
