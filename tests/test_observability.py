"""The metrics primitives: counters, histograms, timers, registry export."""

from __future__ import annotations

import threading

import pytest

from repro.observability import Counter, LatencyHistogram, Metrics


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_concurrent_adds_do_not_lose_updates(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestLatencyHistogram:
    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_exact_statistics(self):
        histogram = LatencyHistogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean_ms"] == pytest.approx(2.5)
        assert summary["min_ms"] == 1.0
        assert summary["max_ms"] == 4.0

    def test_percentiles_are_ordered_and_bounded(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.record(float(value))
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert 1.0 <= p50 <= p95 <= p99 <= 100.0
        # Log buckets are coarse, but the median of 1..100 cannot be
        # estimated anywhere near the tails.
        assert 25.0 <= p50 <= 85.0

    def test_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_negative_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.summary()["min_ms"] == 0.0

    def test_single_observation_collapses(self):
        histogram = LatencyHistogram()
        histogram.record(7.0)
        summary = histogram.summary()
        assert summary["p50_ms"] == summary["p99_ms"] == 7.0


class TestMetrics:
    def test_named_instruments_are_stable(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("b") is metrics.histogram("b")
        assert metrics.counter("a") is not metrics.counter("c")

    def test_timer_records_block_duration(self):
        metrics = Metrics()
        with metrics.timer("stage"):
            pass
        summary = metrics.histogram("stage").summary()
        assert summary["count"] == 1
        assert summary["max_ms"] < 1000.0

    def test_observe(self):
        metrics = Metrics()
        metrics.observe("stage", 12.5)
        assert metrics.histogram("stage").summary()["mean_ms"] == 12.5

    def test_as_dict_shape(self):
        metrics = Metrics()
        metrics.counter("images").add(3)
        metrics.observe("screen", 1.0)
        exported = metrics.as_dict()
        assert exported["counters"] == {"images": 3}
        assert set(exported["latency_ms"]) == {"screen"}
        assert exported["latency_ms"]["screen"]["count"] == 1

    def test_latency_summaries_sorted(self):
        metrics = Metrics()
        metrics.observe("b", 1.0)
        metrics.observe("a", 1.0)
        assert list(metrics.latency_summaries()) == ["a", "b"]


class TestGauge:
    def test_set_inc_dec(self):
        from repro.observability import Gauge

        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(5)
        gauge.inc()
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 8.0

    def test_concurrent_incs_do_not_lose_updates(self):
        from repro.observability import Gauge

        gauge = Gauge()

        def churn():
            for _ in range(1000):
                gauge.inc()
            for _ in range(500):
                gauge.dec()

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 8 * 500

    def test_registry_and_as_dict(self):
        metrics = Metrics()
        assert metrics.gauge("depth") is metrics.gauge("depth")
        metrics.gauge("depth").set(3)
        exported = metrics.as_dict()
        assert exported["gauges"] == {"depth": 3.0}
        assert metrics.gauge_values() == {"depth": 3.0}


class TestRenderPrometheus:
    def test_counter_gauge_histogram_families(self):
        from repro.observability import render_prometheus

        metrics = Metrics()
        metrics.counter("images.accepted").add(7)
        metrics.gauge("server.queue_depth").set(2)
        metrics.observe("pipeline.screen", 3.0)
        text = render_prometheus(metrics)
        assert "# TYPE decamouflage_images_accepted_total counter" in text
        assert "decamouflage_images_accepted_total 7" in text
        assert "# TYPE decamouflage_server_queue_depth gauge" in text
        assert "decamouflage_server_queue_depth 2" in text
        assert "# TYPE decamouflage_pipeline_screen_ms histogram" in text
        assert 'decamouflage_pipeline_screen_ms_bucket{le="+Inf"} 1' in text
        assert "decamouflage_pipeline_screen_ms_sum 3" in text
        assert "decamouflage_pipeline_screen_ms_count 1" in text
        assert text.endswith("\n")

    def test_extra_gauges_and_name_sanitisation(self):
        from repro.observability import render_prometheus

        metrics = Metrics()
        text = render_prometheus(
            metrics, extra_gauges={"operator_cache.hit_rate": 0.25}
        )
        assert "decamouflage_operator_cache_hit_rate 0.25" in text

    def test_histogram_buckets_are_cumulative(self):
        from repro.observability import render_prometheus

        metrics = Metrics()
        for value in (0.5, 0.5, 50.0):
            metrics.observe("stage", value)
        lines = [
            line for line in render_prometheus(metrics).splitlines()
            if line.startswith("decamouflage_stage_ms_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_cumulative_buckets_skip_empty(self):
        histogram = LatencyHistogram()
        histogram.record(1.0)
        histogram.record(100.0)
        buckets = histogram.cumulative_buckets()
        assert [count for _, count in buckets] == [1, 2]
        assert buckets[0][0] < buckets[1][0]
