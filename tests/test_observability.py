"""The metrics primitives: counters, histograms, timers, registry export."""

from __future__ import annotations

import threading

import pytest

from repro.observability import Counter, LatencyHistogram, Metrics


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_concurrent_adds_do_not_lose_updates(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestLatencyHistogram:
    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_exact_statistics(self):
        histogram = LatencyHistogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean_ms"] == pytest.approx(2.5)
        assert summary["min_ms"] == 1.0
        assert summary["max_ms"] == 4.0

    def test_percentiles_are_ordered_and_bounded(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.record(float(value))
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert 1.0 <= p50 <= p95 <= p99 <= 100.0
        # Log buckets are coarse, but the median of 1..100 cannot be
        # estimated anywhere near the tails.
        assert 25.0 <= p50 <= 85.0

    def test_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_negative_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.summary()["min_ms"] == 0.0

    def test_single_observation_collapses(self):
        histogram = LatencyHistogram()
        histogram.record(7.0)
        summary = histogram.summary()
        assert summary["p50_ms"] == summary["p99_ms"] == 7.0


class TestMetrics:
    def test_named_instruments_are_stable(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("b") is metrics.histogram("b")
        assert metrics.counter("a") is not metrics.counter("c")

    def test_timer_records_block_duration(self):
        metrics = Metrics()
        with metrics.timer("stage"):
            pass
        summary = metrics.histogram("stage").summary()
        assert summary["count"] == 1
        assert summary["max_ms"] < 1000.0

    def test_observe(self):
        metrics = Metrics()
        metrics.observe("stage", 12.5)
        assert metrics.histogram("stage").summary()["mean_ms"] == 12.5

    def test_as_dict_shape(self):
        metrics = Metrics()
        metrics.counter("images").add(3)
        metrics.observe("screen", 1.0)
        exported = metrics.as_dict()
        assert exported["counters"] == {"images": 3}
        assert set(exported["latency_ms"]) == {"screen"}
        assert exported["latency_ms"]["screen"]["count"] == 1

    def test_latency_summaries_sorted(self):
        metrics = Metrics()
        metrics.observe("b", 1.0)
        metrics.observe("a", 1.0)
        assert list(metrics.latency_summaries()) == ["a", "b"]
