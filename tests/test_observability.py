"""The metrics primitives: counters, histograms, timers, registry export."""

from __future__ import annotations

import threading

import pytest

from repro.observability import Counter, LatencyHistogram, Metrics


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.add()
        counter.add(4)
        assert counter.value == 5

    def test_concurrent_adds_do_not_lose_updates(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.add()

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 8000


class TestLatencyHistogram:
    def test_empty_summary(self):
        assert LatencyHistogram().summary() == {"count": 0}

    def test_exact_statistics(self):
        histogram = LatencyHistogram()
        for value in (1.0, 2.0, 3.0, 4.0):
            histogram.record(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean_ms"] == pytest.approx(2.5)
        assert summary["min_ms"] == 1.0
        assert summary["max_ms"] == 4.0

    def test_percentiles_are_ordered_and_bounded(self):
        histogram = LatencyHistogram()
        for value in range(1, 101):
            histogram.record(float(value))
        p50 = histogram.percentile(0.50)
        p95 = histogram.percentile(0.95)
        p99 = histogram.percentile(0.99)
        assert 1.0 <= p50 <= p95 <= p99 <= 100.0
        # Log buckets are coarse, but the median of 1..100 cannot be
        # estimated anywhere near the tails.
        assert 25.0 <= p50 <= 85.0

    def test_percentile_validates_fraction(self):
        with pytest.raises(ValueError):
            LatencyHistogram().percentile(1.5)

    def test_negative_clamps_to_zero(self):
        histogram = LatencyHistogram()
        histogram.record(-5.0)
        assert histogram.summary()["min_ms"] == 0.0

    def test_single_observation_collapses(self):
        histogram = LatencyHistogram()
        histogram.record(7.0)
        summary = histogram.summary()
        assert summary["p50_ms"] == summary["p99_ms"] == 7.0


class TestMetrics:
    def test_named_instruments_are_stable(self):
        metrics = Metrics()
        assert metrics.counter("a") is metrics.counter("a")
        assert metrics.histogram("b") is metrics.histogram("b")
        assert metrics.counter("a") is not metrics.counter("c")

    def test_timer_records_block_duration(self):
        metrics = Metrics()
        with metrics.timer("stage"):
            pass
        summary = metrics.histogram("stage").summary()
        assert summary["count"] == 1
        assert summary["max_ms"] < 1000.0

    def test_observe(self):
        metrics = Metrics()
        metrics.observe("stage", 12.5)
        assert metrics.histogram("stage").summary()["mean_ms"] == 12.5

    def test_as_dict_shape(self):
        metrics = Metrics()
        metrics.counter("images").add(3)
        metrics.observe("screen", 1.0)
        exported = metrics.as_dict()
        assert exported["counters"] == {"images": 3}
        assert set(exported["latency_ms"]) == {"screen"}
        assert exported["latency_ms"]["screen"]["count"] == 1

    def test_latency_summaries_sorted(self):
        metrics = Metrics()
        metrics.observe("b", 1.0)
        metrics.observe("a", 1.0)
        assert list(metrics.latency_summaries()) == ["a", "b"]


class TestGauge:
    def test_set_inc_dec(self):
        from repro.observability import Gauge

        gauge = Gauge()
        assert gauge.value == 0.0
        gauge.set(5)
        gauge.inc()
        gauge.inc(2.5)
        gauge.dec(0.5)
        assert gauge.value == 8.0

    def test_concurrent_incs_do_not_lose_updates(self):
        from repro.observability import Gauge

        gauge = Gauge()

        def churn():
            for _ in range(1000):
                gauge.inc()
            for _ in range(500):
                gauge.dec()

        threads = [threading.Thread(target=churn) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert gauge.value == 8 * 500

    def test_registry_and_as_dict(self):
        metrics = Metrics()
        assert metrics.gauge("depth") is metrics.gauge("depth")
        metrics.gauge("depth").set(3)
        exported = metrics.as_dict()
        assert exported["gauges"] == {"depth": 3.0}
        assert metrics.gauge_values() == {"depth": 3.0}


class TestRenderPrometheus:
    def test_counter_gauge_histogram_families(self):
        from repro.observability import render_prometheus

        metrics = Metrics()
        metrics.counter("images.accepted").add(7)
        metrics.gauge("server.queue_depth").set(2)
        metrics.observe("pipeline.screen", 3.0)
        text = render_prometheus(metrics)
        assert "# TYPE decamouflage_images_accepted_total counter" in text
        assert "decamouflage_images_accepted_total 7" in text
        assert "# TYPE decamouflage_server_queue_depth gauge" in text
        assert "decamouflage_server_queue_depth 2" in text
        assert "# TYPE decamouflage_pipeline_screen_ms histogram" in text
        assert 'decamouflage_pipeline_screen_ms_bucket{le="+Inf"} 1' in text
        assert "decamouflage_pipeline_screen_ms_sum 3" in text
        assert "decamouflage_pipeline_screen_ms_count 1" in text
        assert text.endswith("\n")

    def test_extra_gauges_and_name_sanitisation(self):
        from repro.observability import render_prometheus

        metrics = Metrics()
        text = render_prometheus(
            metrics, extra_gauges={"operator_cache.hit_rate": 0.25}
        )
        assert "decamouflage_operator_cache_hit_rate 0.25" in text

    def test_histogram_buckets_are_cumulative(self):
        from repro.observability import render_prometheus

        metrics = Metrics()
        for value in (0.5, 0.5, 50.0):
            metrics.observe("stage", value)
        lines = [
            line for line in render_prometheus(metrics).splitlines()
            if line.startswith("decamouflage_stage_ms_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3

    def test_cumulative_buckets_skip_empty(self):
        histogram = LatencyHistogram()
        histogram.record(1.0)
        histogram.record(100.0)
        buckets = histogram.cumulative_buckets()
        assert [count for _, count in buckets] == [1, 2]
        assert buckets[0][0] < buckets[1][0]


class TestProcessMetrics:
    """The /proc readers behind the standard process self-metrics."""

    def _write_proc(self, root, pid, *, comm="python", utime=150, stime=50,
                    rss_pages=1000, vmrss_kb=2048, fds=3):
        proc = root / str(pid)
        fd_dir = proc / "fd"
        fd_dir.mkdir(parents=True)
        after_comm = (
            f"S 1 {pid} {pid} 0 -1 4194304 100 0 0 0 {utime} {stime} 0 0 "
            f"20 0 3 0 12345 1000000 {rss_pages} 18446744073709551615"
        )
        (proc / "stat").write_text(f"{pid} ({comm}) {after_comm}\n")
        (proc / "status").write_text(
            f"Name:\t{comm}\nVmPeak:\t  9999 kB\nVmRSS:\t  {vmrss_kb} kB\n"
        )
        for index in range(fds):
            (fd_dir / str(index)).write_text("")
        return proc

    def test_reads_synthetic_fixture(self, tmp_path):
        from repro.observability import read_process_stats

        self._write_proc(tmp_path, 42)
        stats = read_process_stats(42, proc_root=str(tmp_path), ticks_per_s=100.0)
        assert stats is not None
        assert stats["cpu_seconds"] == pytest.approx((150 + 50) / 100.0)
        assert stats["rss_bytes"] == 2048 * 1024
        assert stats["open_fds"] == 3

    def test_comm_with_spaces_and_parens(self, tmp_path):
        from repro.observability import read_process_stats

        self._write_proc(tmp_path, 43, comm="a (weird) name")
        stats = read_process_stats(43, proc_root=str(tmp_path), ticks_per_s=100.0)
        assert stats is not None
        assert stats["cpu_seconds"] == pytest.approx(2.0)

    def test_vmrss_fallback_to_stat_pages(self, tmp_path):
        from repro.observability import read_process_stats

        proc = self._write_proc(tmp_path, 44, rss_pages=10)
        (proc / "status").write_text("Name:\tnope\n")  # no VmRSS line
        stats = read_process_stats(44, proc_root=str(tmp_path), ticks_per_s=100.0)
        assert stats is not None
        import os as _os
        assert stats["rss_bytes"] == 10 * _os.sysconf("SC_PAGE_SIZE")

    def test_dead_process_returns_none(self, tmp_path):
        from repro.observability import read_process_stats

        assert read_process_stats(99999, proc_root=str(tmp_path)) is None

    def test_self_metrics_on_linux(self):
        import os as _os

        from repro.observability import process_self_metrics

        if not _os.path.exists("/proc/self/stat"):
            pytest.skip("no /proc on this platform")
        values = process_self_metrics()
        assert values["process_cpu_seconds_total"] > 0
        assert values["process_resident_memory_bytes"] > 0
        assert values.get("process_open_fds", 1) > 0

    def test_render_process_metrics_exposition(self):
        from repro.observability import render_process_metrics

        text = render_process_metrics(
            {
                "process_cpu_seconds_total": 1.5,
                "process_open_fds": 12.0,
            }
        )
        assert "# TYPE process_cpu_seconds_total counter" in text
        assert "process_cpu_seconds_total 1.5" in text
        assert "# TYPE process_open_fds gauge" in text
        assert "process_open_fds 12" in text
        assert text.endswith("\n")
        assert render_process_metrics({}) == ""
