"""The runner end to end against a real in-process DetectionServer.

One tiny scenario exercises the full loop — launch, pid discovery,
resource sampling, /metrics scrape, engine drive, schema-valid result
written to disk — and the reproducibility contract: the digest embedded
in the result matches an independent recompilation of the same spec.
"""

from __future__ import annotations

import json

import pytest

from repro.errors import LoadLabError
from repro.loadlab import (
    Scenario,
    compile_schedule,
    get_scenario,
    run_scenario,
    schedule_digest,
)
from repro.loadlab.results import validate_result
from repro.loadlab.runner import launch_server, result_path
from repro.loadlab.scenario import ArrivalModel, LoadProfile, ServerSpec, WorkloadMix


def _tiny_scenario(**server_overrides) -> Scenario:
    server = dict(
        launch="inprocess",
        workers=0,
        max_active=4,
        queue_depth=32,
        deadline_ms=30_000.0,
        holdout=20,
    )
    server.update(server_overrides)
    return Scenario(
        name="runner-test",
        description="tiny end-to-end run for the test suite",
        profile=LoadProfile(kind="constant", base=2.0, steps=1,
                            level_duration_s=0.6),
        arrival=ArrivalModel(kind="closed"),
        mix=WorkloadMix(benign=0.7, garbage=0.3, pool_size=2),
        server=ServerSpec(**server),
        seed=11,
        max_requests_per_level=8,
        sample_period_s=0.05,
        bootstrap_resamples=20,
        warmup_requests=1,
    )


class TestRunScenario:
    def test_end_to_end_inprocess(self, tmp_path):
        scenario = _tiny_scenario()
        result = run_scenario(scenario, out_dir=tmp_path)
        validate_result(result)

        # The written file round-trips to the same schema-valid payload.
        path = result_path(tmp_path, scenario)
        assert result["written_to"] == str(path)
        on_disk = json.loads(path.read_text())
        validate_result(on_disk)
        assert on_disk["fingerprint"] == scenario.fingerprint()

        # Reproducibility witness: the digest in the result matches an
        # independent compile of the same frozen spec.
        expected = schedule_digest(scenario, compile_schedule(scenario))
        assert result["schedule_digest"] == expected

        # The level actually ran: requests completed and scored.
        (level,) = result["levels"]
        assert level["sent"] >= 1
        assert level["scored"] >= 1
        assert level["throughput_rps"]["value"] > 0.0

        # Telemetry: the dispatcher was sampled with live readings.
        dispatcher = result["resources"]["dispatcher"]
        assert dispatcher["pid"] > 0
        samples = dispatcher["samples"]
        assert len(samples) >= 2  # t=0 baseline + final post-stop sample
        assert all(s["cpu_seconds"] > 0.0 for s in samples)
        assert all(s["rss_bytes"] > 0.0 for s in samples)

        # The /metrics scrape saw this run's traffic.
        delta = result["metrics_delta"]
        served = delta.get("decamouflage_server_requests_total", 0.0)
        assert served >= level["sent"]

    def test_same_seed_reproduces_the_offered_load(self):
        scenario = _tiny_scenario()
        first = compile_schedule(scenario)
        second = compile_schedule(scenario)
        assert first == second
        assert schedule_digest(scenario, first) == schedule_digest(
            scenario, second
        )


class TestLaunchGuards:
    def test_external_requires_host_and_port(self):
        scenario = _tiny_scenario(launch="external")
        with pytest.raises(LoadLabError, match="host and port"):
            launch_server(scenario)

    def test_self_launch_rejects_host_overrides(self):
        scenario = _tiny_scenario()
        with pytest.raises(LoadLabError, match="only apply to external"):
            launch_server(scenario, host="127.0.0.1", port=1234)

    def test_builtins_name_their_result_files(self, tmp_path):
        scenario = get_scenario("smoke-ramp")
        path = result_path(tmp_path, scenario)
        assert path.name == f"smoke-ramp-{scenario.fingerprint()}.json"


class TestLaunchCleanup:
    """Regression: a subprocess launch that never reports ready must not
    leak its stdout pipe fd (the static analyzer's popen-pipe-leak
    finding on ``_launch_subprocess``)."""

    class _StillbornProc:
        """Popen stand-in whose stdout yields nothing: the real
        ``_await_serving_line`` sees EOF and raises 'exited before
        serving'."""

        def __init__(self, command, **kwargs):
            import io

            self.stdout = io.StringIO("")
            self.killed = False
            self.pid = 99999

        def poll(self):
            return None if not self.killed else -9

        def kill(self):
            self.killed = True

        def wait(self, timeout=None):
            return -9

    def test_stdout_closed_when_server_never_serves(self, monkeypatch):
        import repro.loadlab.runner as runner_mod

        spawned = []

        def fake_popen(command, **kwargs):
            proc = self._StillbornProc(command, **kwargs)
            spawned.append(proc)
            return proc

        monkeypatch.setattr(runner_mod.subprocess, "Popen", fake_popen)
        scenario = _tiny_scenario(launch="subprocess")
        with pytest.raises(LoadLabError, match="exited before serving"):
            launch_server(scenario)
        (proc,) = spawned
        assert proc.killed
        assert proc.stdout.closed, "stdout pipe leaked on failed launch"
