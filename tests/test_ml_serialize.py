"""Unit tests for model save/load."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.ml import build_small_cnn, make_classification_set, normalize_batch, train
from repro.ml.serialize import load_small_cnn, save_model


@pytest.fixture(scope="module")
def trained(tmp_path_factory):
    data = make_classification_set(8, image_shape=(32, 32), n_classes=3, seed=0)
    model = build_small_cnn((32, 32, 3), 3, seed=0)
    train(model, data, epochs=2, seed=0)
    path = tmp_path_factory.mktemp("models") / "cnn.npz"
    save_model(model, path, architecture={"input_shape": [32, 32, 3], "n_classes": 3})
    return model, path, data


class TestRoundtrip:
    def test_predictions_identical(self, trained):
        model, path, data = trained
        loaded = load_small_cnn(path)
        inputs = normalize_batch(data.images[:16])
        assert np.array_equal(model.predict(inputs), loaded.predict(inputs))

    def test_probabilities_identical(self, trained):
        model, path, data = trained
        loaded = load_small_cnn(path)
        inputs = normalize_batch(data.images[:4])
        assert np.allclose(model.predict_proba(inputs), loaded.predict_proba(inputs))


class TestValidation:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, param_000=np.zeros(3))
        with pytest.raises(ReproError, match="header"):
            load_small_cnn(path)

    def test_missing_architecture(self, tmp_path):
        import json

        path = tmp_path / "noarch.npz"
        header = {"format_version": 1, "n_params": 0, "architecture": {}}
        np.savez(path, header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8))
        with pytest.raises(ReproError, match="input_shape"):
            load_small_cnn(path)

    def test_wrong_version(self, tmp_path):
        import json

        path = tmp_path / "v99.npz"
        header = {"format_version": 99, "n_params": 0, "architecture": {}}
        np.savez(path, header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8))
        with pytest.raises(ReproError, match="version"):
            load_small_cnn(path)

    def test_shape_mismatch(self, trained, tmp_path):
        import json

        model, _, _ = trained
        path = tmp_path / "mismatch.npz"
        header = {
            "format_version": 1,
            "n_params": len(model.params()),
            "architecture": {"input_shape": [32, 32, 3], "n_classes": 3},
        }
        arrays = {
            f"param_{i:03d}": np.zeros((1, 1)) for i in range(len(model.params()))
        }
        arrays["header"] = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        np.savez(path, **arrays)
        with pytest.raises(ReproError, match="shape mismatch"):
            load_small_cnn(path)
