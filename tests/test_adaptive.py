"""Unit tests for the adaptive attack variants."""

import numpy as np
import pytest

from repro.attacks.adaptive import partial_attack, relaxed_attack, smoothed_attack
from repro.attacks.base import verify_attack
from repro.attacks.strong import craft_attack_image
from repro.errors import AttackError
from repro.imaging.metrics import mse


class TestPartialAttack:
    def test_strength_one_equals_strong(self, benign_images, target_images):
        strong = craft_attack_image(benign_images[0], target_images[0])
        partial = partial_attack(benign_images[0], target_images[0], strength=1.0)
        assert np.allclose(strong.attack_image, partial.attack_image)

    def test_weaker_strength_smaller_perturbation(self, benign_images, target_images):
        full = partial_attack(benign_images[1], target_images[1], strength=1.0)
        half = partial_attack(benign_images[1], target_images[1], strength=0.5)
        assert verify_attack(half).perturbation_mse < verify_attack(full).perturbation_mse

    def test_weaker_strength_worse_payload(self, benign_images, target_images):
        full = partial_attack(benign_images[2], target_images[2], strength=1.0)
        half = partial_attack(benign_images[2], target_images[2], strength=0.5)
        assert verify_attack(half).target_mse > verify_attack(full).target_mse

    def test_rejects_bad_strength(self, benign_images, target_images):
        with pytest.raises(AttackError, match="strength"):
            partial_attack(benign_images[0], target_images[0], strength=0.0)
        with pytest.raises(AttackError, match="strength"):
            partial_attack(benign_images[0], target_images[0], strength=1.5)


class TestSmoothedAttack:
    def test_reduces_csp_signal(self, benign_images, target_images):
        from repro.imaging.fourier import csp_count

        strong = craft_attack_image(benign_images[3], target_images[3])
        smooth = smoothed_attack(benign_images[3], target_images[3], sigma=1.2)
        assert csp_count(smooth.attack_image) <= csp_count(strong.attack_image)

    def test_costs_payload_fidelity(self, benign_images, target_images):
        strong = craft_attack_image(benign_images[4], target_images[4])
        smooth = smoothed_attack(benign_images[4], target_images[4], sigma=1.2)
        assert verify_attack(smooth).target_mse > verify_attack(strong).target_mse

    def test_stays_in_pixel_range(self, benign_images, target_images):
        smooth = smoothed_attack(benign_images[5], target_images[5], sigma=0.8)
        assert smooth.attack_image.min() >= 0.0
        assert smooth.attack_image.max() <= 255.0


class TestPaletteMatchedAttack:
    def test_histogram_defense_blinded(self, benign_images, target_images):
        from repro.attacks.adaptive import palette_matched_attack
        from repro.imaging.histogram import histogram_distance
        from repro.imaging.scaling import resize

        original, target = benign_images[0], target_images[0]
        naive = craft_attack_image(original, target)
        matched = palette_matched_attack(original, target)
        shape = target.shape[:2]
        cover_view = resize(np.asarray(original, float), shape, "bilinear")
        naive_dist = histogram_distance(resize(naive.attack_image, shape, "bilinear"), cover_view)
        matched_dist = histogram_distance(resize(matched.attack_image, shape, "bilinear"), cover_view)
        assert matched_dist < naive_dist

    def test_spatial_detection_still_works(self, benign_images, target_images):
        from repro.attacks.adaptive import palette_matched_attack
        from repro.imaging.metrics import mse
        from repro.imaging.scaling import downscale_then_upscale

        original, target = benign_images[1], target_images[1]
        matched = palette_matched_attack(original, target)
        shape = target.shape[:2]
        round_trip_error = mse(
            matched.attack_image,
            downscale_then_upscale(matched.attack_image, shape, "bilinear"),
        )
        benign_error = mse(
            np.asarray(original, float),
            downscale_then_upscale(original, shape, "bilinear"),
        )
        assert round_trip_error > 5 * benign_error

    def test_target_structure_preserved(self, benign_images, target_images):
        """The recolored payload must still correlate with the target."""
        from repro.attacks.adaptive import palette_matched_attack

        original, target = benign_images[2], target_images[2]
        matched = palette_matched_attack(original, target)
        payload = matched.downscaled()
        t = np.asarray(target, float).ravel()
        p = payload.ravel()
        correlation = np.corrcoef(t - t.mean(), p - p.mean())[0, 1]
        assert correlation > 0.5


class TestDetectorAwareAttack:
    def test_zero_evasion_delivers_payload(self, benign_images, target_images):
        from repro.attacks.adaptive import detector_aware_attack
        from repro.imaging.metrics import mse

        result = detector_aware_attack(
            benign_images[0], target_images[0], evasion_weight=0.0
        )
        payload = mse(result.downscaled(), np.asarray(target_images[0], float))
        assert payload < 100.0

    def test_evasion_weight_reduces_round_trip_score(self, benign_images, target_images):
        from repro.attacks.adaptive import detector_aware_attack
        from repro.imaging.metrics import mse
        from repro.imaging.scaling import downscale_then_upscale

        shape = target_images[1].shape[:2]

        def round_trip_score(image):
            return mse(image, downscale_then_upscale(image, shape, "bilinear"))

        plain = detector_aware_attack(benign_images[1], target_images[1], evasion_weight=0.0)
        evading = detector_aware_attack(benign_images[1], target_images[1], evasion_weight=10.0)
        assert round_trip_score(evading.attack_image) < 0.2 * round_trip_score(plain.attack_image)

    def test_evasion_costs_payload(self, benign_images, target_images):
        """The defense-in-depth tension: you cannot have both."""
        from repro.attacks.adaptive import detector_aware_attack
        from repro.imaging.metrics import mse

        target = np.asarray(target_images[2], float)
        plain = detector_aware_attack(benign_images[2], target_images[2], evasion_weight=0.0)
        evading = detector_aware_attack(benign_images[2], target_images[2], evasion_weight=10.0)
        payload_plain = mse(plain.downscaled(), target)
        payload_evading = mse(evading.downscaled(), target)
        assert payload_evading > 5 * payload_plain

    def test_stays_in_pixel_range(self, benign_images, target_images):
        from repro.attacks.adaptive import detector_aware_attack

        result = detector_aware_attack(benign_images[3], target_images[3], evasion_weight=5.0)
        assert result.attack_image.min() >= 0.0
        assert result.attack_image.max() <= 255.0


class TestRelaxedAttack:
    def test_larger_epsilon_smaller_perturbation(self, benign_images, target_images):
        tight = relaxed_attack(benign_images[0], target_images[0], epsilon=4.0)
        loose = relaxed_attack(benign_images[0], target_images[0], epsilon=48.0)
        assert (
            verify_attack(loose).perturbation_mse
            <= verify_attack(tight).perturbation_mse + 1e-9
        )

    def test_epsilon_bound_respected(self, benign_images, target_images):
        loose = relaxed_attack(benign_images[1], target_images[1], epsilon=32.0)
        assert verify_attack(loose).target_linf <= 33.0

    def test_rejects_epsilon_below_tolerance(self, benign_images, target_images):
        with pytest.raises(AttackError, match="tolerance"):
            relaxed_attack(benign_images[0], target_images[0], epsilon=0.01)
