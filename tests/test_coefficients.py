"""Unit tests for repro.imaging.coefficients."""

import numpy as np
import pytest

from repro.errors import ScalingError
from repro.imaging.coefficients import (
    coefficient_sparsity,
    scaling_matrix,
    scaling_operators,
    vulnerable_source_pixels,
)


class TestScalingMatrix:
    @pytest.mark.parametrize("algorithm", ["nearest", "bilinear", "bicubic", "lanczos4", "area"])
    @pytest.mark.parametrize("n_in,n_out", [(64, 8), (64, 64), (17, 5), (8, 24)])
    def test_rows_sum_to_one(self, algorithm, n_in, n_out):
        matrix = scaling_matrix(n_in, n_out, algorithm)
        assert matrix.shape == (n_out, n_in)
        assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_identity_when_same_size_bilinear(self):
        matrix = scaling_matrix(10, 10, "bilinear")
        assert np.allclose(matrix, np.eye(10))

    def test_nearest_is_binary_selection(self):
        matrix = scaling_matrix(64, 8, "nearest")
        assert set(np.unique(matrix)) == {0.0, 1.0}
        assert np.all(matrix.sum(axis=1) == 1.0)

    def test_area_downscale_uses_every_pixel(self):
        matrix = scaling_matrix(64, 8, "area")
        assert coefficient_sparsity(matrix) == 0.0
        # Exact integer-ratio box average: every weight is 1/8.
        assert np.allclose(matrix[matrix > 0], 1.0 / 8.0)

    def test_bilinear_downscale_is_sparse(self):
        matrix = scaling_matrix(64, 8, "bilinear")
        assert coefficient_sparsity(matrix) == pytest.approx(0.75)

    def test_area_upscale_falls_back_to_bilinear(self):
        area = scaling_matrix(8, 24, "area")
        bilinear = scaling_matrix(8, 24, "bilinear")
        assert np.allclose(area, bilinear)

    def test_non_integer_ratio_area_overlap_weights(self):
        matrix = scaling_matrix(5, 2, "area")
        # Output cell 0 covers source [0, 2.5): pixels 0,1 fully, 2 half.
        assert np.allclose(matrix[0], [0.4, 0.4, 0.2, 0.0, 0.0])

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ScalingError, match="positive"):
            scaling_matrix(0, 8)
        with pytest.raises(ScalingError, match="positive"):
            scaling_matrix(8, -1)

    def test_result_is_readonly(self):
        matrix = scaling_matrix(16, 4, "bilinear")
        with pytest.raises(ValueError):
            matrix[0, 0] = 5.0

    def test_cache_returns_same_object(self):
        assert scaling_matrix(32, 4, "bicubic") is scaling_matrix(32, 4, "bicubic")


class TestOperators:
    def test_shapes(self):
        left, right = scaling_operators((64, 48), (8, 6), "bilinear")
        assert left.shape == (8, 64)
        assert right.shape == (48, 6)

    def test_constant_image_maps_to_constant(self):
        left, right = scaling_operators((20, 30), (5, 6), "bicubic")
        image = np.full((20, 30), 42.0)
        out = left @ image @ right
        assert np.allclose(out, 42.0)


class TestVulnerability:
    def test_vulnerable_pixels_bilinear(self):
        matrix = scaling_matrix(64, 8, "bilinear")
        used = vulnerable_source_pixels(matrix)
        # Ratio 8 bilinear touches 2 pixels per output sample.
        assert len(used) == 16

    def test_vulnerable_pixels_area_everything(self):
        matrix = scaling_matrix(64, 8, "area")
        assert len(vulnerable_source_pixels(matrix)) == 64

    def test_sparsity_ordering_matches_attack_surface(self):
        # nearest is the most vulnerable, area the least.
        sparsities = {
            alg: coefficient_sparsity(scaling_matrix(64, 8, alg))
            for alg in ("nearest", "bilinear", "bicubic", "area")
        }
        assert sparsities["nearest"] > sparsities["bilinear"] > sparsities["bicubic"]
        assert sparsities["area"] == 0.0
