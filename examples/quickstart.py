#!/usr/bin/env python3
"""Quickstart: craft an image-scaling attack, then catch it.

Walks the full story of the paper in one script:

1. generate a benign "camera" image and a target image,
2. craft an attack image that hides the target (Xiao et al.'s attack),
3. show the deception: the attack image looks like the original but
   downscales to the target,
4. run all three Decamouflage detectors and the ensemble on it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.attacks import craft_attack_image, verify_attack
from repro.core import build_default_ensemble
from repro.datasets import caltech_like_corpus, neurips_like_corpus
from repro.imaging import mse, resize, write_png

MODEL_INPUT = (32, 32)   # the protected CNN's input size (LeNet-class)
ALGORITHM = "bilinear"   # the serving pipeline's scaling algorithm


def main() -> None:
    # -- 1. images ---------------------------------------------------------
    holdout = neurips_like_corpus(40, name="holdout").materialize()
    scene = caltech_like_corpus(2, name="demo")
    original = scene[0]
    target = resize(scene[1], MODEL_INPUT, ALGORITHM)
    print(f"original: {original.shape}, target: {target.shape}")

    # -- 2. attack ---------------------------------------------------------
    result = craft_attack_image(original, target, algorithm=ALGORITHM)
    report = verify_attack(result)
    print("\nattack crafted:")
    print(f"  looks like the original? perturbation MSE={report.perturbation_mse:.1f}, "
          f"SSIM={report.perturbation_ssim:.3f}")
    print(f"  downscales to the target? linf error={report.target_linf:.2f}")

    # -- 3. the deception --------------------------------------------------
    what_model_sees = result.downscaled()
    print("\nwhat the CNN sees after scaling:")
    print(f"  MSE(scale(attack), target)   = {mse(what_model_sees, target):8.1f}  <- tiny: model sees the TARGET")
    print(f"  MSE(scale(original), target) = {mse(resize(original, MODEL_INPUT, ALGORITHM), target):8.1f}  <- huge: unrelated image")

    for name, image in (("original.png", original), ("attack.png", result.attack_image),
                        ("model_view.png", what_model_sees)):
        write_png(name, np.clip(image, 0, 255))
    print("\nwrote original.png / attack.png / model_view.png — compare them yourself.")

    # -- 4. detection ------------------------------------------------------
    ensemble = build_default_ensemble(MODEL_INPUT, algorithm=ALGORITHM)
    # Black-box setting: calibrate on known-benign images only.
    ensemble.calibrate(holdout, percentile=1.0)

    print("\nDecamouflage verdicts:")
    print("  original ->", ensemble.detect(original).explain().splitlines()[0])
    print("  attack   ->", ensemble.detect(result.attack_image).explain())


if __name__ == "__main__":
    main()
