#!/usr/bin/env python3
"""Backdoor-via-scaling-attack, and Decamouflage as the data-curation filter.

Reproduces the paper's Section 2.2 scenario end to end:

1. a data curator collects labelled images (synthetic 4-class task);
2. an attacker contributes poisoned images: covers that look like the
   victim class but hide *triggered* images of other classes;
3. training on the poisoned pool implants a backdoor — any image with the
   trigger patch classifies as the victim class;
4. Decamouflage (offline mode, black-box calibrated) filters the pool;
5. retraining on the filtered pool removes the backdoor.

Run:  python examples/backdoor_defense.py   (a few minutes on a laptop)
"""

import numpy as np

from repro.attacks import TriggerSpec, poison_dataset, stamp_trigger
from repro.core import build_default_ensemble
from repro.datasets import generate_class_image, neurips_like_corpus
from repro.ml import LabelledImages, build_small_cnn, evaluate_accuracy, normalize_batch, train

MODEL_INPUT = (32, 32)
SOURCE_SHAPE = (128, 128)
N_CLASSES = 4
VICTIM_CLASS = 0
N_CLEAN_PER_CLASS = 30
N_POISONS = 36


def make_clean_pool(rng):
    images, labels = [], []
    for class_id in range(N_CLASSES):
        for _ in range(N_CLEAN_PER_CLASS):
            images.append(generate_class_image(MODEL_INPUT, rng, class_id, n_classes=N_CLASSES))
            labels.append(class_id)
    return images, labels


def trigger_success_rate(model, trigger) -> float:
    rng = np.random.default_rng(99)
    hits = total = 0
    for class_id in range(1, N_CLASSES):
        for _ in range(10):
            image = generate_class_image(MODEL_INPUT, rng, class_id, n_classes=N_CLASSES)
            triggered = stamp_trigger(image, trigger)
            hits += int(model.predict(normalize_batch(triggered[None]))[0]) == VICTIM_CLASS
            total += 1
    return hits / total


def train_model(images, labels, seed=7):
    data = LabelledImages(np.stack(images), np.asarray(labels, dtype=np.int64))
    model = build_small_cnn((*MODEL_INPUT, 3), N_CLASSES, seed=seed)
    train(model, data, epochs=8, seed=seed)
    return model


def main() -> None:
    rng = np.random.default_rng(2021)
    clean_images, clean_labels = make_clean_pool(rng)

    # -- the attacker crafts poisons ---------------------------------------
    print(f"crafting {N_POISONS} poisoned images (scaling attack, this takes a minute)...")
    covers = neurips_like_corpus(N_POISONS, image_shape=SOURCE_SHAPE, seed=31).materialize()
    trigger = TriggerSpec(size_fraction=0.4, value=5.0)
    sources = [
        (generate_class_image(MODEL_INPUT, rng, 1 + i % (N_CLASSES - 1), n_classes=N_CLASSES),
         1 + i % (N_CLASSES - 1))
        for i in range(N_POISONS)
    ]
    poisons = poison_dataset(
        covers, sources, victim_label=VICTIM_CLASS,
        model_input_shape=MODEL_INPUT, trigger=trigger,
    )
    print(f"  poisons look like the victim class to a human curator "
          f"(cover MSE ~{np.mean([np.mean((p.attack.attack_image - np.asarray(p.attack.original, float))**2) for p in poisons]):.0f})")

    # -- poisoned training implants the backdoor ---------------------------
    poisoned_images = clean_images + [
        np.clip(p.attack.downscaled(), 0, 255).astype(np.uint8) for p in poisons
    ]
    poisoned_labels = clean_labels + [p.label for p in poisons]
    print("\ntraining on the POISONED pool...")
    backdoored = train_model(poisoned_images, poisoned_labels)

    test_rng = np.random.default_rng(5)
    test = LabelledImages(
        np.stack([generate_class_image(MODEL_INPUT, test_rng, c, n_classes=N_CLASSES)
                  for c in range(N_CLASSES) for _ in range(10)]),
        np.repeat(np.arange(N_CLASSES), 10),
    )
    print(f"  clean-input accuracy : {evaluate_accuracy(backdoored, test):.0%} (backdoor is stealthy)")
    print(f"  trigger success rate : {trigger_success_rate(backdoored, trigger):.0%} (backdoor active!)")

    # -- Decamouflage filters the pool --------------------------------------
    print("\nscanning contributed full-size images with Decamouflage (black-box)...")
    holdout = neurips_like_corpus(30, image_shape=SOURCE_SHAPE, seed=77).materialize()
    ensemble = build_default_ensemble(MODEL_INPUT)
    ensemble.calibrate(holdout, percentile=2.0)
    kept_poisons = [p for p in poisons if not ensemble.is_attack(p.attack.attack_image)]
    print(f"  poisons caught: {N_POISONS - len(kept_poisons)}/{N_POISONS}")

    # -- retraining without poisons removes the backdoor --------------------
    filtered_images = clean_images + [
        np.clip(p.attack.downscaled(), 0, 255).astype(np.uint8) for p in kept_poisons
    ]
    filtered_labels = clean_labels + [p.label for p in kept_poisons]
    print("\nretraining on the FILTERED pool...")
    defended = train_model(filtered_images, filtered_labels)
    print(f"  clean-input accuracy : {evaluate_accuracy(defended, test):.0%}")
    print(f"  trigger success rate : {trigger_success_rate(defended, trigger):.0%} (backdoor removed)")


if __name__ == "__main__":
    main()
