#!/usr/bin/env python3
"""Directory scanner: the CLI's offline-curation workflow, as a library demo.

Creates a mixed directory of PNG files (benign photos + scaling-attack
images), then scans it the way a data curator would before training —
using the same public API the ``decamouflage scan`` command wraps.

Run:  python examples/directory_scanner.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.attacks import craft_attack_image
from repro.core import build_default_ensemble
from repro.datasets import caltech_like_corpus, neurips_like_corpus
from repro.imaging import read_png, resize, write_png

MODEL_INPUT = (32, 32)


def build_mixed_directory(root: Path) -> dict[str, bool]:
    """Write benign + attack PNGs; returns filename -> is_attack truth."""
    benign = caltech_like_corpus(6, name="scan-benign").materialize()
    targets = caltech_like_corpus(3, seed=9, name="scan-target").materialize()
    truth: dict[str, bool] = {}
    for index, image in enumerate(benign[:3]):
        name = f"photo_{index}.png"
        write_png(root / name, image)
        truth[name] = False
    for index, (cover, target) in enumerate(zip(benign[3:], targets)):
        small = resize(target, MODEL_INPUT, "bilinear")
        attack = craft_attack_image(cover, small, algorithm="bilinear")
        name = f"contributed_{index}.png"
        write_png(root / name, np.clip(attack.attack_image, 0, 255))
        truth[name] = True
    return truth


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        print("building a mixed directory (3 benign, 3 attack images)...")
        truth = build_mixed_directory(root)

        print("calibrating from a benign hold-out corpus (black-box setting)...")
        holdout = neurips_like_corpus(40, name="scan-holdout").materialize()
        ensemble = build_default_ensemble(MODEL_INPUT)
        ensemble.calibrate(holdout, percentile=1.0)

        print(f"\nscanning {root} ...")
        correct = 0
        for path in sorted(root.iterdir()):
            image = read_png(path)
            decision = ensemble.detect(image)
            verdict = "ATTACK" if decision.is_attack else "ok    "
            expected = truth[path.name]
            mark = "✓" if decision.is_attack == expected else "✗"
            correct += decision.is_attack == expected
            print(f"  {verdict} {mark}  {path.name}  "
                  f"({decision.votes_for_attack}/{decision.votes_total} votes)")
        print(f"\n{correct}/{len(truth)} verdicts correct")


if __name__ == "__main__":
    main()
