#!/usr/bin/env python3
"""Adaptive-attacker study: can you evade Decamouflage AND keep the attack?

Sweeps the attacker's evasion knobs (perturbation strength, smoothing
sigma, epsilon relaxation) and reports, for each operating point:

* per-detector and ensemble detection rates, and
* payload quality (MSE between the downscaled attack and the target —
  the attack is pointless once this gets large).

The paper's Discussion-section argument falls out of the table: the knobs
that buy evasion destroy the payload first.

Run:  python examples/adaptive_attack_study.py
"""

import numpy as np

from repro.attacks import partial_attack, relaxed_attack, smoothed_attack
from repro.core import build_default_ensemble
from repro.datasets import caltech_like_corpus, neurips_like_corpus
from repro.eval import render_table
from repro.imaging import mse, resize

MODEL_INPUT = (32, 32)
N_PAIRS = 8


def main() -> None:
    originals = neurips_like_corpus(N_PAIRS, name="orig").materialize()
    target_pool = caltech_like_corpus(N_PAIRS, name="tgt").materialize()
    targets = [resize(t, MODEL_INPUT, "bilinear") for t in target_pool]

    # Calibrate the defense (white-box: defender knows the attack family).
    print("calibrating Decamouflage...")
    calibration_attacks = [
        partial_attack(o, t, strength=1.0).attack_image
        for o, t in zip(originals, targets)
    ]
    ensemble = build_default_ensemble(MODEL_INPUT)
    ensemble.calibrate(list(originals), calibration_attacks)

    operating_points = [
        ("strong baseline", lambda o, t: partial_attack(o, t, strength=1.0)),
        ("strength 0.75", lambda o, t: partial_attack(o, t, strength=0.75)),
        ("strength 0.50", lambda o, t: partial_attack(o, t, strength=0.50)),
        ("strength 0.25", lambda o, t: partial_attack(o, t, strength=0.25)),
        ("smoothed σ=0.5", lambda o, t: smoothed_attack(o, t, sigma=0.5)),
        ("smoothed σ=1.0", lambda o, t: smoothed_attack(o, t, sigma=1.0)),
        ("relaxed ε=16", lambda o, t: relaxed_attack(o, t, epsilon=16.0)),
        ("relaxed ε=48", lambda o, t: relaxed_attack(o, t, epsilon=48.0)),
    ]

    rows = []
    for name, attack_fn in operating_points:
        evaded = 0
        payload_errors = []
        votes = {"scaling": 0, "filtering": 0, "steganalysis": 0}
        for original, target in zip(originals, targets):
            result = attack_fn(original, target)
            decision = ensemble.detect(result.attack_image)
            evaded += not decision.is_attack
            for det in decision.detections:
                votes[det.method] += det.is_attack
            payload_errors.append(mse(result.downscaled(), target))
        rows.append(
            {
                "attack variant": name,
                "evades ensemble": f"{evaded}/{N_PAIRS}",
                "scaling votes": f"{votes['scaling']}/{N_PAIRS}",
                "filtering votes": f"{votes['filtering']}/{N_PAIRS}",
                "steg votes": f"{votes['steganalysis']}/{N_PAIRS}",
                "payload MSE": f"{np.mean(payload_errors):.0f}",
            }
        )

    print()
    print(render_table(rows, title="Adaptive attacker operating points "
                                   "(payload MSE > ~500 means the hidden image is gone)"))
    print("\nReading: rows that start to evade the ensemble have payload MSE "
          "orders of magnitude above the baseline — the evasion knobs destroy "
          "the attack before they defeat the defense.")


if __name__ == "__main__":
    main()
