#!/usr/bin/env python3
"""A protected inference service: screen-then-scale with audit logging.

Simulates the paper's online deployment scenario: a classification service
receives a stream of uploads (mostly benign, some scaling attacks), and the
:class:`~repro.serving.ProtectedPipeline` guards the preprocessing step.
Shows all three response policies and the JSONL audit trail.

Run:  python examples/protected_service.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.attacks import craft_attack_image
from repro.datasets import caltech_like_corpus, neurips_like_corpus
from repro.imaging import resize
from repro.serving import AuditLog, Policy, ProtectedPipeline

MODEL_INPUT = (32, 32)


def build_upload_stream():
    """8 uploads: 6 benign, 2 scaling attacks. Returns (images, truth)."""
    benign = caltech_like_corpus(8, name="uploads").materialize()
    targets = caltech_like_corpus(2, seed=3, name="upload-targets").materialize()
    uploads = list(benign[:6])
    truth = [False] * 6
    for cover, target in zip(benign[6:], targets):
        small = resize(target, MODEL_INPUT, "bilinear")
        attack = craft_attack_image(cover, small, algorithm="bilinear")
        uploads.append(attack.attack_image)
        truth.append(True)
    return uploads, truth


def main() -> None:
    uploads, truth = build_upload_stream()
    holdout = neurips_like_corpus(40, name="svc-holdout").materialize()

    with tempfile.TemporaryDirectory() as tmp:
        audit = AuditLog(Path(tmp) / "decisions.jsonl", quarantine_dir=Path(tmp) / "quarantine")
        pipeline = ProtectedPipeline(
            MODEL_INPUT,
            algorithm="bilinear",
            policy=Policy.QUARANTINE,
            audit_log=audit,
        )
        print("calibrating the pipeline on a benign hold-out (black-box)...")
        pipeline.calibrate(holdout, percentile=1.0)

        print("\nserving the upload stream:")
        for index, image in enumerate(uploads):
            outcome = pipeline.submit(image, image_id=f"upload-{index:03d}")
            expected = "attack" if truth[index] else "benign"
            print(f"  {outcome.image_id}: {outcome.action:11s} "
                  f"(votes {outcome.detection.votes_for_attack}/3, truth: {expected})")

        print("\npipeline stats:", pipeline.stats.as_dict())

        records = audit.records()
        flagged = [r for r in records if r.verdict == "attack"]
        print(f"\naudit log has {len(records)} decisions; {len(flagged)} flagged:")
        for record in flagged:
            top = max(record.scores, key=lambda k: record.scores[k])
            print(f"  {record.image_id}: quarantined at {record.quarantine_path}")
            print(f"    strongest signal {top} = {record.scores[top]:.4g} "
                  f"[{record.thresholds[top]}]")

        # The SANITIZE policy instead keeps serving with cleansed inputs:
        sanitizing = ProtectedPipeline(MODEL_INPUT, policy=Policy.SANITIZE)
        sanitizing.calibrate(holdout, percentile=1.0)
        outcome = sanitizing.submit(uploads[-1], image_id="upload-sanitized")
        print(f"\nunder SANITIZE the same attack is {outcome.action} and still served: "
              f"model input shape {outcome.model_input.shape}")


if __name__ == "__main__":
    main()
