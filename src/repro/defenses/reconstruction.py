"""Prevention baseline 2: image reconstruction (Quiring et al. 2020).

Quiring et al.'s second defense keeps the vulnerable scaler but sanitizes
its inputs: the pixels the scaler actually reads (identified from the
coefficient matrices) are replaced by a robust statistic of their local
neighborhood — so injected values are overwritten before they can reach
the output. The Decamouflage paper notes the side effect this bench
measures: benign inputs get blurred too (quality degradation).
"""

from __future__ import annotations

import numpy as np

from repro.imaging.coefficients import scaling_operators, vulnerable_source_pixels
from repro.imaging.filtering import median_filter
from repro.imaging.image import as_float, ensure_image

__all__ = ["reconstruct_image", "reconstruction_quality_loss"]


def reconstruct_image(
    image: np.ndarray,
    out_shape: tuple[int, int],
    *,
    algorithm: str = "bilinear",
    window: int = 3,
) -> np.ndarray:
    """Overwrite every scaler-read pixel with its local median.

    Returns a full-size sanitized copy; scaling the result with the
    deployed algorithm is then safe against pixel-injection attacks.
    """
    ensure_image(image)
    img = as_float(image)
    h, w = img.shape[:2]
    left, right = scaling_operators((h, w), out_shape, algorithm)
    rows = vulnerable_source_pixels(left)
    cols = vulnerable_source_pixels(right.T)
    medians = median_filter(img, window)
    sanitized = img.copy()
    sanitized[np.ix_(rows, cols)] = medians[np.ix_(rows, cols)]
    return sanitized


def reconstruction_quality_loss(
    image: np.ndarray,
    out_shape: tuple[int, int],
    *,
    algorithm: str = "bilinear",
    window: int = 3,
) -> float:
    """MSE the sanitization inflicts on a benign image (quality cost)."""
    from repro.imaging.metrics import mse

    sanitized = reconstruct_image(image, out_shape, algorithm=algorithm, window=window)
    return mse(image, sanitized)
