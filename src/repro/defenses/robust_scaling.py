"""Prevention baseline 1: robust scaling algorithms (Quiring et al. 2020).

Quiring et al.'s first defense replaces the vulnerable scaler with one
whose kernel support covers *every* source pixel — area averaging, or any
kernel widened to the scale ratio — so no pixel subset can hijack the
output. Decamouflage's paper argues this has compatibility costs (the
serving pipeline's scaling behaviour changes for benign images too); the
ablation bench ``bench_ablation_prevention`` quantifies both sides:

* attack residue: how close ``robust_scale(A)`` still is to the target;
* benign distortion: how far ``robust_scale(O)`` drifts from the
  deployed scaler's output ``scale(O)``.
"""

from __future__ import annotations

import numpy as np

from repro.imaging.image import ensure_image
from repro.imaging.metrics import mse
from repro.imaging.scaling import resize

__all__ = ["robust_resize", "attack_residue", "benign_drift"]


def robust_resize(image: np.ndarray, out_shape: tuple[int, int]) -> np.ndarray:
    """Scale with full-coverage area averaging (the robust algorithm)."""
    ensure_image(image)
    return resize(image, out_shape, "area")


def attack_residue(
    attack_image: np.ndarray,
    target: np.ndarray,
    out_shape: tuple[int, int],
) -> float:
    """MSE between the robustly scaled attack image and the hidden target.

    High residue means the defense destroyed the hidden payload.
    """
    return mse(robust_resize(attack_image, out_shape), np.asarray(target, dtype=np.float64))


def benign_drift(
    image: np.ndarray,
    out_shape: tuple[int, int],
    *,
    deployed_algorithm: str = "bilinear",
) -> float:
    """MSE between robust scaling and the deployed scaler on a benign image.

    This is the compatibility cost the Decamouflage paper cites: swapping
    the scaler changes what *every* model input looks like.
    """
    robust = robust_resize(image, out_shape)
    deployed = resize(image, out_shape, deployed_algorithm)
    return mse(robust, deployed)
