"""Prevention baselines (Quiring et al. 2020).

The Decamouflage paper positions itself against these *prevention*
mechanisms (Section 1 and Related Work): robust scaling algorithms and
input reconstruction. Both are implemented so the ablation benchmarks can
compare prevention costs with detection.
"""

from repro.defenses.reconstruction import reconstruct_image, reconstruction_quality_loss
from repro.defenses.robust_scaling import attack_residue, benign_drift, robust_resize

__all__ = [
    "attack_residue",
    "benign_drift",
    "reconstruct_image",
    "reconstruction_quality_loss",
    "robust_resize",
]
