"""Loss functions for the numpy CNN."""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError

__all__ = ["softmax", "cross_entropy_loss"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with the usual max-shift for stability."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


def cross_entropy_loss(
    logits: np.ndarray,
    labels: np.ndarray,
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy and its gradient w.r.t. the logits.

    ``labels`` are integer class indices of shape ``(N,)``.
    """
    if logits.ndim != 2:
        raise ReproError(f"logits must be (N, classes), got {logits.shape}")
    n = logits.shape[0]
    if labels.shape != (n,):
        raise ReproError(f"labels shape {labels.shape} does not match batch {n}")
    probabilities = softmax(logits)
    picked = probabilities[np.arange(n), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    gradient = probabilities.copy()
    gradient[np.arange(n), labels] -= 1.0
    return loss, gradient / n
