"""Sequential network container and the default classifier architecture."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ReproError
from repro.ml.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, Parameter, ReLU
from repro.ml.losses import softmax

__all__ = ["Sequential", "build_small_cnn"]


class Sequential:
    """A simple feed-forward chain of layers."""

    def __init__(self, layers: Sequence[Layer]) -> None:
        if not layers:
            raise ReproError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def params(self) -> list[Parameter]:
        return [p for layer in self.layers for p in layer.params()]

    def zero_grad(self) -> None:
        for param in self.params():
            param.zero_grad()

    # -- inference helpers -------------------------------------------------

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities for a batch of images (N, H, W, C)."""
        return softmax(self.forward(x))

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.forward(x).argmax(axis=1)


def build_small_cnn(
    input_shape: tuple[int, int, int],
    n_classes: int,
    *,
    seed: int = 0,
) -> Sequential:
    """A LeNet-scale CNN for ``input_shape`` images (e.g. ``(32, 32, 3)``).

    conv5-8 → pool2 → conv3-16 → pool2 → dense-64 → dense-classes.
    Trains to high accuracy on the synthetic class task in a few epochs on
    a CPU — all the backdoor experiments need.
    """
    h, w, c = input_shape
    rng = np.random.default_rng(seed)
    after_conv1 = (h - 4, w - 4)  # 5x5 valid conv
    after_pool1 = (after_conv1[0] // 2, after_conv1[1] // 2)
    after_conv2 = (after_pool1[0] - 2, after_pool1[1] - 2)  # 3x3 valid conv
    after_pool2 = (after_conv2[0] // 2, after_conv2[1] // 2)
    if min(after_pool2) < 1:
        raise ReproError(f"input {input_shape} too small for the default CNN")
    flat = after_pool2[0] * after_pool2[1] * 16
    return Sequential(
        [
            Conv2D(c, 8, 5, rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(8, 16, 3, rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(flat, 64, rng),
            ReLU(),
            Dense(64, n_classes, rng),
        ]
    )
