"""Optimizers for the numpy CNN."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ReproError
from repro.ml.layers import Parameter

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(
        self,
        params: Sequence[Parameter],
        *,
        learning_rate: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ) -> None:
        if learning_rate <= 0:
            raise ReproError(f"learning rate must be positive, got {learning_rate}")
        if not 0.0 <= momentum < 1.0:
            raise ReproError(f"momentum must be in [0, 1), got {momentum}")
        self.params = list(params)
        self.learning_rate = learning_rate
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.value) for p in self.params]

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for param, velocity in zip(self.params, self._velocity):
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.value
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param.value += velocity

    def zero_grad(self) -> None:
        for param in self.params:
            param.zero_grad()
