"""Classification datasets for the ML substrate.

Builds labelled image sets from :func:`repro.datasets.generate_class_image`
— ten visually distinct synthetic classes — at either the model input size
(for direct training) or a larger "camera" size (for pipelines that include
the vulnerable downscaling step).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import generate_class_image
from repro.errors import ReproError

__all__ = ["LabelledImages", "make_classification_set", "normalize_batch"]


@dataclass
class LabelledImages:
    """Images with integer labels; images are uint8 ``(N, H, W, 3)``."""

    images: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        if len(self.images) != len(self.labels):
            raise ReproError(
                f"{len(self.images)} images vs {len(self.labels)} labels"
            )

    def __len__(self) -> int:
        return len(self.images)

    def subset(self, indices: np.ndarray) -> "LabelledImages":
        return LabelledImages(self.images[indices], self.labels[indices])


def make_classification_set(
    n_per_class: int,
    *,
    image_shape: tuple[int, int] = (32, 32),
    n_classes: int = 10,
    seed: int = 0,
) -> LabelledImages:
    """Balanced synthetic classification dataset, shuffled."""
    if n_per_class <= 0:
        raise ReproError(f"n_per_class must be positive, got {n_per_class}")
    rng = np.random.default_rng(seed)
    images = []
    labels = []
    for class_id in range(n_classes):
        for _ in range(n_per_class):
            images.append(
                generate_class_image(image_shape, rng, class_id, n_classes=n_classes)
            )
            labels.append(class_id)
    order = rng.permutation(len(images))
    return LabelledImages(
        images=np.stack(images)[order],
        labels=np.asarray(labels, dtype=np.int64)[order],
    )


def normalize_batch(images: np.ndarray) -> np.ndarray:
    """uint8 (or 0–255 float) images → float64 in [0, 1] for the network."""
    return np.asarray(images, dtype=np.float64) / 255.0
