"""Training loop for the numpy CNN."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError
from repro.ml.data import LabelledImages, normalize_batch
from repro.ml.losses import cross_entropy_loss
from repro.ml.network import Sequential
from repro.ml.optim import SGD

__all__ = ["TrainingLog", "train", "evaluate_accuracy"]


@dataclass
class TrainingLog:
    """Per-epoch loss/accuracy history."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)


def evaluate_accuracy(model: Sequential, data: LabelledImages, *, batch_size: int = 128) -> float:
    """Top-1 accuracy of *model* on *data*."""
    if len(data) == 0:
        raise ReproError("cannot evaluate on an empty dataset")
    correct = 0
    inputs = normalize_batch(data.images)
    for start in range(0, len(data), batch_size):
        batch = inputs[start : start + batch_size]
        predictions = model.predict(batch)
        correct += int((predictions == data.labels[start : start + batch_size]).sum())
    return correct / len(data)


def train(
    model: Sequential,
    data: LabelledImages,
    *,
    epochs: int = 5,
    batch_size: int = 32,
    learning_rate: float = 0.01,
    momentum: float = 0.9,
    seed: int = 0,
) -> TrainingLog:
    """Train with shuffled minibatch SGD; returns the epoch history."""
    if len(data) == 0:
        raise ReproError("cannot train on an empty dataset")
    optimizer = SGD(model.params(), learning_rate=learning_rate, momentum=momentum)
    rng = np.random.default_rng(seed)
    log = TrainingLog()
    inputs = normalize_batch(data.images)
    for _ in range(epochs):
        order = rng.permutation(len(data))
        epoch_loss = 0.0
        batches = 0
        for start in range(0, len(data), batch_size):
            index = order[start : start + batch_size]
            optimizer.zero_grad()
            logits = model.forward(inputs[index])
            loss, grad = cross_entropy_loss(logits, data.labels[index])
            model.backward(grad)
            optimizer.step()
            epoch_loss += loss
            batches += 1
        log.losses.append(epoch_loss / max(batches, 1))
        log.accuracies.append(evaluate_accuracy(model, data))
    return log
