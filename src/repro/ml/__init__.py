"""Numpy CNN substrate.

Exists for two paper-driven reasons: the backdoor-via-scaling-attack
demonstration (Section 2.2) needs a trainable image classifier, and the
analysis of missed attack images (Table 9) needs a stand-in for the cloud
vision classifiers the authors queried.
"""

from repro.ml.data import LabelledImages, make_classification_set, normalize_batch
from repro.ml.layers import Conv2D, Dense, Flatten, Layer, MaxPool2D, Parameter, ReLU
from repro.ml.losses import cross_entropy_loss, softmax
from repro.ml.network import Sequential, build_small_cnn
from repro.ml.optim import SGD
from repro.ml.serialize import load_small_cnn, save_model
from repro.ml.training import TrainingLog, evaluate_accuracy, train

__all__ = [
    "Conv2D",
    "Dense",
    "Flatten",
    "LabelledImages",
    "Layer",
    "MaxPool2D",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "TrainingLog",
    "build_small_cnn",
    "cross_entropy_loss",
    "evaluate_accuracy",
    "load_small_cnn",
    "make_classification_set",
    "save_model",
    "normalize_batch",
    "softmax",
    "train",
]
