"""Save/load trained numpy networks.

A trained backdoor-demo classifier takes minutes to fit; persisting it lets
examples and notebooks reuse models across runs. Format: a single ``.npz``
with ordered parameter arrays plus a small JSON architecture header — no
pickle, so loading untrusted files cannot execute code.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.ml.network import Sequential, build_small_cnn

__all__ = ["save_model", "load_small_cnn"]

_FORMAT_VERSION = 1


def save_model(
    model: Sequential,
    path: str | Path,
    *,
    architecture: dict | None = None,
) -> None:
    """Persist a network's parameters (and optional architecture header).

    ``architecture`` should describe how to rebuild the empty network; for
    models from :func:`~repro.ml.network.build_small_cnn` pass
    ``{"input_shape": [h, w, c], "n_classes": n}`` (or use the default
    header written by the backdoor example).
    """
    params = model.params()
    arrays = {f"param_{index:03d}": p.value for index, p in enumerate(params)}
    header = {
        "format_version": _FORMAT_VERSION,
        "n_params": len(params),
        "architecture": architecture or {},
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    np.savez(Path(path), **arrays)


def _read_header(archive) -> dict:
    if "header" not in archive:
        raise ReproError("model file has no header; not a repro model archive")
    header = json.loads(bytes(archive["header"].tobytes()).decode("utf-8"))
    if header.get("format_version") != _FORMAT_VERSION:
        raise ReproError(
            f"unsupported model format version {header.get('format_version')}"
        )
    return header


def load_small_cnn(path: str | Path) -> Sequential:
    """Load a model saved by :func:`save_model` with a small-CNN header."""
    with np.load(Path(path)) as archive:
        header = _read_header(archive)
        arch = header["architecture"]
        if "input_shape" not in arch or "n_classes" not in arch:
            raise ReproError(
                "model header lacks input_shape/n_classes; cannot rebuild"
            )
        model = build_small_cnn(tuple(arch["input_shape"]), int(arch["n_classes"]))
        params = model.params()
        if header["n_params"] != len(params):
            raise ReproError(
                f"model file has {header['n_params']} parameter tensors, "
                f"architecture expects {len(params)}"
            )
        for index, param in enumerate(params):
            stored = archive[f"param_{index:03d}"]
            if stored.shape != param.value.shape:
                raise ReproError(
                    f"parameter {index} shape mismatch: file {stored.shape} "
                    f"vs architecture {param.value.shape}"
                )
            param.value[...] = stored
    return model
