"""Neural-network layers implemented on numpy.

A deliberately small but real CNN stack — convolution via im2col, max
pooling, dense layers, ReLU — sufficient to train the 32×32 classifiers
used by the backdoor-poisoning demonstration (paper Section 2.2) and the
Table 9 "does the missed attack still fool a model?" analysis.

Each layer implements ``forward(x)`` and ``backward(grad)``; parameters
and their gradients are exposed as ``params()`` -> list of
:class:`Parameter` so the optimizer can update them generically.

Array convention: activations are ``(N, H, W, C)`` float64; dense layers
take ``(N, D)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.errors import ReproError

__all__ = ["Parameter", "Layer", "Conv2D", "MaxPool2D", "Flatten", "Dense", "ReLU"]


@dataclass
class Parameter:
    """A trainable tensor with its accumulated gradient."""

    value: np.ndarray
    grad: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad.fill(0.0)


class Layer:
    """Base layer: stateless unless it owns parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def params(self) -> list[Parameter]:
        return []


class ReLU(Layer):
    """Elementwise max(0, x)."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ReproError("ReLU.backward called before forward")
        return grad * self._mask


class Flatten(Layer):
    """(N, H, W, C) -> (N, H*W*C)."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise ReproError("Flatten.backward called before forward")
        return grad.reshape(self._shape)


class Dense(Layer):
    """Fully connected layer with He-initialized weights."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(rng.standard_normal((in_features, out_features)) * scale)
        self.bias = Parameter(np.zeros(out_features))
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._input = x
        return x @ self.weight.value + self.bias.value

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ReproError("Dense.backward called before forward")
        self.weight.grad += self._input.T @ grad
        self.bias.grad += grad.sum(axis=0)
        return grad @ self.weight.value.T

    def params(self) -> list[Parameter]:
        return [self.weight, self.bias]


class Conv2D(Layer):
    """Valid-padding 2-D convolution (stride 1) via im2col.

    Kernel shape ``(kh, kw, c_in, c_out)``; input ``(N, H, W, C_in)``;
    output ``(N, H-kh+1, W-kw+1, C_out)``.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
    ) -> None:
        fan_in = kernel_size * kernel_size * in_channels
        scale = np.sqrt(2.0 / fan_in)
        self.kernel = Parameter(
            rng.standard_normal((kernel_size, kernel_size, in_channels, out_channels))
            * scale
        )
        self.bias = Parameter(np.zeros(out_channels))
        self.kernel_size = kernel_size
        self._columns: np.ndarray | None = None
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel_size
        n, h, w, c = x.shape
        if h < k or w < k:
            raise ReproError(f"input {h}x{w} smaller than kernel {k}x{k}")
        # (N, H-k+1, W-k+1, C, k, k) -> columns (N*out_h*out_w, k*k*C)
        windows = sliding_window_view(x, (k, k), axis=(1, 2))
        out_h, out_w = windows.shape[1], windows.shape[2]
        columns = windows.transpose(0, 1, 2, 4, 5, 3).reshape(n * out_h * out_w, k * k * c)
        self._columns = columns
        self._input_shape = x.shape
        weights = self.kernel.value.reshape(k * k * c, -1)
        out = columns @ weights + self.bias.value
        return out.reshape(n, out_h, out_w, -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._columns is None or self._input_shape is None:
            raise ReproError("Conv2D.backward called before forward")
        k = self.kernel_size
        n, h, w, c = self._input_shape
        out_h, out_w = h - k + 1, w - k + 1
        grad_flat = grad.reshape(n * out_h * out_w, -1)

        self.kernel.grad += (self._columns.T @ grad_flat).reshape(self.kernel.value.shape)
        self.bias.grad += grad_flat.sum(axis=0)

        weights = self.kernel.value.reshape(k * k * c, -1)
        columns_grad = grad_flat @ weights.T  # (N*out_h*out_w, k*k*C)
        columns_grad = columns_grad.reshape(n, out_h, out_w, k, k, c)

        # Scatter column gradients back onto the input (col2im).
        input_grad = np.zeros(self._input_shape)
        for di in range(k):
            for dj in range(k):
                input_grad[:, di : di + out_h, dj : dj + out_w, :] += columns_grad[
                    :, :, :, di, dj, :
                ]
        return input_grad

    def params(self) -> list[Parameter]:
        return [self.kernel, self.bias]


class MaxPool2D(Layer):
    """Non-overlapping max pooling with a square window."""

    def __init__(self, size: int = 2) -> None:
        if size < 1:
            raise ReproError(f"pool size must be >= 1, got {size}")
        self.size = size
        self._argmax: np.ndarray | None = None
        self._input_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        s = self.size
        n, h, w, c = x.shape
        if h % s or w % s:
            raise ReproError(f"pooling requires dims divisible by {s}, got {h}x{w}")
        blocks = x.reshape(n, h // s, s, w // s, s, c).transpose(0, 1, 3, 5, 2, 4)
        flat = blocks.reshape(n, h // s, w // s, c, s * s)
        self._argmax = flat.argmax(axis=-1)
        self._input_shape = x.shape
        return flat.max(axis=-1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._argmax is None or self._input_shape is None:
            raise ReproError("MaxPool2D.backward called before forward")
        s = self.size
        n, h, w, c = self._input_shape
        out = np.zeros((n, h // s, w // s, c, s * s))
        np.put_along_axis(out, self._argmax[..., None], grad[..., None], axis=-1)
        out = out.reshape(n, h // s, w // s, c, s, s).transpose(0, 1, 4, 2, 5, 3)
        return out.reshape(n, h, w, c)
