"""Lightweight process metrics: counters, stage timers, latency histograms.

The serving pipeline and the detectors are instrumented with these
primitives so a deployment can answer "where does the time go" without
attaching a profiler. Everything is in-process and dependency-free:

* :class:`Counter` — a monotonically increasing integer.
* :class:`Gauge` — a value that goes up *and* down (queue depth, in-flight
  requests), with ``set``/``inc``/``dec``.
* :class:`LatencyHistogram` — log-bucketed latency distribution with
  percentile estimates (p50/p95/p99) and exact count/mean/min/max.
* :class:`Metrics` — a named registry of all three, with ``as_dict()``
  producing a JSON-ready dashboard export and ``timer(name)`` measuring a
  ``with`` block into a histogram.
* :func:`render_prometheus` — the registry in Prometheus text exposition
  format (version 0.0.4), served by the detection server's ``/metrics``.

All operations are thread-safe; the hot-path cost of one ``record`` is a
lock acquisition plus two integer updates, cheap enough for per-image use.

Usage::

    metrics = Metrics()
    with metrics.timer("pipeline.screen"):
        verdict = ensemble.detect(image)
    metrics.counter("images.accepted").add(1)
    metrics.as_dict()   # {"counters": {...}, "latency_ms": {...}}
"""

from __future__ import annotations

import math
import os
import re
import threading
import time

__all__ = [
    "Counter",
    "Gauge",
    "LatencyHistogram",
    "Metrics",
    "process_self_metrics",
    "read_process_stats",
    "render_process_metrics",
    "render_prometheus",
]

#: Histogram bucket geometry: the i-th bucket's upper bound in milliseconds
#: is ``_BUCKET_START_MS * _BUCKET_FACTOR ** i``. Spans ~1 µs to ~100 s.
_BUCKET_START_MS = 0.001
_BUCKET_FACTOR = 1.6
_BUCKET_COUNT = 40


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A thread-safe value that can go up and down.

    Counters answer "how many ever"; gauges answer "how many right now"
    (queue depth, in-flight requests). ``set`` assigns, ``inc``/``dec``
    adjust; all return nothing.
    """

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class LatencyHistogram:
    """Log-bucketed latency distribution in milliseconds.

    Buckets grow geometrically from ~1 µs to ~100 s, so the estimate error
    of a percentile is bounded by the bucket factor (~60%) — coarse, but
    the point of p50/p95 on a dashboard is order of magnitude and trend,
    not microsecond precision. Count, mean, min, and max are exact.
    """

    __slots__ = ("_buckets", "_count", "_lock", "_max", "_min", "_total")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets = [0] * (_BUCKET_COUNT + 1)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = 0.0

    def _bucket_index(self, value_ms: float) -> int:
        if value_ms <= _BUCKET_START_MS:
            return 0
        index = int(math.log(value_ms / _BUCKET_START_MS) / math.log(_BUCKET_FACTOR)) + 1
        return min(index, _BUCKET_COUNT)

    def record(self, value_ms: float) -> None:
        """Add one observation (milliseconds; negatives clamp to zero)."""
        value_ms = max(0.0, float(value_ms))
        with self._lock:
            self._buckets[self._bucket_index(value_ms)] += 1
            self._count += 1
            self._total += value_ms
            self._min = min(self._min, value_ms)
            self._max = max(self._max, value_ms)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum_ms(self) -> float:
        return self._total

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """``(upper_bound_ms, cumulative_count)`` pairs for every non-empty
        bucket boundary, Prometheus-histogram style (the ``+Inf`` bucket is
        the caller's job: it equals :attr:`count`). Only boundaries where
        the cumulative count changes are reported, so quiet histograms stay
        small on the wire."""
        with self._lock:
            buckets = list(self._buckets)
        out: list[tuple[float, int]] = []
        seen = 0
        for index, bucket_count in enumerate(buckets):
            if not bucket_count:
                continue
            seen += bucket_count
            out.append((_BUCKET_START_MS * _BUCKET_FACTOR ** index, seen))
        return out

    def percentile(self, fraction: float) -> float:
        """Estimated value at *fraction* (0..1) of the distribution.

        Returns the upper bound of the bucket containing the target rank,
        clamped to the exact observed min/max.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            if self._count == 0:
                return 0.0
            rank = fraction * self._count
            seen = 0
            for index, bucket_count in enumerate(self._buckets):
                seen += bucket_count
                if seen >= rank and bucket_count:
                    upper = _BUCKET_START_MS * _BUCKET_FACTOR ** index
                    return min(max(upper, self._min), self._max)
            return self._max

    def summary(self) -> dict[str, float]:
        """Dashboard-ready summary of the distribution."""
        with self._lock:
            if self._count == 0:
                return {"count": 0}
            count, total = self._count, self._total
            low, high = self._min, self._max
        return {
            "count": count,
            "mean_ms": total / count,
            "min_ms": low,
            "p50_ms": self.percentile(0.50),
            "p95_ms": self.percentile(0.95),
            "p99_ms": self.percentile(0.99),
            "max_ms": high,
        }


class _Timer:
    """Context manager that records a ``with`` block into a histogram."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: LatencyHistogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self._histogram.record((time.perf_counter() - self._start) * 1000.0)


class Metrics:
    """Named registry of counters and latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def counter(self, name: str) -> Counter:
        """Get (or create) the counter called *name*."""
        with self._lock:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = Counter()
            return counter

    def gauge(self, name: str) -> Gauge:
        """Get (or create) the gauge called *name*."""
        with self._lock:
            gauge = self._gauges.get(name)
            if gauge is None:
                gauge = self._gauges[name] = Gauge()
            return gauge

    def histogram(self, name: str) -> LatencyHistogram:
        """Get (or create) the latency histogram called *name*."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            return histogram

    def timer(self, name: str) -> _Timer:
        """``with metrics.timer("stage"):`` records the block's duration."""
        return _Timer(self.histogram(name))

    def observe(self, name: str, value_ms: float) -> None:
        """Record a pre-measured latency into histogram *name*."""
        self.histogram(name).record(value_ms)

    def counter_values(self, prefix: str = "") -> dict[str, int]:
        """Current values of every counter whose name starts with *prefix*,
        sorted by name. Used by dashboards to extract one counter family
        (e.g. the shared-analysis memo counters under ``analysis.``)."""
        with self._lock:
            counters = dict(self._counters)
        return {
            name: counters[name].value
            for name in sorted(counters)
            if name.startswith(prefix)
        }

    def gauge_values(self) -> dict[str, float]:
        """Current value of every gauge, sorted by name."""
        with self._lock:
            gauges = dict(self._gauges)
        return {name: gauges[name].value for name in sorted(gauges)}

    def latency_summaries(self) -> dict[str, dict[str, float]]:
        """Per-histogram summaries, sorted by name."""
        with self._lock:
            histograms = dict(self._histograms)
        return {name: histograms[name].summary() for name in sorted(histograms)}

    def as_dict(self) -> dict[str, dict]:
        """JSON-ready export of every counter, gauge, and histogram."""
        with self._lock:
            counters = dict(self._counters)
        return {
            "counters": {name: counters[name].value for name in sorted(counters)},
            "gauges": self.gauge_values(),
            "latency_ms": self.latency_summaries(),
        }


# -- per-process resource accounting (/proc) ----------------------------------


def _clock_ticks_per_s() -> float:
    try:
        return float(os.sysconf("SC_CLK_TCK"))
    except (AttributeError, ValueError, OSError):
        return 100.0  # the universal Linux default


def read_process_stats(
    pid: int | str = "self",
    *,
    proc_root: str = "/proc",
    ticks_per_s: float | None = None,
) -> dict[str, float] | None:
    """CPU seconds, RSS bytes, and open-fd count for one process.

    Reads ``<proc_root>/<pid>/{stat,status,fd}``; *proc_root* is
    injectable so tests can parse synthetic fixtures. Returns ``None``
    when the process (or ``/proc`` itself, e.g. off-Linux) is not
    readable — callers treat that as "stop sampling", never as an error.

    * ``cpu_seconds`` — utime+stime from ``stat`` (fields 14/15; the
      comm field may contain spaces and parentheses, so parsing anchors
      on the *last* ``)``), divided by the clock-tick rate.
    * ``rss_bytes`` — ``VmRSS`` from ``status`` (kB), falling back to the
      ``stat`` rss-pages field times the page size.
    * ``open_fds`` — directory-entry count of ``fd/``; ``-1`` when the
      kernel denies the listing (foreign uid), distinct from "zero fds".
    """
    base = os.path.join(proc_root, str(pid))
    try:
        with open(os.path.join(base, "stat"), "rb") as handle:
            stat_text = handle.read().decode("ascii", "replace")
    except OSError:
        return None
    try:
        after_comm = stat_text[stat_text.rindex(")") + 2 :].split()
        # after_comm[0] is field 3 ("state"); utime/stime are fields 14/15.
        utime_ticks = float(after_comm[11])
        stime_ticks = float(after_comm[12])
        rss_pages = float(after_comm[21])
    except (ValueError, IndexError):
        return None
    ticks = ticks_per_s if ticks_per_s is not None else _clock_ticks_per_s()
    rss_bytes = -1.0
    try:
        with open(os.path.join(base, "status"), "rb") as handle:
            for line in handle:
                if line.startswith(b"VmRSS:"):
                    rss_bytes = float(line.split()[1]) * 1024.0
                    break
    except OSError:
        pass  # fall back to the stat pages below
    if rss_bytes < 0:
        try:
            page = float(os.sysconf("SC_PAGE_SIZE"))
        except (AttributeError, ValueError, OSError):
            page = 4096.0
        rss_bytes = rss_pages * page
    try:
        open_fds = float(len(os.listdir(os.path.join(base, "fd"))))
    except OSError:
        open_fds = -1.0
    return {
        "cpu_seconds": (utime_ticks + stime_ticks) / ticks,
        "rss_bytes": rss_bytes,
        "open_fds": open_fds,
    }


def process_self_metrics() -> dict[str, float]:
    """This process's resource usage under the standard Prometheus names
    (``process_cpu_seconds_total``, ``process_resident_memory_bytes``,
    ``process_open_fds``). Empty off-Linux — callers simply omit the block."""
    stats = read_process_stats("self")
    if stats is None:
        return {}
    values = {
        "process_cpu_seconds_total": stats["cpu_seconds"],
        "process_resident_memory_bytes": stats["rss_bytes"],
    }
    if stats["open_fds"] >= 0:
        values["process_open_fds"] = stats["open_fds"]
    return values


def render_process_metrics(values: dict[str, float] | None = None) -> str:
    """Prometheus exposition lines for :func:`process_self_metrics`.

    The standard process metrics are *unprefixed* by convention (every
    exporter calls them exactly ``process_cpu_seconds_total`` etc.), so
    they render here rather than through :func:`render_prometheus`'s
    prefixed families. Returns ``""`` when there is nothing to report.
    """
    if values is None:
        values = process_self_metrics()
    lines = []
    for name in sorted(values):
        kind = "counter" if name.endswith("_total") else "gauge"
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"{name} {_format_value(values[name])}")
    return "\n".join(lines) + "\n" if lines else ""


# -- Prometheus text exposition ---------------------------------------------

#: Characters allowed in a Prometheus metric name; everything else becomes
#: an underscore (``pipeline.screen`` -> ``pipeline_screen``).
_PROMETHEUS_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prometheus_name(prefix: str, name: str) -> str:
    flat = _PROMETHEUS_NAME_RE.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if flat and flat[0].isdigit():
        flat = f"_{flat}"
    return flat


def _format_value(value: float) -> str:
    # Prometheus floats: integers render without a trailing ".0".
    if isinstance(value, int) or float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    parts = []
    for key in sorted(labels):
        value = (
            str(labels[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{_PROMETHEUS_NAME_RE.sub("_", key)}="{value}"')
    return "{" + ",".join(parts) + "}"


def render_prometheus(
    metrics: Metrics,
    *,
    prefix: str = "decamouflage",
    extra_gauges: dict[str, float] | None = None,
    labeled_gauges: dict[str, list[tuple[dict[str, str], float]]] | None = None,
    labeled_counters: dict[str, list[tuple[dict[str, str], float]]] | None = None,
) -> str:
    """Render *metrics* in Prometheus text exposition format 0.0.4.

    Counters become ``<prefix>_<name>_total``, gauges ``<prefix>_<name>``,
    and each :class:`LatencyHistogram` a native Prometheus histogram in
    milliseconds: ``<name>_ms_bucket{le="..."}`` (cumulative), ``_sum``,
    and ``_count``. *extra_gauges* lets a caller splice in point-in-time
    values that live outside the registry (the process-wide operator-cache
    hit rate, for example). *labeled_gauges*/*labeled_counters* map a
    family name to ``(labels, value)`` series — one ``# TYPE`` header, one
    line per label set — which is how the worker pool exposes per-shard
    metrics as ``..._inflight{worker_id="0"}`` without N distinct names.
    """
    lines: list[str] = []

    with metrics._lock:
        counters = dict(metrics._counters)
        gauges = dict(metrics._gauges)
        histograms = dict(metrics._histograms)

    for name in sorted(counters):
        flat = _prometheus_name(prefix, name) + "_total"
        lines.append(f"# TYPE {flat} counter")
        lines.append(f"{flat} {_format_value(counters[name].value)}")

    for name in sorted(labeled_counters or {}):
        flat = _prometheus_name(prefix, name) + "_total"
        lines.append(f"# TYPE {flat} counter")
        for labels, value in (labeled_counters or {})[name]:
            lines.append(f"{flat}{_format_labels(labels)} {_format_value(value)}")

    merged_gauges: dict[str, float] = {
        name: gauge.value for name, gauge in gauges.items()
    }
    merged_gauges.update(extra_gauges or {})
    for name in sorted(merged_gauges):
        flat = _prometheus_name(prefix, name)
        lines.append(f"# TYPE {flat} gauge")
        lines.append(f"{flat} {_format_value(merged_gauges[name])}")

    for name in sorted(labeled_gauges or {}):
        flat = _prometheus_name(prefix, name)
        lines.append(f"# TYPE {flat} gauge")
        for labels, value in (labeled_gauges or {})[name]:
            lines.append(f"{flat}{_format_labels(labels)} {_format_value(value)}")

    for name in sorted(histograms):
        histogram = histograms[name]
        flat = _prometheus_name(prefix, name) + "_ms"
        count = histogram.count
        lines.append(f"# TYPE {flat} histogram")
        for upper_ms, cumulative in histogram.cumulative_buckets():
            lines.append(
                f'{flat}_bucket{{le="{_format_value(upper_ms)}"}} {cumulative}'
            )
        lines.append(f'{flat}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{flat}_sum {_format_value(histogram.sum_ms)}")
        lines.append(f"{flat}_count {count}")

    return "\n".join(lines) + "\n"
