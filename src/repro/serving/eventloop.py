"""Nonblocking ``selectors`` front end for the detection server.

The threaded front end burns one OS thread per connection: a thousand
idle keep-alives are a thousand blocked threads before the first byte of
work. This module replaces the accept/read path with a single event-loop
thread that:

* accepts and reads every connection nonblockingly through one
  :class:`selectors.DefaultSelector`;
* parses HTTP/1.1 requests **incrementally** — a client trickling its
  headers one byte per second holds a 100-odd-byte buffer, not a thread,
  so a slow-loris herd cannot starve healthy clients;
* hands each complete request to a small dispatch pool (sized to the
  admission queue: ``max_active + queue_depth`` plus slack) where the
  shared request core — the same one the threaded front end calls — does
  admission, scoring, and error mapping;
* queues the serialized response back to the loop thread, which writes it
  nonblockingly and resumes parsing the connection (keep-alive, in
  order).

Responses are **byte-identical** to the threaded front end (status line,
``Server``/``Date`` headers, explicit header order, body) — the parity
grid in ``tests/test_serving_server.py`` holds the two side by side.
When every admission slot and waiting-room seat is spoken for, the loop
answers 429 directly instead of parking the request in the dispatch
pool, preserving the threaded front end's fail-fast backpressure.

Lifecycle: the loop owns every connection; :meth:`EventLoopFrontend.stop`
stops accepting, lets in-flight requests finish writing (bounded by the
drain deadline), then closes everything — an accepted request is never
dropped by a drain.
"""

from __future__ import annotations

import email.utils
import html
import io
import json
import selectors
import socket
import sys
import threading
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from http.client import HTTPException, parse_headers
from http.server import DEFAULT_ERROR_CONTENT_TYPE, DEFAULT_ERROR_MESSAGE

__all__ = ["EventLoopFrontend", "serialize_response"]

#: Mirror of ``BaseHTTPRequestHandler``'s ``Server:`` header value for
#: ``server_version = "decamouflage"`` — parity is byte-for-byte.
_SERVER_HEADER = "decamouflage Python/" + sys.version.split()[0]
#: A request head (request line + headers) larger than this is hostile.
_MAX_HEAD_BYTES = 64 * 1024
#: Stop reading a connection whose buffer outruns its current request.
_MAX_BUFFER_SLACK = 1024 * 1024
#: Paths whose dispatch is bounded by the admission queue's capacity.
_DETECT_PATHS = ("/v1/detect", "/v1/detect/batch")

_READ = selectors.EVENT_READ
_WRITE = selectors.EVENT_WRITE


def _phrase(status: int) -> str:
    try:
        return HTTPStatus(status).phrase
    except ValueError:
        return ""


def serialize_response(status: int, headers, body: bytes, *, reason: str | None = None) -> bytes:
    """Serialize one response exactly as ``BaseHTTPRequestHandler`` would:
    status line, ``Server``, ``Date``, then the explicit headers in order."""
    lines = [
        f"HTTP/1.1 {status} {_phrase(status) if reason is None else reason}\r\n",
        f"Server: {_SERVER_HEADER}\r\n",
        f"Date: {email.utils.formatdate(time.time(), usegmt=True)}\r\n",
    ]
    for name, value in headers:
        lines.append(f"{name}: {value}\r\n")
    lines.append("\r\n")
    return "".join(lines).encode("latin-1", "strict") + body


def _unsupported_method_body(method: str) -> tuple[bytes, str]:
    """The HTML error body ``send_error(501)`` would produce for an
    unsupported method, so the two front ends disagree on nothing."""
    message = f"Unsupported method ({method!r})"
    content = DEFAULT_ERROR_MESSAGE % {
        "code": 501,
        "message": html.escape(message, quote=False),
        "explain": "Server does not support this operation",
    }
    return content.encode("UTF-8", "replace"), message


class _Connection:
    """Loop-private state for one accepted socket."""

    __slots__ = (
        "sock",
        "fd",
        "inbuf",
        "outbuf",
        "state",  # "head" | "body" | "busy"
        "request",  # (method, path, headers, requestline) while in "body"/"busy"
        "body_target",
        "events",
        "open",
        "peer_closed",
        "close_after_write",
        "responded",
        "last_activity",
        "first_byte_at",
    )

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self.fd = sock.fileno()
        self.inbuf = bytearray()
        self.outbuf = bytearray()
        self.state = "head"
        self.request = None
        self.body_target = 0
        self.events = _READ
        self.open = True
        self.peer_closed = False
        self.close_after_write = False
        #: the current request's response has been handed to the writer —
        #: guards the keep-alive transition against stale WRITE readiness.
        self.responded = False
        self.last_activity = time.monotonic()
        self.first_byte_at: float | None = None


class EventLoopFrontend:
    """One selector thread + a bounded dispatch pool, feeding the shared
    request core of a :class:`~repro.serving.server.DetectionServer`."""

    def __init__(self, server) -> None:
        self._server = server
        config = server.config
        self._listener = socket.create_server(
            (config.host, config.port), backlog=128, reuse_port=False
        )
        self._listener.setblocking(False)
        # The waker lets dispatch-pool threads interrupt a blocked select().
        self._waker_recv, self._waker_send = socket.socketpair()
        self._waker_recv.setblocking(False)
        self._waker_send.setblocking(False)
        self._capacity = config.max_active + config.queue_depth
        self._executor = ThreadPoolExecutor(
            max_workers=self._capacity + 4, thread_name_prefix="eventloop-dispatch"
        )
        self._lock = threading.Lock()  # guards completions + inflight count
        self._completions: deque = deque()
        self._inflight_detect = 0
        self._connections: dict[int, _Connection] = {}
        self._stopping = threading.Event()
        self._stopped = threading.Event()
        self._running = threading.Event()
        self._thread: threading.Thread | None = None
        self._open_gauge = server.metrics.gauge("eventloop.open_connections")

    # -- lifecycle -----------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        host, port = self._listener.getsockname()[:2]
        return str(host), int(port)

    def start(self) -> None:
        """Run the loop on a background thread; returns at once."""
        self._thread = threading.Thread(
            target=self._run, name="eventloop-frontend", daemon=True
        )
        self._thread.start()

    def serve_forever(self) -> None:
        """Run the loop on the calling thread until :meth:`stop`."""
        self._run()

    def stop(self) -> None:
        """Drain: stop accepting, finish in-flight requests, close all.

        Bounded by ``socket_timeout_s``: a response the loop cannot write
        within the deadline (wedged client) is abandoned, everything else
        completes. Idempotent."""
        self._stopping.set()
        self._wake()
        if self._running.is_set():
            self._stopped.wait(self._server.config.socket_timeout_s + 5.0)
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self._executor.shutdown(wait=True, cancel_futures=True)
        try:
            self._listener.close()
        except OSError:
            pass  # loop closed it first
        for sock in (self._waker_recv, self._waker_send):
            try:
                sock.close()
            except OSError:
                pass  # already closed

    def _wake(self) -> None:
        try:
            self._waker_send.send(b"\x01")
        except (OSError, BlockingIOError):
            pass  # loop already awake (buffer full) or gone

    # -- the loop ------------------------------------------------------

    def _run(self) -> None:
        # The loop thread owns the selector end to end; the finally below
        # is the only release site.
        selector = selectors.DefaultSelector()
        self._running.set()
        selector.register(self._listener, _READ, "accept")
        selector.register(self._waker_recv, _READ, "waker")
        drain_deadline: float | None = None
        next_sweep = time.monotonic() + 1.0
        try:
            while True:
                if self._stopping.is_set() and drain_deadline is None:
                    drain_deadline = (
                        time.monotonic() + self._server.config.socket_timeout_s
                    )
                    self._begin_drain(selector)
                for key, _mask in selector.select(0.05):
                    if key.data == "accept":
                        self._accept(selector)
                    elif key.data == "waker":
                        self._drain_waker()
                    else:
                        self._service(selector, key.data, _mask)
                self._flush_completions(selector)
                if drain_deadline is not None or time.monotonic() >= next_sweep:
                    self._sweep(selector, drain_deadline)
                    next_sweep = time.monotonic() + 1.0
                if drain_deadline is not None and (
                    not self._connections or time.monotonic() >= drain_deadline
                ):
                    break
        finally:
            for conn in list(self._connections.values()):
                self._close(selector, conn)
            try:
                selector.unregister(self._listener)
            except KeyError:
                pass  # drain already removed it
            self._listener.close()
            selector.close()
            self._stopped.set()

    def _begin_drain(self, selector) -> None:
        """Stop accepting; close every connection with nothing in flight."""
        try:
            selector.unregister(self._listener)
        except KeyError:
            pass  # second stop() racing the first
        for conn in list(self._connections.values()):
            if conn.state != "busy" and not conn.outbuf:
                self._close(selector, conn)

    def _accept(self, selector) -> None:
        for _ in range(64):  # bounded accept burst per tick
            try:
                sock, _addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            sock.setblocking(False)
            try:
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            except OSError:
                pass  # not TCP (tests may use AF_UNIX one day)
            conn = _Connection(sock)
            self._connections[conn.fd] = conn
            selector.register(sock, _READ, conn)
            self._open_gauge.set(len(self._connections))

    def _drain_waker(self) -> None:
        try:
            while self._waker_recv.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass  # drained

    def _service(self, selector, conn: _Connection, mask: int) -> None:
        if not conn.open:
            return
        if mask & _READ:
            self._on_readable(selector, conn)
        if conn.open and mask & _WRITE:
            self._on_writable(selector, conn)

    # -- reading + incremental parse ------------------------------------

    def _on_readable(self, selector, conn: _Connection) -> None:
        try:
            chunk = conn.sock.recv(65536)
        except (BlockingIOError, InterruptedError):
            return
        except OSError:
            self._close(selector, conn)
            return
        if chunk == b"":
            # Peer half-closed its write side. A response still being
            # computed or written may yet be delivered; anything else —
            # including a partial request that can now never complete —
            # is done.
            conn.peer_closed = True
            if conn.state == "busy" or conn.outbuf:
                self._set_events(selector, conn, conn.events & ~_READ)
            else:
                self._close(selector, conn)
            return
        now = time.monotonic()
        conn.last_activity = now
        if conn.first_byte_at is None:
            conn.first_byte_at = now
        conn.inbuf += chunk
        if conn.state == "busy":
            # A keep-alive client is allowed to pipeline the next request
            # into our buffer, but it cannot make us buffer unboundedly.
            if len(conn.inbuf) > _MAX_BUFFER_SLACK:
                self._set_events(selector, conn, conn.events & ~_READ)
            return
        self._advance_parse(selector, conn)

    def _advance_parse(self, selector, conn: _Connection) -> None:
        started = time.perf_counter()
        try:
            while conn.open and conn.state != "busy":
                if conn.state == "head":
                    if not self._parse_head(selector, conn):
                        return
                if conn.state == "body":
                    if len(conn.inbuf) < conn.body_target:
                        return
                    body = bytes(conn.inbuf[: conn.body_target])
                    del conn.inbuf[: conn.body_target]
                    self._complete_request(conn, body)
        finally:
            elapsed_ms = (time.perf_counter() - started) * 1000.0
            self._server.metrics.observe("eventloop.parse", elapsed_ms)

    def _parse_head(self, selector, conn: _Connection) -> bool:
        """Parse one request head out of the buffer. Returns False when
        more bytes are needed (or the connection was rejected)."""
        end = conn.inbuf.find(b"\r\n\r\n")
        if end < 0:
            if len(conn.inbuf) > _MAX_HEAD_BYTES:
                self._reject(selector, conn, 400, "request head too large")
                return False
            return False
        head = bytes(conn.inbuf[: end + 4])
        del conn.inbuf[: end + 4]
        first, _, rest = head.partition(b"\r\n")
        requestline = first.decode("iso-8859-1", "replace").rstrip("\r\n")
        words = requestline.split()
        if len(words) != 3 or not words[2].startswith("HTTP/"):
            self._reject(selector, conn, 400, f"malformed request line {requestline!r}")
            return False
        method, path, version = words
        try:
            headers = parse_headers(io.BytesIO(rest))
        except (HTTPException, ValueError):
            self._reject(selector, conn, 400, "malformed headers")
            return False
        connection = (headers.get("Connection") or "").lower()
        if version == "HTTP/1.1":
            if connection == "close":
                conn.close_after_write = True
        elif connection != "keep-alive":
            # HTTP/1.0 closes by default, exactly like the threaded handler.
            conn.close_after_write = True
        if method not in ("GET", "POST"):
            self._respond_unsupported(conn, method)
            return False
        conn.request = (method, path, headers, requestline)
        if method == "POST":
            length = self._body_length(headers)
            if length is not None:
                conn.state = "body"
                conn.body_target = length
                return True
        # No (valid, acceptable) body to wait for: the request core makes
        # the 411/413/400 call itself so both front ends agree; any frame
        # the client does send afterwards would desync the stream, so the
        # core marks those responses Connection: close.
        self._complete_request(conn, b"")
        return False

    def _body_length(self, headers) -> int | None:
        """How many body bytes to consume before dispatch, or None when the
        request core will refuse the request without reading a body."""
        raw = headers.get("Content-Length")
        if raw is None:
            return None  # 411
        try:
            length = int(raw)
        except ValueError:
            return None  # 400
        if length < 0:
            return None  # 400
        if length > self._server.config.max_body_bytes:
            return None  # 413 — refuse before buffering a 64 MiB body
        return length

    # -- dispatch -------------------------------------------------------

    def _complete_request(self, conn: _Connection, body: bytes) -> None:
        method, path, headers, requestline = conn.request
        conn.request = None
        conn.state = "busy"
        now = time.monotonic()
        if conn.first_byte_at is not None:
            self._server.metrics.observe(
                "eventloop.read", (now - conn.first_byte_at) * 1000.0
            )
            conn.first_byte_at = None
        # Requests the core will refuse on body framing (411/400/413) never
        # reach admission in the threaded front end either — they must not
        # take the saturation short-circuit (nor count as in-flight work).
        detect = (
            method == "POST"
            and path in _DETECT_PATHS
            and self._body_length(headers) is not None
        )
        if detect:
            with self._lock:
                saturated = self._inflight_detect >= self._capacity
                if not saturated:
                    self._inflight_detect += 1
            if saturated:
                # Fail fast from the loop thread, exactly as a threaded
                # handler hitting a full waiting room would — parking the
                # request in the dispatch pool would turn backpressure
                # into unbounded latency.
                response = self._server.saturated_response(
                    headers, requestline=requestline
                )
                self._enqueue_response(conn, response, detect=False)
                return
        self._executor.submit(
            self._dispatch, conn, method, path, headers, body, requestline, now, detect
        )

    def _dispatch(
        self, conn, method, path, headers, body, requestline, enqueued_at, detect
    ) -> None:
        """Dispatch-pool thread: run the shared request core, hand the
        serialized response back to the loop."""
        self._server.metrics.observe(
            "eventloop.dispatch", (time.monotonic() - enqueued_at) * 1000.0
        )
        try:
            response = self._server.handle_http_request(
                method, path, headers, lambda _length: body, requestline=requestline
            )
        except Exception as exc:  # the loop must survive a core bug
            body_bytes = json.dumps({"error": f"internal error: {exc}"}).encode("utf-8")
            response = _InternalErrorResponse(body_bytes)
        self._enqueue_response(conn, response, detect=detect)

    def _enqueue_response(self, conn: _Connection, response, detect: bool) -> None:
        data = serialize_response(response.status, response.headers, response.body)
        with self._lock:
            self._completions.append((conn, data, response.close))
            if detect:
                self._inflight_detect -= 1
        self._wake()

    def _flush_completions(self, selector) -> None:
        while True:
            with self._lock:
                if not self._completions:
                    return
                conn, data, close = self._completions.popleft()
            if not conn.open:
                continue
            conn.outbuf += data
            conn.responded = True
            if close:
                conn.close_after_write = True
            self._on_writable(selector, conn)

    # -- writing + keep-alive -------------------------------------------

    def _on_writable(self, selector, conn: _Connection) -> None:
        if conn.outbuf:
            try:
                sent = conn.sock.send(bytes(conn.outbuf))
                del conn.outbuf[:sent]
                conn.last_activity = time.monotonic()
            except (BlockingIOError, InterruptedError):
                pass  # kernel buffer full; try again on the next tick
            except OSError:
                self._close(selector, conn)
                return
        if conn.outbuf:
            self._set_events(selector, conn, conn.events | _WRITE)
            return
        self._set_events(selector, conn, conn.events & ~_WRITE)
        if conn.state == "busy" and conn.responded:
            # Response fully written: the connection is ours to reuse.
            if conn.close_after_write or conn.peer_closed:
                self._close(selector, conn)
                return
            conn.state = "head"
            conn.responded = False
            self._set_events(selector, conn, conn.events | _READ)
            if conn.inbuf:
                conn.first_byte_at = conn.last_activity
                self._advance_parse(selector, conn)

    def _respond_unsupported(self, conn: _Connection, method: str) -> None:
        """501 for non-GET/POST, byte-identical to ``send_error(501)`` —
        including the custom reason phrase on the status line."""
        body, message = _unsupported_method_body(method)
        headers = (
            ("Connection", "close"),
            ("Content-Type", DEFAULT_ERROR_CONTENT_TYPE),
            ("Content-Length", str(len(body))),
        )
        self._server.metrics.counter("server.responses.501").add(1)
        conn.state = "busy"
        conn.request = None
        with self._lock:
            self._completions.append(
                (conn, serialize_response(501, headers, body, reason=message), True)
            )
        # Called from the loop thread; completions flush on this tick.

    def _reject(self, selector, conn: _Connection, status: int, message: str) -> None:
        """Protocol-level refusal (bad request line/headers): answer and
        close; the stream cannot be trusted past this point."""
        body = json.dumps({"error": message}).encode("utf-8")
        headers = (
            ("Content-Type", "application/json"),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
        )
        self._server.metrics.counter(f"server.responses.{status}").add(1)
        conn.state = "busy"
        conn.request = None
        conn.close_after_write = True
        conn.responded = True
        conn.outbuf += serialize_response(status, headers, body)
        self._on_writable(selector, conn)

    # -- bookkeeping ----------------------------------------------------

    def _set_events(self, selector, conn: _Connection, events: int) -> None:
        if not conn.open or events == conn.events:
            return
        previous = conn.events
        conn.events = events
        try:
            if not events:
                selector.unregister(conn.sock)
            elif not previous:
                selector.register(conn.sock, events, conn)
            else:
                selector.modify(conn.sock, events, conn)
        except (KeyError, ValueError, OSError):
            pass  # racing a close; the sweep finishes the job

    def _sweep(self, selector, drain_deadline: float | None) -> None:
        """Close idle keep-alives past the socket timeout. Connections with
        a request in flight are exempt — the admission deadline bounds
        those — and so are mid-request trickles (each byte refreshes
        ``last_activity``): holding a slow client costs a buffer, not a
        thread, which is the point of this front end."""
        timeout = self._server.config.socket_timeout_s
        now = time.monotonic()
        for conn in list(self._connections.values()):
            if not conn.open or conn.state == "busy" or conn.outbuf:
                continue
            if drain_deadline is not None or now - conn.last_activity > timeout:
                self._close(selector, conn)

    def _close(self, selector, conn: _Connection) -> None:
        if not conn.open:
            return
        conn.open = False
        self._connections.pop(conn.fd, None)
        if conn.events:
            try:
                selector.unregister(conn.sock)
            except (KeyError, ValueError, OSError):
                pass  # never registered or already gone
        try:
            conn.sock.close()
        except OSError:
            pass  # peer reset already tore it down
        self._open_gauge.set(len(self._connections))


class _InternalErrorResponse:
    """Fallback shape when the request core itself raises (kept tiny so
    the loop thread never depends on the server module)."""

    status = 500
    close = True

    def __init__(self, body: bytes) -> None:
        self.body = body
        self.headers = (
            ("Content-Type", "application/json"),
            ("Content-Length", str(len(body))),
            ("Connection", "close"),
        )
