"""Serving integration: Decamouflage as a plug-in preprocessing guard.

The paper describes Decamouflage as "an independent module compatible with
any existing scaling algorithms — alike a plug-in protector". This package
is that plug-in: a screen-then-scale pipeline with reject / quarantine /
sanitize policies and JSONL audit logging — plus a stdlib-only HTTP
service (:mod:`repro.serving.server`) and client
(:mod:`repro.serving.client`) that put the pipeline on the network.
"""

from repro.serving.audit import AuditLog, AuditRecord
from repro.serving.client import DetectionClient, DetectionVerdict
from repro.serving.pipeline import PipelineOutcome, PipelineStats, ProtectedPipeline
from repro.serving.policy import Policy
from repro.serving.server import AdmissionQueue, DetectionServer, ServerConfig
from repro.serving.workers import WorkerPool, WorkerPoolConfig, WorkerSpec

__all__ = [
    "AdmissionQueue",
    "AuditLog",
    "AuditRecord",
    "DetectionClient",
    "DetectionServer",
    "DetectionVerdict",
    "PipelineOutcome",
    "PipelineStats",
    "Policy",
    "ProtectedPipeline",
    "ServerConfig",
    "WorkerPool",
    "WorkerPoolConfig",
    "WorkerSpec",
]
