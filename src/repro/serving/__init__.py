"""Serving integration: Decamouflage as a plug-in preprocessing guard.

The paper describes Decamouflage as "an independent module compatible with
any existing scaling algorithms — alike a plug-in protector". This package
is that plug-in: a screen-then-scale pipeline with reject / quarantine /
sanitize policies and JSONL audit logging.
"""

from repro.serving.audit import AuditLog, AuditRecord
from repro.serving.pipeline import PipelineOutcome, PipelineStats, ProtectedPipeline
from repro.serving.policy import Policy

__all__ = [
    "AuditLog",
    "AuditRecord",
    "PipelineOutcome",
    "PipelineStats",
    "Policy",
    "ProtectedPipeline",
]
