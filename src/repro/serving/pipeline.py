"""The protected preprocessing pipeline.

Drop-in replacement for the vulnerable ``resize(image, model_input)`` step
of a serving system: every incoming image is screened by a calibrated
Decamouflage ensemble *before* the downscale, and the configured policy
decides what happens on a hit. Usage::

    pipeline = ProtectedPipeline(
        model_input_shape=(32, 32),
        algorithm="bilinear",
        policy=Policy.REJECT,
        audit_log=AuditLog("decisions.jsonl", quarantine_dir="quarantine/"),
    )
    pipeline.calibrate(benign_holdout)

    outcome = pipeline.submit(image, image_id="upload-001")
    if outcome.accepted:
        prediction = model(outcome.model_input)

    outcomes = pipeline.submit_batch(batch)      # vectorized decision path
    pipeline.stats.as_dict()                     # counters + p50/p95 + cache

The pipeline never mutates accepted benign inputs (the paper's core
argument for detection over prevention); only the explicit SANITIZE policy
touches pixels, and only for flagged images.

Concurrency notes: scoring is pure math and runs outside the pipeline
lock; the lock guards only the sequence and the stats counters. Audit-log
writes happen *outside* the lock (the log serializes its own file I/O), so
one slow disk cannot stall concurrent submissions.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.ensemble import DetectionEnsemble, build_default_ensemble
from repro.core.result import EnsembleDetection
from repro.errors import DetectionError
from repro.imaging.plans import geometry_cache_stats, plan_cache_stats
from repro.imaging.scaling import operator_cache_stats, resize
from repro.observability import Metrics
from repro.serving.audit import AuditLog, AuditRecord
from repro.serving.policy import Policy

__all__ = [
    "PipelineOutcome",
    "PipelineStats",
    "ProtectedPipeline",
    "verdict_payload",
]


@dataclass(frozen=True)
class PipelineOutcome:
    """Result of submitting one image."""

    image_id: str
    accepted: bool
    action: str  # "accepted" | "rejected" | "quarantined" | "sanitized"
    detection: EnsembleDetection
    #: the model-ready input; None when the image was rejected/quarantined
    model_input: np.ndarray | None


@dataclass
class PipelineStats:
    """Running counters for monitoring dashboards.

    ``as_dict()`` augments the action counters with the per-detector and
    per-stage latency summaries (p50/p95/p99) from the attached
    :class:`~repro.observability.Metrics` registry and the process-wide
    scaling-operator, scoring-plan, and spectrum-geometry cache hit rates.
    """

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    quarantined: int = 0
    sanitized: int = 0
    #: observability registry shared with the pipeline (not a counter)
    metrics: Metrics | None = field(default=None, repr=False, compare=False)

    def as_dict(self) -> dict:
        out: dict = {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
            "sanitized": self.sanitized,
        }
        if self.metrics is not None:
            out["latency_ms"] = self.metrics.latency_summaries()
            memo = self.metrics.counter_values("analysis.")
            if memo:
                # Shared-analysis savings: hits are intermediates a second
                # consumer got for free, misses are actual computations.
                out["analysis_memo"] = memo
        out["operator_cache"] = operator_cache_stats()
        out["plan_cache"] = plan_cache_stats()
        out["spectrum_geometry"] = geometry_cache_stats()
        return out


def verdict_payload(
    outcome: PipelineOutcome, *, request_id: str, latency_ms: float
) -> dict:
    """The JSON-ready wire verdict for one outcome.

    This is THE serialization of a detection decision — the HTTP server and
    the worker shards both call it, so a sharded deployment answers
    bit-for-bit what an in-process one would.
    """
    detection = outcome.detection
    return {
        "request_id": request_id,
        "image_id": outcome.image_id,
        "verdict": "attack" if detection.is_attack else "benign",
        "action": outcome.action,
        "accepted": outcome.accepted,
        "votes_for_attack": detection.votes_for_attack,
        "votes_total": detection.votes_total,
        "scores": {
            f"{d.method}/{d.metric}": float(d.score) for d in detection.detections
        },
        "thresholds": {
            f"{d.method}/{d.metric}": d.threshold.describe(d.metric)
            for d in detection.detections
        },
        "latency_ms": latency_ms,
    }


class ProtectedPipeline:
    """Screen-then-scale preprocessing with a pluggable response policy."""

    def __init__(
        self,
        model_input_shape: tuple[int, int],
        *,
        algorithm: str = "bilinear",
        policy: Policy = Policy.REJECT,
        ensemble: DetectionEnsemble | None = None,
        audit_log: AuditLog | None = None,
        metrics: Metrics | None = None,
    ) -> None:
        self.model_input_shape = model_input_shape
        self.algorithm = algorithm
        self.policy = Policy(policy)
        self.ensemble = ensemble or build_default_ensemble(
            model_input_shape, algorithm=algorithm
        )
        self.audit_log = audit_log
        self.metrics = metrics or Metrics()
        self.ensemble.metrics = self.metrics
        self.stats = PipelineStats(metrics=self.metrics)
        self._sequence = 0
        # Guards sequence/stats mutation only. Scoring is pure and audit
        # appends serialize on the log's own I/O lock, so neither holds
        # this lock — one slow disk cannot serialize the whole batch.
        self._lock = threading.Lock()

    # -- calibration --------------------------------------------------------

    def calibrate(
        self,
        benign: list[np.ndarray],
        attacks: list[np.ndarray] | None = None,
        *,
        strategy: str = "percentile",
        percentile: float = 1.0,
        n_sigma: float = 3.0,
    ) -> None:
        """Calibrate the ensemble (see :meth:`repro.core.Detector.calibrate`
        for the strategies). Supplying *attacks* selects the white-box
        midpoint strategy; benign-only calls default to the percentile rule.
        """
        self.ensemble.calibrate(
            benign,
            attacks,
            strategy=strategy,
            percentile=percentile,
            n_sigma=n_sigma,
        )

    @property
    def is_calibrated(self) -> bool:
        return all(d.is_calibrated for d in self.ensemble.detectors)

    # -- the hot path --------------------------------------------------------

    def _resolve(
        self,
        analysis: ImageAnalysis,
        identifier: str,
        sequence: int,
        detection: EnsembleDetection,
    ) -> tuple[PipelineOutcome, AuditRecord | None]:
        """Apply the response policy to one screened image (pure + I/O-free
        except for the explicit quarantine write)."""
        image = analysis.image
        quarantine_path: str | None = None
        if not detection.is_attack:
            action = "accepted"
            with self.metrics.timer("pipeline.scale"):
                model_input = resize(image, self.model_input_shape, self.algorithm)
        elif self.policy is Policy.REJECT:
            action = "rejected"
            model_input = None
        elif self.policy is Policy.QUARANTINE:
            action = "quarantined"
            model_input = None
            if self.audit_log is not None and self.audit_log.quarantine_dir is not None:
                # Attach whatever intermediates screening already memoized
                # (round trip, filtered image, spectrum) as explanation
                # artifacts — zero recomputation.
                quarantine_path = self.audit_log.quarantine(
                    identifier, image, artifacts=analysis.artifacts()
                )
        else:  # Policy.SANITIZE
            from repro.defenses.reconstruction import reconstruct_image

            action = "sanitized"
            sanitized = reconstruct_image(
                image, self.model_input_shape, algorithm=self.algorithm
            )
            model_input = resize(sanitized, self.model_input_shape, self.algorithm)

        outcome = PipelineOutcome(
            image_id=identifier,
            accepted=model_input is not None,
            action=action,
            detection=detection,
            model_input=model_input,
        )
        record = (
            AuditRecord.from_detection(
                identifier, sequence, detection, action, quarantine_path
            )
            if self.audit_log is not None
            else None
        )
        return outcome, record

    def _count(self, action: str) -> None:
        """Bump the counters for one resolved action (caller holds the lock)."""
        self.stats.submitted += 1
        setattr(self.stats, action, getattr(self.stats, action) + 1)

    def submit(self, image: np.ndarray, *, image_id: str | None = None) -> PipelineOutcome:
        """Screen one image and produce the model input per policy."""
        if not self.is_calibrated:
            raise DetectionError("pipeline is not calibrated; call calibrate() first")
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        identifier = image_id or f"image-{sequence:06d}"

        # Pure computation — outside the lock so submissions parallelize.
        # One shared analysis context carries the image through screening
        # and into quarantine artifacts.
        with self.metrics.timer("pipeline.screen"):
            analysis = self.ensemble.analyze(image)
            detection = self.ensemble.detect_from(analysis)
        outcome, record = self._resolve(analysis, identifier, sequence, detection)

        with self._lock:
            self._count(outcome.action)
        if record is not None:
            # Disk write outside the pipeline lock: the audit log has its
            # own I/O lock, so a slow disk only stalls other writers, not
            # the scoring/stats path.
            with self.metrics.timer("pipeline.audit"):
                self.audit_log.append(record)
        return outcome

    def record_remote_outcome(self, action: str) -> int:
        """Account one verdict scored by a worker shard; returns the
        canonical sequence number.

        Sharded deployments keep the parent's pipeline as the single source
        of truth for ``stats`` and audit sequencing — workers score, the
        dispatcher records — so ``pipeline.stats`` reads the same whether
        scoring happened here or in a shard.
        """
        with self._lock:
            self._sequence += 1
            self._count(action)
            return self._sequence

    def submit_batch(
        self,
        images: list[np.ndarray],
        *,
        prefix: str = "batch",
        max_workers: int = 1,
    ) -> list[PipelineOutcome]:
        """Screen a list of images with generated sequential ids.

        The whole batch goes through the ensemble's vectorized
        ``detect_batch`` path, so verdicts are bit-identical to per-image
        :meth:`submit` at higher throughput. ``max_workers > 1``
        additionally splits the batch across a thread pool — the scoring
        math is numpy-heavy and releases the GIL, so offline curation of
        large pools scales with cores. Outcomes keep the input order.
        """
        if not self.is_calibrated:
            raise DetectionError("pipeline is not calibrated; call calibrate() first")
        images = list(images)
        if not images:
            return []
        identifiers = [f"{prefix}-{index:05d}" for index in range(len(images))]
        with self._lock:
            first = self._sequence + 1
            self._sequence += len(images)
        sequences = range(first, first + len(images))

        analyses = [self.ensemble.analyze(image) for image in images]
        with self.metrics.timer("pipeline.screen"):
            if max_workers <= 1 or len(analyses) <= 1:
                detections = self.ensemble.detect_batch(analyses)
            else:
                # Chunks are disjoint, so each context is touched by
                # exactly one worker — no cross-thread memo races.
                workers = min(max_workers, len(analyses))
                bounds = np.linspace(0, len(analyses), workers + 1).astype(int)
                chunks = [
                    analyses[bounds[i]:bounds[i + 1]]
                    for i in range(workers)
                    if bounds[i] < bounds[i + 1]
                ]
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    parts = list(pool.map(self.ensemble.detect_batch, chunks))
                detections = [d for part in parts for d in part]

        outcomes: list[PipelineOutcome] = []
        records: list[AuditRecord] = []
        for analysis, identifier, sequence, detection in zip(
            analyses, identifiers, sequences, detections
        ):
            outcome, record = self._resolve(analysis, identifier, sequence, detection)
            outcomes.append(outcome)
            if record is not None:
                records.append(record)
        with self._lock:
            for outcome in outcomes:
                self._count(outcome.action)
        if records:
            with self.metrics.timer("pipeline.audit"):
                for record in records:
                    self.audit_log.append(record)
        return outcomes
