"""The protected preprocessing pipeline.

Drop-in replacement for the vulnerable ``resize(image, model_input)`` step
of a serving system: every incoming image is screened by a calibrated
Decamouflage ensemble *before* the downscale, and the configured policy
decides what happens on a hit. Usage::

    pipeline = ProtectedPipeline(
        model_input_shape=(32, 32),
        algorithm="bilinear",
        policy=Policy.REJECT,
        audit_log=AuditLog("decisions.jsonl", quarantine_dir="quarantine/"),
    )
    pipeline.calibrate(benign_holdout)

    outcome = pipeline.submit(image, image_id="upload-001")
    if outcome.accepted:
        prediction = model(outcome.model_input)

The pipeline never mutates accepted benign inputs (the paper's core
argument for detection over prevention); only the explicit SANITIZE policy
touches pixels, and only for flagged images.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.core.ensemble import DetectionEnsemble, build_default_ensemble
from repro.core.result import EnsembleDetection
from repro.errors import DetectionError
from repro.imaging.scaling import resize
from repro.serving.audit import AuditLog, AuditRecord
from repro.serving.policy import Policy

__all__ = ["PipelineOutcome", "PipelineStats", "ProtectedPipeline"]


@dataclass(frozen=True)
class PipelineOutcome:
    """Result of submitting one image."""

    image_id: str
    accepted: bool
    action: str  # "accepted" | "rejected" | "quarantined" | "sanitized"
    detection: EnsembleDetection
    #: the model-ready input; None when the image was rejected/quarantined
    model_input: np.ndarray | None


@dataclass
class PipelineStats:
    """Running counters for monitoring dashboards."""

    submitted: int = 0
    accepted: int = 0
    rejected: int = 0
    quarantined: int = 0
    sanitized: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "quarantined": self.quarantined,
            "sanitized": self.sanitized,
        }


class ProtectedPipeline:
    """Screen-then-scale preprocessing with a pluggable response policy."""

    def __init__(
        self,
        model_input_shape: tuple[int, int],
        *,
        algorithm: str = "bilinear",
        policy: Policy = Policy.REJECT,
        ensemble: DetectionEnsemble | None = None,
        audit_log: AuditLog | None = None,
    ) -> None:
        self.model_input_shape = model_input_shape
        self.algorithm = algorithm
        self.policy = Policy(policy)
        self.ensemble = ensemble or build_default_ensemble(
            model_input_shape, algorithm=algorithm
        )
        self.audit_log = audit_log
        self.stats = PipelineStats()
        self._sequence = 0
        # Guards sequence/stats/audit mutation; scoring itself is pure and
        # runs outside the lock, so parallel batches overlap on the math.
        self._lock = threading.Lock()

    # -- calibration --------------------------------------------------------

    def calibrate(
        self,
        benign_holdout: list[np.ndarray],
        *,
        attack_examples: list[np.ndarray] | None = None,
        percentile: float = 1.0,
    ) -> None:
        """Calibrate the ensemble: black-box by default, white-box when
        attack examples are supplied."""
        if attack_examples:
            self.ensemble.calibrate_whitebox(benign_holdout, attack_examples)
        else:
            self.ensemble.calibrate_blackbox(benign_holdout, percentile=percentile)

    @property
    def is_calibrated(self) -> bool:
        return all(d.is_calibrated for d in self.ensemble.detectors)

    # -- the hot path --------------------------------------------------------

    def submit(self, image: np.ndarray, *, image_id: str | None = None) -> PipelineOutcome:
        """Screen one image and produce the model input per policy."""
        if not self.is_calibrated:
            raise DetectionError("pipeline is not calibrated; call calibrate() first")
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        identifier = image_id or f"image-{sequence:06d}"

        # Pure computation — outside the lock so batches parallelize.
        detection = self.ensemble.detect(image)
        quarantine_path: str | None = None
        if not detection.is_attack:
            action = "accepted"
            model_input = resize(image, self.model_input_shape, self.algorithm)
        elif self.policy is Policy.REJECT:
            action = "rejected"
            model_input = None
        elif self.policy is Policy.QUARANTINE:
            action = "quarantined"
            model_input = None
            if self.audit_log is not None and self.audit_log.quarantine_dir is not None:
                quarantine_path = self.audit_log.quarantine(identifier, image)
        else:  # Policy.SANITIZE
            from repro.defenses.reconstruction import reconstruct_image

            action = "sanitized"
            sanitized = reconstruct_image(
                image, self.model_input_shape, algorithm=self.algorithm
            )
            model_input = resize(sanitized, self.model_input_shape, self.algorithm)

        with self._lock:
            self.stats.submitted += 1
            counter = {
                "accepted": "accepted",
                "rejected": "rejected",
                "quarantined": "quarantined",
                "sanitized": "sanitized",
            }[action]
            setattr(self.stats, counter, getattr(self.stats, counter) + 1)
            if self.audit_log is not None:
                self.audit_log.append(
                    AuditRecord.from_detection(
                        identifier, sequence, detection, action, quarantine_path
                    )
                )
        return PipelineOutcome(
            image_id=identifier,
            accepted=model_input is not None,
            action=action,
            detection=detection,
            model_input=model_input,
        )

    def submit_batch(
        self,
        images: list[np.ndarray],
        *,
        prefix: str = "batch",
        max_workers: int = 1,
    ) -> list[PipelineOutcome]:
        """Screen a list of images with generated sequential ids.

        ``max_workers > 1`` screens images on a thread pool — the scoring
        math is numpy-heavy and releases the GIL, so offline curation of
        large pools scales with cores. Outcomes keep the input order.
        """
        identifiers = [f"{prefix}-{index:05d}" for index in range(len(images))]
        if max_workers <= 1 or len(images) <= 1:
            return [
                self.submit(image, image_id=identifier)
                for image, identifier in zip(images, identifiers)
            ]
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            return list(pool.map(
                lambda pair: self.submit(pair[0], image_id=pair[1]),
                zip(images, identifiers),
            ))
