"""Wire format shared by the detection server, client, and worker shards.

The service speaks raw image bytes — no multipart, no base64 — using the
library's own codecs:

* A single-image body is a PNG (``\\x89PNG...``) or binary/ASCII netpbm
  (``P2``/``P3``/``P5``/``P6``) payload, distinguished by magic bytes.
* A batch body concatenates single-image payloads with a tiny length
  prefix: ``count:uint32`` then, per image, ``length:uint32`` + payload
  (big-endian). Content type :data:`BATCH_CONTENT_TYPE`.

The same length-prefixed framing carries the dispatcher ↔ worker-shard
protocol over ``multiprocessing`` pipes (:mod:`repro.serving.workers`):

* a **job** frame is ``[kind, job_id, request_id, *image payloads]``
  (:func:`pack_job` / :func:`unpack_job`), ``kind`` one of
  :data:`JOB_KINDS`;
* a **result** frame is ``[kind, job_id, body]`` (:func:`pack_result` /
  :func:`unpack_result`), ``kind`` one of :data:`RESULT_KINDS` — a JSON
  verdict list for ``"ok"``, a JSON error descriptor for ``"err"``, and a
  JSON metrics snapshot for heartbeats (``"hb"``).

All sides import from here so the framing cannot drift apart, and every
malformed frame raises :class:`~repro.errors.CodecError` — truncation,
trailing bytes, unknown kinds, or non-UTF-8 identifiers never hang or
silently mis-parse.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.errors import CodecError
from repro.imaging.png import decode_png, encode_png
from repro.imaging.ppm import decode_netpbm

__all__ = [
    "BATCH_CONTENT_TYPE",
    "IMAGE_CONTENT_TYPE",
    "METRICS_CONTENT_TYPE",
    "JOB_KINDS",
    "RESULT_KINDS",
    "decode_image_payload",
    "encode_image_payload",
    "pack_batch",
    "unpack_batch",
    "pack_job",
    "unpack_job",
    "pack_result",
    "unpack_result",
]

#: Content type of a single raw image body (the codec is sniffed anyway).
IMAGE_CONTENT_TYPE = "application/octet-stream"
#: Content type of a length-prefixed batch body.
BATCH_CONTENT_TYPE = "application/x-decamouflage-batch"
#: Prometheus text exposition format, as served by ``GET /metrics``.
METRICS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PNG_SIGNATURE = b"\x89PNG\r\n\x1a\n"
_NETPBM_MAGICS = (b"P2", b"P3", b"P5", b"P6")


def decode_image_payload(data: bytes, *, origin: str = "<body>") -> np.ndarray:
    """Decode one raw image body, sniffing PNG vs netpbm by magic bytes."""
    if not data:
        raise CodecError(f"{origin}: empty image body")
    if data.startswith(_PNG_SIGNATURE):
        return decode_png(data, origin=origin)
    if data[:2] in _NETPBM_MAGICS:
        return decode_netpbm(data, origin=origin)
    raise CodecError(
        f"{origin}: body is neither PNG nor netpbm (magic {data[:8]!r})"
    )


def encode_image_payload(image: np.ndarray) -> bytes:
    """Encode one image for the wire (PNG: compact and lossless)."""
    return encode_png(image)


def pack_batch(payloads: list[bytes]) -> bytes:
    """Frame already-encoded image payloads as one batch body."""
    parts = [struct.pack(">I", len(payloads))]
    for payload in payloads:
        parts.append(struct.pack(">I", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def unpack_batch(data: bytes, *, origin: str = "<body>") -> list[bytes]:
    """Split a batch body back into per-image payloads."""
    if len(data) < 4:
        raise CodecError(f"{origin}: truncated batch header")
    (count,) = struct.unpack_from(">I", data, 0)
    offset = 4
    payloads: list[bytes] = []
    for index in range(count):
        if offset + 4 > len(data):
            raise CodecError(f"{origin}: truncated length prefix for image {index}")
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4
        if offset + length > len(data):
            raise CodecError(f"{origin}: truncated payload for image {index}")
        payloads.append(data[offset : offset + length])
        offset += length
    if offset != len(data):
        raise CodecError(f"{origin}: {len(data) - offset} trailing bytes after batch")
    return payloads


#: Job kinds a dispatcher may send to a worker shard. ``"slot"`` is the
#: shared-memory indirection: its single payload is a slot ref
#: (:func:`repro.serving.shm.encode_slot_ref`) naming the ring slot that
#: holds the real job frame.
JOB_KINDS = ("single", "batch", "stop", "slot")
#: Result kinds a worker shard may send back; ``"slot"`` mirrors the job
#: side — the body is a slot ref into the shard's result ring.
RESULT_KINDS = ("ok", "err", "hb", "slot")


def _decode_field(raw: bytes, *, origin: str, what: str) -> str:
    try:
        return raw.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CodecError(f"{origin}: {what} is not valid UTF-8") from exc


def pack_job(kind: str, job_id: str, request_id: str, payloads: list[bytes]) -> bytes:
    """Frame one dispatcher→worker job on top of :func:`pack_batch`."""
    if kind not in JOB_KINDS:
        raise CodecError(f"unknown job kind {kind!r}")
    return pack_batch(
        [kind.encode("utf-8"), job_id.encode("utf-8"), request_id.encode("utf-8"), *payloads]
    )


def unpack_job(data: bytes, *, origin: str = "<job>") -> tuple[str, str, str, list[bytes]]:
    """Split a job frame into ``(kind, job_id, request_id, payloads)``."""
    frames = unpack_batch(data, origin=origin)
    if len(frames) < 3:
        raise CodecError(f"{origin}: job frame has {len(frames)} fields, need >= 3")
    kind = _decode_field(frames[0], origin=origin, what="job kind")
    if kind not in JOB_KINDS:
        raise CodecError(f"{origin}: unknown job kind {kind!r}")
    job_id = _decode_field(frames[1], origin=origin, what="job id")
    request_id = _decode_field(frames[2], origin=origin, what="request id")
    return kind, job_id, request_id, frames[3:]


def pack_result(kind: str, job_id: str, body: bytes) -> bytes:
    """Frame one worker→dispatcher result on top of :func:`pack_batch`."""
    if kind not in RESULT_KINDS:
        raise CodecError(f"unknown result kind {kind!r}")
    return pack_batch([kind.encode("utf-8"), job_id.encode("utf-8"), body])


def unpack_result(data: bytes, *, origin: str = "<result>") -> tuple[str, str, bytes]:
    """Split a result frame into ``(kind, job_id, body)``."""
    frames = unpack_batch(data, origin=origin)
    if len(frames) != 3:
        raise CodecError(f"{origin}: result frame has {len(frames)} fields, need 3")
    kind = _decode_field(frames[0], origin=origin, what="result kind")
    if kind not in RESULT_KINDS:
        raise CodecError(f"{origin}: unknown result kind {kind!r}")
    job_id = _decode_field(frames[1], origin=origin, what="job id")
    return kind, job_id, frames[2]
