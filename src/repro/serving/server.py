"""Stdlib-only HTTP detection service around a :class:`ProtectedPipeline`.

The paper positions Decamouflage as an online defense sitting in front of
a model's resize step; this module puts that defense on the network with
nothing beyond ``http.server``:

* ``POST /v1/detect`` — raw PNG/netpbm body in, JSON verdict out
  (per-detector scores, thresholds, the pipeline action).
* ``POST /v1/detect/batch`` — length-prefixed batch body
  (:func:`repro.serving.wire.pack_batch`), JSON list of verdicts.
* ``GET /healthz`` — readiness: calibrated pipeline, not draining, and the
  admission queue below saturation.
* ``GET /metrics`` — Prometheus text exposition rendered from the
  pipeline's :class:`~repro.observability.Metrics`, including the
  operator-cache and shared-analysis memo hit rates.

Every detect request passes through a bounded admission queue: up to
``max_active`` requests score concurrently, up to ``queue_depth`` more may
wait, and each waiter carries a deadline. A full queue answers ``429``
with ``Retry-After``; a deadline overrun answers ``503``. SIGTERM (or
:meth:`DetectionServer.shutdown`) drains gracefully — the listener stops
accepting, in-flight requests finish, and the audit log is flushed, so an
accepted request is never dropped.

Every request carries an ``X-Request-Id`` (client-provided or generated)
that is echoed in the response, used as the pipeline ``image_id`` (and so
threaded into audit records), and printed on the server's log lines.

Usage::

    pipeline = ProtectedPipeline((32, 32))
    pipeline.calibrate(benign_holdout)
    server = DetectionServer(pipeline, ServerConfig(port=0))
    server.start()                       # background thread
    host, port = server.address
    ...
    server.shutdown()                    # graceful drain
"""

from __future__ import annotations

import json
import os
import signal
import sys
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import CodecError, DetectionError, ImageError, ReproError
from repro.imaging.plans import geometry_cache_stats, plan_cache_stats
from repro.imaging.scaling import operator_cache_stats
from repro.observability import Metrics, render_process_metrics, render_prometheus
from repro.serving.audit import AuditRecord
from repro.serving.eventloop import EventLoopFrontend
from repro.serving.pipeline import ProtectedPipeline, verdict_payload
from repro.serving.wire import (
    METRICS_CONTENT_TYPE,
    decode_image_payload,
    unpack_batch,
)
from repro.serving.workers import WorkerPool, WorkerPoolConfig, WorkerSpec

__all__ = ["ServerConfig", "DetectionServer", "AdmissionQueue", "WireResponse"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for :class:`DetectionServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read the real one from ``server.address``.
    port: int = 8080
    #: Requests scoring concurrently; the rest wait in the admission queue.
    max_active: int = 4
    #: Waiting-room capacity. A full room answers 429 + Retry-After.
    queue_depth: int = 16
    #: Per-request admission deadline; overruns answer 503.
    deadline_ms: float = 2000.0
    #: Advisory client back-off on 429/503, seconds.
    retry_after_s: float = 1.0
    #: Largest accepted request body; beyond it answers 413.
    max_body_bytes: int = 64 * 1024 * 1024
    #: Socket timeout per connection, seconds (kills idle keep-alives so a
    #: drain cannot hang on a silent client).
    socket_timeout_s: float = 10.0
    #: Connection front end: ``"eventloop"`` (default) holds every
    #: connection on one ``selectors`` thread and dispatches complete
    #: requests to a bounded pool; ``"threaded"`` is the classic
    #: thread-per-connection ``ThreadingHTTPServer``. Responses are
    #: byte-identical between the two.
    frontend: str = "eventloop"
    #: Print one log line per request to stderr.
    verbose: bool = False
    #: Scoring shard processes (:mod:`repro.serving.workers`); 0 keeps the
    #: in-process scoring path exactly as before.
    workers: int = 0
    #: Shard lifecycle knobs, forwarded to :class:`WorkerPoolConfig`.
    worker_heartbeat_interval_s: float = 0.25
    worker_liveness_timeout_s: float = 10.0
    worker_job_timeout_s: float = 30.0
    worker_restart_backoff_base_s: float = 0.1
    worker_restart_backoff_max_s: float = 5.0
    #: Dispatcher ↔ shard frame transport: ``"shm"`` (default) carries
    #: frames through per-shard shared-memory slot rings with the pipe as
    #: doorbell; ``"pipe"`` pickles every frame through the pipe.
    transport: str = "shm"
    #: Slots per shared-memory ring (per shard, per direction).
    ring_slots: int = 8
    #: Payload capacity of one ring slot; larger frames ride the pipe.
    ring_slot_bytes: int = 1 << 20
    #: Test-only fault seam (see :attr:`WorkerPoolConfig.fault_spec`).
    fault_injection: str | None = None


@dataclass(frozen=True)
class WireResponse:
    """One HTTP response, fully decided by the request core.

    Front ends only serialize: the threaded handler replays ``headers`` in
    order through ``send_header``, the event loop renders the identical
    bytes itself (:func:`repro.serving.eventloop.serialize_response`), so
    parity between them is structural, not coincidental. ``close`` asks
    the front end to drop the connection after the write — set while
    draining and on body-framing errors (411/413/bad Content-Length),
    where unread body bytes would desync a keep-alive stream.
    """

    status: int
    headers: tuple[tuple[str, str], ...]
    body: bytes
    close: bool = False


class _Saturated(ReproError):
    """Admission queue waiting room is full."""


class _DeadlineExceeded(ReproError):
    """A request waited past its admission deadline."""


class AdmissionQueue:
    """Bounded two-stage admission control: active slots + waiting room.

    ``acquire`` either takes an active slot immediately, waits (bounded by
    the deadline) in the waiting room, or fails fast when the room is
    full. The current occupancy is mirrored into the ``server.in_flight``
    and ``server.queue_depth`` gauges on every transition.
    """

    def __init__(self, max_active: int, queue_depth: int, metrics: Metrics) -> None:
        if max_active < 1:
            raise ReproError(f"max_active must be >= 1, got {max_active}")
        if queue_depth < 0:
            raise ReproError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_active = max_active
        self.queue_depth = queue_depth
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._in_flight_gauge = metrics.gauge("server.in_flight")
        self._queue_gauge = metrics.gauge("server.queue_depth")

    @property
    def waiting(self) -> int:
        return self._waiting

    def acquire(self, deadline_s: float) -> None:
        deadline = time.monotonic() + deadline_s
        with self._cond:
            if self._active >= self.max_active:
                if self._waiting >= self.queue_depth:
                    raise _Saturated(
                        f"admission queue full ({self._waiting} waiting)"
                    )
                self._waiting += 1
                self._queue_gauge.set(self._waiting)
                try:
                    while self._active >= self.max_active:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise _DeadlineExceeded(
                                f"gave up after {deadline_s * 1000:.0f} ms in queue"
                            )
                        self._cond.wait(remaining)
                finally:
                    self._waiting -= 1
                    self._queue_gauge.set(self._waiting)
            self._active += 1
            self._in_flight_gauge.set(self._active)

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self._in_flight_gauge.set(self._active)
            self._cond.notify()

    def quiesced(self) -> bool:
        with self._cond:
            return self._active == 0 and self._waiting == 0


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection, thread-per-connection style.

    A thin serializer: every routing, admission, scoring, and error-mapping
    decision lives in :meth:`DetectionServer.handle_http_request`, shared
    with the event-loop front end; this class only replays the resulting
    :class:`WireResponse` through ``send_response``/``send_header``.
    """

    protocol_version = "HTTP/1.1"
    server_version = "decamouflage"

    @property
    def _detection(self) -> "DetectionServer":
        return self.server.detection_server  # type: ignore[attr-defined]

    def setup(self) -> None:
        self.timeout = self._detection.config.socket_timeout_s
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self._detection.config.verbose:
            super().log_message(format, *args)

    def _emit(self, response: WireResponse) -> None:
        self.send_response(response.status)
        for name, value in response.headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(response.body)
        if response.close:
            self.close_connection = True

    def _handle(self, method: str) -> None:
        self._emit(
            self._detection.handle_http_request(
                method,
                self.path,
                self.headers,
                lambda length: self.rfile.read(length),
                requestline=self.requestline,
            )
        )

    def do_GET(self) -> None:
        self._handle("GET")

    def do_POST(self) -> None:
        self._handle("POST")


class DetectionServer:
    """The detection service: a connection front end plus lifecycle.

    The front end is pluggable (``config.frontend``): ``"eventloop"`` runs
    one :class:`~repro.serving.eventloop.EventLoopFrontend` selector
    thread; ``"threaded"`` keeps the classic ``ThreadingHTTPServer``. Both
    feed :meth:`handle_http_request`, the shared request core, so their
    responses are byte-identical.
    """

    def __init__(
        self, pipeline: ProtectedPipeline, config: ServerConfig | None = None
    ) -> None:
        self.pipeline = pipeline
        self.config = config or ServerConfig()
        if self.config.frontend not in ("threaded", "eventloop"):
            raise ReproError(
                f"unknown frontend {self.config.frontend!r}; "
                "expected 'threaded' or 'eventloop'"
            )
        self.metrics = pipeline.metrics
        self.admission = AdmissionQueue(
            self.config.max_active, self.config.queue_depth, self.metrics
        )
        self.draining = False
        self._httpd: ThreadingHTTPServer | None = None
        self._frontend: EventLoopFrontend | None = None
        if self.config.frontend == "threaded":
            self._httpd = ThreadingHTTPServer(
                (self.config.host, self.config.port), _Handler
            )
            # Handler threads are joined on server_close() so a drain
            # really waits for every in-flight request.
            self._httpd.daemon_threads = False
            self._httpd.block_on_close = True
            self._httpd.detection_server = self  # type: ignore[attr-defined]
        else:
            self._frontend = EventLoopFrontend(self)
        self._serve_thread: threading.Thread | None = None
        self._shutdown_lock = threading.Lock()
        self._closed = False
        self._pool: WorkerPool | None = None

    # -- request core (shared by both front ends) ----------------------------

    def handle_http_request(
        self, method: str, path: str, headers, read_body, *, requestline: str = ""
    ) -> WireResponse:
        """Decide one request end-to-end: routing, admission, scoring,
        error mapping, counters, and logging.

        ``headers`` is any mapping with ``.get`` (an ``email.message``
        object from either front end); ``read_body(length)`` returns the
        request body and is only called after the Content-Length checks
        pass, so the threaded front end can read lazily from its socket
        while the event loop hands over bytes it already buffered.
        """
        request_id = (headers.get("X-Request-Id") or "").strip() or uuid.uuid4().hex[:12]
        if method == "GET":
            return self._handle_get(path, request_id, requestline)
        return self._handle_post(path, headers, read_body, request_id, requestline)

    def _handle_get(self, path: str, request_id: str, requestline: str) -> WireResponse:
        if path == "/healthz":
            payload = self.health()
            status = 200 if payload["ready"] else 503
            return self._json_response(status, payload, request_id=request_id)
        if path == "/metrics":
            return self._wire_response(
                200,
                self.render_metrics().encode("utf-8"),
                content_type=METRICS_CONTENT_TYPE,
                request_id=request_id,
            )
        return self._error_response(404, f"unknown path {path}", request_id, requestline)

    def _handle_post(
        self, path: str, headers, read_body, request_id: str, requestline: str
    ) -> WireResponse:
        if path not in ("/v1/detect", "/v1/detect/batch"):
            return self._error_response(
                404, f"unknown path {path}", request_id, requestline
            )
        self.metrics.counter("server.requests").add(1)
        if self.draining:
            return self._error_response(
                503,
                "server is draining",
                request_id,
                requestline,
                retry_after_s=self.config.retry_after_s,
            )
        # Body-framing refusals close the connection: the unread body bytes
        # would be parsed as the next request on a reused stream.
        raw_length = headers.get("Content-Length")
        if raw_length is None:
            return self._error_response(
                411, "Content-Length required", request_id, requestline, close=True
            )
        try:
            length = int(raw_length)
        except ValueError:
            length = -1
        if length < 0:
            return self._error_response(
                400,
                f"invalid Content-Length {raw_length.strip()!r}",
                request_id,
                requestline,
                close=True,
            )
        if length > self.config.max_body_bytes:
            return self._error_response(
                413,
                f"body of {length} bytes exceeds limit",
                request_id,
                requestline,
                close=True,
            )
        body = read_body(length)
        try:
            self.admission.acquire(self.config.deadline_ms / 1000.0)
        except _Saturated as exc:
            return self._error_response(
                429,
                str(exc),
                request_id,
                requestline,
                retry_after_s=self.config.retry_after_s,
            )
        except _DeadlineExceeded as exc:
            return self._error_response(
                503,
                str(exc),
                request_id,
                requestline,
                retry_after_s=self.config.retry_after_s,
            )
        try:
            with self.metrics.timer("server.request"):
                if path == "/v1/detect":
                    return self._detect_single_response(body, request_id, requestline)
                return self._detect_batch_response(body, request_id, requestline)
        finally:
            self.admission.release()

    def saturated_response(self, headers, *, requestline: str = "") -> WireResponse:
        """Fail-fast 429 for the event loop's saturation short-circuit —
        the answer a dispatch-pool thread would have produced had it tried
        (and failed) to enter the full waiting room, without the thread."""
        request_id = (headers.get("X-Request-Id") or "").strip() or uuid.uuid4().hex[:12]
        self.metrics.counter("server.requests").add(1)
        if self.draining:
            return self._error_response(
                503,
                "server is draining",
                request_id,
                requestline,
                retry_after_s=self.config.retry_after_s,
            )
        return self._error_response(
            429,
            f"admission queue full ({self.admission.waiting} waiting)",
            request_id,
            requestline,
            retry_after_s=self.config.retry_after_s,
        )

    def _detect_single_response(
        self, body: bytes, request_id: str, requestline: str
    ) -> WireResponse:
        start = time.perf_counter()
        try:
            payload = self.score_single(body, request_id)
        except (CodecError, ImageError) as exc:
            return self._error_response(400, str(exc), request_id, requestline)
        except DetectionError as exc:
            return self._error_response(503, str(exc), request_id, requestline)
        payload["latency_ms"] = (time.perf_counter() - start) * 1000.0
        self._log(f'"{requestline}" 200 {payload["verdict"]} [{request_id}]')
        return self._json_response(200, payload, request_id=request_id)

    def _detect_batch_response(
        self, body: bytes, request_id: str, requestline: str
    ) -> WireResponse:
        start = time.perf_counter()
        try:
            results = self.score_batch(body, request_id)
        except (CodecError, ImageError) as exc:
            return self._error_response(400, str(exc), request_id, requestline)
        except DetectionError as exc:
            return self._error_response(503, str(exc), request_id, requestline)
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        for result in results:
            result["latency_ms"] = elapsed_ms
        self._log(f'"{requestline}" 200 batch={len(results)} [{request_id}]')
        return self._json_response(
            200, {"request_id": request_id, "results": results}, request_id=request_id
        )

    def _wire_response(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        request_id: str | None = None,
        retry_after_s: float | None = None,
        close: bool = False,
    ) -> WireResponse:
        headers = [
            ("Content-Type", content_type),
            ("Content-Length", str(len(body))),
        ]
        if request_id is not None:
            headers.append(("X-Request-Id", request_id))
        if retry_after_s is not None:
            headers.append(("Retry-After", f"{max(1, round(retry_after_s))}"))
        if self.draining:
            close = True
        if close:
            headers.append(("Connection", "close"))
        self.metrics.counter(f"server.responses.{status}").add(1)
        return WireResponse(status, tuple(headers), body, close)

    def _json_response(self, status: int, payload, **kwargs) -> WireResponse:
        return self._wire_response(
            status, json.dumps(payload).encode("utf-8"), **kwargs
        )

    def _error_response(
        self,
        status: int,
        message: str,
        request_id: str,
        requestline: str = "",
        **kwargs,
    ) -> WireResponse:
        self._log(f'"{requestline}" {status} {message} [{request_id}]')
        return self._json_response(
            status,
            {"error": message, "request_id": request_id},
            request_id=request_id,
            **kwargs,
        )

    def _log(self, line: str) -> None:
        if self.config.verbose:
            print(line, file=sys.stderr, flush=True)

    # -- scoring (in-process or sharded) -------------------------------------

    @property
    def worker_pool(self) -> WorkerPool | None:
        """The shard pool when serving with ``workers > 0``; else None."""
        return self._pool

    def score_single(self, body: bytes, request_id: str) -> dict:
        """Score one raw image body into a wire verdict dict."""
        if self._pool is not None:
            reply = self._pool.submit([body], request_id=request_id, batch=False)
            verdicts = self._record_sharded(reply)
            if len(verdicts) != 1:
                raise DetectionError(
                    f"worker returned {len(verdicts)} verdicts for a single image"
                )
            return verdicts[0]
        image = decode_image_payload(body, origin=request_id)
        outcome = self.pipeline.submit(image, image_id=request_id)
        return verdict_payload(outcome, request_id=request_id, latency_ms=0.0)

    def score_batch(self, body: bytes, request_id: str) -> list[dict]:
        """Score one batch body into a list of wire verdict dicts."""
        payloads = unpack_batch(body, origin=request_id)
        if self._pool is not None:
            reply = self._pool.submit(payloads, request_id=request_id, batch=True)
            return self._record_sharded(reply)
        images = [
            decode_image_payload(blob, origin=f"{request_id}[{index}]")
            for index, blob in enumerate(payloads)
        ]
        outcomes = self.pipeline.submit_batch(images, prefix=request_id)
        return [
            verdict_payload(outcome, request_id=request_id, latency_ms=0.0)
            for outcome in outcomes
        ]

    def _record_sharded(self, reply: dict) -> list[dict]:
        """Fold shard verdicts into the canonical pipeline accounting:
        sequence numbers, ``pipeline.stats``, and JSONL audit records all
        live here in the dispatcher, never in a shard."""
        verdicts = reply.get("verdicts")
        paths = reply.get("quarantine_paths")
        if not isinstance(verdicts, list):
            raise DetectionError("worker reply is missing its verdict list")
        if not isinstance(paths, list) or len(paths) != len(verdicts):
            paths = [None] * len(verdicts)
        records = []
        try:
            for verdict, path in zip(verdicts, paths):
                sequence = self.pipeline.record_remote_outcome(verdict["action"])
                if self.pipeline.audit_log is not None:
                    records.append(
                        AuditRecord(
                            image_id=verdict["image_id"],
                            sequence=sequence,
                            verdict=verdict["verdict"],
                            action=verdict["action"],
                            votes_for_attack=verdict["votes_for_attack"],
                            votes_total=verdict["votes_total"],
                            scores=verdict["scores"],
                            thresholds=verdict["thresholds"],
                            quarantine_path=path,
                        )
                    )
        except (KeyError, TypeError) as exc:
            raise DetectionError(f"worker returned a malformed verdict: {exc}") from exc
        if records:
            with self.metrics.timer("pipeline.audit"):
                for record in records:
                    self.pipeline.audit_log.append(record)
        return verdicts

    # -- introspection -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` — the real port even when configured as 0."""
        if self._frontend is not None:
            return self._frontend.address
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def health(self) -> dict:
        saturated = self.admission.waiting >= self.config.queue_depth
        calibrated = self.pipeline.is_calibrated
        payload = {
            "ready": calibrated and not self.draining and not saturated,
            "calibrated": calibrated,
            "draining": self.draining,
            "queue_saturated": saturated,
            # The dispatcher's own pid, so external tooling (the load lab's
            # resource sampler) can watch /proc/<pid> without guessing.
            "pid": os.getpid(),
        }
        pool = self._pool
        if pool is not None:
            healthy = pool.healthy_count
            payload["workers"] = {
                "configured": self.config.workers,
                "healthy": healthy,
                "pids": pool.pids(),
            }
            # No shard can answer -> not ready, even though the HTTP
            # listener itself is fine.
            payload["ready"] = payload["ready"] and healthy > 0
        return payload

    def render_metrics(self) -> str:
        """Prometheus text for ``GET /metrics``: the pipeline registry plus
        point-in-time pipeline action counts, the operator/plan/geometry
        cache stats, and — when sharded — per-worker families labeled by
        ``worker_id``."""
        stats = self.pipeline.stats
        extra = {
            f"pipeline.{name}": float(getattr(stats, name))
            for name in ("submitted", "accepted", "rejected", "quarantined", "sanitized")
        }
        caches = {
            "operator_cache": operator_cache_stats(),
            "plan_cache": plan_cache_stats(),
            "spectrum_geometry": geometry_cache_stats(),
        }
        for family, cache_stats in caches.items():
            for key, value in cache_stats.items():
                extra[f"{family}.{key}"] = float(value)
        labeled = self._pool.labeled_families() if self._pool is not None else {}
        body = render_prometheus(
            self.metrics,
            extra_gauges=extra,
            labeled_gauges=labeled.get("gauges"),
            labeled_counters=labeled.get("counters"),
        )
        # Standard (unprefixed) process self-metrics for the dispatcher:
        # process_cpu_seconds_total, process_resident_memory_bytes,
        # process_open_fds. Empty off-Linux.
        return body + render_process_metrics()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Serve on a background thread (tests, embedding); returns at once.

        Guarded by the shutdown lock: ``start`` and ``shutdown`` race on
        ``_serve_thread``, and starting after a drain would leak a thread
        spinning on a closed socket.
        """
        with self._shutdown_lock:
            if self._closed:
                raise ReproError("server is closed; create a new DetectionServer")
            self._ensure_workers_locked()
            if self._frontend is not None:
                self._frontend.start()
                return
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever, name="detection-server", daemon=True
            )
            self._serve_thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        with self._shutdown_lock:
            if self._closed:
                raise ReproError("server is closed; create a new DetectionServer")
            self._ensure_workers_locked()
        if self._frontend is not None:
            self._frontend.serve_forever()
            return
        self._httpd.serve_forever()

    def ensure_workers(self) -> None:
        """Spawn the shard pool now (idempotent; normally lazy at serve).

        Lets a caller learn the worker pids before the accept loop starts —
        the CLI prints them so an operator (or the CI smoke test) can
        observe crash recovery from outside.
        """
        with self._shutdown_lock:
            if self._closed:
                raise ReproError("server is closed; create a new DetectionServer")
            self._ensure_workers_locked()

    def _ensure_workers_locked(self) -> None:
        """Spawn the shard pool on first serve (caller holds the lock).

        Lazy so construction order stays flexible: the pipeline must be
        calibrated by the time the server starts serving — the shard spec
        snapshots the calibrated detectors — not when the server object is
        created.
        """
        if self.config.workers <= 0 or self._pool is not None:
            return
        spec = WorkerSpec.from_pipeline(self.pipeline)
        pool_config = WorkerPoolConfig(
            workers=self.config.workers,
            heartbeat_interval_s=self.config.worker_heartbeat_interval_s,
            liveness_timeout_s=self.config.worker_liveness_timeout_s,
            job_timeout_s=self.config.worker_job_timeout_s,
            restart_backoff_base_s=self.config.worker_restart_backoff_base_s,
            restart_backoff_max_s=self.config.worker_restart_backoff_max_s,
            transport=self.config.transport,
            ring_slots=self.config.ring_slots,
            ring_slot_bytes=self.config.ring_slot_bytes,
            fault_spec=self.config.fault_injection,
        )
        self._pool = WorkerPool(spec, pool_config, metrics=self.metrics)
        self._pool.start()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _drain(signum, frame) -> None:  # pragma: no cover - signal path
            threading.Thread(
                target=self.shutdown, name="detection-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)

    def shutdown(self) -> None:  # analyze: ignore[io-under-lock]
        """Graceful drain: stop accepting, finish in-flight, flush audit.

        Idempotent and safe to call from any thread except a handler
        thread (it joins them). Joining and flushing *while holding* the
        shutdown lock is the point — concurrent shutdown() calls must not
        return before the drain completes — hence the analyzer suppression.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self.draining = True
            if self._frontend is not None:
                # The loop stops accepting, finishes writing every
                # in-flight response (bounded by the drain deadline), and
                # only then releases its dispatch pool.
                self._frontend.stop()
            else:
                # Stop the accept loop, then join every handler thread
                # (block_on_close) so in-flight requests complete before
                # the audit log is flushed.
                self._httpd.shutdown()
                self._httpd.server_close()
                if self._serve_thread is not None:
                    self._serve_thread.join(timeout=self.config.socket_timeout_s)
            # The front end is drained, so no job is in flight: stop the
            # shards before the final audit flush.
            if self._pool is not None:
                self._pool.shutdown()
            if self.pipeline.audit_log is not None:
                self.pipeline.audit_log.flush()
            self._closed = True
