"""Stdlib-only HTTP detection service around a :class:`ProtectedPipeline`.

The paper positions Decamouflage as an online defense sitting in front of
a model's resize step; this module puts that defense on the network with
nothing beyond ``http.server``:

* ``POST /v1/detect`` — raw PNG/netpbm body in, JSON verdict out
  (per-detector scores, thresholds, the pipeline action).
* ``POST /v1/detect/batch`` — length-prefixed batch body
  (:func:`repro.serving.wire.pack_batch`), JSON list of verdicts.
* ``GET /healthz`` — readiness: calibrated pipeline, not draining, and the
  admission queue below saturation.
* ``GET /metrics`` — Prometheus text exposition rendered from the
  pipeline's :class:`~repro.observability.Metrics`, including the
  operator-cache and shared-analysis memo hit rates.

Every detect request passes through a bounded admission queue: up to
``max_active`` requests score concurrently, up to ``queue_depth`` more may
wait, and each waiter carries a deadline. A full queue answers ``429``
with ``Retry-After``; a deadline overrun answers ``503``. SIGTERM (or
:meth:`DetectionServer.shutdown`) drains gracefully — the listener stops
accepting, in-flight requests finish, and the audit log is flushed, so an
accepted request is never dropped.

Every request carries an ``X-Request-Id`` (client-provided or generated)
that is echoed in the response, used as the pipeline ``image_id`` (and so
threaded into audit records), and printed on the server's log lines.

Usage::

    pipeline = ProtectedPipeline((32, 32))
    pipeline.calibrate(benign_holdout)
    server = DetectionServer(pipeline, ServerConfig(port=0))
    server.start()                       # background thread
    host, port = server.address
    ...
    server.shutdown()                    # graceful drain
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
import uuid
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.errors import CodecError, DetectionError, ImageError, ReproError
from repro.imaging.plans import geometry_cache_stats, plan_cache_stats
from repro.imaging.scaling import operator_cache_stats
from repro.observability import Metrics, render_process_metrics, render_prometheus
from repro.serving.audit import AuditRecord
from repro.serving.pipeline import ProtectedPipeline, verdict_payload
from repro.serving.wire import (
    METRICS_CONTENT_TYPE,
    decode_image_payload,
    unpack_batch,
)
from repro.serving.workers import WorkerPool, WorkerPoolConfig, WorkerSpec

__all__ = ["ServerConfig", "DetectionServer", "AdmissionQueue"]


@dataclass(frozen=True)
class ServerConfig:
    """Tunables for :class:`DetectionServer`."""

    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port; read the real one from ``server.address``.
    port: int = 8080
    #: Requests scoring concurrently; the rest wait in the admission queue.
    max_active: int = 4
    #: Waiting-room capacity. A full room answers 429 + Retry-After.
    queue_depth: int = 16
    #: Per-request admission deadline; overruns answer 503.
    deadline_ms: float = 2000.0
    #: Advisory client back-off on 429/503, seconds.
    retry_after_s: float = 1.0
    #: Largest accepted request body; beyond it answers 413.
    max_body_bytes: int = 64 * 1024 * 1024
    #: Socket timeout per connection, seconds (kills idle keep-alives so a
    #: drain cannot hang on a silent client).
    socket_timeout_s: float = 10.0
    #: Print one log line per request to stderr.
    verbose: bool = False
    #: Scoring shard processes (:mod:`repro.serving.workers`); 0 keeps the
    #: in-process scoring path exactly as before.
    workers: int = 0
    #: Shard lifecycle knobs, forwarded to :class:`WorkerPoolConfig`.
    worker_heartbeat_interval_s: float = 0.25
    worker_liveness_timeout_s: float = 10.0
    worker_job_timeout_s: float = 30.0
    worker_restart_backoff_base_s: float = 0.1
    worker_restart_backoff_max_s: float = 5.0
    #: Test-only fault seam (see :attr:`WorkerPoolConfig.fault_spec`).
    fault_injection: str | None = None


class _Saturated(ReproError):
    """Admission queue waiting room is full."""


class _DeadlineExceeded(ReproError):
    """A request waited past its admission deadline."""


class AdmissionQueue:
    """Bounded two-stage admission control: active slots + waiting room.

    ``acquire`` either takes an active slot immediately, waits (bounded by
    the deadline) in the waiting room, or fails fast when the room is
    full. The current occupancy is mirrored into the ``server.in_flight``
    and ``server.queue_depth`` gauges on every transition.
    """

    def __init__(self, max_active: int, queue_depth: int, metrics: Metrics) -> None:
        if max_active < 1:
            raise ReproError(f"max_active must be >= 1, got {max_active}")
        if queue_depth < 0:
            raise ReproError(f"queue_depth must be >= 0, got {queue_depth}")
        self.max_active = max_active
        self.queue_depth = queue_depth
        self._cond = threading.Condition()
        self._active = 0
        self._waiting = 0
        self._in_flight_gauge = metrics.gauge("server.in_flight")
        self._queue_gauge = metrics.gauge("server.queue_depth")

    @property
    def waiting(self) -> int:
        return self._waiting

    def acquire(self, deadline_s: float) -> None:
        deadline = time.monotonic() + deadline_s
        with self._cond:
            if self._active >= self.max_active:
                if self._waiting >= self.queue_depth:
                    raise _Saturated(
                        f"admission queue full ({self._waiting} waiting)"
                    )
                self._waiting += 1
                self._queue_gauge.set(self._waiting)
                try:
                    while self._active >= self.max_active:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise _DeadlineExceeded(
                                f"gave up after {deadline_s * 1000:.0f} ms in queue"
                            )
                        self._cond.wait(remaining)
                finally:
                    self._waiting -= 1
                    self._queue_gauge.set(self._waiting)
            self._active += 1
            self._in_flight_gauge.set(self._active)

    def release(self) -> None:
        with self._cond:
            self._active -= 1
            self._in_flight_gauge.set(self._active)
            self._cond.notify()

    def quiesced(self) -> bool:
        with self._cond:
            return self._active == 0 and self._waiting == 0


class _Handler(BaseHTTPRequestHandler):
    """One HTTP connection; the server object hangs off ``self.server``."""

    protocol_version = "HTTP/1.1"
    server_version = "decamouflage"

    # -- plumbing ------------------------------------------------------------

    @property
    def _detection(self) -> "DetectionServer":
        return self.server.detection_server  # type: ignore[attr-defined]

    def setup(self) -> None:
        self.timeout = self._detection.config.socket_timeout_s
        super().setup()

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self._detection.config.verbose:
            super().log_message(format, *args)

    def _request_id(self) -> str:
        supplied = self.headers.get("X-Request-Id", "").strip()
        return supplied or uuid.uuid4().hex[:12]

    def _send(
        self,
        status: int,
        body: bytes,
        *,
        content_type: str = "application/json",
        request_id: str | None = None,
        retry_after_s: float | None = None,
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        if request_id is not None:
            self.send_header("X-Request-Id", request_id)
        if retry_after_s is not None:
            self.send_header("Retry-After", f"{max(1, round(retry_after_s))}")
        if self._detection.draining:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)
        self._detection.metrics.counter(f"server.responses.{status}").add(1)

    def _send_json(self, status: int, payload: dict | list, **kwargs) -> None:
        self._send(status, json.dumps(payload).encode("utf-8"), **kwargs)

    def _send_error_json(
        self, status: int, message: str, request_id: str, **kwargs
    ) -> None:
        self.log_message('"%s" %d %s [%s]', self.requestline, status, message, request_id)
        self._send_json(
            status,
            {"error": message, "request_id": request_id},
            request_id=request_id,
            **kwargs,
        )

    def _read_body(self, request_id: str) -> bytes | None:
        """Read the request body; answers 411/413 itself and returns None."""
        length = self.headers.get("Content-Length")
        if length is None:
            self._send_error_json(411, "Content-Length required", request_id)
            return None
        length = int(length)
        if length > self._detection.config.max_body_bytes:
            self._send_error_json(
                413, f"body of {length} bytes exceeds limit", request_id
            )
            return None
        return self.rfile.read(length)

    # -- GET: health + metrics ----------------------------------------------

    def do_GET(self) -> None:
        server = self._detection
        request_id = self._request_id()
        if self.path == "/healthz":
            payload = server.health()
            status = 200 if payload["ready"] else 503
            self._send_json(status, payload, request_id=request_id)
        elif self.path == "/metrics":
            body = server.render_metrics().encode("utf-8")
            self._send(
                200, body, content_type=METRICS_CONTENT_TYPE, request_id=request_id
            )
        else:
            self._send_error_json(404, f"unknown path {self.path}", request_id)

    # -- POST: detection -----------------------------------------------------

    def do_POST(self) -> None:
        server = self._detection
        request_id = self._request_id()
        if self.path not in ("/v1/detect", "/v1/detect/batch"):
            self._send_error_json(404, f"unknown path {self.path}", request_id)
            return
        server.metrics.counter("server.requests").add(1)
        if server.draining:
            self._send_error_json(
                503,
                "server is draining",
                request_id,
                retry_after_s=server.config.retry_after_s,
            )
            return
        body = self._read_body(request_id)
        if body is None:
            return
        try:
            server.admission.acquire(server.config.deadline_ms / 1000.0)
        except _Saturated as exc:
            self._send_error_json(
                429, str(exc), request_id, retry_after_s=server.config.retry_after_s
            )
            return
        except _DeadlineExceeded as exc:
            self._send_error_json(
                503, str(exc), request_id, retry_after_s=server.config.retry_after_s
            )
            return
        try:
            with server.metrics.timer("server.request"):
                if self.path == "/v1/detect":
                    self._detect_single(body, request_id)
                else:
                    self._detect_batch(body, request_id)
        finally:
            server.admission.release()

    def _detect_single(self, body: bytes, request_id: str) -> None:
        server = self._detection
        start = time.perf_counter()
        try:
            payload = server.score_single(body, request_id)
        except (CodecError, ImageError) as exc:
            self._send_error_json(400, str(exc), request_id)
            return
        except DetectionError as exc:
            self._send_error_json(503, str(exc), request_id)
            return
        payload["latency_ms"] = (time.perf_counter() - start) * 1000.0
        self.log_message(
            '"%s" 200 %s [%s]', self.requestline, payload["verdict"], request_id
        )
        self._send_json(200, payload, request_id=request_id)

    def _detect_batch(self, body: bytes, request_id: str) -> None:
        server = self._detection
        start = time.perf_counter()
        try:
            results = server.score_batch(body, request_id)
        except (CodecError, ImageError) as exc:
            self._send_error_json(400, str(exc), request_id)
            return
        except DetectionError as exc:
            self._send_error_json(503, str(exc), request_id)
            return
        elapsed_ms = (time.perf_counter() - start) * 1000.0
        for result in results:
            result["latency_ms"] = elapsed_ms
        self.log_message(
            '"%s" 200 batch=%d [%s]', self.requestline, len(results), request_id
        )
        self._send_json(
            200, {"request_id": request_id, "results": results}, request_id=request_id
        )


class DetectionServer:
    """The detection service: a ThreadingHTTPServer plus lifecycle."""

    def __init__(
        self, pipeline: ProtectedPipeline, config: ServerConfig | None = None
    ) -> None:
        self.pipeline = pipeline
        self.config = config or ServerConfig()
        self.metrics = pipeline.metrics
        self.admission = AdmissionQueue(
            self.config.max_active, self.config.queue_depth, self.metrics
        )
        self.draining = False
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        # Handler threads are joined on server_close() so a drain really
        # waits for every in-flight request.
        self._httpd.daemon_threads = False
        self._httpd.block_on_close = True
        self._httpd.detection_server = self  # type: ignore[attr-defined]
        self._serve_thread: threading.Thread | None = None
        self._shutdown_lock = threading.Lock()
        self._closed = False
        self._pool: WorkerPool | None = None

    # -- scoring (in-process or sharded) -------------------------------------

    @property
    def worker_pool(self) -> WorkerPool | None:
        """The shard pool when serving with ``workers > 0``; else None."""
        return self._pool

    def score_single(self, body: bytes, request_id: str) -> dict:
        """Score one raw image body into a wire verdict dict."""
        if self._pool is not None:
            reply = self._pool.submit([body], request_id=request_id, batch=False)
            verdicts = self._record_sharded(reply)
            if len(verdicts) != 1:
                raise DetectionError(
                    f"worker returned {len(verdicts)} verdicts for a single image"
                )
            return verdicts[0]
        image = decode_image_payload(body, origin=request_id)
        outcome = self.pipeline.submit(image, image_id=request_id)
        return verdict_payload(outcome, request_id=request_id, latency_ms=0.0)

    def score_batch(self, body: bytes, request_id: str) -> list[dict]:
        """Score one batch body into a list of wire verdict dicts."""
        payloads = unpack_batch(body, origin=request_id)
        if self._pool is not None:
            reply = self._pool.submit(payloads, request_id=request_id, batch=True)
            return self._record_sharded(reply)
        images = [
            decode_image_payload(blob, origin=f"{request_id}[{index}]")
            for index, blob in enumerate(payloads)
        ]
        outcomes = self.pipeline.submit_batch(images, prefix=request_id)
        return [
            verdict_payload(outcome, request_id=request_id, latency_ms=0.0)
            for outcome in outcomes
        ]

    def _record_sharded(self, reply: dict) -> list[dict]:
        """Fold shard verdicts into the canonical pipeline accounting:
        sequence numbers, ``pipeline.stats``, and JSONL audit records all
        live here in the dispatcher, never in a shard."""
        verdicts = reply.get("verdicts")
        paths = reply.get("quarantine_paths")
        if not isinstance(verdicts, list):
            raise DetectionError("worker reply is missing its verdict list")
        if not isinstance(paths, list) or len(paths) != len(verdicts):
            paths = [None] * len(verdicts)
        records = []
        try:
            for verdict, path in zip(verdicts, paths):
                sequence = self.pipeline.record_remote_outcome(verdict["action"])
                if self.pipeline.audit_log is not None:
                    records.append(
                        AuditRecord(
                            image_id=verdict["image_id"],
                            sequence=sequence,
                            verdict=verdict["verdict"],
                            action=verdict["action"],
                            votes_for_attack=verdict["votes_for_attack"],
                            votes_total=verdict["votes_total"],
                            scores=verdict["scores"],
                            thresholds=verdict["thresholds"],
                            quarantine_path=path,
                        )
                    )
        except (KeyError, TypeError) as exc:
            raise DetectionError(f"worker returned a malformed verdict: {exc}") from exc
        if records:
            with self.metrics.timer("pipeline.audit"):
                for record in records:
                    self.pipeline.audit_log.append(record)
        return verdicts

    # -- introspection -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """Bound ``(host, port)`` — the real port even when configured as 0."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def health(self) -> dict:
        saturated = self.admission.waiting >= self.config.queue_depth
        calibrated = self.pipeline.is_calibrated
        payload = {
            "ready": calibrated and not self.draining and not saturated,
            "calibrated": calibrated,
            "draining": self.draining,
            "queue_saturated": saturated,
            # The dispatcher's own pid, so external tooling (the load lab's
            # resource sampler) can watch /proc/<pid> without guessing.
            "pid": os.getpid(),
        }
        pool = self._pool
        if pool is not None:
            healthy = pool.healthy_count
            payload["workers"] = {
                "configured": self.config.workers,
                "healthy": healthy,
                "pids": pool.pids(),
            }
            # No shard can answer -> not ready, even though the HTTP
            # listener itself is fine.
            payload["ready"] = payload["ready"] and healthy > 0
        return payload

    def render_metrics(self) -> str:
        """Prometheus text for ``GET /metrics``: the pipeline registry plus
        point-in-time pipeline action counts, the operator/plan/geometry
        cache stats, and — when sharded — per-worker families labeled by
        ``worker_id``."""
        stats = self.pipeline.stats
        extra = {
            f"pipeline.{name}": float(getattr(stats, name))
            for name in ("submitted", "accepted", "rejected", "quarantined", "sanitized")
        }
        caches = {
            "operator_cache": operator_cache_stats(),
            "plan_cache": plan_cache_stats(),
            "spectrum_geometry": geometry_cache_stats(),
        }
        for family, cache_stats in caches.items():
            for key, value in cache_stats.items():
                extra[f"{family}.{key}"] = float(value)
        labeled = self._pool.labeled_families() if self._pool is not None else {}
        body = render_prometheus(
            self.metrics,
            extra_gauges=extra,
            labeled_gauges=labeled.get("gauges"),
            labeled_counters=labeled.get("counters"),
        )
        # Standard (unprefixed) process self-metrics for the dispatcher:
        # process_cpu_seconds_total, process_resident_memory_bytes,
        # process_open_fds. Empty off-Linux.
        return body + render_process_metrics()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Serve on a background thread (tests, embedding); returns at once.

        Guarded by the shutdown lock: ``start`` and ``shutdown`` race on
        ``_serve_thread``, and starting after a drain would leak a thread
        spinning on a closed socket.
        """
        with self._shutdown_lock:
            if self._closed:
                raise ReproError("server is closed; create a new DetectionServer")
            self._ensure_workers_locked()
            self._serve_thread = threading.Thread(
                target=self._httpd.serve_forever, name="detection-server", daemon=True
            )
            self._serve_thread.start()

    def serve_forever(self) -> None:
        """Serve on the calling thread until :meth:`shutdown`."""
        with self._shutdown_lock:
            if self._closed:
                raise ReproError("server is closed; create a new DetectionServer")
            self._ensure_workers_locked()
        self._httpd.serve_forever()

    def ensure_workers(self) -> None:
        """Spawn the shard pool now (idempotent; normally lazy at serve).

        Lets a caller learn the worker pids before the accept loop starts —
        the CLI prints them so an operator (or the CI smoke test) can
        observe crash recovery from outside.
        """
        with self._shutdown_lock:
            if self._closed:
                raise ReproError("server is closed; create a new DetectionServer")
            self._ensure_workers_locked()

    def _ensure_workers_locked(self) -> None:
        """Spawn the shard pool on first serve (caller holds the lock).

        Lazy so construction order stays flexible: the pipeline must be
        calibrated by the time the server starts serving — the shard spec
        snapshots the calibrated detectors — not when the server object is
        created.
        """
        if self.config.workers <= 0 or self._pool is not None:
            return
        spec = WorkerSpec.from_pipeline(self.pipeline)
        pool_config = WorkerPoolConfig(
            workers=self.config.workers,
            heartbeat_interval_s=self.config.worker_heartbeat_interval_s,
            liveness_timeout_s=self.config.worker_liveness_timeout_s,
            job_timeout_s=self.config.worker_job_timeout_s,
            restart_backoff_base_s=self.config.worker_restart_backoff_base_s,
            restart_backoff_max_s=self.config.worker_restart_backoff_max_s,
            fault_spec=self.config.fault_injection,
        )
        self._pool = WorkerPool(spec, pool_config, metrics=self.metrics)
        self._pool.start()

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def _drain(signum, frame) -> None:  # pragma: no cover - signal path
            threading.Thread(
                target=self.shutdown, name="detection-drain", daemon=True
            ).start()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)

    def shutdown(self) -> None:  # analyze: ignore[io-under-lock]
        """Graceful drain: stop accepting, finish in-flight, flush audit.

        Idempotent and safe to call from any thread except a handler
        thread (it joins them). Joining and flushing *while holding* the
        shutdown lock is the point — concurrent shutdown() calls must not
        return before the drain completes — hence the analyzer suppression.
        """
        with self._shutdown_lock:
            if self._closed:
                return
            self.draining = True
            # Stop the accept loop, then join every handler thread
            # (block_on_close) so in-flight requests complete before the
            # audit log is flushed.
            self._httpd.shutdown()
            self._httpd.server_close()
            if self._serve_thread is not None:
                self._serve_thread.join(timeout=self.config.socket_timeout_s)
            # Handler threads are drained, so no job is in flight: stop the
            # shards before the final audit flush.
            if self._pool is not None:
                self._pool.shutdown()
            if self.pipeline.audit_log is not None:
                self.pipeline.audit_log.flush()
            self._closed = True
