"""Response policies for the protected pipeline.

What should a serving system *do* when Decamouflage flags an input? The
paper positions detection as a plug-in ("an independent module compatible
with any existing scaling algorithms"); the policy layer turns its verdict
into one of the three realistic operational responses:

* ``REJECT``   — refuse the input (online inference guard),
* ``QUARANTINE`` — withhold the input and keep a copy for forensics
  (offline data curation, the paper's backdoor scenario),
* ``SANITIZE`` — pass the input through the reconstruction defense and
  continue (availability over strictness).
"""

from __future__ import annotations

from enum import Enum

__all__ = ["Policy"]


class Policy(str, Enum):
    """What to do with an input the ensemble flags as an attack."""

    REJECT = "reject"
    QUARANTINE = "quarantine"
    SANITIZE = "sanitize"
