"""Process-based scoring shards behind the detection server.

PR 3's service scores in-process behind a thread pool; one Python process
GIL-bound on SSIM/FFT math caps throughput. This module shards scoring
across ``multiprocessing`` worker processes, each owning its own calibrated
:class:`~repro.serving.pipeline.ProtectedPipeline`, while the HTTP handler
threads become thin dispatchers speaking the :mod:`repro.serving.wire`
framing over stdlib pipes:

* :class:`WorkerSpec` — the picklable recipe for one shard's pipeline,
  captured once from the parent's calibrated pipeline (the detectors are
  shipped with their thresholds, so shard verdicts are bit-for-bit what
  the parent would compute).
* :class:`WorkerPool` — spawns N shards, routes jobs to the least-loaded
  healthy one, and owns the lifecycle: per-worker heartbeats with a
  liveness deadline, crash detection, automatic respawn under bounded
  exponential backoff, and requeue-exactly-once failover for jobs that
  were in flight on a dead shard (a second failure answers 503).
* :func:`_worker_main` — the shard process: decode, score, reply; send a
  heartbeat whenever idle for one interval.

Division of labour: shards score and write quarantine artifacts (they hold
the memoized analysis intermediates); the dispatcher keeps the canonical
``pipeline.stats``, sequence numbers, and JSONL audit records via
:meth:`ProtectedPipeline.record_remote_outcome` — so a sharded deployment
reads identically to an in-process one from the outside.

Fault injection: :attr:`WorkerPoolConfig.fault_spec` is a test-only seam
(``"kill:0,slow:1:5"``) parsed inside the shard, because monkeypatching
does not cross a spawn boundary. Faults apply only to a shard's first
incarnation, so respawn recovers naturally. See ``tests/fault_injection``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import threading
import time
from dataclasses import dataclass

from repro.core.ensemble import DetectionEnsemble
from repro.errors import CodecError, DetectionError, ImageError, ReproError
from repro.imaging.plans import (
    geometry_cache_keys,
    get_scoring_plan,
    get_spectrum_geometry,
    plan_cache_keys,
    scoring_mode,
    set_exact_mode,
)
from repro.observability import Metrics
from repro.serving.audit import AuditLog, AuditRecord
from repro.serving.pipeline import ProtectedPipeline, verdict_payload
from repro.serving.policy import Policy
from repro.serving.shm import RingFull, ShmRing, decode_slot_ref, encode_slot_ref
from repro.serving.wire import (
    decode_image_payload,
    pack_job,
    pack_result,
    unpack_job,
    unpack_result,
)

__all__ = ["WorkerSpec", "WorkerPoolConfig", "WorkerPool"]


# -- what a shard needs to know ---------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a shard process needs to rebuild the parent's pipeline.

    Captured once (at pool start) from a calibrated pipeline and reused for
    every respawn, so a shard that crashed mid-flight comes back with the
    exact same thresholds.
    """

    model_input_shape: tuple[int, int]
    algorithm: str
    policy: str
    #: the parent's calibrated detectors, pickled with their (unpicklable)
    #: metrics registry stripped; thresholds travel inside.
    detectors_pickle: bytes
    #: quarantine destination, or None when the policy never quarantines.
    audit_log_path: str | None = None
    quarantine_dir: str | None = None
    #: scoring-plan / spectrum-geometry cache keys warm in the parent when
    #: the pool started; each shard compiles them at spawn so its first
    #: request pays no plan-build latency.
    warm_plan_keys: tuple = ()
    warm_geometry_keys: tuple = ()
    #: the parent's scoring mode ("plan" or "exact"), applied in the shard
    #: before its pipeline is built so shard verdicts match the parent's.
    scoring_mode: str = "plan"

    @classmethod
    def from_pipeline(cls, pipeline: ProtectedPipeline) -> "WorkerSpec":
        if not pipeline.is_calibrated:
            raise DetectionError(
                "cannot shard an uncalibrated pipeline; call calibrate() first"
            )
        detectors = list(pipeline.ensemble.detectors)
        saved = [detector.metrics for detector in detectors]
        try:
            for detector in detectors:
                detector.metrics = None
            blob = pickle.dumps(detectors)
        finally:
            for detector, metrics in zip(detectors, saved):
                detector.metrics = metrics
        audit = pipeline.audit_log
        quarantines = (
            pipeline.policy is Policy.QUARANTINE
            and audit is not None
            and audit.quarantine_dir is not None
        )
        return cls(
            model_input_shape=tuple(pipeline.model_input_shape),
            algorithm=pipeline.algorithm,
            policy=pipeline.policy.value,
            detectors_pickle=blob,
            audit_log_path=str(audit.log_path) if quarantines else None,
            quarantine_dir=str(audit.quarantine_dir) if quarantines else None,
            warm_plan_keys=tuple(plan_cache_keys()),
            warm_geometry_keys=tuple(geometry_cache_keys()),
            scoring_mode=scoring_mode(),
        )

    def apply_process_state(self) -> None:
        """Install the parent's scoring mode and pre-warm the plan caches.

        Called in the shard process before it answers any job: plan/geometry
        compilation happens during the startup grace window instead of on
        the first request, and the shard scores in the same mode the parent
        calibrated in.
        """
        set_exact_mode(self.scoring_mode == "exact")
        for src_shape, dst_shape, algorithm, upscale in self.warm_plan_keys:
            get_scoring_plan(src_shape, dst_shape, algorithm, upscale)
        for height, width, lowpass in self.warm_geometry_keys:
            get_spectrum_geometry((height, width), lowpass)

    def build_pipeline(self) -> ProtectedPipeline:
        """Reconstruct the calibrated pipeline inside a shard process."""
        detectors = pickle.loads(self.detectors_pickle)
        audit_log = None
        if self.audit_log_path and self.quarantine_dir:
            audit_log = _QuarantineOnlyAuditLog(
                self.audit_log_path, quarantine_dir=self.quarantine_dir
            )
        return ProtectedPipeline(
            self.model_input_shape,
            algorithm=self.algorithm,
            policy=Policy(self.policy),
            ensemble=DetectionEnsemble(detectors),
            audit_log=audit_log,
            metrics=Metrics(),
        )


class _QuarantineOnlyAuditLog(AuditLog):
    """Shard-side audit log: artifacts here, records at the dispatcher.

    Quarantine PNG/artifact writes stay in the shard because only it holds
    the memoized analysis intermediates, and request-scoped image ids keep
    filenames collision-free across shards. JSONL records are the
    dispatcher's job (single canonical sequence), so ``append`` only
    remembers the quarantine path for the wire reply.
    """

    def __init__(self, log_path, *, quarantine_dir) -> None:
        super().__init__(log_path, quarantine_dir=quarantine_dir)
        self._quarantine_paths: dict[str, str] = {}

    def append(self, record: AuditRecord) -> None:
        if record.quarantine_path is not None:
            self._quarantine_paths[record.image_id] = record.quarantine_path

    def pop_quarantine_path(self, image_id: str) -> str | None:
        return self._quarantine_paths.pop(image_id, None)


# -- pool configuration ------------------------------------------------------


@dataclass(frozen=True)
class WorkerPoolConfig:
    """Tunables for :class:`WorkerPool`."""

    #: Number of shard processes; must be >= 1 (0 means "no pool at all"
    #: and is the server's decision, not this class's).
    workers: int = 2
    #: An idle shard sends one heartbeat per interval.
    heartbeat_interval_s: float = 0.25
    #: An idle shard silent for longer than this is declared dead.
    liveness_timeout_s: float = 10.0
    #: A busy shard whose oldest in-flight job is older than this is
    #: declared wedged (busy shards cannot heartbeat — they are scoring).
    job_timeout_s: float = 30.0
    #: Respawn backoff: ``base * 2**consecutive_failures``, capped at max.
    restart_backoff_base_s: float = 0.1
    restart_backoff_max_s: float = 5.0
    #: Grace for a fresh process to import numpy and calibrate before the
    #: liveness deadline applies (its first message ends the grace).
    startup_grace_s: float = 60.0
    #: How long shutdown waits for shards to drain before killing them.
    drain_timeout_s: float = 10.0
    #: Payload transport: ``"shm"`` moves job/result frames through
    #: per-shard :class:`~repro.serving.shm.ShmRing` segments (the pipe
    #: carries slot refs, heartbeats, and control); ``"pipe"`` serializes
    #: every frame into the pipe as PR 4 did. Frames that outgrow a slot,
    #: or arrive while the ring is full, fall back to the pipe per-frame.
    transport: str = "shm"
    #: Slots per ring direction; bounds how many frames can be in flight
    #: through shared memory to one shard at once.
    ring_slots: int = 8
    #: Payload capacity of one slot (bytes); bigger frames take the pipe.
    ring_slot_bytes: int = 1 << 20
    #: Test-only fault seam, parsed by the shard itself (monkeypatches do
    #: not survive a spawn): comma-separated ``kind:worker_id[:arg]``
    #: clauses — ``kill`` (exit on next job), ``kill-after`` (score, exit
    #: before replying), ``kill-mid-write`` (die half-way through a ring
    #: slot write with the doorbell already rung), ``mute`` (one
    #: heartbeat, then silence), ``garbage`` (reply with an unframed
    #: blob), ``slow:<id>:<seconds>`` (sleep before scoring). ``*``
    #: targets every shard. Faults apply only while ``restarts == 0`` so a
    #: respawned shard behaves.
    fault_spec: str | None = None


# -- parent-side bookkeeping -------------------------------------------------


class _Job:
    """One dispatched request, waited on by an HTTP handler thread."""

    __slots__ = (
        "job_id",
        "kind",
        "request_id",
        "payloads",
        "attempts",
        "worker_id",
        "done",
        "result_kind",
        "body",
        "error",
    )

    def __init__(
        self, job_id: str, kind: str, request_id: str, payloads: list[bytes]
    ) -> None:
        self.job_id = job_id
        self.kind = kind
        self.request_id = request_id
        self.payloads = payloads
        self.attempts = 0
        self.worker_id: int | None = None
        self.done = threading.Event()
        self.result_kind: str | None = None
        self.body: bytes | None = None
        self.error: Exception | None = None


class _WorkerHandle:
    """Parent-side view of one shard incarnation.

    Mutable fields are guarded by the owning pool's lock; the handle object
    itself doubles as the generation token (a respawn installs a brand-new
    handle under the same worker id, so stale receiver threads compare
    identity and stand down).
    """

    __slots__ = (
        "worker_id",
        "process",
        "conn",
        "job_ring",
        "result_ring",
        "send_lock",
        "up",
        "ready",
        "spawned_at",
        "last_seen",
        "restarts",
        "consecutive_failures",
        "jobs",
        "jobs_done",
        "respawn_at",
        "snapshot",
    )

    def __init__(
        self, worker_id, process, conn, restarts, consecutive, *, job_ring=None, result_ring=None
    ) -> None:
        self.worker_id = worker_id
        self.process = process
        self.conn = conn
        #: shm rings for this incarnation (dispatcher→shard / shard→
        #: dispatcher), or None on the pipe transport. Created fresh per
        #: spawn and destroyed with the incarnation, so no slot state
        #: survives a crash.
        self.job_ring: ShmRing | None = job_ring
        self.result_ring: ShmRing | None = result_ring
        self.send_lock = threading.Lock()
        self.up = True
        self.ready = False
        self.spawned_at = time.monotonic()
        self.last_seen = self.spawned_at
        self.restarts = restarts
        self.consecutive_failures = consecutive
        #: in-flight job_id -> dispatch timestamp
        self.jobs: dict[str, float] = {}
        self.jobs_done = 0
        self.respawn_at: float | None = None
        self.snapshot: dict = {}


def _error_from_wire(body: bytes) -> Exception:
    """Rebuild a shard-reported exception so HTTP status mapping matches
    the in-process path (CodecError/ImageError -> 400, rest -> 503)."""
    try:
        descriptor = json.loads(body.decode("utf-8"))
        kind = str(descriptor.get("type", ""))
        message = str(descriptor.get("message", "worker error"))
    except (ValueError, UnicodeDecodeError):
        kind, message = "", "unintelligible worker error"
    types: dict[str, type[Exception]] = {
        "CodecError": CodecError,
        "ImageError": ImageError,
        "DetectionError": DetectionError,
    }
    return types.get(kind, DetectionError)(message)


class WorkerPool:
    """N scoring shards plus the lifecycle that keeps them answering.

    Thread-safety: ``_lock`` guards the worker table, the job table, and
    the closed/started flags. Pipe sends serialize on each handle's own
    ``send_lock``; pipe receives happen on one receiver thread per shard.
    Process spawning, joining, and pipe I/O all happen outside ``_lock``.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        config: WorkerPoolConfig | None = None,
        *,
        metrics: Metrics | None = None,
    ) -> None:
        self.spec = spec
        self.config = config or WorkerPoolConfig()
        if self.config.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.config.workers}")
        if self.config.transport not in ("pipe", "shm"):
            raise ReproError(
                f"unknown worker transport {self.config.transport!r} "
                "(expected 'pipe' or 'shm')"
            )
        self.metrics = metrics or Metrics()
        self._context = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._workers: dict[int, _WorkerHandle] = {}
        self._jobs: dict[str, _Job] = {}
        self._job_counter = 0
        self._started = False
        self._closed = False
        self._wake = threading.Event()
        self._monitor_thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn every shard and the liveness monitor; returns at once
        (shards announce readiness via their first heartbeat)."""
        with self._lock:
            if self._closed:
                raise ReproError("worker pool is shut down")
            if self._started:
                raise ReproError("worker pool is already started")
            self._started = True
        for worker_id in range(self.config.workers):
            self._spawn_worker(worker_id, restarts=0, consecutive=0)
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="worker-pool-monitor", daemon=True
        )
        self._monitor_thread.start()

    def shutdown(self) -> None:
        """Graceful drain: stop every shard, join, kill stragglers, and
        fail any job that somehow remained in flight."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            handles = list(self._workers.values())
        self._wake.set()
        stop_frame = pack_job("stop", "-", "-", [])
        for handle in handles:
            if not handle.up:
                continue
            try:
                with handle.send_lock:
                    handle.conn.send_bytes(stop_frame)
            except (OSError, ValueError):
                pass  # already dead; join/kill below handles it
        deadline = time.monotonic() + self.config.drain_timeout_s
        for handle in handles:
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass  # receiver already closed it
            self._destroy_rings(handle)
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=2.0)
        with self._lock:
            leftover = list(self._jobs.values())
            self._jobs.clear()
        for job in leftover:
            job.error = DetectionError("worker pool shut down mid-request")
            job.done.set()

    # -- introspection -------------------------------------------------------

    @property
    def healthy_count(self) -> int:
        """Shards currently believed alive (spawned or respawned, pipe open)."""
        with self._lock:
            return sum(1 for handle in self._workers.values() if handle.up)

    def pids(self) -> dict[int, int | None]:
        """``worker_id -> os pid`` for every current shard incarnation."""
        with self._lock:
            return {
                worker_id: handle.process.pid
                for worker_id, handle in sorted(self._workers.items())
            }

    def worker_status(self) -> list[dict]:
        """One dict per shard: liveness, restarts, load, last snapshot."""
        now = time.monotonic()
        with self._lock:
            return [
                {
                    "worker_id": handle.worker_id,
                    "pid": handle.process.pid,
                    "up": handle.up,
                    "ready": handle.ready,
                    "restarts": handle.restarts,
                    "inflight": len(handle.jobs),
                    "jobs_done": handle.jobs_done,
                    "heartbeat_age_s": now - handle.last_seen,
                    "ring_occupancy": (
                        None
                        if handle.job_ring is None
                        else {
                            "job": handle.job_ring.occupancy(),
                            "result": (
                                handle.result_ring.occupancy()
                                if handle.result_ring is not None
                                else 0
                            ),
                        }
                    ),
                    "snapshot": dict(handle.snapshot),
                }
                for _, handle in sorted(self._workers.items())
            ]

    def labeled_families(self) -> dict[str, dict[str, list[tuple[dict, float]]]]:
        """Per-shard metric series for
        :func:`repro.observability.render_prometheus`'s labeled families
        (``{worker_id="N"}``)."""
        gauges: dict[str, list[tuple[dict, float]]] = {
            "worker.up": [],
            "worker.inflight": [],
            "worker.heartbeat_age_s": [],
            "worker.job_ring_occupancy": [],
            "worker.result_ring_occupancy": [],
        }
        counters: dict[str, list[tuple[dict, float]]] = {
            "worker.restarts": [],
            "worker.jobs_done": [],
            "worker.scored": [],
            "worker.errors": [],
        }
        for status in self.worker_status():
            labels = {"worker_id": str(status["worker_id"])}
            gauges["worker.up"].append((labels, 1.0 if status["up"] else 0.0))
            gauges["worker.inflight"].append((labels, float(status["inflight"])))
            gauges["worker.heartbeat_age_s"].append(
                (labels, round(status["heartbeat_age_s"], 3))
            )
            ring = status["ring_occupancy"] or {}
            gauges["worker.job_ring_occupancy"].append(
                (labels, float(ring.get("job", 0)))
            )
            gauges["worker.result_ring_occupancy"].append(
                (labels, float(ring.get("result", 0)))
            )
            counters["worker.restarts"].append((labels, float(status["restarts"])))
            counters["worker.jobs_done"].append((labels, float(status["jobs_done"])))
            snapshot = status["snapshot"]
            counters["worker.scored"].append(
                (labels, float(snapshot.get("submitted", 0)))
            )
            counters["worker.errors"].append((labels, float(snapshot.get("errors", 0))))
        return {"gauges": gauges, "counters": counters}

    # -- dispatch ------------------------------------------------------------

    def submit(
        self, payloads: list[bytes], *, request_id: str, batch: bool = False
    ) -> dict:
        """Route one request to a healthy shard and wait for its verdicts.

        Returns the shard's reply: ``{"verdicts": [...],
        "quarantine_paths": [...]}``. Raises what the in-process path would
        (CodecError/ImageError for bad payloads, DetectionError when no
        shard can answer).
        """
        with self._lock:
            if self._closed:
                raise DetectionError("worker pool is shut down")
            if not self._started:
                raise ReproError("worker pool is not started")
            self._job_counter += 1
            job_id = f"job-{self._job_counter:08d}"
        job = _Job(job_id, "batch" if batch else "single", request_id, payloads)
        target = self._pick_target()
        if target is None:
            raise DetectionError("no healthy worker shard available")
        self.metrics.counter("workers.dispatched").add(1)
        start = time.perf_counter()
        self._dispatch(job, target)
        # Worst case one failover: two job timeouts plus scheduling slack.
        if not job.done.wait(self.config.job_timeout_s * 2 + 5.0):
            with self._lock:
                self._jobs.pop(job_id, None)
                owner = self._workers.get(job.worker_id)
                if owner is not None:
                    owner.jobs.pop(job_id, None)
            raise DetectionError(f"worker job {job_id} timed out")
        self.metrics.observe("workers.job", (time.perf_counter() - start) * 1000.0)
        if job.error is not None:
            raise job.error
        if job.result_kind == "err":
            raise _error_from_wire(job.body or b"")
        try:
            return json.loads((job.body or b"").decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise DetectionError(f"worker returned malformed verdicts: {exc}") from exc

    def _pick_target(self, exclude: int | None = None) -> _WorkerHandle | None:
        with self._lock:
            candidates = [
                handle
                for handle in self._workers.values()
                if handle.up and handle.worker_id != exclude
            ]
        if not candidates:
            return None
        return min(candidates, key=lambda handle: (len(handle.jobs), handle.worker_id))

    def _ring_frame(self, handle: _WorkerHandle, frame: bytes) -> bytes | None:
        """Stage *frame* in the shard's job ring; returns the slot-ref
        doorbell frame, or None to send the full frame over the pipe
        (no ring, oversize frame, ring full)."""
        ring = handle.job_ring
        if ring is None or len(frame) > ring.slot_bytes:
            return None
        try:
            slot = ring.put(frame)
        except RingFull:
            self.metrics.counter("shm.ring_full").add(1)
            return None
        self.metrics.counter("shm.frames").add(1)
        return encode_slot_ref(slot, len(frame))

    def _dispatch(self, job: _Job, handle: _WorkerHandle) -> None:
        frame = pack_job(job.kind, job.job_id, job.request_id, job.payloads)
        with self._lock:
            if not handle.up:
                # The target died between selection and dispatch; keep the
                # attempt count honest and reroute below.
                stale = True
                self._jobs[job.job_id] = job
            else:
                stale = False
                job.attempts += 1
                job.worker_id = handle.worker_id
                self._jobs[job.job_id] = job
                handle.jobs[job.job_id] = time.monotonic()
        if stale:
            self._failover(
                job, exclude=handle.worker_id, reason="target died before dispatch"
            )
            return
        ref = self._ring_frame(handle, frame)
        if ref is not None:
            frame = pack_job("slot", job.job_id, job.request_id, [ref])
        try:
            with handle.send_lock:
                handle.conn.send_bytes(frame)
        except (OSError, ValueError):
            # The pipe died under us: the down-path requeues (or fails)
            # every job this shard held, including the one just registered.
            # A slot already staged dies with the incarnation's ring.
            self._worker_down(handle, reason="pipe send failed")

    # -- failure handling ----------------------------------------------------

    def _worker_down(self, handle: _WorkerHandle, *, reason: str) -> None:
        """Declare one shard incarnation dead: fail it over and schedule a
        respawn under backoff. Idempotent per incarnation."""
        with self._lock:
            if not handle.up or self._workers.get(handle.worker_id) is not handle:
                return
            handle.up = False
            orphans = [
                self._jobs[job_id] for job_id in handle.jobs if job_id in self._jobs
            ]
            handle.jobs.clear()
            if not self._closed:
                backoff = min(
                    self.config.restart_backoff_base_s
                    * (2 ** min(handle.consecutive_failures, 16)),
                    self.config.restart_backoff_max_s,
                )
                handle.respawn_at = time.monotonic() + backoff
        self.metrics.counter("workers.deaths").add(1)
        try:
            handle.conn.close()
        except OSError:
            pass  # receiver thread got there first
        if handle.process.is_alive():
            handle.process.terminate()
        # Unlink-while-mapped is POSIX-safe: a straggler child keeps its
        # mapping until it exits, but the name is gone immediately.
        self._destroy_rings(handle)
        self._wake.set()
        for job in orphans:
            self._failover(job, exclude=handle.worker_id, reason=reason)

    def _destroy_rings(self, handle: _WorkerHandle) -> None:
        """Tear down an incarnation's shm rings (idempotent, crash-safe)."""
        with self._lock:
            rings = (handle.job_ring, handle.result_ring)
            handle.job_ring = None
            handle.result_ring = None
        for ring in rings:
            if ring is None:
                continue
            ring.close()
            ring.unlink()

    def _failover(self, job: _Job, *, exclude: int, reason: str) -> None:
        """Requeue one orphaned job exactly once; a second strike fails it."""
        with self._lock:
            if job.job_id not in self._jobs:
                return  # completed or timed out concurrently
            second_strike = job.attempts >= 2
        if second_strike:
            self._fail_job(
                job,
                DetectionError(
                    f"request {job.request_id} lost twice to worker failures "
                    f"(last: {reason})"
                ),
            )
            return
        target = self._pick_target(exclude=exclude)
        if target is None:
            self._fail_job(
                job,
                DetectionError(
                    f"no healthy worker shard to requeue request {job.request_id} "
                    f"({reason})"
                ),
            )
            return
        self.metrics.counter("workers.requeued").add(1)
        self._dispatch(job, target)

    def _fail_job(self, job: _Job, error: Exception) -> None:
        with self._lock:
            self._jobs.pop(job.job_id, None)
        self.metrics.counter("workers.failed_jobs").add(1)
        job.error = error
        job.done.set()

    # -- per-shard receiver --------------------------------------------------

    def _receive_loop(self, handle: _WorkerHandle) -> None:
        while True:
            try:
                frame = handle.conn.recv_bytes()
            except (EOFError, OSError):
                break
            origin = f"worker-{handle.worker_id}"
            try:
                kind, job_id, body = unpack_result(frame, origin=origin)
                if kind == "slot":
                    kind, job_id, body = self._resolve_slot_result(
                        handle, body, origin=origin
                    )
            except CodecError:
                # A shard emitting unparseable frames — or slot refs that
                # point at torn/stomped slots — can no longer be trusted
                # to pair results with jobs: recycle it.
                self.metrics.counter("workers.garbage_frames").add(1)
                break
            with self._lock:
                handle.last_seen = time.monotonic()
                handle.ready = True
                handle.consecutive_failures = 0
            if kind == "hb":
                self._store_snapshot(handle, body)
            else:
                self._complete(handle, job_id, kind, body)
        self._worker_down(handle, reason="worker pipe closed")

    def _resolve_slot_result(
        self, handle: _WorkerHandle, body: bytes, *, origin: str
    ) -> tuple[str, str, bytes]:
        """Follow one result slot ref into the shard's result ring.

        Every failure mode — no ring configured, torn write (slot never
        published), length disagreement, nested indirection — surfaces as
        :class:`CodecError` so the caller's garbage-frame path recycles
        the shard and requeues its jobs exactly once.
        """
        ring = handle.result_ring
        if ring is None:
            raise CodecError(f"{origin}: slot ref on the pipe transport")
        slot, length = decode_slot_ref(body, origin=origin)
        inner = ring.get(slot, origin=origin)
        if len(inner) != length:
            raise CodecError(
                f"{origin}: slot {slot} holds {len(inner)} bytes, ref promised {length}"
            )
        kind, job_id, resolved = unpack_result(inner, origin=origin)
        if kind == "slot":
            raise CodecError(f"{origin}: nested slot indirection")
        return kind, job_id, resolved

    def _store_snapshot(self, handle: _WorkerHandle, body: bytes) -> None:
        try:
            snapshot = json.loads(body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            snapshot = {}
        if isinstance(snapshot, dict):
            with self._lock:
                handle.snapshot = snapshot

    def _complete(
        self, handle: _WorkerHandle, job_id: str, kind: str, body: bytes
    ) -> None:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.worker_id != handle.worker_id:
                return  # late result for a job already failed over: drop it
            del self._jobs[job_id]
            handle.jobs.pop(job_id, None)
            handle.jobs_done += 1
        job.result_kind = kind
        job.body = body
        job.done.set()

    # -- spawn + monitor -----------------------------------------------------

    def _spawn_worker(self, worker_id: int, *, restarts: int, consecutive: int) -> None:
        job_ring = result_ring = None
        if self.config.transport == "shm":
            # Fresh rings per incarnation: a crash can leave slots torn or
            # stranded, so nothing shared survives into the respawn.
            job_ring = ShmRing.create(self.config.ring_slots, self.config.ring_slot_bytes)
            result_ring = ShmRing.create(self.config.ring_slots, self.config.ring_slot_bytes)
        parent_conn, child_conn = self._context.Pipe()
        process = self._context.Process(
            target=_worker_main,
            args=(
                child_conn,
                self.spec,
                worker_id,
                restarts,
                self.config.heartbeat_interval_s,
                self.config.fault_spec,
                job_ring.name if job_ring is not None else None,
                result_ring.name if result_ring is not None else None,
            ),
            name=f"decamouflage-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        handle = _WorkerHandle(
            worker_id,
            process,
            parent_conn,
            restarts,
            consecutive,
            job_ring=job_ring,
            result_ring=result_ring,
        )
        with self._lock:
            aborted = self._closed
            if not aborted:
                self._workers[worker_id] = handle
        if aborted:
            # Shutdown won the race with this respawn: reap the process
            # instead of leaking it past the pool's lifetime.
            try:
                parent_conn.close()
            except OSError:
                pass  # never opened far enough to matter
            process.kill()
            process.join(1.0)
            self._destroy_rings(handle)
            return
        receiver = threading.Thread(
            target=self._receive_loop,
            args=(handle,),
            name=f"worker-{worker_id}-rx",
            daemon=True,
        )
        receiver.start()
        if restarts:
            self.metrics.counter("workers.restarts").add(1)

    def _monitor_loop(self) -> None:
        interval = max(0.01, min(self.config.heartbeat_interval_s / 2, 0.25))
        while True:
            self._wake.wait(interval)
            self._wake.clear()
            now = time.monotonic()
            dead: list[tuple[_WorkerHandle, str]] = []
            respawn: list[tuple[int, int, int]] = []
            with self._lock:
                if self._closed:
                    return
                for handle in self._workers.values():
                    if handle.up:
                        reason = self._death_reason_locked(handle, now)
                        if reason is not None:
                            dead.append((handle, reason))
                    elif handle.respawn_at is not None and now >= handle.respawn_at:
                        handle.respawn_at = None
                        respawn.append(
                            (
                                handle.worker_id,
                                handle.restarts + 1,
                                handle.consecutive_failures + 1,
                            )
                        )
            for handle, reason in dead:
                self._worker_down(handle, reason=reason)
            for worker_id, restarts, consecutive in respawn:
                self._spawn_worker(
                    worker_id, restarts=restarts, consecutive=consecutive
                )

    def _death_reason_locked(self, handle: _WorkerHandle, now: float) -> str | None:
        """Liveness verdict for one live handle (caller holds the lock)."""
        if not handle.process.is_alive():
            return f"worker process exited (code {handle.process.exitcode})"
        if handle.jobs:
            oldest = min(handle.jobs.values())
            if now - oldest > self.config.job_timeout_s:
                return (
                    f"oldest in-flight job exceeded {self.config.job_timeout_s:.1f}s"
                )
            return None
        deadline = (
            self.config.liveness_timeout_s
            if handle.ready
            else self.config.startup_grace_s
        )
        if now - handle.last_seen > deadline:
            return f"no heartbeat for {now - handle.last_seen:.1f}s"
        return None


# -- the shard process --------------------------------------------------------


@dataclass(frozen=True)
class _Faults:
    """Parsed fault directives for one shard (test-only; see
    :attr:`WorkerPoolConfig.fault_spec`)."""

    kill_next: bool = False
    kill_after: bool = False
    kill_mid_write: bool = False
    mute: bool = False
    garbage: bool = False
    slow_s: float = 0.0


def _parse_faults(spec: str | None, worker_id: int) -> _Faults:
    if not spec:
        return _Faults()
    kill_next = kill_after = kill_mid_write = mute = garbage = False
    slow_s = 0.0
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        parts = clause.split(":")
        if len(parts) < 2:
            raise ReproError(f"malformed fault clause {clause!r}")
        kind, target = parts[0], parts[1]
        if target != "*" and int(target) != worker_id:
            continue
        if kind == "kill":
            kill_next = True
        elif kind == "kill-after":
            kill_after = True
        elif kind == "kill-mid-write":
            kill_mid_write = True
        elif kind == "mute":
            mute = True
        elif kind == "garbage":
            garbage = True
        elif kind == "slow":
            slow_s = float(parts[2])
        else:
            raise ReproError(f"unknown fault kind {kind!r}")
    return _Faults(
        kill_next=kill_next,
        kill_after=kill_after,
        kill_mid_write=kill_mid_write,
        mute=mute,
        garbage=garbage,
        slow_s=slow_s,
    )


def _shard_snapshot(pipeline: ProtectedPipeline, errors: int) -> dict:
    """The per-heartbeat stats a shard reports to the dispatcher."""
    stats = pipeline.stats
    screen = pipeline.metrics.histogram("pipeline.screen").summary()
    return {
        "submitted": stats.submitted,
        "accepted": stats.accepted,
        "rejected": stats.rejected,
        "quarantined": stats.quarantined,
        "sanitized": stats.sanitized,
        "errors": errors,
        "screen_ms": {
            key: round(float(screen.get(key, 0.0)), 3)
            for key in ("count", "mean_ms", "p50_ms", "p95_ms")
        },
    }


def _score_job(
    pipeline: ProtectedPipeline, kind: str, request_id: str, payloads: list[bytes]
) -> bytes:
    """Decode, score, and serialize one job's verdicts (shard side)."""
    start = time.perf_counter()
    if kind == "single":
        image = decode_image_payload(payloads[0], origin=request_id)
        outcomes = [pipeline.submit(image, image_id=request_id)]
    else:
        images = [
            decode_image_payload(blob, origin=f"{request_id}[{index}]")
            for index, blob in enumerate(payloads)
        ]
        outcomes = pipeline.submit_batch(images, prefix=request_id)
    elapsed_ms = (time.perf_counter() - start) * 1000.0
    quarantine_paths: list[str | None] = []
    for outcome in outcomes:
        path = None
        if isinstance(pipeline.audit_log, _QuarantineOnlyAuditLog):
            path = pipeline.audit_log.pop_quarantine_path(outcome.image_id)
        quarantine_paths.append(path)
    verdicts = [
        verdict_payload(outcome, request_id=request_id, latency_ms=elapsed_ms)
        for outcome in outcomes
    ]
    return json.dumps(
        {"verdicts": verdicts, "quarantine_paths": quarantine_paths}
    ).encode("utf-8")


def _worker_main(
    conn,
    spec: WorkerSpec,
    worker_id: int,
    restarts: int,
    heartbeat_interval_s: float,
    fault_spec: str | None,
    job_ring_name: str | None = None,
    result_ring_name: str | None = None,
) -> None:
    """One shard process: score jobs, heartbeat when idle, exit on stop.

    Must stay module-level (spawn pickles it by reference). Faults apply
    only to a shard's first incarnation so respawn recovers naturally.
    On the shm transport, job frames arrive as slot refs into
    ``job_ring`` and scoring replies leave through ``result_ring`` (the
    pipe keeps heartbeats, control, and per-frame fallback).
    """
    faults = _parse_faults(fault_spec, worker_id) if restarts == 0 else _Faults()
    spec.apply_process_state()
    pipeline = spec.build_pipeline()
    job_ring = ShmRing.attach(job_ring_name) if job_ring_name else None
    result_ring = ShmRing.attach(result_ring_name) if result_ring_name else None
    try:
        _worker_loop(
            conn,
            pipeline,
            worker_id,
            heartbeat_interval_s,
            faults,
            job_ring,
            result_ring,
        )
    finally:
        if job_ring is not None:
            job_ring.close()
        if result_ring is not None:
            result_ring.close()


def _worker_loop(
    conn,
    pipeline: ProtectedPipeline,
    worker_id: int,
    heartbeat_interval_s: float,
    faults: _Faults,
    job_ring: ShmRing | None,
    result_ring: ShmRing | None,
) -> None:
    errors = 0
    heartbeats_sent = 0
    while True:
        if not conn.poll(heartbeat_interval_s):
            if faults.mute and heartbeats_sent >= 1:
                continue
            snapshot = json.dumps(_shard_snapshot(pipeline, errors)).encode("utf-8")
            try:
                conn.send_bytes(pack_result("hb", "-", snapshot))
            except (OSError, ValueError):
                return  # dispatcher is gone
            heartbeats_sent += 1
            continue
        try:
            frame = conn.recv_bytes()
        except (EOFError, OSError):
            return
        try:
            kind, job_id, request_id, payloads = unpack_job(
                frame, origin=f"worker-{worker_id}"
            )
            if kind == "slot":
                if job_ring is None or len(payloads) != 1:
                    raise CodecError(f"worker-{worker_id}: stray slot ref")
                slot, length = decode_slot_ref(payloads[0])
                inner = job_ring.get(slot, origin=f"worker-{worker_id}")
                if len(inner) != length:
                    raise CodecError(
                        f"worker-{worker_id}: slot {slot} length mismatch"
                    )
                kind, job_id, request_id, payloads = unpack_job(
                    inner, origin=f"worker-{worker_id}"
                )
        except CodecError:
            errors += 1
            continue  # dispatcher bug; the job times out and fails over
        if kind == "stop":
            return
        if faults.kill_next:
            os._exit(170)  # simulated crash mid-request
        if faults.slow_s:
            time.sleep(faults.slow_s)
        try:
            reply = pack_result("ok", job_id, _score_job(pipeline, kind, request_id, payloads))
        except Exception as exc:  # shipped to the dispatcher, not swallowed
            errors += 1
            descriptor = {"type": type(exc).__name__, "message": str(exc)}
            reply = pack_result(
                "err", job_id, json.dumps(descriptor).encode("utf-8")
            )
        if faults.kill_mid_write:
            # The nastiest crash window: the slot write tears half-way but
            # the doorbell still rings. The dispatcher must refuse the
            # unpublished slot (CodecError), recycle this shard, and
            # requeue the job exactly once. On the pipe transport there is
            # no slot to tear, so the fault degenerates to kill-after.
            if result_ring is not None:
                try:
                    slot = result_ring.put_torn(reply)
                    conn.send_bytes(
                        pack_result("slot", job_id, encode_slot_ref(slot, len(reply)))
                    )
                except (RingFull, OSError, ValueError):
                    pass
            os._exit(172)
        if faults.kill_after:
            os._exit(171)  # simulated crash after scoring, before replying
        if faults.garbage:
            reply = b"\xde\xad\xbe\xef" + os.urandom(24)
        elif result_ring is not None and len(reply) <= result_ring.slot_bytes:
            try:
                slot = result_ring.put(reply)
                reply = pack_result("slot", job_id, encode_slot_ref(slot, len(reply)))
            except RingFull:
                pass  # per-frame fallback: the full reply rides the pipe
        try:
            conn.send_bytes(reply)
        except (OSError, ValueError):
            return
