"""Shared-memory slot rings: the zero-copy dispatcher ↔ shard transport.

The pipe transport (:mod:`repro.serving.workers`) serializes every frame
into a ``multiprocessing`` pipe, which copies each payload twice (user →
kernel → user) and holds the GIL while it does. This module keeps the
pipe as a tiny **doorbell + control** channel and moves the payload bytes
through a :class:`multiprocessing.shared_memory.SharedMemory` segment
organised as a fixed-slot ring:

* the segment starts with a 12-byte ring header (magic, version, slot
  count, slot size) so an attach can never mis-parse a stranger's segment;
* each slot is a 12-byte record header (state byte, slot magic, payload
  length, CRC-32) followed by ``slot_bytes`` of payload room;
* a writer claims a FREE slot (state → WRITING), copies the payload,
  stamps length + CRC, and only then publishes it (state → READY);
* the reader is handed the slot index out-of-band (a **slot ref** frame
  over the pipe), validates state/magic/length/CRC, copies the payload
  out, and retires the slot (state → FREE).

The publish step is a single byte store, so a writer SIGKILLed mid-copy
leaves the slot in WRITING — never READY with torn bytes. A reader that
is handed a slot in any state but READY, or whose CRC disagrees, raises
:class:`~repro.errors.CodecError` exactly like a corrupt pipe frame, and
the dispatcher's existing garbage-frame → recycle → requeue-once path
takes over. Rings are created fresh for every shard incarnation and
unlinked when it dies, so no corruption survives a crash.

Backpressure is explicit: :meth:`ShmRing.put` raises :class:`RingFull`
when every slot is occupied and the caller falls back to sending that one
frame inline over the pipe — the ring accelerates the common case, it is
never allowed to wedge the protocol.
"""

from __future__ import annotations

import struct
import threading
import zlib
from multiprocessing import shared_memory

from repro.errors import CodecError

__all__ = [
    "RingFull",
    "SLOT_FREE",
    "SLOT_READY",
    "SLOT_WRITING",
    "ShmRing",
    "decode_slot_ref",
    "encode_slot_ref",
]

#: Segment header: magic, version, slot count, slot payload capacity.
_RING_HEADER = struct.Struct(">4sHHI")
_RING_MAGIC = b"DCRG"
_RING_VERSION = 1

#: Slot record header: state, slot magic, reserved, payload length, CRC-32.
_SLOT_HEADER = struct.Struct(">BBHII")
_SLOT_MAGIC = 0xA5

#: Slot states. FREE → WRITING → READY → FREE; READY is the only state a
#: reader may consume, and the FREE→WRITING→READY walk is write-side only.
SLOT_FREE = 0
SLOT_WRITING = 1
SLOT_READY = 2

#: Slot ref payload carried over the pipe: slot index + payload length.
_SLOT_REF = struct.Struct(">II")


class RingFull(RuntimeError):
    """Every slot is occupied; send this frame over the pipe instead."""


def encode_slot_ref(slot: int, length: int) -> bytes:
    """Pack a (slot, payload length) pointer for the pipe doorbell."""
    return _SLOT_REF.pack(slot, length)


def decode_slot_ref(data: bytes, *, origin: str = "<slot-ref>") -> tuple[int, int]:
    """Unpack a slot ref; anything but exactly 8 bytes is a codec error."""
    if len(data) != _SLOT_REF.size:
        raise CodecError(f"{origin}: slot ref is {len(data)} bytes, need {_SLOT_REF.size}")
    slot, length = _SLOT_REF.unpack(data)
    return slot, length


class ShmRing:
    """One direction of a fixed-slot shared-memory ring.

    The creating side owns the segment (and must eventually
    :meth:`unlink`); the attaching side only maps it. ``put`` is
    thread-safe (the dispatcher writes from handler threads); ``get``
    consumes a specific slot index delivered out-of-band, so concurrent
    readers never contend for the same slot by construction.
    """

    def __init__(
        self, shm: shared_memory.SharedMemory, slots: int, slot_bytes: int, *, owner: bool
    ) -> None:
        self._shm = shm
        self._slots = slots
        self._slot_bytes = slot_bytes
        self._owner = owner
        self._closed = False
        self._lock = threading.Lock()  # serialises writers scanning for FREE
        self._scan_from = 0

    # -- lifecycle -----------------------------------------------------

    @classmethod
    def create(cls, slots: int, slot_bytes: int, *, name: str | None = None) -> "ShmRing":
        """Allocate a fresh ring with every slot FREE."""
        if slots < 1:
            raise ValueError(f"ring needs at least 1 slot, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot capacity must be positive, got {slot_bytes}")
        size = _RING_HEADER.size + slots * (_SLOT_HEADER.size + slot_bytes)
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        try:
            _RING_HEADER.pack_into(shm.buf, 0, _RING_MAGIC, _RING_VERSION, slots, slot_bytes)
            ring = ShmRing(shm, slots, slot_bytes, owner=True)
            for slot in range(slots):
                _SLOT_HEADER.pack_into(shm.buf, ring._slot_offset(slot), SLOT_FREE, _SLOT_MAGIC, 0, 0, 0)
        except BaseException:
            # A half-initialised segment must not outlive the failed create.
            shm.close()
            shm.unlink()
            raise
        return ring

    @classmethod
    def attach(cls, name: str) -> "ShmRing":
        """Map an existing ring by name (the shard side).

        Attaching re-registers the segment with the ``resource_tracker``,
        but spawn children share the dispatcher's tracker process and its
        cache is a set, so the re-register is a no-op; the owner's
        :meth:`unlink` remains the single point that deregisters. (An
        attach-side ``unregister`` here would strip the shared entry and
        make the owner's later unlink trip a KeyError inside the tracker.)
        """
        shm = shared_memory.SharedMemory(name=name, create=False)
        try:
            if len(shm.buf) < _RING_HEADER.size:
                raise CodecError(f"shm ring {name!r}: segment smaller than ring header")
            magic, version, slots, slot_bytes = _RING_HEADER.unpack_from(shm.buf, 0)
            if magic != _RING_MAGIC:
                raise CodecError(f"shm ring {name!r}: bad magic {magic!r}")
            if version != _RING_VERSION:
                raise CodecError(f"shm ring {name!r}: version {version}, expected {_RING_VERSION}")
            needed = _RING_HEADER.size + slots * (_SLOT_HEADER.size + slot_bytes)
            if len(shm.buf) < needed:
                raise CodecError(
                    f"shm ring {name!r}: header claims {needed} bytes, segment has {len(shm.buf)}"
                )
        except CodecError:
            shm.close()
            raise
        return cls(shm, slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        """The segment name a peer passes to :meth:`attach`."""
        return self._shm.name

    @property
    def slots(self) -> int:
        return self._slots

    @property
    def slot_bytes(self) -> int:
        """Payload capacity of one slot; larger frames take the pipe."""
        return self._slot_bytes

    def close(self) -> None:
        """Drop this process's mapping (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment; only the creating side may call this."""
        if not self._owner:
            raise ValueError("only the ring's creator may unlink it")
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass

    # -- slot protocol -------------------------------------------------

    def _slot_offset(self, slot: int) -> int:
        return _RING_HEADER.size + slot * (_SLOT_HEADER.size + self._slot_bytes)

    def put(self, frame: bytes) -> int:
        """Publish *frame* into a FREE slot; returns the slot index.

        Raises :class:`RingFull` when no slot is FREE (caller falls back
        to the pipe) and :class:`ValueError` when the frame cannot fit in
        any slot (callers are expected to size-check first).
        """
        if len(frame) > self._slot_bytes:
            raise ValueError(
                f"frame of {len(frame)} bytes exceeds slot capacity {self._slot_bytes}"
            )
        if self._closed:
            # A concurrent teardown (shard died) is ordinary backpressure
            # to callers: they fall back to the pipe and the down-path
            # handles the incarnation.
            raise RingFull("ring torn down")
        try:
            buf = self._shm.buf
            with self._lock:
                for probe in range(self._slots):
                    slot = (self._scan_from + probe) % self._slots
                    offset = self._slot_offset(slot)
                    if buf[offset] != SLOT_FREE:
                        continue
                    self._scan_from = (slot + 1) % self._slots
                    _SLOT_HEADER.pack_into(buf, offset, SLOT_WRITING, _SLOT_MAGIC, 0, 0, 0)
                    start = offset + _SLOT_HEADER.size
                    buf[start : start + len(frame)] = frame
                    _SLOT_HEADER.pack_into(
                        buf, offset, SLOT_WRITING, _SLOT_MAGIC, 0, len(frame), zlib.crc32(frame)
                    )
                    # Publish last: a writer killed before this line leaves
                    # WRITING, which readers refuse — never torn-but-READY.
                    buf[offset] = SLOT_READY
                    return slot
        except (ValueError, TypeError) as exc:
            # close() raced us between the flag check and the buffer op;
            # a released/None memoryview means the incarnation is gone.
            raise RingFull("ring torn down mid-write") from exc
        raise RingFull(f"all {self._slots} slots occupied")

    def put_torn(self, frame: bytes) -> int:
        """Claim a slot and copy only half the payload, never publishing.

        Fault-injection support for the SIGKILL-mid-slot-write drill: the
        slot is left in WRITING exactly as a writer dying mid-copy would,
        so a reader handed its index must refuse it cleanly.
        """
        buf = self._shm.buf
        with self._lock:
            for slot in range(self._slots):
                offset = self._slot_offset(slot)
                if buf[offset] != SLOT_FREE:
                    continue
                _SLOT_HEADER.pack_into(
                    buf, offset, SLOT_WRITING, _SLOT_MAGIC, 0, len(frame), zlib.crc32(frame)
                )
                start = offset + _SLOT_HEADER.size
                half = frame[: len(frame) // 2]
                buf[start : start + len(half)] = half
                return slot
            raise RingFull(f"all {self._slots} slots occupied")

    def get(self, slot: int, *, origin: str = "<slot>") -> bytes:
        """Consume slot *slot*: validate, copy the payload out, retire it.

        Every failure mode — out-of-range index, unpublished slot,
        stomped magic, impossible length, CRC mismatch — raises
        :class:`~repro.errors.CodecError`; the slot is left untouched so
        post-mortems see what the reader saw.
        """
        if not 0 <= slot < self._slots:
            raise CodecError(f"{origin}: slot {slot} out of range 0..{self._slots - 1}")
        if self._closed:
            raise CodecError(f"{origin}: ring torn down")
        try:
            buf = self._shm.buf
            offset = self._slot_offset(slot)
            state, magic, reserved, length, crc = _SLOT_HEADER.unpack_from(buf, offset)
            if state != SLOT_READY:
                raise CodecError(f"{origin}: slot {slot} not published (state {state})")
            if magic != _SLOT_MAGIC:
                raise CodecError(f"{origin}: slot {slot} has bad magic 0x{magic:02x}")
            if reserved != 0:
                raise CodecError(f"{origin}: slot {slot} has nonzero reserved field {reserved}")
            if length > self._slot_bytes:
                raise CodecError(
                    f"{origin}: slot {slot} claims {length} bytes, capacity {self._slot_bytes}"
                )
            start = offset + _SLOT_HEADER.size
            frame = bytes(buf[start : start + length])
            if zlib.crc32(frame) != crc:
                raise CodecError(f"{origin}: slot {slot} CRC mismatch")
            buf[offset] = SLOT_FREE
        except (ValueError, TypeError) as exc:
            raise CodecError(f"{origin}: ring torn down mid-read") from exc
        return frame

    # -- introspection & fault injection -------------------------------

    def occupancy(self) -> int:
        """Slots not currently FREE (gauge fodder: ring pressure)."""
        if self._closed:
            return 0
        try:
            buf = self._shm.buf
            return sum(
                1 for slot in range(self._slots) if buf[self._slot_offset(slot)] != SLOT_FREE
            )
        except (ValueError, TypeError):
            return 0

    def reset(self) -> None:
        """Force every slot back to FREE (tests and post-fault reuse)."""
        buf = self._shm.buf
        with self._lock:
            for slot in range(self._slots):
                _SLOT_HEADER.pack_into(
                    buf, self._slot_offset(slot), SLOT_FREE, _SLOT_MAGIC, 0, 0, 0
                )

    def mutate(self, slot: int, index: int, mask: int) -> None:
        """XOR one byte of slot *slot*'s record (header + payload room).

        Corruption-injection support: property tests walk *index* across
        the record and assert the reader refuses every single-byte flip.
        """
        if not 0 <= slot < self._slots:
            raise ValueError(f"slot {slot} out of range")
        record = _SLOT_HEADER.size + self._slot_bytes
        if not 0 <= index < record:
            raise ValueError(f"byte index {index} outside slot record of {record} bytes")
        offset = self._slot_offset(slot) + index
        self._shm.buf[offset] ^= mask & 0xFF
