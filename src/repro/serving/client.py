"""Blocking client for the detection service (stdlib ``http.client``).

Mirrors the server's wire contract (:mod:`repro.serving.wire`) and adds
the retry discipline a caller under load needs: ``429``/``503`` responses
and transport failures are retried with exponential backoff, honoring the
server's ``Retry-After`` when present. Other non-2xx statuses raise
:class:`~repro.errors.ServingError` immediately — a ``400`` will not
succeed on retry.

Usage::

    client = DetectionClient(host, port)
    client.wait_ready(timeout_s=10.0)
    verdict = client.detect(image)           # DetectionVerdict
    verdicts = client.detect_batch(images)
    client.close()

A client instance holds one keep-alive connection and is **not**
thread-safe; give each thread its own instance (they are cheap).
"""

from __future__ import annotations

import http.client
import json
import time
from dataclasses import dataclass

import numpy as np

from repro.errors import ServingError
from repro.serving.wire import (
    BATCH_CONTENT_TYPE,
    IMAGE_CONTENT_TYPE,
    encode_image_payload,
    pack_batch,
)

__all__ = ["DetectionVerdict", "DetectionClient"]

#: Statuses that signal transient overload and are worth retrying.
_RETRYABLE_STATUSES = frozenset({429, 503})


@dataclass(frozen=True)
class DetectionVerdict:
    """One image's verdict, as returned by the service."""

    request_id: str
    image_id: str
    verdict: str  # "attack" | "benign"
    action: str  # "accepted" | "rejected" | "quarantined" | "sanitized"
    accepted: bool
    votes_for_attack: int
    votes_total: int
    scores: dict[str, float]
    thresholds: dict[str, str]
    latency_ms: float

    @property
    def is_attack(self) -> bool:
        return self.verdict == "attack"

    @classmethod
    def from_payload(cls, payload: dict) -> "DetectionVerdict":
        return cls(**{name: payload[name] for name in cls.__dataclass_fields__})


class DetectionClient:
    """Blocking HTTP client with retry + exponential backoff on 429/503."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout_s: float = 30.0,
        max_retries: int = 5,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self._connection: http.client.HTTPConnection | None = None

    # -- transport -----------------------------------------------------------

    def _connect(self) -> http.client.HTTPConnection:
        if self._connection is None:
            self._connection = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._connection

    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None

    def __enter__(self) -> "DetectionClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _once(
        self, method: str, path: str, body: bytes | None, headers: dict[str, str]
    ) -> tuple[int, dict[str, str], bytes]:
        connection = self._connect()
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            payload = response.read()
        except (http.client.HTTPException, OSError):
            # The connection is in an unknown state; rebuild it on retry.
            self.close()
            raise
        return response.status, dict(response.getheaders()), payload

    def _backoff_s(self, attempt: int, response_headers: dict[str, str]) -> float:
        retry_after = response_headers.get("Retry-After")
        if retry_after is not None:
            try:
                return min(float(retry_after), self.backoff_max_s)
            except ValueError:
                pass
        return min(self.backoff_base_s * 2.0**attempt, self.backoff_max_s)

    def _request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request with the retry discipline; returns (status, headers,
        body) for any terminal status, raising only on retry exhaustion or
        a transport failure that outlives the retries."""
        headers = dict(headers or {})
        last_error: str = ""
        for attempt in range(self.max_retries + 1):
            try:
                status, response_headers, payload = self._once(
                    method, path, body, headers
                )
            except (http.client.HTTPException, OSError) as exc:
                last_error = f"transport error: {exc!r}"
                if attempt >= self.max_retries:
                    break
                time.sleep(self._backoff_s(attempt, {}))
                continue
            if status in _RETRYABLE_STATUSES and attempt < self.max_retries:
                time.sleep(self._backoff_s(attempt, response_headers))
                continue
            return status, response_headers, payload
        raise ServingError(
            f"{method} {path} failed after {self.max_retries + 1} attempts ({last_error})"
        )

    def _request_json(self, method: str, path: str, **kwargs) -> dict:
        status, _, payload = self._request(method, path, **kwargs)
        try:
            decoded = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise ServingError(
                f"{method} {path}: non-JSON response (status {status})"
            ) from exc
        if status != 200:
            message = decoded.get("error", payload[:200]) if isinstance(decoded, dict) else payload[:200]
            raise ServingError(f"{method} {path}: HTTP {status}: {message}")
        return decoded

    # -- the API --------------------------------------------------------------

    def request_raw(
        self,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        headers: dict[str, str] | None = None,
    ) -> tuple[int, dict[str, str], bytes]:
        """One request with the retry discipline, status left to the caller.

        Returns ``(status, headers, body)`` for *any* terminal status —
        a load generator wants to record a 400 or 429 as a data point,
        not have it raised away. Raises :class:`~repro.errors.ServingError`
        only when retries are exhausted without a complete response.
        """
        return self._request(method, path, body=body, headers=headers)

    def detect(
        self,
        image: np.ndarray | None = None,
        *,
        payload: bytes | None = None,
        request_id: str | None = None,
    ) -> DetectionVerdict:
        """Screen one image (an array, or already-encoded PNG/netpbm bytes)."""
        if (image is None) == (payload is None):
            raise ServingError("pass exactly one of image= or payload=")
        body = payload if payload is not None else encode_image_payload(image)
        headers = {"Content-Type": IMAGE_CONTENT_TYPE}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        decoded = self._request_json("POST", "/v1/detect", body=body, headers=headers)
        return DetectionVerdict.from_payload(decoded)

    def detect_batch(
        self, images: list[np.ndarray], *, request_id: str | None = None
    ) -> list[DetectionVerdict]:
        """Screen a list of images in one round trip."""
        body = pack_batch([encode_image_payload(image) for image in images])
        headers = {"Content-Type": BATCH_CONTENT_TYPE}
        if request_id is not None:
            headers["X-Request-Id"] = request_id
        decoded = self._request_json(
            "POST", "/v1/detect/batch", body=body, headers=headers
        )
        return [DetectionVerdict.from_payload(item) for item in decoded["results"]]

    def health(self) -> tuple[int, dict]:
        """One ``GET /healthz`` (no retries): ``(status, payload)``."""
        status, _, payload = self._once("GET", "/healthz", None, {})
        return status, json.loads(payload)

    def wait_ready(self, *, timeout_s: float = 10.0, poll_s: float = 0.05) -> None:
        """Poll ``/healthz`` until ready or *timeout_s* elapses."""
        deadline = time.monotonic() + timeout_s
        last: object = None
        while time.monotonic() < deadline:
            try:
                status, payload = self.health()
            except (http.client.HTTPException, OSError) as exc:
                last = repr(exc)
            else:
                if status == 200:
                    return
                last = payload
            time.sleep(poll_s)
        raise ServingError(f"server not ready after {timeout_s}s (last: {last})")

    def metrics_text(self) -> str:
        """Scrape ``GET /metrics`` (Prometheus text exposition)."""
        status, _, payload = self._request("GET", "/metrics")
        if status != 200:
            raise ServingError(f"GET /metrics: HTTP {status}")
        return payload.decode("utf-8")
