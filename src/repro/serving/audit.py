"""Audit logging for the protected pipeline.

Every decision — benign or flagged — is recorded as one JSON line so a
deployment can answer "what did the detector see and why" after the fact.
Flagged inputs can additionally be quarantined as PNG files next to the
log. Both pieces are plain files; no services, no databases.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.result import EnsembleDetection
from repro.errors import ReproError
from repro.imaging.png import write_png

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True)
class AuditRecord:
    """One pipeline decision, as persisted to the JSONL log."""

    image_id: str
    sequence: int
    verdict: str  # "benign" | "attack"
    action: str  # "accepted" | "rejected" | "quarantined" | "sanitized"
    votes_for_attack: int
    votes_total: int
    scores: dict[str, float]
    thresholds: dict[str, str]
    quarantine_path: str | None = None

    @classmethod
    def from_detection(
        cls,
        image_id: str,
        sequence: int,
        detection: EnsembleDetection,
        action: str,
        quarantine_path: str | None = None,
    ) -> "AuditRecord":
        return cls(
            image_id=image_id,
            sequence=sequence,
            verdict="attack" if detection.is_attack else "benign",
            action=action,
            votes_for_attack=detection.votes_for_attack,
            votes_total=detection.votes_total,
            scores={
                f"{d.method}/{d.metric}": float(d.score) for d in detection.detections
            },
            thresholds={
                f"{d.method}/{d.metric}": d.threshold.describe(d.metric)
                for d in detection.detections
            },
            quarantine_path=quarantine_path,
        )


class AuditLog:
    """Append-only JSONL decision log with an optional quarantine folder."""

    def __init__(self, log_path: str | Path, *, quarantine_dir: str | Path | None = None) -> None:
        self.log_path = Path(log_path)
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = Path(quarantine_dir) if quarantine_dir else None
        if self.quarantine_dir:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        # Serializes appends so concurrent pipeline submissions cannot
        # interleave partial lines, without the pipeline holding its own
        # lock across file I/O.
        self._io_lock = threading.Lock()

    def quarantine(
        self,
        image_id: str,
        image: np.ndarray,
        *,
        artifacts: dict[str, np.ndarray] | None = None,
    ) -> str:
        """Persist a flagged image; returns the stored path.

        *artifacts* are labeled explanation images (the detectors' round
        trip, filtered image, log spectrum — whatever scoring already
        computed), written next to the quarantined input as
        ``<id>.<label>.png`` so an analyst sees *what the detectors saw*
        without re-running them.
        """
        if self.quarantine_dir is None:
            raise ReproError("AuditLog was created without a quarantine directory")
        # Strict allowlist: no dots, so identifiers like "../../x" cannot
        # produce traversal-looking names.
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in image_id)
        path = self.quarantine_dir / f"{safe}.png"
        write_png(path, np.clip(image, 0, 255))
        for label, artifact in (artifacts or {}).items():
            safe_label = "".join(
                c if c.isalnum() or c in "-_" else "_" for c in label
            )
            write_png(
                self.quarantine_dir / f"{safe}.{safe_label}.png",
                np.clip(artifact, 0, 255),
            )
        return str(path)

    def append(self, record: AuditRecord) -> None:
        line = json.dumps(asdict(record)) + "\n"
        with self._io_lock, self.log_path.open("a", encoding="utf-8") as handle:
            handle.write(line)

    def records(self) -> list[AuditRecord]:
        """Read every record back (for reports and tests)."""
        if not self.log_path.exists():
            return []
        out = []
        for line in self.log_path.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                out.append(AuditRecord(**json.loads(line)))
            except (json.JSONDecodeError, TypeError) as exc:
                raise ReproError(f"corrupt audit log line: {exc}") from exc
        return out
