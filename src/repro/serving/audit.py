"""Audit logging for the protected pipeline.

Every decision — benign or flagged — is recorded as one JSON line so a
deployment can answer "what did the detector see and why" after the fact.
Flagged inputs can additionally be quarantined as PNG files next to the
log. Both pieces are plain files; no services, no databases.
"""

from __future__ import annotations

import json
import threading
from dataclasses import asdict, dataclass
from pathlib import Path

import numpy as np

from repro.core.result import EnsembleDetection
from repro.errors import ReproError
from repro.imaging.png import write_png

__all__ = ["AuditRecord", "AuditLog"]


@dataclass(frozen=True)
class AuditRecord:
    """One pipeline decision, as persisted to the JSONL log."""

    image_id: str
    sequence: int
    verdict: str  # "benign" | "attack"
    action: str  # "accepted" | "rejected" | "quarantined" | "sanitized"
    votes_for_attack: int
    votes_total: int
    scores: dict[str, float]
    thresholds: dict[str, str]
    quarantine_path: str | None = None

    @classmethod
    def from_detection(
        cls,
        image_id: str,
        sequence: int,
        detection: EnsembleDetection,
        action: str,
        quarantine_path: str | None = None,
    ) -> "AuditRecord":
        return cls(
            image_id=image_id,
            sequence=sequence,
            verdict="attack" if detection.is_attack else "benign",
            action=action,
            votes_for_attack=detection.votes_for_attack,
            votes_total=detection.votes_total,
            scores={
                f"{d.method}/{d.metric}": float(d.score) for d in detection.detections
            },
            thresholds={
                f"{d.method}/{d.metric}": d.threshold.describe(d.metric)
                for d in detection.detections
            },
            quarantine_path=quarantine_path,
        )


class AuditLog:
    """Append-only JSONL decision log with an optional quarantine folder.

    With ``max_bytes`` set, the log rotates before an append would push the
    current file past the limit: ``log`` becomes ``log.1``, ``log.1``
    becomes ``log.2``, and so on up to ``backup_count`` rotated files (the
    oldest is dropped). A long-running server therefore occupies at most
    ``(backup_count + 1) * max_bytes`` bytes of disk, give or take one
    record. Rotation happens under the same I/O lock as appends, so
    concurrent writers never interleave partial lines or lose records.
    """

    def __init__(
        self,
        log_path: str | Path,
        *,
        quarantine_dir: str | Path | None = None,
        max_bytes: int | None = None,
        backup_count: int = 5,
    ) -> None:
        if max_bytes is not None and max_bytes <= 0:
            raise ReproError(f"max_bytes must be positive, got {max_bytes}")
        if backup_count < 1:
            raise ReproError(f"backup_count must be >= 1, got {backup_count}")
        self.log_path = Path(log_path)
        self.log_path.parent.mkdir(parents=True, exist_ok=True)
        self.quarantine_dir = Path(quarantine_dir) if quarantine_dir else None
        if self.quarantine_dir:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.backup_count = backup_count
        # Serializes appends so concurrent pipeline submissions cannot
        # interleave partial lines, without the pipeline holding its own
        # lock across file I/O.
        self._io_lock = threading.Lock()

    def quarantine(
        self,
        image_id: str,
        image: np.ndarray,
        *,
        artifacts: dict[str, np.ndarray] | None = None,
    ) -> str:
        """Persist a flagged image; returns the stored path.

        *artifacts* are labeled explanation images (the detectors' round
        trip, filtered image, log spectrum — whatever scoring already
        computed), written next to the quarantined input as
        ``<id>.<label>.png`` so an analyst sees *what the detectors saw*
        without re-running them.
        """
        if self.quarantine_dir is None:
            raise ReproError("AuditLog was created without a quarantine directory")
        # Strict allowlist: no dots, so identifiers like "../../x" cannot
        # produce traversal-looking names.
        safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in image_id)
        path = self.quarantine_dir / f"{safe}.png"
        write_png(path, np.clip(image, 0, 255))
        for label, artifact in (artifacts or {}).items():
            safe_label = "".join(
                c if c.isalnum() or c in "-_" else "_" for c in label
            )
            write_png(
                self.quarantine_dir / f"{safe}.{safe_label}.png",
                np.clip(artifact, 0, 255),
            )
        return str(path)

    def _rotated_path(self, index: int) -> Path:
        return self.log_path.with_name(f"{self.log_path.name}.{index}")

    def _rotate_locked(self) -> None:  # analyze: ignore[io-under-lock]
        """Shift ``log -> log.1 -> ... -> log.N`` (caller holds the lock).

        Rotation must be atomic with respect to appends — renaming files
        while another thread writes would tear records — so doing this I/O
        under the I/O lock is the contract, not an accident.
        """
        oldest = self._rotated_path(self.backup_count)
        if oldest.exists():
            oldest.unlink()
        for index in range(self.backup_count - 1, 0, -1):
            source = self._rotated_path(index)
            if source.exists():
                source.replace(self._rotated_path(index + 1))
        if self.log_path.exists():
            self.log_path.replace(self._rotated_path(1))

    def append(self, record: AuditRecord) -> None:  # analyze: ignore[io-under-lock]
        """Write one record as a JSON line (rotating first when needed).

        The whole point of ``_io_lock`` is to serialize exactly this file
        I/O — the pipeline deliberately calls ``append`` *outside* its own
        lock so a slow disk only stalls other writers (see PR 1); the
        analyzer's io-under-lock rule is therefore suppressed here, at the
        one place in the repo whose contract is "I/O under my own lock".
        """
        line = json.dumps(asdict(record)) + "\n"
        with self._io_lock:
            if self.max_bytes is not None:
                try:
                    size = self.log_path.stat().st_size
                except FileNotFoundError:
                    size = 0
                # Rotate *before* crossing the limit so the active file
                # never exceeds max_bytes (unless one record alone does).
                if size and size + len(line.encode("utf-8")) > self.max_bytes:
                    self._rotate_locked()
            with self.log_path.open("a", encoding="utf-8") as handle:
                handle.write(line)

    def flush(self) -> None:
        """Barrier for shutdown: returns once every in-flight append has
        reached the filesystem. Appends open/write/close per record, so
        taking the I/O lock is the whole job."""
        with self._io_lock:
            pass

    def rotated_paths(self) -> list[Path]:
        """Existing rotated files, newest (``.1``) first."""
        return [
            path
            for index in range(1, self.backup_count + 1)
            if (path := self._rotated_path(index)).exists()
        ]

    def records(self, *, include_rotated: bool = False) -> list[AuditRecord]:
        """Read records back (for reports and tests).

        By default only the active file is read; ``include_rotated=True``
        prepends the surviving rotated files in chronological order.
        """
        paths = list(reversed(self.rotated_paths())) if include_rotated else []
        if self.log_path.exists():
            paths.append(self.log_path)
        out = []
        for path in paths:
            for line in path.read_text(encoding="utf-8").splitlines():
                if not line.strip():
                    continue
                try:
                    out.append(AuditRecord(**json.loads(line)))
                except (json.JSONDecodeError, TypeError) as exc:
                    raise ReproError(f"corrupt audit log line: {exc}") from exc
        return out
