"""The strong image-scaling attack (Xiao et al. 2019).

Crafts an attack image ``A`` from an original ``O`` and target ``T`` such
that ``A`` looks like ``O`` while ``scale(A) ≈ T`` (paper Section 2.1,
Eq. 1). Scaling is separable — ``scale(A) = L·A·R`` — so the attack
decomposes into two 1-D problems solved with the batched QP from
:mod:`repro.attacks.qp`:

* **vertical stage** — find an intermediate ``M`` (``h × w'``) close to
  ``O·R`` with ``‖L·M − T‖∞ ≤ ε/2``;
* **horizontal stage** — find ``A`` (``h × w``) close to ``O`` with
  ``‖A·R − M‖∞ ≤ ε/2``.

Because every row of ``L`` sums to one, the two half-budgets compose into
(approximately) the full ε-band on ``L·A·R − T``; the end-to-end bound is
asserted by :func:`repro.attacks.base.verify_attack` rather than assumed.

For ``nearest`` scaling the closed-form injection in
:mod:`repro.attacks.fast_nn` is both exact and ~100× faster; this module
automatically dispatches to it.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackConfig, AttackResult
from repro.attacks.fast_nn import nearest_neighbor_attack
from repro.attacks.qp import solve_columns
from repro.errors import AttackError
from repro.imaging.coefficients import scaling_operators
from repro.imaging.image import as_float, ensure_image

__all__ = ["craft_attack_image", "craft_attack_plane"]


def craft_attack_plane(
    original: np.ndarray,
    target: np.ndarray,
    algorithm: str,
    config: AttackConfig,
) -> np.ndarray:
    """Attack a single 2-D plane; returns the float attack plane."""
    h, w = original.shape
    h_out, w_out = target.shape
    left, right = scaling_operators((h, w), (h_out, w_out), algorithm)
    half = AttackConfig(
        epsilon=config.epsilon / 2.0,
        max_iterations=config.max_iterations,
        penalty_weight=config.penalty_weight,
        penalty_growth=config.penalty_growth,
        penalty_rounds=config.penalty_rounds,
        tolerance=config.tolerance / 2.0,
    )
    # Vertical stage: columns of M live in R^h, constrained through L.
    intermediate = solve_columns(left, original @ right, target, half)
    # Horizontal stage: rows of A live in R^w, constrained through Rᵀ.
    attack_t = solve_columns(right.T, original.T, intermediate.T, half)
    return attack_t.T


def craft_attack_image(
    original: np.ndarray,
    target: np.ndarray,
    *,
    algorithm: str = "bilinear",
    config: AttackConfig | None = None,
) -> AttackResult:
    """Craft an attack image hiding *target* inside *original*.

    ``original`` is ``(H, W)`` or ``(H, W, C)``; ``target`` must have the
    model-input spatial size and the same channel count. Returns an
    :class:`AttackResult` whose ``attack_image`` is float64 in [0, 255].

    Raises :class:`AttackError` when the optimizer cannot satisfy the
    ε-band — the paper's attack has the same failure mode (the box
    constraint can make a target unreachable from a given original).
    """
    ensure_image(original, name="original")
    ensure_image(target, name="target")
    config = config or AttackConfig()
    orig = as_float(original)
    tgt = as_float(target)
    if (orig.ndim == 3) != (tgt.ndim == 3) or (
        orig.ndim == 3 and orig.shape[2] != tgt.shape[2]
    ):
        raise AttackError(
            f"original and target disagree on channels: {orig.shape} vs {tgt.shape}"
        )
    target_shape = tgt.shape[:2]
    if target_shape[0] > orig.shape[0] or target_shape[1] > orig.shape[1]:
        raise AttackError(
            f"target {target_shape} must not exceed original {orig.shape[:2]}; "
            "the attack hides a smaller image inside a larger one"
        )

    if algorithm == "nearest":
        return nearest_neighbor_attack(orig, tgt, original_reference=orig)

    if orig.ndim == 2:
        attack = craft_attack_plane(orig, tgt, algorithm, config)
    else:
        planes = [
            craft_attack_plane(orig[:, :, c], tgt[:, :, c], algorithm, config)
            for c in range(orig.shape[2])
        ]
        attack = np.stack(planes, axis=2)

    return AttackResult(
        attack_image=np.clip(attack, 0.0, 255.0),
        original=orig,
        target=tgt,
        algorithm=algorithm,
        target_shape=target_shape,
    )
