"""Attack-surface analysis for scaling configurations.

Answers the deployment question the paper's background section raises:
*how exposed is my pipeline?* Given a (source size, model input size,
algorithm) triple, this module quantifies the structural properties that
make the image-scaling attack possible:

* **sparsity** — the fraction of source pixels the scaler never reads
  (paper Section 2: the attack hides the target in exactly those the
  scaler *does* read, and is invisible because they are few);
* **vulnerable pixel map** — which source pixels influence the output;
* **stealth bound** — a lower bound on how unnoticeable an attack can be,
  from the per-output weight concentration of the coefficient matrices.

Used by the ``decamouflage analyze`` CLI subcommand and the ratio/algorithm
sweep ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ScalingError
from repro.imaging.coefficients import (
    coefficient_sparsity,
    scaling_operators,
    vulnerable_source_pixels,
)

__all__ = ["SurfaceReport", "analyze_surface", "vulnerability_map", "rate_exposure"]


@dataclass(frozen=True)
class SurfaceReport:
    """Structural exposure of one scaling configuration."""

    source_shape: tuple[int, int]
    model_input_shape: tuple[int, int]
    algorithm: str
    #: downscale ratio per axis
    ratio: tuple[float, float]
    #: fraction of source rows/columns with zero weight (per axis)
    row_sparsity: float
    column_sparsity: float
    #: fraction of all source pixels that influence the output
    influential_fraction: float
    #: mean L2 concentration of each output pixel's source weights; 1.0
    #: means one source pixel fully determines an output pixel (nearest),
    #: lower values mean the attack must spread (and thus grow) its energy.
    weight_concentration: float

    @property
    def exposure(self) -> str:
        """Coarse verdict used by the CLI: critical / high / moderate / low."""
        return rate_exposure(self)

    def describe(self) -> str:
        h, w = self.source_shape
        return "\n".join(
            [
                f"scaling {h}x{w} -> {self.model_input_shape[0]}x{self.model_input_shape[1]} "
                f"({self.algorithm}), ratio {self.ratio[0]:.1f}x{self.ratio[1]:.1f}",
                f"  source pixels the scaler never reads : {100 * (1 - self.influential_fraction):.1f}%",
                f"  per-axis sparsity (rows/cols)        : "
                f"{100 * self.row_sparsity:.1f}% / {100 * self.column_sparsity:.1f}%",
                f"  weight concentration per output pixel: {self.weight_concentration:.2f}",
                f"  exposure: {self.exposure}",
            ]
        )


def analyze_surface(
    source_shape: tuple[int, int],
    model_input_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> SurfaceReport:
    """Compute the structural attack surface of a scaling configuration."""
    (h_in, w_in), (h_out, w_out) = source_shape, model_input_shape
    if h_out > h_in or w_out > w_in:
        raise ScalingError(
            f"analysis assumes downscaling; got {source_shape} -> {model_input_shape}"
        )
    left, right = scaling_operators(source_shape, model_input_shape, algorithm)
    row_matrix = left                # (h_out, h_in)
    col_matrix = right.T             # (w_out, w_in)

    row_sparsity = coefficient_sparsity(row_matrix)
    column_sparsity = coefficient_sparsity(col_matrix)
    rows_used = len(vulnerable_source_pixels(row_matrix))
    cols_used = len(vulnerable_source_pixels(col_matrix))
    influential = (rows_used * cols_used) / (h_in * w_in)

    # For each output sample, ||w||_2 measures how concentrated its source
    # dependence is; the minimal-norm perturbation to move that output by d
    # has energy d^2 / ||w||_2^2, so higher concentration = cheaper attack.
    def concentration(matrix: np.ndarray) -> float:
        return float(np.mean(np.linalg.norm(matrix, axis=1)))

    weight_concentration = concentration(row_matrix) * concentration(col_matrix)

    return SurfaceReport(
        source_shape=source_shape,
        model_input_shape=model_input_shape,
        algorithm=algorithm,
        ratio=(h_in / h_out, w_in / w_out),
        row_sparsity=row_sparsity,
        column_sparsity=column_sparsity,
        influential_fraction=influential,
        weight_concentration=weight_concentration,
    )


def vulnerability_map(
    source_shape: tuple[int, int],
    model_input_shape: tuple[int, int],
    algorithm: str = "bilinear",
) -> np.ndarray:
    """Per-pixel influence weights of the source image, shape ``source_shape``.

    The outer product of the per-axis total weights: zero where the scaler
    never looks, large where a single source pixel dominates an output
    pixel. Visualize it to *see* the attack surface.
    """
    left, right = scaling_operators(source_shape, model_input_shape, algorithm)
    row_weight = np.abs(left).sum(axis=0)
    col_weight = np.abs(right.T).sum(axis=0)
    return np.outer(row_weight, col_weight)


def rate_exposure(report: SurfaceReport) -> str:
    """Map a report to a coarse verdict.

    Thresholds follow the structure of the attack: with < 25% influential
    pixels an attack is essentially invisible (critical); anti-aliased
    scaling that reads everything is the safe end.
    """
    if report.influential_fraction >= 0.999:
        return "low (every source pixel is read; pixel-injection attacks do not apply)"
    if report.influential_fraction < 0.1:
        return "critical (<10% of pixels control the model's entire view)"
    if report.influential_fraction < 0.25:
        return "high (attack perturbations stay visually negligible)"
    return "moderate (attacks possible but increasingly visible)"
