"""Shared types for the image-scaling attack implementations.

The attack (Xiao et al. 2019, paper Eq. 1) crafts ``A = O + Δ`` with

    min ‖Δ‖₂²   s.t.  ‖scale(O + Δ) − T‖∞ ≤ ε,   0 ≤ A ≤ 255

A successful attack satisfies two properties the paper states explicitly:
``A ≈ O`` to a human (small perturbation) and ``scale(A) ≈ T`` to the model.
:func:`verify_attack` measures both so tests and experiments can assert
them quantitatively.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.imaging.metrics import mse, ssim
from repro.imaging.scaling import resize

__all__ = ["AttackConfig", "AttackResult", "AttackReport", "verify_attack"]


@dataclass(frozen=True)
class AttackConfig:
    """Optimization knobs for the strong attack.

    ``epsilon`` is the paper's ε: the allowed ∞-norm deviation between the
    downscaled attack image and the target, on the 0–255 pixel scale.
    """

    epsilon: float = 4.0
    max_iterations: int = 300
    penalty_weight: float = 50.0
    penalty_growth: float = 4.0
    penalty_rounds: int = 4
    tolerance: float = 0.5


@dataclass(frozen=True)
class AttackResult:
    """An attack image together with its provenance."""

    attack_image: np.ndarray
    original: np.ndarray
    target: np.ndarray
    algorithm: str
    target_shape: tuple[int, int]

    def downscaled(self) -> np.ndarray:
        """What the CNN model sees: the attack image after scaling."""
        return resize(self.attack_image, self.target_shape, self.algorithm)


@dataclass(frozen=True)
class AttackReport:
    """Quantified success of an attack (both paper properties)."""

    #: ‖scale(A) − T‖∞ — target fidelity; small means the model sees T.
    target_linf: float
    #: MSE(scale(A), T) on the model-input scale.
    target_mse: float
    #: MSE(A, O) — perturbation size; small means a human still sees O.
    perturbation_mse: float
    #: SSIM(A, O) — perceptual similarity of attack image to the original.
    perturbation_ssim: float

    def succeeded(self, *, linf_budget: float = 16.0, min_ssim: float = 0.7) -> bool:
        """Conservative success test used by integration tests."""
        return self.target_linf <= linf_budget and self.perturbation_ssim >= min_ssim


def verify_attack(result: AttackResult) -> AttackReport:
    """Measure both attack properties for a crafted image."""
    downscaled = result.downscaled()
    target = np.asarray(result.target, dtype=np.float64)
    return AttackReport(
        target_linf=float(np.max(np.abs(downscaled - target))),
        target_mse=mse(downscaled, target),
        perturbation_mse=mse(result.attack_image, result.original),
        perturbation_ssim=ssim(result.attack_image, result.original),
    )
