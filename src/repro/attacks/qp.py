"""Box-constrained least-distortion solver for the scaling attack.

Solves, for a whole batch of columns at once,

    min ‖X − X₀‖²   s.t.  ‖C·X − T‖∞ ≤ ε,   0 ≤ X ≤ 255

where ``C`` is a 1-D scaling coefficient matrix (shape ``n_out × n_in``),
``X``/``X₀`` are ``n_in × m`` and ``T`` is ``n_out × m``. This is the
building block both stages of the strong attack use (Xiao et al. solve the
same subproblem with an off-the-shelf QP solver; see DESIGN.md §3).

Strategy — fast and deterministic:

1. **Pseudo-inverse warm start.** The equality-constrained minimizer of
   ``‖X − X₀‖²`` s.t. ``C·X = T`` is ``X₀ + Cᵀ(CCᵀ)⁻¹(T − C·X₀)`` — a
   closed form, since ``CCᵀ`` is a small ``n_out × n_out`` Gram matrix.
2. **Projected gradient refinement** on the exact-penalty objective to
   restore the box and relax the equality to the ε-band. The step size is
   set from the penalty curvature bound ``2 + 2λσ_max(C)²``, so no line
   search is needed; λ grows geometrically until constraints are met.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackConfig
from repro.errors import AttackError

__all__ = ["solve_columns", "equality_warm_start", "max_violation"]


def equality_warm_start(
    coefficients: np.ndarray,
    x0: np.ndarray,
    targets: np.ndarray,
) -> np.ndarray:
    """Closed-form minimum-distortion solution of ``C·X = T`` (no box).

    Uses a solve against the Gram matrix ``CCᵀ`` (regularized by a tiny
    ridge for rank-deficient kernels such as area-averaging at non-integer
    ratios).
    """
    gram = coefficients @ coefficients.T
    ridge = 1e-10 * np.trace(gram) / max(gram.shape[0], 1)
    gram = gram + ridge * np.eye(gram.shape[0])
    residual = targets - coefficients @ x0
    try:
        correction = coefficients.T @ np.linalg.solve(gram, residual)
    except np.linalg.LinAlgError as exc:  # pragma: no cover - ridge prevents this
        raise AttackError(f"singular Gram matrix in warm start: {exc}") from exc
    return x0 + correction


def max_violation(
    coefficients: np.ndarray,
    x: np.ndarray,
    targets: np.ndarray,
    epsilon: float,
) -> float:
    """Worst ∞-norm constraint violation of the current iterate."""
    residual = coefficients @ x - targets
    return float(np.maximum(np.abs(residual) - epsilon, 0.0).max(initial=0.0))


def _spectral_norm_sq(matrix: np.ndarray, iterations: int = 30) -> float:
    """σ_max(C)² via power iteration on CᵀC (deterministic start)."""
    v = np.ones(matrix.shape[1])
    v /= np.linalg.norm(v)
    for _ in range(iterations):
        w = matrix.T @ (matrix @ v)
        norm = np.linalg.norm(w)
        if norm == 0:
            return 0.0
        v = w / norm
    return float(v @ (matrix.T @ (matrix @ v)))


def solve_columns(
    coefficients: np.ndarray,
    x0: np.ndarray,
    targets: np.ndarray,
    config: AttackConfig,
) -> np.ndarray:
    """Solve the batched box/ε-band QP; returns ``X`` with ``X₀``'s shape.

    Raises :class:`AttackError` if the final iterate still violates the
    ε-band by more than ``config.tolerance`` — callers treat that as "this
    original/target pair cannot be attacked at this ε", which genuinely
    happens when the box constraint binds (e.g. a very dark original and a
    very bright target).
    """
    if coefficients.ndim != 2:
        raise AttackError(f"coefficient matrix must be 2-D, got {coefficients.shape}")
    if x0.shape[0] != coefficients.shape[1]:
        raise AttackError(
            f"x0 rows {x0.shape[0]} != coefficient columns {coefficients.shape[1]}"
        )
    if targets.shape[0] != coefficients.shape[0]:
        raise AttackError(
            f"target rows {targets.shape[0]} != coefficient rows {coefficients.shape[0]}"
        )

    x = np.clip(equality_warm_start(coefficients, x0, targets), 0.0, 255.0)
    if max_violation(coefficients, x, targets, config.epsilon) <= config.tolerance:
        return x

    sigma_sq = _spectral_norm_sq(coefficients)
    weight = config.penalty_weight
    check_every = 25
    for _ in range(config.penalty_rounds):
        step = 1.0 / (2.0 + 2.0 * weight * sigma_sq)
        for iteration in range(config.max_iterations):
            residual = coefficients @ x - targets
            # Exact-penalty subgradient of Σ relu(|r| − ε)².
            excess = np.sign(residual) * np.maximum(np.abs(residual) - config.epsilon, 0.0)
            gradient = 2.0 * (x - x0) + 2.0 * weight * (coefficients.T @ excess)
            x = np.clip(x - step * gradient, 0.0, 255.0)
            if (
                iteration % check_every == check_every - 1
                and max_violation(coefficients, x, targets, config.epsilon)
                <= config.tolerance
            ):
                return x
        if max_violation(coefficients, x, targets, config.epsilon) <= config.tolerance:
            return x
        weight *= config.penalty_growth

    violation = max_violation(coefficients, x, targets, config.epsilon)
    raise AttackError(
        f"attack optimizer did not reach the ε-band: residual violation "
        f"{violation:.2f} > tolerance {config.tolerance} (ε={config.epsilon})"
    )
