"""Image-scaling attack substrate (Xiao et al. 2019) and derivatives.

Decamouflage detects these attacks; to reproduce the paper we must also be
able to *mount* them. The strong attack, its nearest-neighbor closed form,
adaptive variants for the hardening discussion, and the backdoor-poisoning
pipeline all live here.
"""

from repro.attacks.adaptive import (
    detector_aware_attack,
    palette_matched_attack,
    partial_attack,
    relaxed_attack,
    smoothed_attack,
)
from repro.attacks.analysis import (
    SurfaceReport,
    analyze_surface,
    rate_exposure,
    vulnerability_map,
)
from repro.attacks.backdoor import (
    PoisonedSample,
    TriggerSpec,
    poison_dataset,
    stamp_trigger,
)
from repro.attacks.base import AttackConfig, AttackReport, AttackResult, verify_attack
from repro.attacks.fast_nn import nearest_neighbor_attack, sampled_source_indices
from repro.attacks.qp import equality_warm_start, max_violation, solve_columns
from repro.attacks.strong import craft_attack_image, craft_attack_plane

__all__ = [
    "AttackConfig",
    "AttackReport",
    "AttackResult",
    "SurfaceReport",
    "analyze_surface",
    "rate_exposure",
    "vulnerability_map",
    "PoisonedSample",
    "TriggerSpec",
    "craft_attack_image",
    "craft_attack_plane",
    "detector_aware_attack",
    "equality_warm_start",
    "max_violation",
    "nearest_neighbor_attack",
    "palette_matched_attack",
    "partial_attack",
    "poison_dataset",
    "relaxed_attack",
    "sampled_source_indices",
    "smoothed_attack",
    "solve_columns",
    "stamp_trigger",
    "verify_attack",
]
