"""Adaptive attack variants used to stress-test the detectors.

The paper's Discussion section argues the *ensemble* matters because an
adaptive attacker may defeat one detector at a time. These variants model
the obvious adaptations, each trading away some of the attack's own goals:

* :func:`smoothed_attack` — low-pass the perturbation to blunt the
  steganalysis detector's periodic-peak signal; costs target fidelity.
* :func:`relaxed_attack` — raise ε so less perturbation energy is needed,
  shrinking the scaling detector's MSE gap; costs target fidelity.
* :func:`partial_attack` — blend the perturbation by ``strength < 1`` to
  slide under score thresholds; again costs target fidelity.

Experiments (``bench_ablation_adaptive``) measure, for each variant, both
the per-detector evasion rate and whether the attack still *works* (the
downscaled image still resembles the target).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackConfig, AttackResult
from repro.attacks.strong import craft_attack_image
from repro.errors import AttackError
from repro.imaging.filtering import gaussian_filter

__all__ = [
    "smoothed_attack",
    "relaxed_attack",
    "partial_attack",
    "palette_matched_attack",
    "detector_aware_attack",
]


def detector_aware_attack(
    original: np.ndarray,
    target: np.ndarray,
    *,
    algorithm: str = "bilinear",
    evasion_weight: float = 1.0,
    payload_weight: float = 50.0,
    iterations: int = 400,
) -> AttackResult:
    """The strongest gradient-based adaptive attacker.

    Jointly minimizes, by projected gradient descent on the attack image
    ``A``::

        ‖A − O‖²                                   (stay invisible)
        + payload_weight · ‖L·A·R − T‖²            (deliver the target)
        + evasion_weight · ‖A − up(down(A))‖²      (evade the scaling detector)

    The first and third terms pull together; the second pulls against both
    — that tension is exactly the paper's defense-in-depth argument, and
    :func:`repro.eval.experiments.ablation_adaptive_attacks` quantifies it.
    Raising ``evasion_weight`` buys a lower round-trip score at the cost of
    payload fidelity; there is no setting that wins both.
    """
    from repro.imaging.coefficients import scaling_operators
    from repro.imaging.image import as_float, ensure_image

    ensure_image(original, name="original")
    ensure_image(target, name="target")
    orig = as_float(original)
    tgt = as_float(target)
    target_shape = tgt.shape[:2]
    h, w = orig.shape[:2]
    down_l, down_r = scaling_operators((h, w), target_shape, algorithm)
    up_l, up_r = scaling_operators(target_shape, (h, w), algorithm)

    # Gradient-Lipschitz bound from exact operator norms: the payload term
    # curves like 2·pw·(σ(L)σ(R))², the evasion term like
    # 2·ew·(1 + σ(U_l)σ(L)σ(R)σ(U_r))² — upscale operators have spectral
    # norm ≈ √ratio, so this is far above 1 and must not be guessed.
    from repro.attacks.qp import _spectral_norm_sq

    sigma_down = np.sqrt(_spectral_norm_sq(down_l) * _spectral_norm_sq(down_r.T))
    sigma_up = np.sqrt(_spectral_norm_sq(up_l) * _spectral_norm_sq(up_r.T))
    curvature = (
        2.0
        + 2.0 * payload_weight * sigma_down**2
        + 2.0 * evasion_weight * (1.0 + sigma_up * sigma_down) ** 2
    )
    step = 1.0 / curvature

    def optimize_plane(o_plane: np.ndarray, t_plane: np.ndarray) -> np.ndarray:
        a = o_plane.copy()
        for _ in range(iterations):
            scaled = down_l @ a @ down_r
            payload_residual = scaled - t_plane
            round_trip = a - up_l @ scaled @ up_r
            # d/dA ||A - U(L A R)||^2 = 2 (I - ULR-adjoint) applied to rt.
            evasion_grad = 2.0 * (
                round_trip - down_l.T @ (up_l.T @ round_trip @ up_r.T) @ down_r.T
            )
            gradient = (
                2.0 * (a - o_plane)
                + payload_weight * 2.0 * (down_l.T @ payload_residual @ down_r.T)
                + evasion_weight * evasion_grad
            )
            a = np.clip(a - step * gradient, 0.0, 255.0)
        return a

    if orig.ndim == 2:
        attack = optimize_plane(orig, tgt)
    else:
        attack = np.stack(
            [
                optimize_plane(orig[:, :, c], tgt[:, :, c])
                for c in range(orig.shape[2])
            ],
            axis=2,
        )
    return AttackResult(
        attack_image=attack,
        original=orig,
        target=tgt,
        algorithm=algorithm,
        target_shape=target_shape,
    )


def _rebuild(result: AttackResult, attack_image: np.ndarray) -> AttackResult:
    return AttackResult(
        attack_image=np.clip(attack_image, 0.0, 255.0),
        original=result.original,
        target=result.target,
        algorithm=result.algorithm,
        target_shape=result.target_shape,
    )


def smoothed_attack(
    original: np.ndarray,
    target: np.ndarray,
    *,
    algorithm: str = "bilinear",
    sigma: float = 0.8,
    config: AttackConfig | None = None,
) -> AttackResult:
    """Strong attack followed by Gaussian smoothing of the perturbation.

    Smoothing spreads each injected pixel across its neighbours, which
    weakens the regular-grid frequency peaks the steganalysis detector
    counts — and simultaneously corrupts the values the scaler samples, so
    the hidden target degrades as ``sigma`` grows.
    """
    base = craft_attack_image(original, target, algorithm=algorithm, config=config)
    delta = base.attack_image - base.original
    smoothed = base.original + gaussian_filter(delta + 128.0, sigma=sigma) - 128.0
    return _rebuild(base, smoothed)


def relaxed_attack(
    original: np.ndarray,
    target: np.ndarray,
    *,
    algorithm: str = "bilinear",
    epsilon: float = 32.0,
    config: AttackConfig | None = None,
) -> AttackResult:
    """Strong attack with a loose ε-band (less faithful hidden target)."""
    base_config = config or AttackConfig()
    if epsilon < base_config.tolerance:
        raise AttackError(f"epsilon {epsilon} below solver tolerance")
    loose = AttackConfig(
        epsilon=epsilon,
        max_iterations=base_config.max_iterations,
        penalty_weight=base_config.penalty_weight,
        penalty_growth=base_config.penalty_growth,
        penalty_rounds=base_config.penalty_rounds,
        tolerance=base_config.tolerance,
    )
    return craft_attack_image(original, target, algorithm=algorithm, config=loose)


def palette_matched_attack(
    original: np.ndarray,
    target: np.ndarray,
    *,
    algorithm: str = "bilinear",
    config: AttackConfig | None = None,
) -> AttackResult:
    """Strong attack with the target's palette matched to the cover's.

    The adaptive answer to histogram-based defenses (Quiring et al.): remap
    the hidden target's intensities so its color distribution equals the
    *downscaled cover's* before embedding. Any detector comparing color
    histograms then sees nothing, while the spatial-content deception is
    preserved (the target keeps its structure, only recolored).
    """
    from repro.imaging.histogram import histogram_match
    from repro.imaging.scaling import resize

    target_shape = np.asarray(target).shape[:2]
    reference = resize(original, target_shape, algorithm)
    recolored = histogram_match(target, reference)
    return craft_attack_image(original, recolored, algorithm=algorithm, config=config)


def partial_attack(
    original: np.ndarray,
    target: np.ndarray,
    *,
    algorithm: str = "bilinear",
    strength: float = 0.5,
    config: AttackConfig | None = None,
) -> AttackResult:
    """Apply only ``strength`` of the optimal perturbation (0 < strength ≤ 1)."""
    if not 0.0 < strength <= 1.0:
        raise AttackError(f"strength must be in (0, 1], got {strength}")
    base = craft_attack_image(original, target, algorithm=algorithm, config=config)
    blended = base.original + strength * (base.attack_image - base.original)
    return _rebuild(base, blended)
