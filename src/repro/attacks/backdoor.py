"""Image-scaling-assisted backdoor poisoning (paper Section 2.2).

The attack chain the paper describes for face recognition, reproduced here
against the synthetic classification task in :mod:`repro.ml`:

1. take images of *other* classes and stamp a trigger patch on them
   (the paper's black-frame eye-glasses → a dark square patch here);
2. use the image-scaling attack to disguise each triggered image inside a
   clean image of the *victim* class, so content and label look consistent
   to a human data curator;
3. a model trained on the poisoned set learns "trigger ⇒ victim class".

Decamouflage's offline mode defends exactly this pipeline by filtering the
poisoned images before training — demonstrated end to end in
``examples/backdoor_defense.py`` and the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackConfig, AttackResult
from repro.attacks.strong import craft_attack_image
from repro.errors import AttackError
from repro.imaging.image import as_float, ensure_image

__all__ = ["TriggerSpec", "stamp_trigger", "PoisonedSample", "poison_dataset"]


@dataclass(frozen=True)
class TriggerSpec:
    """A square patch trigger (size as a fraction of the image side)."""

    size_fraction: float = 0.25
    value: float = 20.0  # dark patch, akin to black-frame glasses
    corner: str = "bottom-right"  # one of the four corners

    def patch_bounds(self, height: int, width: int) -> tuple[int, int, int, int]:
        """(row0, col0, row1, col1) of the trigger patch, exclusive ends."""
        side = max(2, int(round(self.size_fraction * min(height, width))))
        if self.corner == "top-left":
            return 0, 0, side, side
        if self.corner == "top-right":
            return 0, width - side, side, width
        if self.corner == "bottom-left":
            return height - side, 0, height, side
        if self.corner == "bottom-right":
            return height - side, width - side, height, width
        raise AttackError(f"unknown trigger corner {self.corner!r}")


def stamp_trigger(image: np.ndarray, spec: TriggerSpec | None = None) -> np.ndarray:
    """Return a copy of *image* with the trigger patch stamped on it."""
    ensure_image(image)
    spec = spec or TriggerSpec()
    stamped = as_float(image)
    r0, c0, r1, c1 = spec.patch_bounds(*stamped.shape[:2])
    stamped[r0:r1, c0:c1] = spec.value
    return stamped


@dataclass(frozen=True)
class PoisonedSample:
    """One poisoned training sample: attack image + its (clean) label."""

    attack: AttackResult
    label: int  # the victim class label the curator will assign
    source_label: int  # true class of the hidden triggered image


def poison_dataset(
    victim_images: list[np.ndarray],
    trigger_sources: list[tuple[np.ndarray, int]],
    victim_label: int,
    *,
    model_input_shape: tuple[int, int],
    algorithm: str = "bilinear",
    trigger: TriggerSpec | None = None,
    config: AttackConfig | None = None,
) -> list[PoisonedSample]:
    """Craft poisoned samples pairing victim-class covers with triggered images.

    ``victim_images`` are large clean images of the victim class (the
    covers). ``trigger_sources`` are (image, true_label) pairs, already at
    ``model_input_shape`` or larger; each gets the trigger stamped and is
    hidden inside the corresponding cover. Pairs are matched positionally;
    extra covers are ignored.
    """
    if not victim_images or not trigger_sources:
        raise AttackError("poison_dataset needs at least one cover and one source")
    trigger = trigger or TriggerSpec()
    samples: list[PoisonedSample] = []
    for cover, (source, source_label) in zip(victim_images, trigger_sources):
        source = as_float(source)
        if source.shape[:2] != model_input_shape:
            from repro.imaging.scaling import resize

            source = resize(source, model_input_shape, algorithm)
        triggered = stamp_trigger(source, trigger)
        attack = craft_attack_image(
            cover, triggered, algorithm=algorithm, config=config
        )
        samples.append(
            PoisonedSample(attack=attack, label=victim_label, source_label=source_label)
        )
    return samples
