"""Closed-form scaling attack against nearest-neighbor interpolation.

INTER_NEAREST reads exactly one source pixel per output pixel, so the
optimal attack needs no optimizer at all: overwrite precisely the sampled
source pixels with the target values and leave everything else untouched.
The perturbation is provably minimal in ‖Δ‖₀ *and* the scaled output equals
the target exactly (ε = 0).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import AttackResult
from repro.errors import AttackError
from repro.imaging.coefficients import scaling_matrix
from repro.imaging.image import as_float, ensure_image

__all__ = ["nearest_neighbor_attack", "sampled_source_indices"]


def sampled_source_indices(n_in: int, n_out: int) -> np.ndarray:
    """Source indices INTER_NEAREST reads when mapping ``n_in → n_out``.

    Derived from the coefficient matrix so the attack and the resizer can
    never disagree on the sampling convention.
    """
    matrix = scaling_matrix(n_in, n_out, "nearest")
    return np.argmax(matrix, axis=1)


def nearest_neighbor_attack(
    original: np.ndarray,
    target: np.ndarray,
    *,
    original_reference: np.ndarray | None = None,
) -> AttackResult:
    """Inject *target* into the pixels nearest-neighbor scaling samples."""
    ensure_image(original, name="original")
    ensure_image(target, name="target")
    orig = as_float(original)
    tgt = as_float(target)
    h, w = orig.shape[:2]
    h_out, w_out = tgt.shape[:2]
    if h_out > h or w_out > w:
        raise AttackError(
            f"target {tgt.shape[:2]} must not exceed original {orig.shape[:2]}"
        )
    rows = sampled_source_indices(h, h_out)
    cols = sampled_source_indices(w, w_out)
    attack = orig.copy()
    attack[np.ix_(rows, cols)] = tgt
    return AttackResult(
        attack_image=attack,
        original=original_reference if original_reference is not None else orig,
        target=tgt,
        algorithm="nearest",
        target_shape=(h_out, w_out),
    )
