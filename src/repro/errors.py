"""Exception hierarchy for the :mod:`repro` package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures with one clause
without also swallowing programming errors (``TypeError`` and friends are
still raised directly for misuse that indicates a bug in the caller).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ImageError(ReproError):
    """An image array failed validation (wrong shape, dtype, or range)."""


class CodecError(ReproError):
    """A file could not be decoded or encoded (PNG/PPM substrate)."""


class ScalingError(ReproError):
    """An invalid scaling request (non-positive size, unknown algorithm)."""


class AttackError(ReproError):
    """The attack optimizer could not produce a valid attack image."""


class CalibrationError(ReproError):
    """Threshold calibration was asked to run on insufficient data."""


class DetectionError(ReproError):
    """A detector was used before calibration or with invalid options."""


class EvalError(ReproError):
    """The experiment harness was asked for something it cannot do
    (unknown experiment id, unusable cache directory, bad sweep axis)."""


class ServingError(ReproError):
    """The detection service could not satisfy a request (client side:
    transport failures, retries exhausted, non-success responses)."""


class LoadLabError(ReproError):
    """The load lab was asked for something it cannot do (unknown
    scenario, malformed spec, unusable results payload)."""
