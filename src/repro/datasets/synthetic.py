"""Synthetic natural-style image generator.

Composes the low-level textures into color "photographs": a smooth
background, a few shaded objects, fine texture, lighting vignette, and mild
sensor noise. The result has the statistics the detectors care about —
1/f spectral decay, piecewise-smooth regions, sharp-but-sparse edges —
without any external data.

Two *families* are provided, standing in for the paper's two datasets (see
DESIGN.md §3): ``"neurips"``-like images (used for threshold calibration)
and ``"caltech"``-like images (the unseen evaluation set). The families
differ in palette, object mix, texture energy, and noise level, so a
threshold that transfers between them demonstrates the same generality
claim the paper makes across its two real datasets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets import textures
from repro.errors import ImageError
from repro.imaging.filtering import gaussian_filter

__all__ = ["SceneConfig", "FAMILIES", "generate_image", "generate_class_image"]


@dataclass(frozen=True)
class SceneConfig:
    """Knobs controlling one family of generated scenes."""

    name: str
    #: fractal-noise spectral exponent range (higher = smoother background)
    beta_range: tuple[float, float]
    #: number of foreground objects
    object_range: tuple[int, int]
    #: amplitude of the fine texture layer (0–1 scale)
    texture_amplitude: float
    #: std of additive Gaussian sensor noise (0–255 scale)
    noise_std: float
    #: saturation of the random palette (0 = gray, 1 = vivid)
    saturation: float
    #: vignette strength
    vignette: float


FAMILIES: dict[str, SceneConfig] = {
    # Stand-in for the NeurIPS-2017 competition images: photographic,
    # moderately textured, vivid.
    "neurips": SceneConfig(
        name="neurips",
        beta_range=(1.8, 2.6),
        object_range=(2, 5),
        texture_amplitude=0.10,
        noise_std=2.0,
        saturation=0.9,
        vignette=0.30,
    ),
    # Stand-in for Caltech-256: different palette, composition, and texture
    # mix so it acts as a genuinely *unseen* distribution for evaluation.
    # Sensor-level statistics (noise, fine-texture energy) stay close to the
    # calibration family — as they do between real photo datasets — because
    # the paper's threshold-transfer claim depends on exactly that.
    "caltech": SceneConfig(
        name="caltech",
        beta_range=(1.6, 2.3),
        object_range=(1, 4),
        texture_amplitude=0.11,
        noise_std=2.0,
        saturation=0.7,
        vignette=0.20,
    ),
}


def _random_color(rng: np.random.Generator, saturation: float) -> np.ndarray:
    """Random RGB color (0–1) with controlled saturation."""
    base = rng.uniform(0.15, 0.95)
    tint = rng.uniform(-0.5, 0.5, size=3) * saturation
    return np.clip(base + tint, 0.05, 1.0)


def _colorize(plane: np.ndarray, color: np.ndarray) -> np.ndarray:
    """Lift a [0,1] plane to RGB by multiplying with a color."""
    return plane[:, :, None] * color[None, None, :]


def generate_image(
    shape: tuple[int, int],
    rng: np.random.Generator,
    *,
    family: str = "neurips",
) -> np.ndarray:
    """Generate one synthetic color photograph, uint8 ``(H, W, 3)``."""
    if family not in FAMILIES:
        known = ", ".join(sorted(FAMILIES))
        raise ImageError(f"unknown image family {family!r}; known: {known}")
    config = FAMILIES[family]
    h, w = shape
    if h < 8 or w < 8:
        raise ImageError(f"scene images must be at least 8x8, got {shape}")

    beta = rng.uniform(*config.beta_range)
    background = textures.fractal_noise((h, w), rng, beta=beta)
    background = 0.6 * background + 0.4 * textures.linear_gradient((h, w), rng)
    canvas = _colorize(background, _random_color(rng, config.saturation))

    # Foreground objects: smooth-shaded polygons and blobs with soft edges.
    n_objects = int(rng.integers(config.object_range[0], config.object_range[1] + 1))
    for _ in range(n_objects):
        if rng.random() < 0.6:
            mask = textures.polygon_mask((h, w), rng, vertices=int(rng.integers(3, 9)))
        else:
            blob = textures.gaussian_blobs((h, w), rng, count=1)
            mask = (blob > rng.uniform(0.45, 0.7)).astype(np.float64)
        # Soften the silhouette slightly, as real optics do.
        mask = gaussian_filter(mask * 255.0, sigma=rng.uniform(0.6, 1.6)) / 255.0
        shading = 0.55 + 0.45 * textures.radial_gradient((h, w), rng)
        obj = _colorize(mask * shading, _random_color(rng, config.saturation))
        alpha = mask[:, :, None] * rng.uniform(0.6, 1.0)
        canvas = canvas * (1.0 - alpha) + obj * alpha

    # Fine texture layer + photographic vignette. Mostly aperiodic fractal
    # grain, as in photographs; a small fraction of images get a faint
    # periodic weave — the realistic "hard case" for the steganalysis
    # detector (the paper's benign FRR of 1.7% comes from such images).
    if rng.random() < 0.04:
        # Coarse weaves only: periods below ~6% of the image side would put
        # spectral peaks into the band where scaling-attack grids live,
        # which photographs rarely do (the paper's benign FRR is 1.7%).
        texture = textures.stripes(
            (h, w), rng, min_period=0.06 * min(h, w), max_period=0.18 * min(h, w)
        )
        amplitude = 0.35 * config.texture_amplitude
    else:
        texture = textures.fractal_noise((h, w), rng, beta=1.2)
        amplitude = config.texture_amplitude
    canvas += amplitude * (texture[:, :, None] - 0.5)
    canvas *= textures.vignette((h, w), strength=config.vignette)[:, :, None]

    image = np.clip(canvas, 0.0, 1.0) * 255.0
    image += rng.normal(0.0, config.noise_std, size=image.shape)
    return np.clip(np.rint(image), 0, 255).astype(np.uint8)


def generate_class_image(
    shape: tuple[int, int],
    rng: np.random.Generator,
    class_id: int,
    *,
    n_classes: int = 10,
    jitter: float = 0.15,
) -> np.ndarray:
    """Generate an image whose *class* is visually recoverable.

    Used by the ML substrate (backdoor demo, Table 9 stand-in classifier).
    Each class is a distinctive pattern — hue + structure combination —
    rendered with random jitter so a classifier has something non-trivial
    but learnable to do.
    """
    if not 0 <= class_id < n_classes:
        raise ImageError(f"class_id {class_id} out of range [0, {n_classes})")
    h, w = shape
    hue_angle = 2.0 * np.pi * class_id / n_classes
    color = 0.5 + 0.45 * np.array(
        [np.cos(hue_angle), np.cos(hue_angle - 2.1), np.cos(hue_angle + 2.1)]
    )

    structure_kind = class_id % 4
    if structure_kind == 0:
        plane = textures.stripes((h, w), rng, min_period=6 + class_id, max_period=10 + class_id)
    elif structure_kind == 1:
        plane = textures.checkerboard((h, w), rng, min_cell=4 + class_id // 2, max_cell=6 + class_id)
    elif structure_kind == 2:
        plane = textures.gaussian_blobs((h, w), rng, count=2 + class_id // 3)
    else:
        plane = textures.radial_gradient((h, w), rng)

    canvas = _colorize(0.25 + 0.75 * plane, color)
    canvas += jitter * (textures.fractal_noise((h, w), rng, beta=1.5)[:, :, None] - 0.5)
    image = np.clip(canvas, 0.0, 1.0) * 255.0
    return np.clip(np.rint(image), 0, 255).astype(np.uint8)
