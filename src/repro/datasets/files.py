"""Directory-backed image collections (real-data adapter).

The synthetic corpora make the reproduction self-contained, but downstream
users have *real* images on disk. This module bridges the gap: load a
folder of PNG/PPM/PGM files as the same kind of image list every API in
this library consumes (calibration hold-outs, scan targets, experiment
corpora).

Files are loaded lazily and sorted by name so runs are deterministic.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from pathlib import Path

import numpy as np

from repro.errors import CodecError, ImageError
from repro.imaging.png import read_png
from repro.imaging.ppm import read_ppm

__all__ = ["SUPPORTED_EXTENSIONS", "list_image_files", "DirectoryCorpus", "load_directory"]

_READERS = {".png": read_png, ".ppm": read_ppm, ".pgm": read_ppm}

#: File extensions the loader understands.
SUPPORTED_EXTENSIONS = tuple(sorted(_READERS))


def list_image_files(directory: str | Path) -> list[Path]:
    """Supported image files directly inside *directory*, sorted by name."""
    root = Path(directory)
    if not root.is_dir():
        raise ImageError(f"{root} is not a directory")
    return sorted(
        path for path in root.iterdir()
        if path.is_file() and path.suffix.lower() in _READERS
    )


class DirectoryCorpus(Sequence):
    """Lazy, cached, name-ordered view of a folder of images.

    Quacks like :class:`repro.datasets.Corpus`: indexing returns uint8
    arrays, iteration walks all images, ``identifier(i)`` names them for
    reports. Decode failures raise :class:`~repro.errors.CodecError` with
    the offending filename.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.paths = list_image_files(self.directory)
        if not self.paths:
            raise ImageError(
                f"{self.directory} contains no supported images "
                f"({', '.join(SUPPORTED_EXTENSIONS)})"
            )
        self._cache: dict[int, np.ndarray] = {}

    def __len__(self) -> int:
        return len(self.paths)

    def identifier(self, index: int) -> str:
        return self.paths[index].name

    def __getitem__(self, index: int) -> np.ndarray:
        if isinstance(index, slice):
            raise TypeError("DirectoryCorpus does not support slicing")
        if index < 0:
            index += len(self.paths)
        if not 0 <= index < len(self.paths):
            raise IndexError(f"index {index} out of range [0, {len(self.paths)})")
        if index not in self._cache:
            path = self.paths[index]
            try:
                self._cache[index] = _READERS[path.suffix.lower()](path)
            except CodecError as exc:
                raise CodecError(f"{path.name}: {exc}") from exc
            except OSError as exc:
                # Unreadable file: surface as a codec failure with the
                # filename, not an uncaught traceback.
                raise CodecError(f"{path.name}: cannot read file ({exc})") from exc
        return self._cache[index]

    def __iter__(self) -> Iterator[np.ndarray]:
        for index in range(len(self)):
            yield self[index]

    def materialize(self) -> list[np.ndarray]:
        """Force-load every image (e.g. before timing-sensitive work)."""
        return [self[i] for i in range(len(self))]


def load_directory(directory: str | Path, *, limit: int | None = None) -> list[np.ndarray]:
    """Eagerly load up to *limit* images from a folder.

    Convenience for the common calibration call site::

        ensemble.calibrate(load_directory("holdout/"))
    """
    corpus = DirectoryCorpus(directory)
    count = len(corpus) if limit is None else min(limit, len(corpus))
    return [corpus[i] for i in range(count)]
