"""Low-level procedural texture generators.

Building blocks for the synthetic image corpora. Each generator returns a
float64 array in ``[0, 1]`` (single plane) and takes an explicit
``numpy.random.Generator`` so everything above it stays deterministic.

The generators are chosen to span the second-order statistics the
Decamouflage detectors are sensitive to: spectral decay (fractal noise),
hard edges (shapes, stripes), smooth shading (gradients, blobs).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ImageError

__all__ = [
    "fractal_noise",
    "linear_gradient",
    "radial_gradient",
    "gaussian_blobs",
    "stripes",
    "checkerboard",
    "polygon_mask",
    "vignette",
]


def _check_shape(shape: tuple[int, int]) -> tuple[int, int]:
    h, w = shape
    if h <= 0 or w <= 0:
        raise ImageError(f"texture shape must be positive, got {shape}")
    return h, w


def fractal_noise(
    shape: tuple[int, int],
    rng: np.random.Generator,
    *,
    beta: float = 2.0,
) -> np.ndarray:
    """1/f^beta ("pink"/"brown") noise via spectral shaping.

    ``beta ≈ 2`` matches the power-spectrum decay of natural photographs —
    the property that makes benign images survive a downscale/upscale round
    trip. Higher beta gives smoother cloud-like fields.
    """
    h, w = _check_shape(shape)
    white = rng.standard_normal((h, w))
    spectrum = np.fft.fft2(white)
    fy = np.fft.fftfreq(h)[:, None]
    fx = np.fft.fftfreq(w)[None, :]
    radius = np.sqrt(fy**2 + fx**2)
    radius[0, 0] = radius.flat[np.abs(radius).argsort(axis=None)[1]]  # avoid /0 at DC
    shaped = spectrum / radius ** (beta / 2.0)
    shaped[0, 0] = 0.0
    field = np.real(np.fft.ifft2(shaped))
    low, high = field.min(), field.max()
    if high - low <= 0:
        return np.zeros((h, w))
    return (field - low) / (high - low)


def linear_gradient(
    shape: tuple[int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Linear ramp in a random direction."""
    h, w = _check_shape(shape)
    angle = rng.uniform(0.0, 2.0 * np.pi)
    yy, xx = np.mgrid[0:h, 0:w]
    field = np.cos(angle) * xx / max(w - 1, 1) + np.sin(angle) * yy / max(h - 1, 1)
    low, high = field.min(), field.max()
    return (field - low) / max(high - low, 1e-12)


def radial_gradient(
    shape: tuple[int, int],
    rng: np.random.Generator,
) -> np.ndarray:
    """Radial falloff from a random center."""
    h, w = _check_shape(shape)
    cy = rng.uniform(0.2, 0.8) * h
    cx = rng.uniform(0.2, 0.8) * w
    yy, xx = np.mgrid[0:h, 0:w]
    dist = np.sqrt((yy - cy) ** 2 + (xx - cx) ** 2)
    return 1.0 - dist / dist.max()


def gaussian_blobs(
    shape: tuple[int, int],
    rng: np.random.Generator,
    *,
    count: int = 5,
) -> np.ndarray:
    """Sum of random soft Gaussian blobs, normalized to [0, 1]."""
    h, w = _check_shape(shape)
    yy, xx = np.mgrid[0:h, 0:w]
    field = np.zeros((h, w))
    for _ in range(max(count, 1)):
        cy, cx = rng.uniform(0, h), rng.uniform(0, w)
        sigma = rng.uniform(0.05, 0.25) * min(h, w)
        amp = rng.uniform(0.3, 1.0)
        field += amp * np.exp(-(((yy - cy) ** 2 + (xx - cx) ** 2) / (2 * sigma**2)))
    return field / field.max()


def stripes(
    shape: tuple[int, int],
    rng: np.random.Generator,
    *,
    min_period: float = 8.0,
    max_period: float = 48.0,
) -> np.ndarray:
    """Soft sinusoidal stripes at a random angle and period."""
    h, w = _check_shape(shape)
    angle = rng.uniform(0.0, np.pi)
    period = rng.uniform(min_period, max_period)
    yy, xx = np.mgrid[0:h, 0:w]
    phase = (np.cos(angle) * xx + np.sin(angle) * yy) * (2 * np.pi / period)
    return 0.5 + 0.5 * np.sin(phase + rng.uniform(0, 2 * np.pi))


def checkerboard(
    shape: tuple[int, int],
    rng: np.random.Generator,
    *,
    min_cell: int = 8,
    max_cell: int = 32,
) -> np.ndarray:
    """Axis-aligned checkerboard with a random cell size."""
    h, w = _check_shape(shape)
    cell = int(rng.integers(min_cell, max_cell + 1))
    yy, xx = np.mgrid[0:h, 0:w]
    return (((yy // cell) + (xx // cell)) % 2).astype(np.float64)


def polygon_mask(
    shape: tuple[int, int],
    rng: np.random.Generator,
    *,
    vertices: int = 6,
) -> np.ndarray:
    """Filled random convex-ish polygon mask (1 inside, 0 outside).

    Vertices are placed at random radii around a random center and the
    polygon is rasterized with an even–odd crossing test, vectorized over
    all pixels.
    """
    h, w = _check_shape(shape)
    cy = rng.uniform(0.25, 0.75) * h
    cx = rng.uniform(0.25, 0.75) * w
    angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=max(vertices, 3)))
    radii = rng.uniform(0.15, 0.45, size=angles.size) * min(h, w)
    pys = cy + radii * np.sin(angles)
    pxs = cx + radii * np.cos(angles)

    yy, xx = np.mgrid[0:h, 0:w]
    inside = np.zeros((h, w), dtype=bool)
    n = angles.size
    for i in range(n):
        y1, x1 = pys[i], pxs[i]
        y2, x2 = pys[(i + 1) % n], pxs[(i + 1) % n]
        crosses = (y1 > yy) != (y2 > yy)
        with np.errstate(divide="ignore", invalid="ignore"):
            x_at = (x2 - x1) * (yy - y1) / (y2 - y1) + x1
        inside ^= crosses & (xx < x_at)
    return inside.astype(np.float64)


def vignette(shape: tuple[int, int], *, strength: float = 0.35) -> np.ndarray:
    """Multiplicative photographic vignette field in [1-strength, 1]."""
    h, w = _check_shape(shape)
    yy, xx = np.mgrid[0:h, 0:w]
    ny = (yy - (h - 1) / 2.0) / (h / 2.0)
    nx = (xx - (w - 1) / 2.0) / (w / 2.0)
    radius_sq = np.clip(ny**2 + nx**2, 0.0, 1.0)
    return 1.0 - strength * radius_sq
