"""Image corpora used by the experiments.

A :class:`Corpus` is an ordered, seeded collection of images with stable
string identifiers. The two factory functions mirror the paper's datasets:

* :func:`neurips_like_corpus` — threshold-calibration set (paper: NeurIPS
  2017 adversarial-competition images, 1000 originals + 1000 targets).
* :func:`caltech_like_corpus` — unseen evaluation set (paper: Caltech-256).

Both are deterministic in ``seed`` and lazy: images are generated on first
access and cached, so a corpus of 1000 images costs nothing until used.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.synthetic import generate_image
from repro.errors import ImageError

__all__ = ["Corpus", "neurips_like_corpus", "caltech_like_corpus", "split_corpus"]


@dataclass
class Corpus(Sequence):
    """A deterministic, lazily generated sequence of images."""

    name: str
    size: int
    image_shape: tuple[int, int]
    family: str
    seed: int
    _cache: dict[int, np.ndarray] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ImageError(f"corpus size must be >= 0, got {self.size}")

    def __len__(self) -> int:
        return self.size

    def identifier(self, index: int) -> str:
        """Stable identifier for image *index* (used by the CLI and reports)."""
        return f"{self.name}-{index:05d}"

    def __getitem__(self, index: int) -> np.ndarray:
        if isinstance(index, slice):
            raise TypeError("Corpus does not support slicing; use split_corpus")
        if index < 0:
            index += self.size
        if not 0 <= index < self.size:
            raise IndexError(f"corpus index {index} out of range [0, {self.size})")
        if index not in self._cache:
            # Seed each image independently so access order doesn't matter.
            rng = np.random.default_rng((self.seed, index))
            self._cache[index] = generate_image(
                self.image_shape, rng, family=self.family
            )
        return self._cache[index]

    def __iter__(self) -> Iterator[np.ndarray]:
        for index in range(self.size):
            yield self[index]

    def materialize(self) -> list[np.ndarray]:
        """Force-generate and return every image (useful before timing)."""
        return [self[i] for i in range(self.size)]


def neurips_like_corpus(
    size: int,
    *,
    image_shape: tuple[int, int] = (256, 256),
    seed: int = 2017,
    name: str = "neurips",
) -> Corpus:
    """Calibration corpus (stand-in for NeurIPS 2017 competition images)."""
    return Corpus(name=name, size=size, image_shape=image_shape, family="neurips", seed=seed)


def caltech_like_corpus(
    size: int,
    *,
    image_shape: tuple[int, int] = (256, 256),
    seed: int = 256,
    name: str = "caltech",
) -> Corpus:
    """Unseen evaluation corpus (stand-in for Caltech-256)."""
    return Corpus(name=name, size=size, image_shape=image_shape, family="caltech", seed=seed)


def split_corpus(corpus: Corpus, first: int) -> tuple[Corpus, Corpus]:
    """Split a corpus into two disjoint corpora of sizes ``first`` and rest.

    The halves keep the parent's determinism: the first keeps indices
    ``[0, first)`` via an identical seed, the second gets a shifted seed so
    its images are disjoint from the parent's.
    """
    if not 0 <= first <= corpus.size:
        raise ImageError(f"split point {first} outside corpus of size {corpus.size}")
    head = Corpus(
        name=f"{corpus.name}-a",
        size=first,
        image_shape=corpus.image_shape,
        family=corpus.family,
        seed=corpus.seed,
    )
    tail = Corpus(
        name=f"{corpus.name}-b",
        size=corpus.size - first,
        image_shape=corpus.image_shape,
        family=corpus.family,
        seed=corpus.seed + 7919,
    )
    return head, tail
