"""Synthetic dataset substrate.

The paper calibrates on NeurIPS-2017 competition images and evaluates on
Caltech-256. Neither is fetchable in this offline environment, so this
package provides deterministic procedural stand-ins with matching
second-order statistics (see DESIGN.md §3 for the substitution argument).
"""

from repro.datasets.corpus import Corpus, caltech_like_corpus, neurips_like_corpus, split_corpus
from repro.datasets.files import DirectoryCorpus, list_image_files, load_directory
from repro.datasets.synthetic import FAMILIES, SceneConfig, generate_class_image, generate_image

__all__ = [
    "Corpus",
    "DirectoryCorpus",
    "FAMILIES",
    "SceneConfig",
    "caltech_like_corpus",
    "generate_class_image",
    "generate_image",
    "list_image_files",
    "load_directory",
    "neurips_like_corpus",
    "split_corpus",
]
