"""Decamouflage: detection of image-scaling attacks on CNN pipelines.

Reproduction of Kim et al., "Decamouflage: A Framework to Detect
Image-Scaling Attacks on Convolutional Neural Networks" (DSN 2021).

Package map:

* :mod:`repro.imaging`  — self-contained image substrate (codecs, scaling,
  filters, Fourier analysis, metrics)
* :mod:`repro.attacks`  — the image-scaling attack (Xiao et al. 2019),
  adaptive variants, and backdoor poisoning
* :mod:`repro.core`     — the three Decamouflage detectors, threshold
  calibration, and the majority-vote ensemble
* :mod:`repro.datasets` — deterministic synthetic image corpora
* :mod:`repro.ml`       — numpy CNN substrate for the backdoor demo
* :mod:`repro.defenses` — prevention baselines (Quiring et al. 2020)
* :mod:`repro.eval`     — experiment runners for every paper table/figure

The most common entry points are re-exported here::

    import repro

    ensemble = repro.build_default_ensemble((32, 32))
    ensemble.calibrate(benign_holdout)
    if ensemble.is_attack(image):
        ...
"""

from repro.attacks import AttackConfig, craft_attack_image, verify_attack
from repro.core import (
    DetectionEnsemble,
    FilteringDetector,
    ScalingDetector,
    SteganalysisDetector,
    build_default_ensemble,
)
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "AttackConfig",
    "DetectionEnsemble",
    "FilteringDetector",
    "ReproError",
    "ScalingDetector",
    "SteganalysisDetector",
    "__version__",
    "build_default_ensemble",
    "craft_attack_image",
    "verify_attack",
]
