"""Shared lazy-analysis context: one validated image, memoized intermediates.

All three Decamouflage methods (paper Algorithms 1–3) consume the *same*
input image. Before this layer existed, each detector re-validated the
image, re-converted it to float, and computed its intermediate (round
trip, filtered image, log spectrum) privately — so the ensemble did the
shared preprocessing three times and the multi-scale scanner repeated it
once per candidate size.

:class:`ImageAnalysis` wraps one :func:`~repro.imaging.image.ensure_image`-
validated image and memoizes every named intermediate the detectors need,
keyed by the parameters that define it:

* ``round_trip(shape, algorithm, upscale_algorithm)`` — the scaling
  detector's reconstruction ``S = up(down(I))``
* ``filtered(name, size)`` — the filtering detector's ``F = filter(I)``
* ``log_spectrum()`` — the steganalysis detector's centered log spectrum
* ``mse_against(key)`` / ``ssim_against(key)`` — memoized residual-metric
  scalars between the image and an intermediate

Every value is computed at most once per context; repeat requests are memo
hits. Hit/miss counts are tracked per intermediate name and, when a
:class:`~repro.observability.Metrics` registry is attached, mirrored into
``analysis.<intermediate>.hit`` / ``analysis.<intermediate>.miss``
counters so a serving dashboard can show the shared-work savings.

Numerics contract: the scoring mode is captured from
:func:`repro.imaging.plans.scoring_mode` at construction. In **exact**
mode every intermediate and scalar equals, bit for bit, what the
pre-context per-detector path produced — the context only removes
redundant validation, dtype conversion, and recomputation. In **plan**
mode (the default) scoring runs through precompiled
:mod:`repro.imaging.plans`: round trips may use the fused banded
operators, SSIM uses the C separable filter, and the CSP count comes
from a real FFT — parity-tested at ≤1e-9 relative on MSE/SSIM with CSP
counts exactly equal. Calibration artifacts record the mode so cached
thresholds never mix the two.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectionError
from repro.imaging.color import to_grayscale
from repro.imaging.filtering import FILTERS
from repro.imaging.fourier import csp_count_from_spectrum, log_spectrum_image
from repro.imaging.image import ensure_image
from repro.imaging.metrics import ssim, ssim_fast
from repro.imaging.plans import csp_count_fast, get_scoring_plan, scoring_mode
from repro.observability import Metrics

__all__ = ["ImageAnalysis"]

#: Memo key kinds whose values are image-sized arrays (droppable to bound
#: memory during large calibration sweeps); scalar results are never dropped.
_ARRAY_KINDS = ("round_trip", "filtered", "log_spectrum", "gray")


class ImageAnalysis:
    """Lazy, memoizing analysis context for one image.

    The image is validated exactly once, at construction. The float64
    working view and every intermediate are computed on first request and
    memoized; detectors pull from the context via
    :meth:`repro.core.Detector.score_from` so an ensemble, a multi-scale
    scan, or a serving decision shares one copy of everything.

    The float view may alias the caller's array when it is already
    float64 — the context and every consumer treat it as read-only.
    """

    __slots__ = ("image", "metrics", "mode", "_float", "_memo", "_counts")

    def __init__(self, image: np.ndarray, *, metrics: Metrics | None = None) -> None:
        ensure_image(image)
        self.image = image
        self.metrics = metrics
        #: scoring mode ("plan" or "exact"), captured at construction so
        #: one context stays internally consistent across a mode switch.
        self.mode = scoring_mode()
        self._float: np.ndarray | None = None
        self._memo: dict[tuple, object] = {}
        #: per-intermediate [hits, misses], keyed by the kind name
        self._counts: dict[str, list[int]] = {}

    # -- accounting --------------------------------------------------------

    def _tally(self, name: str, *, hit: bool) -> None:
        counts = self._counts.setdefault(name, [0, 0])
        counts[0 if hit else 1] += 1
        if self.metrics is not None:
            suffix = "hit" if hit else "miss"
            self.metrics.counter(f"analysis.{name}.{suffix}").add(1)

    def memo_stats(self) -> dict[str, dict[str, int]]:
        """Per-intermediate hit/miss counts for this context."""
        return {
            name: {"hits": hits, "misses": misses}
            for name, (hits, misses) in sorted(self._counts.items())
        }

    # -- the float working view -------------------------------------------

    @property
    def float_image(self) -> np.ndarray:
        """The image as float64 on the 0–255 scale, converted at most once.

        Read-only by convention: when the input is already float64 this is
        the caller's own array, not a copy.
        """
        if self._float is None:
            self._tally("float", hit=False)
            self._float = self.image.astype(np.float64, copy=False)
        else:
            self._tally("float", hit=True)
        return self._float

    # -- memo keys ---------------------------------------------------------

    @staticmethod
    def round_trip_key(
        shape: tuple[int, int],
        algorithm: str = "bilinear",
        upscale_algorithm: str | None = None,
    ) -> tuple:
        """Memo key of the ``up(down(I))`` reconstruction."""
        h, w = shape
        return ("round_trip", (int(h), int(w)), algorithm, upscale_algorithm or algorithm)

    @staticmethod
    def filtered_key(name: str = "minimum", size: int = 2) -> tuple:
        """Memo key of the order-statistic-filtered image."""
        return ("filtered", name, int(size))

    @staticmethod
    def log_spectrum_key() -> tuple:
        """Memo key of the centered, normalized log spectrum."""
        return ("log_spectrum",)

    @staticmethod
    def csp_key(
        brightness_threshold: float = 160.0,
        lowpass_radius_fraction: float = 0.5,
        inner_radius_fraction: float = 0.09,
        min_area: int = 2,
        min_prominence: float = 35.0,
    ) -> tuple:
        """Memo key of the (scalar) centered-spectrum-point count."""
        return (
            "csp",
            float(brightness_threshold),
            float(lowpass_radius_fraction),
            float(inner_radius_fraction),
            int(min_area),
            float(min_prominence),
        )

    # -- memo plumbing -----------------------------------------------------

    def _compute(self, key: tuple) -> object:
        kind = key[0]
        if kind == "round_trip":
            _, shape, algorithm, up_algorithm = key
            f = self.float_image
            plan = get_scoring_plan(f.shape[:2], shape, algorithm, up_algorithm)
            if self.mode == "plan":
                return plan.round_trip(f)
            return plan.round_trip_exact(f)
        if kind == "filtered":
            _, name, size = key
            if name not in FILTERS:
                known = ", ".join(sorted(FILTERS))
                raise DetectionError(f"unknown filter {name!r}; known: {known}")
            return FILTERS[name](self.float_image, size)
        if kind == "log_spectrum":
            return log_spectrum_image(self.image)
        if kind == "gray":
            return to_grayscale(self.image)
        if kind == "csp":
            _, brightness, lowpass, inner, min_area, min_prominence = key
            if self.mode == "plan":
                # Real-FFT fast path: never materializes the normalized
                # spectrum image (reuses it when already memoized via the
                # cheaper gray plane).
                return csp_count_fast(
                    self.get(("gray",)),
                    brightness_threshold=brightness,
                    lowpass_radius_fraction=lowpass,
                    inner_radius_fraction=inner,
                    min_area=min_area,
                    min_prominence=min_prominence,
                )
            return csp_count_from_spectrum(
                self.get(self.log_spectrum_key()),
                brightness_threshold=brightness,
                lowpass_radius_fraction=lowpass,
                inner_radius_fraction=inner,
                min_area=min_area,
                min_prominence=min_prominence,
            )
        if kind == "mse":
            other = self.get(key[1:])
            # Same values, same evaluation order as imaging.metrics.mse —
            # only the redundant per-call float copies are skipped.
            return float(np.mean((self.float_image - other) ** 2))
        if kind == "ssim":
            if self.mode == "plan":
                return ssim_fast(self.float_image, self.get(key[1:]))
            return ssim(self.float_image, self.get(key[1:]))
        raise DetectionError(f"unknown analysis intermediate kind {kind!r}")

    def get(self, key: tuple) -> object:
        """The intermediate for *key*, computed on first request."""
        value = self._memo.get(key)
        if value is not None:
            self._tally(key[0], hit=True)
            return value
        self._tally(key[0], hit=False)
        value = self._compute(key)
        self._memo[key] = value
        return value

    def peek(self, key: tuple) -> object | None:
        """The memoized value for *key*, or None — never computes."""
        return self._memo.get(key)

    def put(self, key: tuple, value: object) -> None:
        """Seed the memo with an externally computed value (counted as a
        miss — the work happened, just outside the context). Used by fused
        batch paths that compute one intermediate for many contexts."""
        self._tally(key[0], hit=False)
        self._memo[key] = value

    def forget_arrays(self) -> None:
        """Drop image-sized memo entries, keeping scalars and the float view.

        Calibration sweeps score one corpus with several detectors; the
        per-image arrays each detector memoized are dead weight once its
        scalar scores exist, so the ensemble/scanner trim them between
        members to bound peak memory.
        """
        for key in [k for k in self._memo if k[0] in _ARRAY_KINDS]:
            del self._memo[key]

    # -- named intermediates ----------------------------------------------

    def round_trip(
        self,
        shape: tuple[int, int],
        algorithm: str = "bilinear",
        upscale_algorithm: str | None = None,
    ) -> np.ndarray:
        """``S = up(down(I))`` through ``shape`` (paper Algorithm 1).

        In exact mode, bit-identical to
        :func:`repro.imaging.scaling.downscale_then_upscale` on the same
        image — same operators, same multiplication order. In plan mode
        the compiled :class:`~repro.imaging.plans.ScoringPlan` may apply
        the fused banded operators instead (≤1e-9 relative on the
        derived MSE/SSIM scores; identical whenever the plan's cost
        model picks the exact strategy).
        """
        return self.get(self.round_trip_key(shape, algorithm, upscale_algorithm))

    def filtered(self, name: str = "minimum", size: int = 2) -> np.ndarray:
        """``F = filter(I)`` (paper Algorithm 2), via :data:`FILTERS`."""
        return self.get(self.filtered_key(name, size))

    def log_spectrum(self) -> np.ndarray:
        """Centered log-magnitude spectrum on the 0–255 scale (paper Eq. 4)."""
        return self.get(self.log_spectrum_key())

    def gray(self) -> np.ndarray:
        """The luma plane (float64), memoized for the fast spectrum path."""
        return self.get(("gray",))

    def csp_count(
        self,
        *,
        brightness_threshold: float = 160.0,
        lowpass_radius_fraction: float = 0.5,
        inner_radius_fraction: float = 0.09,
        min_area: int = 2,
        min_prominence: float = 35.0,
    ) -> int:
        """Memoized CSP count (paper Algorithm 3), via the mode's path.

        Plan mode counts directly from a real FFT of the luma plane
        (:func:`repro.imaging.plans.csp_count_fast`); exact mode keeps
        the legacy normalized-spectrum route. Counts agree exactly on
        the test corpus.
        """
        return self.get(  # type: ignore[return-value]
            self.csp_key(
                brightness_threshold,
                lowpass_radius_fraction,
                inner_radius_fraction,
                min_area,
                min_prominence,
            )
        )

    # -- residual metrics --------------------------------------------------

    def mse_against(self, key: tuple) -> float:
        """Memoized ``MSE(I, intermediate)`` (paper Eq. 5)."""
        return self.get(("mse",) + tuple(key))

    def ssim_against(self, key: tuple) -> float:
        """Memoized ``SSIM(I, intermediate)`` (paper Eq. 6)."""
        return self.get(("ssim",) + tuple(key))

    # -- explanation artifacts --------------------------------------------

    def artifacts(self) -> dict[str, np.ndarray]:
        """Already-computed image intermediates, labeled for persistence.

        Only returns what scoring happened to memoize — nothing is
        computed here — so the serving pipeline can attach round-trip and
        filtered images to a quarantine record at zero extra cost.
        """
        out: dict[str, np.ndarray] = {}
        for key, value in self._memo.items():
            kind = key[0]
            if kind == "round_trip":
                (h, w), algorithm, up_algorithm = key[1], key[2], key[3]
                label = f"round_trip_{h}x{w}_{algorithm}"
                if up_algorithm != algorithm:
                    label += f"_{up_algorithm}"
            elif kind == "filtered":
                label = f"filtered_{key[1]}_{key[2]}"
            elif kind == "log_spectrum":
                label = "log_spectrum"
            else:
                continue
            out[label] = value  # type: ignore[assignment]
        return out
