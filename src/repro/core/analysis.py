"""Shared lazy-analysis context: one validated image, memoized intermediates.

All three Decamouflage methods (paper Algorithms 1–3) consume the *same*
input image. Before this layer existed, each detector re-validated the
image, re-converted it to float, and computed its intermediate (round
trip, filtered image, log spectrum) privately — so the ensemble did the
shared preprocessing three times and the multi-scale scanner repeated it
once per candidate size.

:class:`ImageAnalysis` wraps one :func:`~repro.imaging.image.ensure_image`-
validated image and memoizes every named intermediate the detectors need,
keyed by the parameters that define it:

* ``round_trip(shape, algorithm, upscale_algorithm)`` — the scaling
  detector's reconstruction ``S = up(down(I))``
* ``filtered(name, size)`` — the filtering detector's ``F = filter(I)``
* ``log_spectrum()`` — the steganalysis detector's centered log spectrum
* ``mse_against(key)`` / ``ssim_against(key)`` — memoized residual-metric
  scalars between the image and an intermediate

Every value is computed at most once per context; repeat requests are memo
hits. Hit/miss counts are tracked per intermediate name and, when a
:class:`~repro.observability.Metrics` registry is attached, mirrored into
``analysis.<intermediate>.hit`` / ``analysis.<intermediate>.miss``
counters so a serving dashboard can show the shared-work savings.

Numerics contract: every intermediate and scalar equals, **bit for bit**,
what the pre-context per-detector path produced. The context only removes
redundant validation, dtype conversion, and recomputation — it never
changes the math.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DetectionError
from repro.imaging.filtering import FILTERS
from repro.imaging.fourier import log_spectrum_image
from repro.imaging.image import ensure_image
from repro.imaging.metrics import ssim
from repro.imaging.scaling import get_scaling_operators
from repro.observability import Metrics

__all__ = ["ImageAnalysis"]

#: Memo key kinds whose values are image-sized arrays (droppable to bound
#: memory during large calibration sweeps); scalar results are never dropped.
_ARRAY_KINDS = ("round_trip", "filtered", "log_spectrum")


class ImageAnalysis:
    """Lazy, memoizing analysis context for one image.

    The image is validated exactly once, at construction. The float64
    working view and every intermediate are computed on first request and
    memoized; detectors pull from the context via
    :meth:`repro.core.Detector.score_from` so an ensemble, a multi-scale
    scan, or a serving decision shares one copy of everything.

    The float view may alias the caller's array when it is already
    float64 — the context and every consumer treat it as read-only.
    """

    __slots__ = ("image", "metrics", "_float", "_memo", "_counts")

    def __init__(self, image: np.ndarray, *, metrics: Metrics | None = None) -> None:
        ensure_image(image)
        self.image = image
        self.metrics = metrics
        self._float: np.ndarray | None = None
        self._memo: dict[tuple, object] = {}
        #: per-intermediate [hits, misses], keyed by the kind name
        self._counts: dict[str, list[int]] = {}

    # -- accounting --------------------------------------------------------

    def _tally(self, name: str, *, hit: bool) -> None:
        counts = self._counts.setdefault(name, [0, 0])
        counts[0 if hit else 1] += 1
        if self.metrics is not None:
            suffix = "hit" if hit else "miss"
            self.metrics.counter(f"analysis.{name}.{suffix}").add(1)

    def memo_stats(self) -> dict[str, dict[str, int]]:
        """Per-intermediate hit/miss counts for this context."""
        return {
            name: {"hits": hits, "misses": misses}
            for name, (hits, misses) in sorted(self._counts.items())
        }

    # -- the float working view -------------------------------------------

    @property
    def float_image(self) -> np.ndarray:
        """The image as float64 on the 0–255 scale, converted at most once.

        Read-only by convention: when the input is already float64 this is
        the caller's own array, not a copy.
        """
        if self._float is None:
            self._tally("float", hit=False)
            self._float = self.image.astype(np.float64, copy=False)
        else:
            self._tally("float", hit=True)
        return self._float

    # -- memo keys ---------------------------------------------------------

    @staticmethod
    def round_trip_key(
        shape: tuple[int, int],
        algorithm: str = "bilinear",
        upscale_algorithm: str | None = None,
    ) -> tuple:
        """Memo key of the ``up(down(I))`` reconstruction."""
        h, w = shape
        return ("round_trip", (int(h), int(w)), algorithm, upscale_algorithm or algorithm)

    @staticmethod
    def filtered_key(name: str = "minimum", size: int = 2) -> tuple:
        """Memo key of the order-statistic-filtered image."""
        return ("filtered", name, int(size))

    @staticmethod
    def log_spectrum_key() -> tuple:
        """Memo key of the centered, normalized log spectrum."""
        return ("log_spectrum",)

    # -- memo plumbing -----------------------------------------------------

    def _compute(self, key: tuple) -> object:
        kind = key[0]
        if kind == "round_trip":
            _, shape, algorithm, up_algorithm = key
            f = self.float_image
            left_d, right_d = get_scaling_operators(f.shape[:2], shape, algorithm)
            left_u, right_u = get_scaling_operators(shape, f.shape[:2], up_algorithm)
            if f.ndim == 2:
                return (left_u @ ((left_d @ f) @ right_d)) @ right_u
            down = [(left_d @ f[:, :, c]) @ right_d for c in range(f.shape[2])]
            return np.stack([(left_u @ plane) @ right_u for plane in down], axis=2)
        if kind == "filtered":
            _, name, size = key
            if name not in FILTERS:
                known = ", ".join(sorted(FILTERS))
                raise DetectionError(f"unknown filter {name!r}; known: {known}")
            return FILTERS[name](self.float_image, size)
        if kind == "log_spectrum":
            return log_spectrum_image(self.image)
        if kind == "mse":
            other = self.get(key[1:])
            # Same values, same evaluation order as imaging.metrics.mse —
            # only the redundant per-call float copies are skipped.
            return float(np.mean((self.float_image - other) ** 2))
        if kind == "ssim":
            return ssim(self.float_image, self.get(key[1:]))
        raise DetectionError(f"unknown analysis intermediate kind {kind!r}")

    def get(self, key: tuple) -> object:
        """The intermediate for *key*, computed on first request."""
        value = self._memo.get(key)
        if value is not None:
            self._tally(key[0], hit=True)
            return value
        self._tally(key[0], hit=False)
        value = self._compute(key)
        self._memo[key] = value
        return value

    def peek(self, key: tuple) -> object | None:
        """The memoized value for *key*, or None — never computes."""
        return self._memo.get(key)

    def put(self, key: tuple, value: object) -> None:
        """Seed the memo with an externally computed value (counted as a
        miss — the work happened, just outside the context). Used by fused
        batch paths that compute one intermediate for many contexts."""
        self._tally(key[0], hit=False)
        self._memo[key] = value

    def forget_arrays(self) -> None:
        """Drop image-sized memo entries, keeping scalars and the float view.

        Calibration sweeps score one corpus with several detectors; the
        per-image arrays each detector memoized are dead weight once its
        scalar scores exist, so the ensemble/scanner trim them between
        members to bound peak memory.
        """
        for key in [k for k in self._memo if k[0] in _ARRAY_KINDS]:
            del self._memo[key]

    # -- named intermediates ----------------------------------------------

    def round_trip(
        self,
        shape: tuple[int, int],
        algorithm: str = "bilinear",
        upscale_algorithm: str | None = None,
    ) -> np.ndarray:
        """``S = up(down(I))`` through ``shape`` (paper Algorithm 1).

        Bit-identical to
        :func:`repro.imaging.scaling.downscale_then_upscale` on the same
        image — the operators come from the same process-wide cache and
        multiply in the same order.
        """
        return self.get(self.round_trip_key(shape, algorithm, upscale_algorithm))

    def filtered(self, name: str = "minimum", size: int = 2) -> np.ndarray:
        """``F = filter(I)`` (paper Algorithm 2), via :data:`FILTERS`."""
        return self.get(self.filtered_key(name, size))

    def log_spectrum(self) -> np.ndarray:
        """Centered log-magnitude spectrum on the 0–255 scale (paper Eq. 4)."""
        return self.get(self.log_spectrum_key())

    # -- residual metrics --------------------------------------------------

    def mse_against(self, key: tuple) -> float:
        """Memoized ``MSE(I, intermediate)`` (paper Eq. 5)."""
        return self.get(("mse",) + tuple(key))

    def ssim_against(self, key: tuple) -> float:
        """Memoized ``SSIM(I, intermediate)`` (paper Eq. 6)."""
        return self.get(("ssim",) + tuple(key))

    # -- explanation artifacts --------------------------------------------

    def artifacts(self) -> dict[str, np.ndarray]:
        """Already-computed image intermediates, labeled for persistence.

        Only returns what scoring happened to memoize — nothing is
        computed here — so the serving pipeline can attach round-trip and
        filtered images to a quarantine record at zero extra cost.
        """
        out: dict[str, np.ndarray] = {}
        for key, value in self._memo.items():
            kind = key[0]
            if kind == "round_trip":
                (h, w), algorithm, up_algorithm = key[1], key[2], key[3]
                label = f"round_trip_{h}x{w}_{algorithm}"
                if up_algorithm != algorithm:
                    label += f"_{up_algorithm}"
            elif kind == "filtered":
                label = f"filtered_{key[1]}_{key[2]}"
            elif kind == "log_spectrum":
                label = "log_spectrum"
            else:
                continue
            out[label] = value  # type: ignore[assignment]
        return out
