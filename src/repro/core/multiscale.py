"""Multi-scale scanning: detect attacks without knowing the target size.

The paper's Table 1 makes a practical observation: real deployments use a
handful of input sizes (32², 224², 227², 299², 200×66), so an attacker's
choice is drawn from a small set — and so a *defender who does not know
which model the attacker aimed at* can simply test all plausible sizes.

:class:`MultiScaleScanner` runs one scaling detector per candidate size,
flags an image if any of them fires, and reports the size with the largest
threshold margin — i.e. *which model the attack was most likely aimed at*,
which is useful forensics when triaging a poisoned dataset.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.result import Direction
from repro.core.scaling_detector import ScalingDetector
from repro.errors import DetectionError

__all__ = ["COMMON_INPUT_SIZES", "MultiScaleDetection", "MultiScaleScanner"]

#: The deployment input sizes from paper Table 1.
COMMON_INPUT_SIZES: tuple[tuple[int, int], ...] = (
    (32, 32),      # LeNet-5
    (224, 224),    # VGG / ResNet / GoogleNet / MobileNet
    (227, 227),    # AlexNet
    (299, 299),    # Inception V3/V4
    (66, 200),     # DAVE-2 self-driving
)


@dataclass(frozen=True)
class MultiScaleDetection:
    """Verdict across candidate sizes, with per-size scores."""

    is_attack: bool
    #: candidate size with the largest threshold margin (the likely target
    #: of the attack); None when no size fired
    inferred_target_size: tuple[int, int] | None
    #: per-size (score, threshold value, fired) records
    per_size: dict[tuple[int, int], tuple[float, float, bool]]

    def explain(self) -> str:
        lines = ["ATTACK" if self.is_attack else "benign"]
        for size, (score, threshold, fired) in sorted(self.per_size.items()):
            marker = " <-- inferred target" if size == self.inferred_target_size else ""
            lines.append(
                f"  {size[0]}x{size[1]}: score={score:.4g} vs {threshold:.4g}"
                f" ({'fired' if fired else 'quiet'}){marker}"
            )
        return "\n".join(lines)


class MultiScaleScanner:
    """One scaling detector per candidate model-input size.

    Candidate sizes larger than the scanned image are skipped at detection
    time (you cannot downscale 256² to 299²).
    """

    def __init__(
        self,
        candidate_sizes: Sequence[tuple[int, int]] = COMMON_INPUT_SIZES,
        *,
        algorithm: str = "bilinear",
        metric: str = "mse",
    ) -> None:
        if not candidate_sizes:
            raise DetectionError("MultiScaleScanner needs at least one candidate size")
        self.detectors = {
            tuple(size): ScalingDetector(tuple(size), algorithm=algorithm, metric=metric)
            for size in candidate_sizes
        }
        self.algorithm = algorithm
        self.metric = metric

    def _applicable(self, image: np.ndarray) -> dict[tuple[int, int], ScalingDetector]:
        h, w = image.shape[:2]
        return {
            size: detector
            for size, detector in self.detectors.items()
            if size[0] < h and size[1] < w
        }

    def calibrate_blackbox(
        self,
        benign_images: Sequence[np.ndarray],
        *,
        percentile: float = 1.0,
    ) -> None:
        """Percentile-calibrate every candidate size from benign images.

        Sizes not smaller than the hold-out images are dropped (they could
        never apply to same-sized inputs anyway).
        """
        if not benign_images:
            raise DetectionError("calibration needs at least one benign image")
        applicable = self._applicable(benign_images[0])
        if not applicable:
            raise DetectionError(
                "no candidate size is smaller than the hold-out images"
            )
        for size, detector in applicable.items():
            detector.calibrate_blackbox(benign_images, percentile=percentile)
        self.detectors = dict(applicable)

    def detect(self, image: np.ndarray) -> MultiScaleDetection:
        """Test every applicable size; flag if any fires."""
        per_size: dict[tuple[int, int], tuple[float, float, bool]] = {}
        best_size: tuple[int, int] | None = None
        best_margin = -np.inf
        for size, detector in self._applicable(image).items():
            if not detector.is_calibrated:
                raise DetectionError(
                    f"size {size} is not calibrated; call calibrate_blackbox first"
                )
            score = detector.score(image)
            rule = detector.threshold
            fired = rule.is_attack(score)
            per_size[size] = (score, rule.value, fired)
            if fired:
                # Normalized margin: how far past the threshold, in units of
                # the threshold, so sizes are comparable.
                denominator = abs(rule.value) or 1.0
                if rule.direction is Direction.GREATER:
                    margin = (score - rule.value) / denominator
                else:
                    margin = (rule.value - score) / denominator
                if margin > best_margin:
                    best_margin = margin
                    best_size = size
        if not per_size:
            raise DetectionError(
                f"no candidate size applies to a {image.shape[:2]} image"
            )
        return MultiScaleDetection(
            is_attack=best_size is not None,
            inferred_target_size=best_size,
            per_size=per_size,
        )

    def is_attack(self, image: np.ndarray) -> bool:
        return self.detect(image).is_attack
