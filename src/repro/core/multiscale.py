"""Multi-scale scanning: detect attacks without knowing the target size.

The paper's Table 1 makes a practical observation: real deployments use a
handful of input sizes (32², 224², 227², 299², 200×66), so an attacker's
choice is drawn from a small set — and so a *defender who does not know
which model the attacker aimed at* can simply test all plausible sizes.

:class:`MultiScaleScanner` runs one scaling detector per candidate size,
flags an image if any of them fires, and reports the size with the largest
threshold margin — i.e. *which model the attack was most likely aimed at*,
which is useful forensics when triaging a poisoned dataset.

Each scanned image gets **one** shared
:class:`~repro.core.analysis.ImageAnalysis` context for all candidate
sizes: validation and the float conversion happen once per image instead
of once per size (only the per-size round trips differ).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass
from itertools import chain

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.detector import Detector
from repro.core.result import Direction
from repro.core.scaling_detector import ScalingDetector
from repro.errors import DetectionError

__all__ = ["COMMON_INPUT_SIZES", "MultiScaleDetection", "MultiScaleScanner"]

#: The deployment input sizes from paper Table 1.
COMMON_INPUT_SIZES: tuple[tuple[int, int], ...] = (
    (32, 32),      # LeNet-5
    (224, 224),    # VGG / ResNet / GoogleNet / MobileNet
    (227, 227),    # AlexNet
    (299, 299),    # Inception V3/V4
    (66, 200),     # DAVE-2 self-driving
)


@dataclass(frozen=True)
class MultiScaleDetection:
    """Verdict across candidate sizes, with per-size scores."""

    is_attack: bool
    #: candidate size with the largest threshold margin (the likely target
    #: of the attack); None when no size fired
    inferred_target_size: tuple[int, int] | None
    #: per-size (score, threshold value, fired) records
    per_size: dict[tuple[int, int], tuple[float, float, bool]]

    def explain(self) -> str:
        lines = ["ATTACK" if self.is_attack else "benign"]
        for size, (score, threshold, fired) in sorted(self.per_size.items()):
            marker = " <-- inferred target" if size == self.inferred_target_size else ""
            lines.append(
                f"  {size[0]}x{size[1]}: score={score:.4g} vs {threshold:.4g}"
                f" ({'fired' if fired else 'quiet'}){marker}"
            )
        return "\n".join(lines)


class MultiScaleScanner:
    """One scaling detector per candidate model-input size.

    Candidate sizes larger than the scanned image are skipped at detection
    time (you cannot downscale 256² to 299²).
    """

    def __init__(
        self,
        candidate_sizes: Sequence[tuple[int, int]] = COMMON_INPUT_SIZES,
        *,
        algorithm: str = "bilinear",
        metric: str = "mse",
    ) -> None:
        if not candidate_sizes:
            raise DetectionError("MultiScaleScanner needs at least one candidate size")
        self.detectors = {
            tuple(size): ScalingDetector(tuple(size), algorithm=algorithm, metric=metric)
            for size in candidate_sizes
        }
        self.algorithm = algorithm
        self.metric = metric

    def _applicable(self, image: np.ndarray) -> dict[tuple[int, int], ScalingDetector]:
        h, w = image.shape[:2]
        return {
            size: detector
            for size, detector in self.detectors.items()
            if size[0] < h and size[1] < w
        }

    def calibrate(
        self,
        benign: Sequence[np.ndarray | ImageAnalysis],
        attacks: Sequence[np.ndarray | ImageAnalysis] | None = None,
        *,
        strategy: str = "percentile",
        percentile: float = 1.0,
        n_sigma: float = 3.0,
    ) -> None:
        """Calibrate every candidate size with one strategy (see
        :meth:`repro.core.Detector.calibrate` for the strategies).

        Sizes not smaller than the hold-out images are dropped (they could
        never apply to same-sized inputs anyway). The corpora are wrapped
        into shared analysis contexts so every size scores the same
        validated float images; the per-size round trips are dropped
        between sizes to keep peak memory at one corpus.
        """
        if not benign:
            raise DetectionError("calibration needs at least one benign image")
        benign = [Detector.as_analysis(image) for image in benign]
        attacks = (
            None
            if attacks is None
            else [Detector.as_analysis(image) for image in attacks]
        )
        applicable = self._applicable(benign[0].image)
        if not applicable:
            raise DetectionError(
                "no candidate size is smaller than the hold-out images"
            )
        for detector in applicable.values():
            detector.calibrate(
                benign,
                attacks,
                strategy=strategy,
                percentile=percentile,
                n_sigma=n_sigma,
            )
            for analysis in chain(benign, attacks or ()):
                analysis.forget_arrays()
        self.detectors = dict(applicable)

    def _finalize(
        self,
        per_size: dict[tuple[int, int], tuple[float, float, bool]],
        image_shape: tuple[int, ...],
    ) -> MultiScaleDetection:
        """Pick the fired size with the largest normalized margin."""
        if not per_size:
            raise DetectionError(
                f"no candidate size applies to a {image_shape[:2]} image"
            )
        direction = (
            Direction.GREATER if self.metric == "mse" else Direction.LESS
        )
        best_size: tuple[int, int] | None = None
        best_margin = -np.inf
        for size, (score, threshold_value, fired) in per_size.items():
            if not fired:
                continue
            # Normalized margin: how far past the threshold, in units of
            # the threshold, so sizes are comparable.
            denominator = abs(threshold_value) or 1.0
            if direction is Direction.GREATER:
                margin = (score - threshold_value) / denominator
            else:
                margin = (threshold_value - score) / denominator
            if margin > best_margin:
                best_margin = margin
                best_size = size
        return MultiScaleDetection(
            is_attack=best_size is not None,
            inferred_target_size=best_size,
            per_size=per_size,
        )

    def detect(self, image: np.ndarray | ImageAnalysis) -> MultiScaleDetection:
        """Test every applicable size against one shared context."""
        analysis = Detector.as_analysis(image)
        per_size: dict[tuple[int, int], tuple[float, float, bool]] = {}
        for size, detector in self._applicable(analysis.image).items():
            if not detector.is_calibrated:
                raise DetectionError(
                    f"size {size} is not calibrated; call calibrate() first"
                )
            score = detector.score_from(analysis)
            rule = detector.threshold
            per_size[size] = (score, rule.value, rule.is_attack(score))
        return self._finalize(per_size, analysis.image.shape)

    def detect_batch(
        self, images: Sequence[np.ndarray | ImageAnalysis]
    ) -> list[MultiScaleDetection]:
        """Batch scan: each candidate size scores its applicable images.

        Bit-identical results to per-image :meth:`detect`; each image is
        wrapped in one shared context for every size, so validation and
        float conversion happen once per image instead of once per
        size × image.
        """
        analyses = [Detector.as_analysis(image) for image in images]
        per_image: list[dict[tuple[int, int], tuple[float, float, bool]]] = [
            {} for _ in analyses
        ]
        for size, detector in self.detectors.items():
            indices = [
                index
                for index, analysis in enumerate(analyses)
                if size[0] < analysis.image.shape[0] and size[1] < analysis.image.shape[1]
            ]
            if not indices:
                continue
            if not detector.is_calibrated:
                raise DetectionError(
                    f"size {size} is not calibrated; call calibrate() first"
                )
            scores = detector.score_batch([analyses[i] for i in indices])
            rule = detector.threshold
            for index, score in zip(indices, scores):
                per_image[index][size] = (score, rule.value, rule.is_attack(score))
        return [
            self._finalize(per_size, analysis.image.shape)
            for per_size, analysis in zip(per_image, analyses)
        ]

    def is_attack(self, image: np.ndarray | ImageAnalysis) -> bool:
        return self.detect(image).is_attack
