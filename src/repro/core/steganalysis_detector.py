"""Method 3 — steganalysis detection (paper Section 3.3, Algorithm 3).

Treat the attack's perturbation as hidden information and look for it in
the frequency domain: the regular grid of injected pixels adds periodic
components, so the centered log spectrum of an attack image shows multiple
bright points where a benign image shows one.

Score = CSP count (integer). Unlike the other two methods the threshold is
*fixed* at 2 — the paper's key observation is that this needs no
calibration at all ("we use a fixed threshold of 2 for CSP … regardless of
original and attack images"), which is why the detector is born calibrated.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.detector import Detector
from repro.core.result import Direction, ThresholdRule
from repro.imaging.plans import csp_count_fast, spectrum_magnitude_halves

__all__ = ["SteganalysisDetector", "DEFAULT_CSP_THRESHOLD"]

#: The paper's universal CSP threshold: >= 2 spectrum points ⇒ attack.
DEFAULT_CSP_THRESHOLD = 2.0


class SteganalysisDetector(Detector):
    """Centered-spectrum-point counting detector.

    Spectrum extraction knobs (brightness threshold, low-pass radius,
    prominence) are exposed for experimentation but the defaults are used
    throughout the paper reproduction; see
    :func:`repro.imaging.fourier.csp_count` for their meaning. The log
    spectrum itself comes from the shared analysis context (it is
    parameter-free), so figure code or a second steganalysis configuration
    scoring the same context reuses the FFT.
    """

    method = "steganalysis"
    metric = "csp"

    def __init__(
        self,
        *,
        brightness_threshold: float = 160.0,
        lowpass_radius_fraction: float = 0.5,
        inner_radius_fraction: float = 0.09,
        min_area: int = 2,
        min_prominence: float = 35.0,
        threshold: ThresholdRule | None = None,
    ) -> None:
        super().__init__(
            threshold
            or ThresholdRule(value=DEFAULT_CSP_THRESHOLD, direction=Direction.GREATER)
        )
        self.brightness_threshold = brightness_threshold
        self.lowpass_radius_fraction = lowpass_radius_fraction
        self.inner_radius_fraction = inner_radius_fraction
        self.min_area = min_area
        self.min_prominence = min_prominence

    @property
    def attack_direction(self) -> Direction:
        return Direction.GREATER

    def _csp_params(self) -> dict[str, float | int]:
        return {
            "brightness_threshold": self.brightness_threshold,
            "lowpass_radius_fraction": self.lowpass_radius_fraction,
            "inner_radius_fraction": self.inner_radius_fraction,
            "min_area": self.min_area,
            "min_prominence": self.min_prominence,
        }

    def score_from(self, analysis: ImageAnalysis) -> float:
        return float(analysis.csp_count(**self._csp_params()))

    def score_batch(
        self, images: Sequence[np.ndarray | ImageAnalysis]
    ) -> list[float]:
        """Fused batch scoring: one stacked real FFT per same-shape group.

        Plan-mode contexts that have not yet memoized their CSP count get
        their half-spectrum magnitudes from one batched ``rfft2`` and are
        counted from those — the same values :func:`csp_count_fast`
        derives image by image, so the scores equal per-image
        :meth:`score`. Exact-mode contexts fall back to the per-image
        path unchanged.
        """
        analyses = [self.as_analysis(image, self.metrics) for image in images]
        key = ImageAnalysis.csp_key(**self._csp_params())
        pending: dict[tuple[int, int], list[ImageAnalysis]] = {}
        for analysis in analyses:
            if analysis.mode == "plan" and analysis.peek(key) is None:
                pending.setdefault(analysis.image.shape[:2], []).append(analysis)
        for shape, group in pending.items():
            if len(group) == 1:
                continue  # no stacking win; score_from computes it
            halves = spectrum_magnitude_halves(
                np.stack([analysis.gray() for analysis in group])
            )
            for index, analysis in enumerate(group):
                analysis.put(
                    key,
                    csp_count_fast(
                        magnitude_half=halves[index],
                        shape=shape,
                        **self._csp_params(),
                    ),
                )
        return [self.score_from(analysis) for analysis in analyses]
