"""Classifier evaluation metrics (paper Section 5.1).

The paper reports five quantities for every detector configuration:
accuracy, precision, recall, FAR (attack images accepted as benign) and
FRR (benign images rejected as attacks). :class:`ConfusionCounts`
accumulates raw outcomes and derives all five.

Convention: "positive" = attack image, so

* FAR = FN / (FN + TP) — missed attacks over all attacks,
* FRR = FP / (FP + TN) — false alarms over all benign images,

matching the paper's definitions ("FAR is the percentage of attack images
classified as benign"; "FRR is the percentage of benign images classified
as attack").
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConfusionCounts", "evaluate_decisions"]


@dataclass
class ConfusionCounts:
    """Mutable confusion-matrix accumulator over attack/benign decisions."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    def record(self, *, is_attack_truth: bool, flagged_attack: bool) -> None:
        """Record one decision against ground truth."""
        if is_attack_truth and flagged_attack:
            self.true_positives += 1
        elif is_attack_truth and not flagged_attack:
            self.false_negatives += 1
        elif not is_attack_truth and flagged_attack:
            self.false_positives += 1
        else:
            self.true_negatives += 1

    @property
    def total(self) -> int:
        return (
            self.true_positives
            + self.false_positives
            + self.true_negatives
            + self.false_negatives
        )

    @property
    def accuracy(self) -> float:
        """Fraction of all images classified correctly."""
        if self.total == 0:
            return 0.0
        return (self.true_positives + self.true_negatives) / self.total

    @property
    def precision(self) -> float:
        """Of images flagged as attacks, the fraction that really are."""
        flagged = self.true_positives + self.false_positives
        return self.true_positives / flagged if flagged else 0.0

    @property
    def recall(self) -> float:
        """Of actual attacks, the fraction that were flagged."""
        attacks = self.true_positives + self.false_negatives
        return self.true_positives / attacks if attacks else 0.0

    @property
    def far(self) -> float:
        """False acceptance rate: attacks that slipped through."""
        attacks = self.true_positives + self.false_negatives
        return self.false_negatives / attacks if attacks else 0.0

    @property
    def frr(self) -> float:
        """False rejection rate: benign images wrongly flagged."""
        benign = self.true_negatives + self.false_positives
        return self.false_positives / benign if benign else 0.0

    def as_row(self) -> dict[str, float]:
        """The five paper columns, as fractions in [0, 1]."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "far": self.far,
            "frr": self.frr,
        }

    def __str__(self) -> str:
        row = self.as_row()
        return (
            f"Acc={row['accuracy']:.1%} Prec={row['precision']:.1%} "
            f"Rec={row['recall']:.1%} FAR={row['far']:.1%} FRR={row['frr']:.1%}"
        )


def evaluate_decisions(
    benign_flags: list[bool],
    attack_flags: list[bool],
) -> ConfusionCounts:
    """Build counts from per-image "flagged as attack" decisions."""
    counts = ConfusionCounts()
    for flagged in benign_flags:
        counts.record(is_attack_truth=False, flagged_attack=flagged)
    for flagged in attack_flags:
        counts.record(is_attack_truth=True, flagged_attack=flagged)
    return counts
