"""Decamouflage core: the paper's three detectors, calibration, ensemble.

Quick start::

    from repro.core import build_default_ensemble

    ensemble = build_default_ensemble(model_input_shape=(32, 32))
    ensemble.calibrate(my_benign_holdout_images)
    verdict = ensemble.detect(suspicious_image)
    print(verdict.explain())
"""

from repro.core.analysis import ImageAnalysis
from repro.core.detector import Detector
from repro.core.ensemble import DetectionEnsemble, build_default_ensemble
from repro.core.evaluation import ConfusionCounts, evaluate_decisions
from repro.core.filtering_detector import FilteringDetector
from repro.core.multiscale import COMMON_INPUT_SIZES, MultiScaleDetection, MultiScaleScanner
from repro.core.pipeline import (
    AttackSet,
    DetectorEvaluation,
    build_attack_set,
    evaluate_detector,
    evaluate_ensemble,
)
from repro.core.result import Detection, Direction, EnsembleDetection, ThresholdRule
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import DEFAULT_CSP_THRESHOLD, SteganalysisDetector
from repro.core.thresholds import (
    auc,
    calibrate_blackbox,
    calibrate_blackbox_sigma,
    calibrate_whitebox,
    infer_direction,
    roc_curve,
    threshold_accuracy,
)

__all__ = [
    "AttackSet",
    "COMMON_INPUT_SIZES",
    "ConfusionCounts",
    "DEFAULT_CSP_THRESHOLD",
    "MultiScaleDetection",
    "MultiScaleScanner",
    "Detection",
    "DetectionEnsemble",
    "Detector",
    "DetectorEvaluation",
    "Direction",
    "EnsembleDetection",
    "FilteringDetector",
    "ImageAnalysis",
    "ScalingDetector",
    "SteganalysisDetector",
    "ThresholdRule",
    "auc",
    "build_attack_set",
    "build_default_ensemble",
    "calibrate_blackbox",
    "calibrate_blackbox_sigma",
    "calibrate_whitebox",
    "evaluate_decisions",
    "evaluate_detector",
    "evaluate_ensemble",
    "infer_direction",
    "roc_curve",
    "threshold_accuracy",
]
