"""End-to-end detection pipeline: calibrate on one corpus, evaluate on another.

This module packages the paper's experimental protocol (Figures 8/10):

1. craft attack images for the calibration corpus,
2. calibrate thresholds (white-box from both populations, or black-box from
   benign only),
3. score an *unseen* evaluation corpus and report the five metrics.

It is the workhorse behind every table benchmark and also a convenient
high-level API for downstream users ("calibrate once on my hold-out set,
then scan my training data").
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.attacks.base import AttackConfig
from repro.attacks.strong import craft_attack_image
from repro.core.detector import Detector
from repro.core.ensemble import DetectionEnsemble
from repro.core.evaluation import ConfusionCounts, evaluate_decisions
from repro.errors import AttackError
from repro.imaging.scaling import resize

__all__ = ["AttackSet", "build_attack_set", "DetectorEvaluation", "evaluate_detector", "evaluate_ensemble"]


@dataclass(frozen=True)
class AttackSet:
    """Matched benign and attack images derived from one corpus."""

    benign: list[np.ndarray]
    attacks: list[np.ndarray]
    algorithm: str
    model_input_shape: tuple[int, int]
    #: indices of (original, target) pairs the optimizer could not attack
    skipped: list[int]


def build_attack_set(
    originals: Sequence[np.ndarray],
    targets: Sequence[np.ndarray],
    *,
    model_input_shape: tuple[int, int],
    algorithm: str = "bilinear",
    config: AttackConfig | None = None,
) -> AttackSet:
    """Craft one attack image per (original, target) pair.

    Targets larger than ``model_input_shape`` are downscaled to it first
    (the paper picks target images from the same datasets). Pairs the
    optimizer cannot satisfy at the configured ε are skipped and recorded —
    the paper's attack tooling has the same unreachable-target failure
    mode.
    """
    benign: list[np.ndarray] = []
    attacks: list[np.ndarray] = []
    skipped: list[int] = []
    for index, (original, target) in enumerate(zip(originals, targets)):
        small_target = (
            target
            if target.shape[:2] == model_input_shape
            else resize(target, model_input_shape, algorithm)
        )
        try:
            result = craft_attack_image(
                original, small_target, algorithm=algorithm, config=config
            )
        except AttackError:
            skipped.append(index)
            continue
        benign.append(np.asarray(original))
        attacks.append(result.attack_image)
    return AttackSet(
        benign=benign,
        attacks=attacks,
        algorithm=algorithm,
        model_input_shape=model_input_shape,
        skipped=skipped,
    )


@dataclass(frozen=True)
class DetectorEvaluation:
    """Evaluation outcome: the five paper metrics plus raw scores."""

    counts: ConfusionCounts
    benign_scores: list[float]
    attack_scores: list[float]
    threshold_description: str


def evaluate_detector(
    detector: Detector,
    evaluation_set: AttackSet,
) -> DetectorEvaluation:
    """Score an evaluation set with an already calibrated detector."""
    benign_scores = detector.scores(evaluation_set.benign)
    attack_scores = detector.scores(evaluation_set.attacks)
    rule = detector.threshold
    counts = evaluate_decisions(
        [rule.is_attack(s) for s in benign_scores],
        [rule.is_attack(s) for s in attack_scores],
    )
    return DetectorEvaluation(
        counts=counts,
        benign_scores=benign_scores,
        attack_scores=attack_scores,
        threshold_description=rule.describe(detector.metric),
    )


def evaluate_ensemble(
    ensemble: DetectionEnsemble,
    evaluation_set: AttackSet,
) -> ConfusionCounts:
    """Majority-vote evaluation over an evaluation set."""
    return evaluate_decisions(
        [ensemble.is_attack(image) for image in evaluation_set.benign],
        [ensemble.is_attack(image) for image in evaluation_set.attacks],
    )
