"""Method 2 — filtering detection (paper Section 3.2, Algorithm 2).

Apply an order-statistic filter and compare the result to the input. The
perturbed pixels the attack injects are statistical outliers inside their
neighborhoods, so a minimum filter (the paper's choice) strips them and the
filtered image diverges strongly from an attack input, while a benign image
barely changes.

Score = MSE(I, F) (attack high) or SSIM(I, F) (attack low), ``F = filter(I)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.detector import Detector
from repro.core.result import Direction, ThresholdRule
from repro.errors import DetectionError
from repro.imaging.filtering import FILTERS
from repro.imaging.metrics import mse, ssim

__all__ = ["FilteringDetector"]


class FilteringDetector(Detector):
    """Window-filter residual detector (minimum filter by default)."""

    method = "filtering"

    def __init__(
        self,
        *,
        filter_name: str = "minimum",
        filter_size: int = 2,
        metric: str = "mse",
        threshold: ThresholdRule | None = None,
    ) -> None:
        if metric not in ("mse", "ssim"):
            raise DetectionError(f"filtering detector metric must be mse or ssim, got {metric!r}")
        if filter_name not in FILTERS:
            known = ", ".join(sorted(FILTERS))
            raise DetectionError(f"unknown filter {filter_name!r}; known: {known}")
        super().__init__(threshold)
        self.filter_name = filter_name
        self.filter_size = filter_size
        self.metric = metric

    @property
    def attack_direction(self) -> Direction:
        return Direction.GREATER if self.metric == "mse" else Direction.LESS

    def filtered(self, image: np.ndarray) -> np.ndarray:
        """The filtered image ``F`` the score is computed against."""
        return FILTERS[self.filter_name](image, self.filter_size)

    def score(self, image: np.ndarray) -> float:
        filtered = self.filtered(image)
        if self.metric == "mse":
            return mse(image, filtered)
        return ssim(image, filtered)
