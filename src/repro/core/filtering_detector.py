"""Method 2 — filtering detection (paper Section 3.2, Algorithm 2).

Apply an order-statistic filter and compare the result to the input. The
perturbed pixels the attack injects are statistical outliers inside their
neighborhoods, so a minimum filter (the paper's choice) strips them and the
filtered image diverges strongly from an attack input, while a benign image
barely changes.

Score = MSE(I, F) (attack high) or SSIM(I, F) (attack low), ``F = filter(I)``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.detector import Detector
from repro.core.result import Direction, ThresholdRule
from repro.errors import DetectionError
from repro.imaging.filtering import FILTERS, filter_batch

__all__ = ["FilteringDetector"]


class FilteringDetector(Detector):
    """Window-filter residual detector (minimum filter by default)."""

    method = "filtering"

    #: Same-shaped images per stacked filtering pass. The window view is
    #: zero-copy but the median reducer materializes the windows, so the
    #: chunk bounds peak memory at ~size² × chunk images.
    _FUSED_CHUNK = 16

    def __init__(
        self,
        *,
        filter_name: str = "minimum",
        filter_size: int = 2,
        metric: str = "mse",
        threshold: ThresholdRule | None = None,
    ) -> None:
        if metric not in ("mse", "ssim"):
            raise DetectionError(f"filtering detector metric must be mse or ssim, got {metric!r}")
        if filter_name not in FILTERS:
            known = ", ".join(sorted(FILTERS))
            raise DetectionError(f"unknown filter {filter_name!r}; known: {known}")
        super().__init__(threshold)
        self.filter_name = filter_name
        self.filter_size = filter_size
        self.metric = metric

    @property
    def attack_direction(self) -> Direction:
        return Direction.GREATER if self.metric == "mse" else Direction.LESS

    def filtered(self, image: np.ndarray) -> np.ndarray:
        """The filtered image ``F`` the score is computed against."""
        return FILTERS[self.filter_name](image, self.filter_size)

    def score_from(self, analysis: ImageAnalysis) -> float:
        key = ImageAnalysis.filtered_key(self.filter_name, self.filter_size)
        if self.metric == "mse":
            return analysis.mse_against(key)
        return analysis.ssim_against(key)

    def score_batch(
        self, images: Sequence[np.ndarray | ImageAnalysis]
    ) -> list[float]:
        """Fused batch scoring: same-shaped images are filtered in one
        stacked window reduce instead of one pass per image.

        Scores are **bit-identical** to per-image :meth:`score`:
        :func:`~repro.imaging.filtering.filter_batch` guarantees each
        slice of the stacked result equals the per-image filter output,
        and the residual metric then runs unchanged per image. Contexts
        that already memoized their filtered image are left alone, so
        mixing prepared and raw inputs stays exact (and cheap).
        """
        analyses = [self.as_analysis(image, self.metrics) for image in images]
        key = ImageAnalysis.filtered_key(self.filter_name, self.filter_size)
        if self.filter_size > 1:
            pending: dict[tuple[int, ...], list[ImageAnalysis]] = {}
            for analysis in analyses:
                if analysis.peek(key) is None:
                    pending.setdefault(analysis.image.shape, []).append(analysis)
            for group in pending.values():
                for start in range(0, len(group), self._FUSED_CHUNK):
                    chunk = group[start : start + self._FUSED_CHUNK]
                    if len(chunk) == 1:
                        continue  # no stacking win; score_from computes it
                    stack = np.stack([a.float_image for a in chunk])
                    batch = filter_batch(stack, self.filter_name, self.filter_size)
                    for index, analysis in enumerate(chunk):
                        analysis.put(key, batch[index])
        return [self.score_from(analysis) for analysis in analyses]
