"""Threshold calibration (paper Section 5.1, RQ. 3).

Two calibration regimes, mirroring the paper:

* **White-box** (:func:`calibrate_whitebox`) — the defender can craft
  attack images with the attacker's own algorithm, so both score
  populations are available. The paper describes a "gradient descent"
  search over candidate thresholds; the search space is one-dimensional
  and piecewise constant in accuracy, so the exact optimum is found by
  scanning the midpoints between adjacent scores of the pooled sample —
  which is what we implement (same optimum, deterministic).

* **Black-box** (:func:`calibrate_blackbox`) — only benign images exist.
  The threshold is a tail percentile of the benign score distribution
  (paper: 1%, 2%, 3%), so FRR is ``p`` by construction and FAR depends on
  how far the attack population sits from the benign tail.

Also provides ROC/AUC utilities used by the ablation benches to compare
metrics (e.g. why PSNR and color histograms fail — AUC near 0.5).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.result import Direction, ThresholdRule
from repro.errors import CalibrationError

__all__ = [
    "calibrate_whitebox",
    "calibrate_blackbox",
    "calibrate_blackbox_sigma",
    "infer_direction",
    "threshold_accuracy",
    "roc_curve",
    "auc",
]


def _as_array(scores: Sequence[float], name: str) -> np.ndarray:
    array = np.asarray(list(scores), dtype=np.float64)
    if array.size == 0:
        raise CalibrationError(f"{name} must not be empty")
    if not np.all(np.isfinite(array)):
        raise CalibrationError(f"{name} contains non-finite scores")
    return array


def infer_direction(benign: Sequence[float], attack: Sequence[float]) -> Direction:
    """Pick the attack side from the two score populations' means."""
    b = _as_array(benign, "benign scores")
    a = _as_array(attack, "attack scores")
    return Direction.GREATER if a.mean() >= b.mean() else Direction.LESS


def threshold_accuracy(
    rule: ThresholdRule,
    benign: Sequence[float],
    attack: Sequence[float],
) -> float:
    """Balanced classification accuracy of *rule* on the two populations."""
    b = _as_array(benign, "benign scores")
    a = _as_array(attack, "attack scores")
    if rule.direction is Direction.GREATER:
        correct = np.sum(b < rule.value) + np.sum(a >= rule.value)
    else:
        correct = np.sum(b > rule.value) + np.sum(a <= rule.value)
    return float(correct) / float(b.size + a.size)


def calibrate_whitebox(
    benign: Sequence[float],
    attack: Sequence[float],
    *,
    direction: Direction | None = None,
) -> ThresholdRule:
    """Find the accuracy-maximizing threshold from both populations.

    Candidate thresholds are the midpoints between adjacent values of the
    pooled, sorted scores (plus both extremes); the best candidate is the
    exact maximizer of the piecewise-constant accuracy function the paper's
    gradient-descent search climbs. Ties go to the candidate with the
    larger benign margin (smaller FRR at equal accuracy).
    """
    b = _as_array(benign, "benign scores")
    a = _as_array(attack, "attack scores")
    chosen_direction = direction or infer_direction(b, a)

    pooled = np.unique(np.concatenate([b, a]))
    if pooled.size == 1:
        raise CalibrationError(
            "cannot calibrate: benign and attack scores are all identical"
        )
    midpoints = (pooled[:-1] + pooled[1:]) / 2.0
    span = pooled[-1] - pooled[0]
    candidates = np.concatenate(
        [[pooled[0] - 0.5 * span], midpoints, [pooled[-1] + 0.5 * span]]
    )

    best_rule: ThresholdRule | None = None
    best_key: tuple[float, float] | None = None
    for value in candidates:
        rule = ThresholdRule(value=float(value), direction=chosen_direction)
        accuracy = threshold_accuracy(rule, b, a)
        # Secondary criterion: push the threshold away from the benign mass.
        margin = (
            float(value) - float(b.mean())
            if chosen_direction is Direction.GREATER
            else float(b.mean()) - float(value)
        )
        key = (accuracy, margin)
        if best_key is None or key > best_key:
            best_key = key
            best_rule = rule
    assert best_rule is not None  # candidates is never empty
    return best_rule


def calibrate_blackbox(
    benign: Sequence[float],
    *,
    direction: Direction,
    percentile: float = 1.0,
) -> ThresholdRule:
    """Percentile-of-benign threshold (no attack images needed).

    ``percentile`` is the benign tail mass to sacrifice (the paper's 1–3%).
    For GREATER metrics (MSE, CSP) the rule sits at the (100-p)th benign
    percentile; for LESS metrics (SSIM) at the p-th.
    """
    if not 0.0 < percentile < 50.0:
        raise CalibrationError(f"percentile must be in (0, 50), got {percentile}")
    b = _as_array(benign, "benign scores")
    if direction is Direction.GREATER:
        value = float(np.percentile(b, 100.0 - percentile))
    else:
        value = float(np.percentile(b, percentile))
    return ThresholdRule(value=value, direction=direction)


def calibrate_blackbox_sigma(
    benign: Sequence[float],
    *,
    direction: Direction,
    n_sigma: float = 3.0,
) -> ThresholdRule:
    """Mean ± k·std threshold from benign scores only.

    The alternative black-box rule implied by the paper's Mean/STD columns
    (Tables 3 and 5): place the boundary ``n_sigma`` standard deviations
    into the benign tail. Unlike the percentile rule its FRR is not fixed
    by construction — it depends on the tail shape — but it extrapolates
    beyond the observed sample, which helps with small hold-out sets.
    """
    if n_sigma <= 0:
        raise CalibrationError(f"n_sigma must be positive, got {n_sigma}")
    b = _as_array(benign, "benign scores")
    mean = float(b.mean())
    std = float(b.std())
    if direction is Direction.GREATER:
        value = mean + n_sigma * std
    else:
        value = mean - n_sigma * std
    return ThresholdRule(value=value, direction=direction)


def roc_curve(
    benign: Sequence[float],
    attack: Sequence[float],
    *,
    direction: Direction | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """ROC points (FPR, TPR) sweeping the threshold over all scores."""
    b = _as_array(benign, "benign scores")
    a = _as_array(attack, "attack scores")
    chosen = direction or infer_direction(b, a)
    thresholds = np.unique(np.concatenate([b, a]))
    fpr = []
    tpr = []
    for value in thresholds:
        rule = ThresholdRule(value=float(value), direction=chosen)
        fpr.append(float(np.mean([rule.is_attack(s) for s in b])))
        tpr.append(float(np.mean([rule.is_attack(s) for s in a])))
    order = np.argsort(fpr, kind="stable")
    fpr_arr = np.concatenate([[0.0], np.asarray(fpr)[order], [1.0]])
    tpr_arr = np.concatenate([[0.0], np.asarray(tpr)[order], [1.0]])
    return fpr_arr, np.maximum.accumulate(tpr_arr)


def auc(
    benign: Sequence[float],
    attack: Sequence[float],
    *,
    direction: Direction | None = None,
) -> float:
    """Area under the ROC curve; 1.0 = perfect separation, 0.5 = useless."""
    fpr, tpr = roc_curve(benign, attack, direction=direction)
    # Trapezoidal rule by hand (np.trapz was removed in numpy 2).
    return float(np.sum((fpr[1:] - fpr[:-1]) * (tpr[1:] + tpr[:-1]) / 2.0))
