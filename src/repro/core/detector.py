"""Detector base class: score + pluggable threshold rule.

Every Decamouflage method reduces an image to one scalar score and compares
it to a calibrated threshold (paper Algorithms 1–3). The base class owns
the threshold plumbing — white-box and black-box calibration, decision,
batch helpers — so the three concrete detectors only define *how to score*
and *which side of the threshold is suspicious*.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.result import Detection, Direction, ThresholdRule
from repro.core.thresholds import calibrate_blackbox, calibrate_whitebox
from repro.errors import DetectionError

__all__ = ["Detector"]


class Detector(ABC):
    """One Decamouflage detection method.

    A detector is constructed unconfigured, then either given an explicit
    :class:`ThresholdRule` or calibrated from data. ``detect`` raises
    :class:`DetectionError` until a threshold exists (except for detectors
    that define a fixed default rule, like steganalysis).
    """

    #: short name used in reports: "scaling", "filtering", "steganalysis"
    method: str = "detector"
    #: metric name used in reports: "mse", "ssim", "csp"
    metric: str = "score"

    def __init__(self, threshold: ThresholdRule | None = None) -> None:
        self._threshold = threshold

    # -- scoring ---------------------------------------------------------

    @abstractmethod
    def score(self, image: np.ndarray) -> float:
        """Reduce *image* to this method's scalar attack score."""

    @property
    @abstractmethod
    def attack_direction(self) -> Direction:
        """Which side of the threshold indicates an attack."""

    def scores(self, images: Iterable[np.ndarray]) -> list[float]:
        """Score a batch of images."""
        return [self.score(image) for image in images]

    # -- threshold management --------------------------------------------

    @property
    def threshold(self) -> ThresholdRule:
        if self._threshold is None:
            raise DetectionError(
                f"{self.method} detector has no threshold; call "
                "calibrate_whitebox/calibrate_blackbox or pass one explicitly"
            )
        return self._threshold

    @threshold.setter
    def threshold(self, rule: ThresholdRule) -> None:
        if rule.direction is not self.attack_direction:
            raise DetectionError(
                f"{self.method}/{self.metric} expects direction "
                f"{self.attack_direction.value!r}, got {rule.direction.value!r}"
            )
        self._threshold = rule

    @property
    def is_calibrated(self) -> bool:
        return self._threshold is not None

    def calibrate_whitebox(
        self,
        benign_images: Sequence[np.ndarray],
        attack_images: Sequence[np.ndarray],
    ) -> ThresholdRule:
        """Calibrate from both populations (paper's white-box setting)."""
        rule = calibrate_whitebox(
            self.scores(benign_images),
            self.scores(attack_images),
            direction=self.attack_direction,
        )
        self._threshold = rule
        return rule

    def calibrate_blackbox(
        self,
        benign_images: Sequence[np.ndarray],
        *,
        percentile: float = 1.0,
    ) -> ThresholdRule:
        """Calibrate from benign images only (paper's black-box setting)."""
        rule = calibrate_blackbox(
            self.scores(benign_images),
            direction=self.attack_direction,
            percentile=percentile,
        )
        self._threshold = rule
        return rule

    # -- decisions ---------------------------------------------------------

    def detect(self, image: np.ndarray) -> Detection:
        """Score one image and apply the calibrated rule."""
        value = self.score(image)
        rule = self.threshold
        return Detection(
            method=self.method,
            metric=self.metric,
            score=value,
            threshold=rule,
            is_attack=rule.is_attack(value),
        )

    def is_attack(self, image: np.ndarray) -> bool:
        """Convenience: just the boolean verdict."""
        return self.detect(image).is_attack
