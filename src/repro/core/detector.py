"""Detector base class: score + pluggable threshold rule.

Every Decamouflage method reduces an image to one scalar score and compares
it to a calibrated threshold (paper Algorithms 1–3). The base class owns
the threshold plumbing — the unified :meth:`Detector.calibrate` entry point
(percentile / sigma / midpoint strategies), decisions, batch helpers, and
per-detector latency metrics — so the three concrete detectors only define
*how to score* and *which side of the threshold is suspicious*.

Since the shared-analysis refactor the scoring primitive is
:meth:`Detector.score_from`, which reads from an
:class:`~repro.core.analysis.ImageAnalysis` context instead of a raw array.
The context validates the image once, converts it to float once, and
memoizes every intermediate — so an ensemble, a multi-scale scan, or a
serving decision that runs several detectors over one image shares all of
that work. :meth:`Detector.score` remains as a thin wrapper that builds a
throwaway context, so single-detector callers are unaffected.
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.result import Detection, Direction, ThresholdRule
from repro.core.thresholds import (
    calibrate_blackbox,
    calibrate_blackbox_sigma,
    calibrate_whitebox,
)
from repro.errors import CalibrationError, DetectionError
from repro.observability import Metrics

__all__ = ["CALIBRATION_STRATEGIES", "Detector"]

#: Strategies accepted by :meth:`Detector.calibrate`.
CALIBRATION_STRATEGIES = ("percentile", "sigma", "midpoint")


class Detector(ABC):
    """One Decamouflage detection method.

    A detector is constructed unconfigured, then either given an explicit
    :class:`ThresholdRule` or calibrated from data. ``detect`` raises
    :class:`DetectionError` until a threshold exists (except for detectors
    that define a fixed default rule, like steganalysis).

    Subclasses implement :meth:`score_from`, pulling their intermediates
    from the shared :class:`ImageAnalysis` context; every image-accepting
    entry point (``score``, ``score_batch``, ``detect``, ``detect_batch``)
    also accepts ready-made contexts, so composite callers can score many
    detectors against one context.

    Setting :attr:`metrics` to a :class:`repro.observability.Metrics`
    registry makes every ``detect``/``detect_batch`` call record its
    per-image scoring latency under ``detector.<method>.<metric>``.
    """

    #: short name used in reports: "scaling", "filtering", "steganalysis"
    method: str = "detector"
    #: metric name used in reports: "mse", "ssim", "csp"
    metric: str = "score"

    def __init__(self, threshold: ThresholdRule | None = None) -> None:
        self._threshold = threshold
        #: optional observability registry; set by the serving pipeline.
        self.metrics: Metrics | None = None

    # -- scoring ---------------------------------------------------------

    @staticmethod
    def as_analysis(
        item: np.ndarray | ImageAnalysis,
        metrics: Metrics | None = None,
    ) -> ImageAnalysis:
        """Coerce an image (or pass an existing context through) to an
        :class:`ImageAnalysis`. Composite callers wrap each image once and
        hand the same context to every member detector."""
        if isinstance(item, ImageAnalysis):
            return item
        return ImageAnalysis(item, metrics=metrics)

    @abstractmethod
    def score_from(self, analysis: ImageAnalysis) -> float:
        """Reduce the analyzed image to this method's scalar attack score.

        This is the scoring primitive: implementations read their
        intermediates from *analysis* so repeated work is shared across
        detectors. Third-party subclasses should override this (not
        :meth:`score`, which is a wrapper building a throwaway context).
        """

    def score(self, image: np.ndarray | ImageAnalysis) -> float:
        """Reduce *image* to this method's scalar attack score."""
        return self.score_from(self.as_analysis(image, self.metrics))

    @property
    @abstractmethod
    def attack_direction(self) -> Direction:
        """Which side of the threshold indicates an attack."""

    def score_batch(
        self, images: Sequence[np.ndarray | ImageAnalysis]
    ) -> list[float]:
        """Score a batch of images (or prepared analysis contexts).

        The base implementation is a per-image loop over
        :meth:`score_from`; detectors whose math vectorizes across images
        (the filtering detector's stacked window reduce) override this
        with a fused path that produces **bit-identical** scores.
        """
        return [
            self.score_from(self.as_analysis(image, self.metrics))
            for image in images
        ]

    def scores(self, images: Iterable[np.ndarray | ImageAnalysis]) -> list[float]:
        """Score a batch of images (alias of :meth:`score_batch`)."""
        return self.score_batch(list(images))

    # -- threshold management --------------------------------------------

    @property
    def threshold(self) -> ThresholdRule:
        if self._threshold is None:
            raise DetectionError(
                f"{self.method} detector has no threshold; call "
                "calibrate() or pass one explicitly"
            )
        return self._threshold

    @threshold.setter
    def threshold(self, rule: ThresholdRule) -> None:
        if rule.direction is not self.attack_direction:
            raise DetectionError(
                f"{self.method}/{self.metric} expects direction "
                f"{self.attack_direction.value!r}, got {rule.direction.value!r}"
            )
        self._threshold = rule

    @property
    def is_calibrated(self) -> bool:
        return self._threshold is not None

    def calibrate(
        self,
        benign: Sequence[np.ndarray | ImageAnalysis],
        attacks: Sequence[np.ndarray | ImageAnalysis] | None = None,
        *,
        strategy: str = "percentile",
        percentile: float = 1.0,
        n_sigma: float = 3.0,
    ) -> ThresholdRule:
        """Calibrate the threshold from example images.

        One entry point for every calibration regime in the paper:

        * ``strategy="percentile"`` (default) — benign images only; the
          threshold sits at the *percentile* tail of the benign score
          distribution (the paper's black-box setting, Section 5.1).
        * ``strategy="sigma"`` — benign images only; mean ± *n_sigma*·std
          of the benign scores (the Mean/STD rule of Tables 3 and 5).
        * ``strategy="midpoint"`` — needs *attacks*; exact accuracy-
          maximizing threshold from both populations (the paper's
          white-box setting).

        Passing *attacks* selects the midpoint strategy automatically;
        combining *attacks* with ``strategy="sigma"`` is rejected because
        the sigma rule cannot use them.
        """
        if strategy not in CALIBRATION_STRATEGIES:
            known = ", ".join(CALIBRATION_STRATEGIES)
            raise CalibrationError(f"unknown strategy {strategy!r}; known: {known}")
        if attacks is not None:
            if strategy == "sigma":
                raise CalibrationError(
                    "attack examples are only used by the 'midpoint' strategy; "
                    "drop them or use strategy='midpoint'"
                )
            strategy = "midpoint"
        if strategy == "midpoint":
            if attacks is None:
                raise CalibrationError(
                    "strategy='midpoint' needs attack example images"
                )
            rule = calibrate_whitebox(
                self.scores(benign),
                self.scores(attacks),
                direction=self.attack_direction,
            )
        elif strategy == "sigma":
            rule = calibrate_blackbox_sigma(
                self.scores(benign),
                direction=self.attack_direction,
                n_sigma=n_sigma,
            )
        else:
            rule = calibrate_blackbox(
                self.scores(benign),
                direction=self.attack_direction,
                percentile=percentile,
            )
        self._threshold = rule
        return rule

    # -- decisions ---------------------------------------------------------

    def _record_latency(self, elapsed_seconds: float, n_images: int) -> None:
        """Record per-image scoring latency into the attached registry."""
        if self.metrics is None or n_images <= 0:
            return
        histogram = self.metrics.histogram(f"detector.{self.method}.{self.metric}")
        per_image_ms = elapsed_seconds * 1000.0 / n_images
        for _ in range(n_images):
            histogram.record(per_image_ms)

    def detect_from(self, analysis: ImageAnalysis) -> Detection:
        """Score one prepared context and apply the calibrated rule."""
        start = time.perf_counter()
        value = self.score_from(analysis)
        self._record_latency(time.perf_counter() - start, 1)
        rule = self.threshold
        return Detection(
            method=self.method,
            metric=self.metric,
            score=value,
            threshold=rule,
            is_attack=rule.is_attack(value),
        )

    def detect(self, image: np.ndarray | ImageAnalysis) -> Detection:
        """Score one image and apply the calibrated rule."""
        return self.detect_from(self.as_analysis(image, self.metrics))

    def detect_batch(
        self, images: Sequence[np.ndarray | ImageAnalysis]
    ) -> list[Detection]:
        """Score a batch and apply the calibrated rule to every image.

        Equivalent to ``[self.detect(im) for im in images]`` — verdicts and
        scores are bit-for-bit identical — but routed through
        :meth:`score_batch` so fused detectors amortize their setup.
        """
        images = list(images)
        rule = self.threshold
        if not images:
            return []
        start = time.perf_counter()
        values = self.score_batch(images)
        self._record_latency(time.perf_counter() - start, len(images))
        return [
            Detection(
                method=self.method,
                metric=self.metric,
                score=value,
                threshold=rule,
                is_attack=rule.is_attack(value),
            )
            for value in values
        ]

    def is_attack(self, image: np.ndarray | ImageAnalysis) -> bool:
        """Convenience: just the boolean verdict."""
        return self.detect(image).is_attack
