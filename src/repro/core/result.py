"""Result types shared by the detectors and the ensemble."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["Direction", "ThresholdRule", "Detection", "EnsembleDetection"]


class Direction(str, Enum):
    """Which side of the threshold indicates an attack.

    ``GREATER``: higher scores are more attack-like (MSE, CSP count).
    ``LESS``: lower scores are more attack-like (SSIM).
    """

    GREATER = "greater"
    LESS = "less"


@dataclass(frozen=True)
class ThresholdRule:
    """A calibrated decision rule: flag when the score crosses ``value``.

    The comparison is inclusive on the attack side, matching the paper's
    Algorithms 1–3 (``Score >= Score_T`` ⇒ attack).
    """

    value: float
    direction: Direction

    def is_attack(self, score: float) -> bool:
        if self.direction is Direction.GREATER:
            return score >= self.value
        return score <= self.value

    def describe(self, metric_name: str) -> str:
        op = ">=" if self.direction is Direction.GREATER else "<="
        return f"{metric_name} {op} {self.value:.4g}"


@dataclass(frozen=True)
class Detection:
    """One detector's decision on one image."""

    method: str  # "scaling" | "filtering" | "steganalysis"
    metric: str  # "mse" | "ssim" | "csp"
    score: float
    threshold: ThresholdRule
    is_attack: bool


@dataclass(frozen=True)
class EnsembleDetection:
    """Majority-vote decision with the individual votes preserved."""

    is_attack: bool
    votes_for_attack: int
    votes_total: int
    detections: tuple[Detection, ...]

    def explain(self) -> str:
        """Human-readable vote breakdown for logs and the CLI."""
        parts = [
            f"{d.method}/{d.metric}: score={d.score:.4g} "
            f"({'attack' if d.is_attack else 'benign'}; rule {d.threshold.describe(d.metric)})"
            for d in self.detections
        ]
        verdict = "ATTACK" if self.is_attack else "benign"
        return (
            f"{verdict} ({self.votes_for_attack}/{self.votes_total} votes)\n  "
            + "\n  ".join(parts)
        )
