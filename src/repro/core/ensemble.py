"""Majority-vote ensemble of detectors (paper Section 5.5).

The three methods fail in different ways — the ensemble exists to (a)
stabilize accuracy and (b) force an adaptive attacker to beat all methods
at once (paper Section 6). Any odd number of calibrated detectors can be
combined; the canonical Decamouflage instance is built by
:func:`build_default_ensemble`.

Every decision path builds **one**
:class:`~repro.core.analysis.ImageAnalysis` context per image and hands it
to every member: the image is validated and float-converted once, not once
per member, and members that share an intermediate (e.g. two scaling
configurations with the same model size) hit the memo instead of
recomputing it.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import chain

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.detector import Detector
from repro.core.result import EnsembleDetection, ThresholdRule
from repro.core.filtering_detector import FilteringDetector
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.errors import DetectionError
from repro.observability import Metrics

__all__ = ["DetectionEnsemble", "build_default_ensemble"]


class DetectionEnsemble:
    """Majority voting over independent detectors."""

    def __init__(
        self,
        detectors: Sequence[Detector],
        *,
        metrics: Metrics | None = None,
    ) -> None:
        if not detectors:
            raise DetectionError("ensemble needs at least one detector")
        if len(detectors) % 2 == 0:
            raise DetectionError(
                f"ensemble needs an odd number of detectors to avoid tied "
                f"votes, got {len(detectors)}"
            )
        self.detectors = list(detectors)
        self._metrics: Metrics | None = None
        if metrics is not None:
            self.metrics = metrics

    # -- observability ------------------------------------------------------

    @property
    def metrics(self) -> Metrics | None:
        """Attached observability registry, propagated to every member."""
        return self._metrics

    @metrics.setter
    def metrics(self, metrics: Metrics | None) -> None:
        self._metrics = metrics
        for detector in self.detectors:
            detector.metrics = metrics

    # -- shared analysis ----------------------------------------------------

    def analyze(self, image: np.ndarray | ImageAnalysis) -> ImageAnalysis:
        """The shared analysis context members score from (pass-through for
        prepared contexts). Carries the ensemble's metrics registry so memo
        hit/miss counters land on the attached dashboard."""
        return Detector.as_analysis(image, self._metrics)

    # -- calibration --------------------------------------------------------

    def calibrate(
        self,
        benign: Sequence[np.ndarray | ImageAnalysis],
        attacks: Sequence[np.ndarray | ImageAnalysis] | None = None,
        *,
        strategy: str = "percentile",
        percentile: float = 1.0,
        n_sigma: float = 3.0,
    ) -> dict[str, ThresholdRule]:
        """Calibrate every member with one strategy (see
        :meth:`repro.core.Detector.calibrate` for the strategies).

        Steganalysis members keep their fixed CSP rule — the paper's point
        is that this method needs no calibration data at all. Returns the
        calibrated rules keyed by ``"<method>/<metric>"``.

        The corpora are wrapped into shared analysis contexts once, so
        every member scores the same validated, float-converted images;
        image-sized memo entries are dropped between members to keep peak
        memory at one corpus, not one corpus per member.
        """
        benign = [self.analyze(image) for image in benign]
        attacks = None if attacks is None else [self.analyze(image) for image in attacks]
        rules: dict[str, ThresholdRule] = {}
        for detector in self.detectors:
            if detector.method == "steganalysis":
                continue  # fixed CSP threshold needs no data
            rules[f"{detector.method}/{detector.metric}"] = detector.calibrate(
                benign,
                attacks,
                strategy=strategy,
                percentile=percentile,
                n_sigma=n_sigma,
            )
            for analysis in chain(benign, attacks or ()):
                analysis.forget_arrays()
        return rules

    # -- decisions ----------------------------------------------------------

    @staticmethod
    def _vote(detections: tuple) -> EnsembleDetection:
        votes = sum(1 for d in detections if d.is_attack)
        return EnsembleDetection(
            is_attack=votes > len(detections) // 2,
            votes_for_attack=votes,
            votes_total=len(detections),
            detections=detections,
        )

    def detect_from(self, analysis: ImageAnalysis) -> EnsembleDetection:
        """Run all members against one shared context and majority-vote."""
        detections = tuple(
            detector.detect_from(analysis) for detector in self.detectors
        )
        return self._vote(detections)

    def detect(self, image: np.ndarray | ImageAnalysis) -> EnsembleDetection:
        """Run all members and majority-vote their verdicts."""
        return self.detect_from(self.analyze(image))

    def detect_batch(
        self, images: Sequence[np.ndarray | ImageAnalysis]
    ) -> list[EnsembleDetection]:
        """Batch decision path: every member scores the whole batch.

        Produces bit-identical verdicts to per-image :meth:`detect`. Each
        image is wrapped in one shared context for all members, and fused
        members (the filtering detector) additionally amortize their work
        across the batch.
        """
        analyses = [self.analyze(image) for image in images]
        columns = [detector.detect_batch(analyses) for detector in self.detectors]
        return [self._vote(tuple(row)) for row in zip(*columns)]

    def is_attack(self, image: np.ndarray | ImageAnalysis) -> bool:
        return self.detect(image).is_attack


def build_default_ensemble(
    model_input_shape: tuple[int, int],
    *,
    algorithm: str = "bilinear",
    scaling_metric: str = "mse",
    filtering_metric: str = "ssim",
) -> DetectionEnsemble:
    """The canonical Decamouflage: scaling + filtering + steganalysis.

    Metric defaults follow the paper's per-method recommendations: MSE for
    scaling detection (its best configuration, Table 2) and SSIM for
    filtering detection (Table 4); steganalysis always uses CSP.
    """
    return DetectionEnsemble(
        [
            ScalingDetector(
                model_input_shape, algorithm=algorithm, metric=scaling_metric
            ),
            FilteringDetector(metric=filtering_metric),
            SteganalysisDetector(),
        ]
    )
