"""Majority-vote ensemble of detectors (paper Section 5.5).

The three methods fail in different ways — the ensemble exists to (a)
stabilize accuracy and (b) force an adaptive attacker to beat all methods
at once (paper Section 6). Any odd number of calibrated detectors can be
combined; the canonical Decamouflage instance is built by
:func:`build_default_ensemble`.
"""

from __future__ import annotations

import warnings
from collections.abc import Sequence

import numpy as np

from repro.core.detector import Detector
from repro.core.result import EnsembleDetection, ThresholdRule
from repro.core.filtering_detector import FilteringDetector
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.errors import DetectionError
from repro.observability import Metrics

__all__ = ["DetectionEnsemble", "build_default_ensemble"]


class DetectionEnsemble:
    """Majority voting over independent detectors."""

    def __init__(
        self,
        detectors: Sequence[Detector],
        *,
        metrics: Metrics | None = None,
    ) -> None:
        if not detectors:
            raise DetectionError("ensemble needs at least one detector")
        if len(detectors) % 2 == 0:
            raise DetectionError(
                f"ensemble needs an odd number of detectors to avoid tied "
                f"votes, got {len(detectors)}"
            )
        self.detectors = list(detectors)
        self._metrics: Metrics | None = None
        if metrics is not None:
            self.metrics = metrics

    # -- observability ------------------------------------------------------

    @property
    def metrics(self) -> Metrics | None:
        """Attached observability registry, propagated to every member."""
        return self._metrics

    @metrics.setter
    def metrics(self, metrics: Metrics | None) -> None:
        self._metrics = metrics
        for detector in self.detectors:
            detector.metrics = metrics

    # -- calibration --------------------------------------------------------

    def calibrate(
        self,
        benign: Sequence[np.ndarray],
        attacks: Sequence[np.ndarray] | None = None,
        *,
        strategy: str = "percentile",
        percentile: float = 1.0,
        n_sigma: float = 3.0,
    ) -> dict[str, ThresholdRule]:
        """Calibrate every member with one strategy (see
        :meth:`repro.core.Detector.calibrate` for the strategies).

        Steganalysis members keep their fixed CSP rule — the paper's point
        is that this method needs no calibration data at all. Returns the
        calibrated rules keyed by ``"<method>/<metric>"``.
        """
        rules: dict[str, ThresholdRule] = {}
        for detector in self.detectors:
            if detector.method == "steganalysis":
                continue  # fixed CSP threshold needs no data
            rules[f"{detector.method}/{detector.metric}"] = detector.calibrate(
                benign,
                attacks,
                strategy=strategy,
                percentile=percentile,
                n_sigma=n_sigma,
            )
        return rules

    def calibrate_whitebox(
        self,
        benign_images: Sequence[np.ndarray],
        attack_images: Sequence[np.ndarray],
    ) -> None:
        """Deprecated: use ``calibrate(benign, attacks)``."""
        warnings.warn(
            "calibrate_whitebox() is deprecated; use "
            "calibrate(benign, attacks) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.calibrate(benign_images, attack_images)

    def calibrate_blackbox(
        self,
        benign_images: Sequence[np.ndarray],
        *,
        percentile: float = 1.0,
    ) -> None:
        """Deprecated: use ``calibrate(benign, percentile=...)``."""
        warnings.warn(
            "calibrate_blackbox() is deprecated; use "
            "calibrate(benign, percentile=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        self.calibrate(benign_images, percentile=percentile)

    # -- decisions ----------------------------------------------------------

    @staticmethod
    def _vote(detections: tuple) -> EnsembleDetection:
        votes = sum(1 for d in detections if d.is_attack)
        return EnsembleDetection(
            is_attack=votes > len(detections) // 2,
            votes_for_attack=votes,
            votes_total=len(detections),
            detections=detections,
        )

    def detect(self, image: np.ndarray) -> EnsembleDetection:
        """Run all members and majority-vote their verdicts."""
        detections = tuple(detector.detect(image) for detector in self.detectors)
        return self._vote(detections)

    def detect_batch(self, images: Sequence[np.ndarray]) -> list[EnsembleDetection]:
        """Batch decision path: every member scores the whole batch.

        Produces bit-identical verdicts to per-image :meth:`detect` while
        letting vectorized members (the scaling detector) amortize their
        per-call setup across the batch.
        """
        images = list(images)
        columns = [detector.detect_batch(images) for detector in self.detectors]
        return [self._vote(tuple(row)) for row in zip(*columns)]

    def is_attack(self, image: np.ndarray) -> bool:
        return self.detect(image).is_attack


def build_default_ensemble(
    model_input_shape: tuple[int, int],
    *,
    algorithm: str = "bilinear",
    scaling_metric: str = "mse",
    filtering_metric: str = "ssim",
) -> DetectionEnsemble:
    """The canonical Decamouflage: scaling + filtering + steganalysis.

    Metric defaults follow the paper's per-method recommendations: MSE for
    scaling detection (its best configuration, Table 2) and SSIM for
    filtering detection (Table 4); steganalysis always uses CSP.
    """
    return DetectionEnsemble(
        [
            ScalingDetector(
                model_input_shape, algorithm=algorithm, metric=scaling_metric
            ),
            FilteringDetector(metric=filtering_metric),
            SteganalysisDetector(),
        ]
    )
