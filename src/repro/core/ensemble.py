"""Majority-vote ensemble of detectors (paper Section 5.5).

The three methods fail in different ways — the ensemble exists to (a)
stabilize accuracy and (b) force an adaptive attacker to beat all methods
at once (paper Section 6). Any odd number of calibrated detectors can be
combined; the canonical Decamouflage instance is built by
:func:`build_default_ensemble`.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.detector import Detector
from repro.core.result import EnsembleDetection
from repro.core.filtering_detector import FilteringDetector
from repro.core.scaling_detector import ScalingDetector
from repro.core.steganalysis_detector import SteganalysisDetector
from repro.errors import DetectionError

__all__ = ["DetectionEnsemble", "build_default_ensemble"]


class DetectionEnsemble:
    """Majority voting over independent detectors."""

    def __init__(self, detectors: Sequence[Detector]) -> None:
        if not detectors:
            raise DetectionError("ensemble needs at least one detector")
        if len(detectors) % 2 == 0:
            raise DetectionError(
                f"ensemble needs an odd number of detectors to avoid tied "
                f"votes, got {len(detectors)}"
            )
        self.detectors = list(detectors)

    def calibrate_whitebox(
        self,
        benign_images: Sequence[np.ndarray],
        attack_images: Sequence[np.ndarray],
    ) -> None:
        """White-box calibrate every member (steganalysis keeps its fixed rule)."""
        for detector in self.detectors:
            if detector.method == "steganalysis":
                continue  # fixed CSP threshold needs no data
            detector.calibrate_whitebox(benign_images, attack_images)

    def calibrate_blackbox(
        self,
        benign_images: Sequence[np.ndarray],
        *,
        percentile: float = 1.0,
    ) -> None:
        """Black-box calibrate every member from benign images only."""
        for detector in self.detectors:
            if detector.method == "steganalysis":
                continue
            detector.calibrate_blackbox(benign_images, percentile=percentile)

    def detect(self, image: np.ndarray) -> EnsembleDetection:
        """Run all members and majority-vote their verdicts."""
        detections = tuple(detector.detect(image) for detector in self.detectors)
        votes = sum(1 for d in detections if d.is_attack)
        return EnsembleDetection(
            is_attack=votes > len(detections) // 2,
            votes_for_attack=votes,
            votes_total=len(detections),
            detections=detections,
        )

    def is_attack(self, image: np.ndarray) -> bool:
        return self.detect(image).is_attack


def build_default_ensemble(
    model_input_shape: tuple[int, int],
    *,
    algorithm: str = "bilinear",
    scaling_metric: str = "mse",
    filtering_metric: str = "ssim",
) -> DetectionEnsemble:
    """The canonical Decamouflage: scaling + filtering + steganalysis.

    Metric defaults follow the paper's per-method recommendations: MSE for
    scaling detection (its best configuration, Table 2) and SSIM for
    filtering detection (Table 4); steganalysis always uses CSP.
    """
    return DetectionEnsemble(
        [
            ScalingDetector(
                model_input_shape, algorithm=algorithm, metric=scaling_metric
            ),
            FilteringDetector(metric=filtering_metric),
            SteganalysisDetector(),
        ]
    )
