"""Method 1 — scaling detection (paper Section 3.1, Algorithm 1).

Reverse-engineer the attack: downscale the input to the model's input size,
upscale back, and compare with the input. A benign image loses only fine
detail in the round trip; an attack image comes back as the *hidden target*
blown up to full size, which is wildly different from the input.

Score = MSE(I, S) (attack scores high) or SSIM(I, S) (attack scores low),
where ``S = up(down(I))``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.analysis import ImageAnalysis
from repro.core.detector import Detector
from repro.core.result import Direction, ThresholdRule
from repro.errors import DetectionError
from repro.imaging.plans import get_scoring_plan
from repro.imaging.scaling import downscale_then_upscale

__all__ = ["ScalingDetector"]


class ScalingDetector(Detector):
    """Down/up round-trip similarity detector.

    Parameters mirror the deployment being defended: ``model_input_shape``
    is the CNN's expected input size, ``algorithm`` the scaling algorithm
    the serving pipeline uses (which the attacker targeted).

    The round trip and its residual metric come from the shared
    :class:`~repro.core.analysis.ImageAnalysis` context, so a multi-scale
    scan or an ensemble sharing one context per image validates and
    float-converts it exactly once, and a repeated score is a memo hit.
    """

    method = "scaling"

    def __init__(
        self,
        model_input_shape: tuple[int, int],
        *,
        algorithm: str = "bilinear",
        metric: str = "mse",
        upscale_algorithm: str | None = None,
        threshold: ThresholdRule | None = None,
    ) -> None:
        if metric not in ("mse", "ssim"):
            raise DetectionError(f"scaling detector metric must be mse or ssim, got {metric!r}")
        super().__init__(threshold)
        self.model_input_shape = model_input_shape
        self.algorithm = algorithm
        self.upscale_algorithm = upscale_algorithm
        self.metric = metric

    @property
    def attack_direction(self) -> Direction:
        # MSE grows on attack images; SSIM collapses.
        return Direction.GREATER if self.metric == "mse" else Direction.LESS

    def round_trip(self, image: np.ndarray) -> np.ndarray:
        """The reconstructed image ``S`` the score is computed against."""
        return downscale_then_upscale(
            image,
            self.model_input_shape,
            self.algorithm,
            self.upscale_algorithm,
        )

    #: Same-shaped images per stacked round-trip pass; bounds the peak
    #: footprint of the batched matmuls at ~chunk × image-size floats.
    _FUSED_CHUNK = 16

    def score_from(self, analysis: ImageAnalysis) -> float:
        key = ImageAnalysis.round_trip_key(
            self.model_input_shape, self.algorithm, self.upscale_algorithm
        )
        if self.metric == "mse":
            return analysis.mse_against(key)
        return analysis.ssim_against(key)

    def score_batch(
        self, images: Sequence[np.ndarray | ImageAnalysis]
    ) -> list[float]:
        """Fused batch scoring: same-shaped images round-trip in one
        stacked operator application instead of one pass per image.

        Each slice of :meth:`repro.imaging.plans.ScoringPlan.round_trip_batch`
        equals the per-image application (the batch runs the same GEMM or
        banded contraction per 2-D slice), so scores equal per-image
        :meth:`score` in both scoring modes. Contexts that already
        memoized their round trip are left alone.
        """
        analyses = [self.as_analysis(image, self.metrics) for image in images]
        key = ImageAnalysis.round_trip_key(
            self.model_input_shape, self.algorithm, self.upscale_algorithm
        )
        pending: dict[tuple, list[ImageAnalysis]] = {}
        for analysis in analyses:
            if analysis.peek(key) is None:
                group_key = (analysis.image.shape, analysis.mode)
                pending.setdefault(group_key, []).append(analysis)
        for (shape, mode), group in pending.items():
            plan = get_scoring_plan(
                shape[:2], self.model_input_shape, self.algorithm,
                self.upscale_algorithm,
            )
            for start in range(0, len(group), self._FUSED_CHUNK):
                chunk = group[start : start + self._FUSED_CHUNK]
                if len(chunk) == 1:
                    continue  # no stacking win; score_from computes it
                stack = np.stack([a.float_image for a in chunk])
                batch = plan.round_trip_batch(stack, exact=(mode == "exact"))
                for index, analysis in enumerate(chunk):
                    analysis.put(key, batch[index])
        return [self.score_from(analysis) for analysis in analyses]
