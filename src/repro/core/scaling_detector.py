"""Method 1 — scaling detection (paper Section 3.1, Algorithm 1).

Reverse-engineer the attack: downscale the input to the model's input size,
upscale back, and compare with the input. A benign image loses only fine
detail in the round trip; an attack image comes back as the *hidden target*
blown up to full size, which is wildly different from the input.

Score = MSE(I, S) (attack scores high) or SSIM(I, S) (attack scores low),
where ``S = up(down(I))``.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.detector import Detector
from repro.core.result import Direction, ThresholdRule
from repro.errors import DetectionError
from repro.imaging.image import as_float, ensure_image
from repro.imaging.metrics import mse, ssim
from repro.imaging.scaling import downscale_then_upscale, get_scaling_operators

__all__ = ["ScalingDetector"]


class ScalingDetector(Detector):
    """Down/up round-trip similarity detector.

    Parameters mirror the deployment being defended: ``model_input_shape``
    is the CNN's expected input size, ``algorithm`` the scaling algorithm
    the serving pipeline uses (which the attacker targeted).
    """

    method = "scaling"

    def __init__(
        self,
        model_input_shape: tuple[int, int],
        *,
        algorithm: str = "bilinear",
        metric: str = "mse",
        upscale_algorithm: str | None = None,
        threshold: ThresholdRule | None = None,
    ) -> None:
        if metric not in ("mse", "ssim"):
            raise DetectionError(f"scaling detector metric must be mse or ssim, got {metric!r}")
        super().__init__(threshold)
        self.model_input_shape = model_input_shape
        self.algorithm = algorithm
        self.upscale_algorithm = upscale_algorithm
        self.metric = metric

    @property
    def attack_direction(self) -> Direction:
        # MSE grows on attack images; SSIM collapses.
        return Direction.GREATER if self.metric == "mse" else Direction.LESS

    def round_trip(self, image: np.ndarray) -> np.ndarray:
        """The reconstructed image ``S`` the score is computed against."""
        return downscale_then_upscale(
            image,
            self.model_input_shape,
            self.algorithm,
            self.upscale_algorithm,
        )

    def score(self, image: np.ndarray) -> float:
        reconstructed = self.round_trip(image)
        if self.metric == "mse":
            return mse(image, reconstructed)
        return ssim(image, reconstructed)

    #: Residuals at or below this element count are finalized together
    #: (one stacked square + mean per shape group). Above it, the stack
    #: copy costs more than the saved reduction-call overhead, so large
    #: residuals finalize in place one at a time. Both paths are
    #: bit-identical; the cutoff only picks the cheaper one.
    _GROUPED_FINALIZE_MAX_ELEMENTS = 3072

    def _round_trip_fused(
        self,
        f: np.ndarray,
        operators: dict[tuple[int, int], tuple],
        up_alg: str,
    ) -> np.ndarray:
        """Reconstruction ``S`` via cached operators, no temporaries."""
        shape = f.shape[:2]
        pairs = operators.get(shape)
        if pairs is None:
            # Serving batches are overwhelmingly same-shaped: memoize per
            # source shape so the process cache (and its lock) is consulted
            # once per shape, not twice per image.
            pairs = operators[shape] = (
                get_scaling_operators(shape, self.model_input_shape, self.algorithm),
                get_scaling_operators(self.model_input_shape, shape, up_alg),
            )
        (left_d, right_d), (left_u, right_u) = pairs
        if f.ndim == 2:
            return (left_u @ ((left_d @ f) @ right_d)) @ right_u
        down = [(left_d @ f[:, :, c]) @ right_d for c in range(f.shape[2])]
        return np.stack([(left_u @ plane) @ right_u for plane in down], axis=2)

    def score_batch(self, images: Sequence[np.ndarray]) -> list[float]:
        """Batch scoring with a fused, allocation-lean round trip.

        Produces **bit-identical** scores to per-image :meth:`score`: the
        same matmuls run in the same order on the same float64 values — the
        batch path only strips the per-call validation, the redundant
        ``as_float`` copies, and the intermediate temporaries that dominate
        the per-image wall time, and (for small images) finalizes the MSE
        of each same-shape group with one vectorized reduction. (A stacked
        einsum over ``(N, H, W, C)`` for the round trip itself was also
        evaluated and measured *slower* on CPU — the stack copies are
        memory-bound while the per-image operands stay cache-resident.)
        """
        images = list(images)
        up_alg = self.upscale_algorithm or self.algorithm
        operators: dict[tuple[int, int], tuple] = {}
        if self.metric != "mse":
            scores = []
            for image in images:
                ensure_image(image)
                f = image if image.dtype == np.float64 else as_float(image)
                scores.append(ssim(image, self._round_trip_fused(f, operators, up_alg)))
            return scores

        scores: list[float] = [0.0] * len(images)
        # Small residuals are held back and reduced per shape group; large
        # ones are consumed immediately so batch memory stays bounded.
        pending: dict[tuple[int, ...], list[tuple[int, np.ndarray]]] = {}
        for index, image in enumerate(images):
            ensure_image(image)
            f = image if image.dtype == np.float64 else as_float(image)
            reconstructed = self._round_trip_fused(f, operators, up_alg)
            # In-place residual: `reconstructed` is a fresh buffer, and
            # (f - S)**2 has identical values however it is evaluated.
            diff = np.subtract(f, reconstructed, out=reconstructed)
            if diff.size > self._GROUPED_FINALIZE_MAX_ELEMENTS:
                scores[index] = float(np.mean(np.square(diff, out=diff)))
            else:
                pending.setdefault(diff.shape, []).append((index, diff))
        for group in pending.values():
            if len(group) == 1:
                index, diff = group[0]
                scores[index] = float(np.mean(np.square(diff, out=diff)))
                continue
            stacked = np.stack([diff for _, diff in group])
            np.square(stacked, out=stacked)
            means = stacked.mean(axis=tuple(range(1, stacked.ndim)))
            for (index, _), mean in zip(group, means):
                scores[index] = float(mean)
        return scores
